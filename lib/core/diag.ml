(** Structured diagnostics for the compilation pipeline.

    Every stage failure — a verification mismatch, a sign-off DRC/LVS
    violation, a bench protocol error, an invalid specification — is
    carried as a value of {!t} instead of an escaping exception: severity,
    the pipeline stage that produced it, the spec being compiled, a
    human-readable message and a structured key/value payload. The CLI
    renders diagnostics as one-line reports and exits non-zero; the verify
    subsystem asserts on them; tests match on stage and payload instead of
    exception constructors.

    {!guard} is the bridge from the exception world: it runs a thunk and
    converts the known library escapes ({!Testbench.Mismatch},
    {!Testbench.Bench_error}, {!Post_layout.Signoff_failed}, and the
    residual [Failure]/[Invalid_argument] sites on library hot paths) into
    [Error diag] with the spec context attached. *)

type severity = Info | Warning | Error

type t = {
  severity : severity;
  stage : string;  (** pipeline stage (or subsystem) that raised it *)
  context : string option;  (** the spec being compiled, described *)
  message : string;
  payload : (string * string) list;  (** structured key/value detail *)
}

(** Raised by compatibility wrappers that must surface a diagnostic
    through an exception-typed interface. *)
exception Failed of t

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let make ?(severity = Error) ~stage ?spec ?(payload = []) message =
  { severity; stage; context = Option.map Spec.describe spec; message; payload }

let error ~stage ?spec ?payload message =
  make ~severity:Error ~stage ?spec ?payload message

let warning ~stage ?spec ?payload message =
  make ~severity:Warning ~stage ?spec ?payload message

let info ~stage ?spec ?payload message =
  make ~severity:Info ~stage ?spec ?payload message

let stage (d : t) = d.stage
let message (d : t) = d.message
let is_error (d : t) = d.severity = Error

(** [to_string d] — the one-line report the CLI prints:
    [error\[stage\] {spec}: message (k=v, ...)]. *)
let to_string (d : t) =
  let ctx =
    match d.context with
    | None -> ""
    | Some c -> Printf.sprintf " {%s}" c
  in
  let payload =
    match d.payload with
    | [] -> ""
    | kvs ->
        Printf.sprintf " (%s)"
          (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs))
  in
  Printf.sprintf "%s[%s]%s: %s%s"
    (severity_name d.severity)
    d.stage ctx d.message payload

(** [guard ~stage ?spec f] — run [f ()], converting the known library
    escapes into [Error diag]. Unknown exceptions still propagate: a bug
    in the compiler itself should crash loudly, not masquerade as a
    diagnosable input problem. *)
let guard ~stage ?spec (f : unit -> 'a) : ('a, t) Stdlib.result =
  try Ok (f ()) with
  | Testbench.Mismatch { word; expected; got; detail } ->
      Error
        (make ~stage ?spec
           ~payload:
             [
               ("word", string_of_int word);
               ("expected", string_of_int expected);
               ("got", string_of_int got);
               ("detail", detail);
             ]
           (Printf.sprintf "word %d %s: expected %d, got %d" word detail
              expected got))
  | Testbench.Bench_error { op; detail } ->
      Error
        (make ~stage ?spec ~payload:[ ("op", op) ]
           (Printf.sprintf "%s: %s" op detail))
  | Post_layout.Signoff_failed msg ->
      Error (make ~stage ?spec ~payload:[ ("exn", "Signoff_failed") ] msg)
  | Failure msg ->
      Error (make ~stage ?spec ~payload:[ ("exn", "Failure") ] msg)
  | Invalid_argument msg ->
      Error (make ~stage ?spec ~payload:[ ("exn", "Invalid_argument") ] msg)

(** Result plumbing for pipeline code. *)
let ( let* ) = Stdlib.Result.bind
