(** Batch compilation driver: compile a manifest of specifications
    across the {!Pool} domain pool, backed by the persistent
    content-addressed compile cache ({!Disk_cache}).

    A manifest is a text file of spec lines — whitespace-separated
    [key=value] fields in any order, [#] comments and blank lines
    ignored:

    {v
      rows=16 cols=16 mcr=1 iprec=int8 wprec=int8 freq_mhz=600
      rows=64 cols=64 mcr=2 freq_mhz=800 prefer=power   # fig8-ish
    v}

    Fields not given take the same defaults as [syndcim compile]. Because
    a parsed line canonicalizes into a {!Spec.t} before keying, two
    manifests that spell the same spec with different field order or
    spacing hit the same cache entry.

    {!run} schedules the compilations over the domain pool (each spec is
    independent; the subcircuit library and disk cache are both safe to
    share), counts cache hits/misses/corruption repairs, and keeps every
    per-spec result — including failures, which are carried as {!Diag.t}
    values rather than aborting the batch. {!manifest_json} is the
    machine-readable record (status, PPA, cache participation, wall time
    per spec); {!render_ppa} is the deterministic PPA view used by the
    determinism tests and CI (full-precision floats, no wall clock);
    {!render_table} is the human summary. *)

let stage = "batch"

(* ------------------------------------------------------------------ *)
(* Spec-line parsing                                                   *)
(* ------------------------------------------------------------------ *)

let precision_of_string s : (Precision.t, string) Stdlib.result =
  match String.lowercase_ascii s with
  | "int1" -> Ok Precision.int1
  | "int2" -> Ok Precision.int2
  | "int4" -> Ok Precision.int4
  | "int8" -> Ok Precision.int8
  | "fp4" -> Ok Precision.fp4
  | "fp8" -> Ok Precision.fp8
  | "bf16" -> Ok Precision.bf16
  | other -> Error (Printf.sprintf "unknown precision %S" other)

let preference_of_string s : (Spec.preference, string) Stdlib.result =
  match String.lowercase_ascii s with
  | "power" -> Ok Spec.Prefer_power
  | "area" -> Ok Spec.Prefer_area
  | "performance" | "perf" -> Ok Spec.Prefer_performance
  | "balanced" -> Ok Spec.Balanced
  | other -> Error (Printf.sprintf "unknown preference %S" other)

(* Defaults match `syndcim compile` with no flags. *)
let default_spec : Spec.t =
  {
    Spec.rows = 64;
    cols = 64;
    mcr = 2;
    input_prec = Precision.int8;
    weight_prec = Precision.int8;
    mac_freq_hz = 800e6;
    weight_update_freq_hz = 800e6;
    vdd = 0.9;
    preference = Spec.Balanced;
  }

(** [parse_spec_line line] — one manifest line to a {!Spec.t}. Fields may
    appear in any order, separated by any whitespace; duplicates are an
    error (a manifest that says [rows=8 rows=16] is a typo, not a
    preference). *)
let parse_spec_line (line : string) : (Spec.t, string) Stdlib.result =
  let tokens =
    String.split_on_char ' '
      (String.map (function '\t' | '\r' -> ' ' | c -> c) line)
    |> List.filter (fun t -> t <> "")
  in
  let exception Bad of string in
  let seen = Hashtbl.create 8 in
  try
    let spec =
      List.fold_left
        (fun spec tok ->
          match String.index_opt tok '=' with
          | None -> raise (Bad (Printf.sprintf "expected key=value, got %S" tok))
          | Some i ->
              let key = String.sub tok 0 i in
              let v = String.sub tok (i + 1) (String.length tok - i - 1) in
              if Hashtbl.mem seen key then
                raise (Bad (Printf.sprintf "duplicate field %S" key));
              Hashtbl.add seen key ();
              let int () =
                match int_of_string_opt v with
                | Some n -> n
                | None -> raise (Bad (Printf.sprintf "bad integer %S for %s" v key))
              in
              let flt () =
                match float_of_string_opt v with
                | Some f -> f
                | None -> raise (Bad (Printf.sprintf "bad number %S for %s" v key))
              in
              let prec () =
                match precision_of_string v with
                | Ok p -> p
                | Error e -> raise (Bad e)
              in
              (match key with
              | "rows" -> { spec with Spec.rows = int () }
              | "cols" -> { spec with Spec.cols = int () }
              | "mcr" -> { spec with Spec.mcr = int () }
              | "iprec" | "input" -> { spec with Spec.input_prec = prec () }
              | "wprec" | "weight" -> { spec with Spec.weight_prec = prec () }
              | "freq_mhz" -> { spec with Spec.mac_freq_hz = flt () *. 1e6 }
              | "wupd_mhz" ->
                  { spec with Spec.weight_update_freq_hz = flt () *. 1e6 }
              | "vdd" -> { spec with Spec.vdd = flt () }
              | "prefer" -> (
                  match preference_of_string v with
                  | Ok p -> { spec with Spec.preference = p }
                  | Error e -> raise (Bad e))
              | other -> raise (Bad (Printf.sprintf "unknown field %S" other))))
        default_spec tokens
    in
    if tokens = [] then Error "empty spec line" else Ok spec
  with Bad msg -> Error msg

(** [render_spec_line s] — a manifest line that parses back to [s]
    exactly ([%h] floats round-trip). *)
let render_spec_line (s : Spec.t) : string =
  Printf.sprintf
    "rows=%d cols=%d mcr=%d iprec=%s wprec=%s freq_mhz=%h wupd_mhz=%h vdd=%h prefer=%s"
    s.Spec.rows s.Spec.cols s.Spec.mcr
    (String.lowercase_ascii (Precision.name s.Spec.input_prec))
    (String.lowercase_ascii (Precision.name s.Spec.weight_prec))
    (s.Spec.mac_freq_hz /. 1e6)
    (s.Spec.weight_update_freq_hz /. 1e6)
    s.Spec.vdd
    (Spec.preference_name s.Spec.preference)

(** [parse_manifest text] — every spec line of a manifest, or the first
    malformed line as a one-line diagnostic. An empty manifest (no spec
    lines at all) is an error: silently compiling nothing hides a wrong
    path or a glob that matched nothing. *)
let parse_manifest (text : string) : (Spec.t list, Diag.t) Stdlib.result =
  let lines = String.split_on_char '\n' text in
  (* A CRLF-edited manifest leaves '\r' on every line after the '\n'
     split; strip it explicitly so the last field of each line never
     carries a carriage return into the key=value parse. *)
  let strip_cr line =
    let len = String.length line in
    if len > 0 && line.[len - 1] = '\r' then String.sub line 0 (len - 1)
    else line
  in
  let rec go acc n = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let t = String.trim (strip_cr line) in
        if t = "" || t.[0] = '#' then go acc (n + 1) rest
        else (
          match parse_spec_line t with
          | Ok spec -> go (spec :: acc) (n + 1) rest
          | Error reason ->
              Error
                (Diag.error ~stage
                   ~payload:[ ("line", string_of_int n); ("text", t) ]
                   (Printf.sprintf "manifest line %d: %s" n reason)))
  in
  match go [] 1 lines with
  | Error _ as e -> e
  | Ok [] -> Error (Diag.error ~stage "empty batch manifest (no spec lines)")
  | Ok specs -> Ok specs

(** [load_manifest path] — {!parse_manifest} over a file. *)
let load_manifest (path : string) : (Spec.t list, Diag.t) Stdlib.result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg ->
      Error (Diag.error ~stage ~payload:[ ("path", path) ] msg)
  | text -> (
      match parse_manifest text with
      | Error d -> Error { d with Diag.payload = ("path", path) :: d.Diag.payload }
      | ok -> ok)

(** [validate_jobs j] — [--jobs 0] or a negative pool width is a user
    error, not a degenerate pool. *)
let validate_jobs (j : int) : (int, Diag.t) Stdlib.result =
  if j >= 1 then Ok j
  else
    Error
      (Diag.error ~stage
         ~payload:[ ("jobs", string_of_int j) ]
         "jobs must be >= 1")

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

type item = {
  index : int;  (** position in the manifest, 0-based *)
  spec : Spec.t;
  outcome : (Pipeline.summary, Diag.t) Stdlib.result;
  wall_s : float;
}

type result = {
  items : item list;  (** in manifest order *)
  hits : int;
  misses : int;  (** compiled because no entry existed *)
  corrupt : int;  (** compiled because the entry failed integrity checks *)
  uncached : int;  (** compiled with no cache attached *)
  failed : int;
  wall_s : float;  (** whole-batch wall clock *)
  warnings : Diag.t list;  (** one per replaced corrupt entry *)
}

(** [run ?jobs ?cache ?trace ctx specs] — compile every spec, fanned out
    over the domain pool. Jobs, compile cache and trace sink all default
    to the context's values. Per-spec failures become [Error] items; the
    batch itself always completes, and warnings are also sent to the
    context's diagnostic sink. Each spec records its stage rows into a
    private trace, merged into the batch trace in manifest order after
    the pool joins — so the trace (and its fingerprint) is independent
    of which domain compiled what. *)
let run ?jobs ?cache ?trace (ctx : Ctx.t) (specs : Spec.t list) : result =
  let t0 = Unix.gettimeofday () in
  let jobs = match jobs with Some j -> Some j | None -> Ctx.jobs ctx in
  let cache = match cache with Some c -> Some c | None -> Ctx.cache ctx in
  let trace = match trace with Some t -> Some t | None -> Ctx.trace ctx in
  (* detach the context's own cache/trace so the per-call values above
     are the single source of truth inside the fan-out *)
  let call_ctx = Ctx.without_trace (Ctx.without_cache ctx) in
  let compiled =
    Pool.parallel_map ?jobs
      (fun (index, spec) ->
        let tr = Option.map (fun _ -> Trace.create ()) trace in
        let w0 = Unix.gettimeofday () in
        let outcome = Pipeline.run_cached ?trace:tr ?cache call_ctx spec in
        let wall_s = Unix.gettimeofday () -. w0 in
        ({ index; spec; outcome; wall_s }, tr))
      (List.mapi (fun i s -> (i, s)) specs)
  in
  (match trace with
  | None -> ()
  | Some t ->
      List.iter
        (fun (_, tr) ->
          Option.iter (fun tr -> List.iter (Trace.add t) (Trace.rows tr)) tr)
        compiled);
  let items = List.map fst compiled in
  let hits = ref 0
  and misses = ref 0
  and corrupt = ref 0
  and uncached = ref 0
  and failed = ref 0
  and warnings = ref [] in
  List.iter
    (fun it ->
      match it.outcome with
      | Error _ -> incr failed
      | Ok s -> (
          match s.Pipeline.sum_cache with
          | Pipeline.Cache_hit -> incr hits
          | Pipeline.Cache_miss -> incr misses
          | Pipeline.Cache_off -> incr uncached
          | Pipeline.Cache_corrupt reason ->
              incr corrupt;
              warnings :=
                Diag.warning ~stage ~spec:it.spec
                  ~payload:[ ("reason", reason) ]
                  "corrupt cache entry replaced (recompiled)"
                :: !warnings))
    items;
  let warnings = List.rev !warnings in
  List.iter (Ctx.emit ctx) warnings;
  (* Outcome counts depend only on the manifest and the cache state, not
     on scheduling or engine choice — all deterministic. *)
  Metrics.incr (Metrics.counter "batch.runs");
  Metrics.add (Metrics.counter "batch.items") (List.length items);
  Metrics.add (Metrics.counter "batch.items_failed") !failed;
  Metrics.add (Metrics.counter "batch.cache_hits") !hits;
  Metrics.add (Metrics.counter "batch.cache_misses") !misses;
  Metrics.add (Metrics.counter "batch.cache_corrupt") !corrupt;
  Metrics.add (Metrics.counter "batch.uncached") !uncached;
  {
    items;
    hits = !hits;
    misses = !misses;
    corrupt = !corrupt;
    uncached = !uncached;
    failed = !failed;
    wall_s = Unix.gettimeofday () -. t0;
    warnings;
  }

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

let cache_word (s : Pipeline.summary) =
  match s.Pipeline.sum_cache with
  | Pipeline.Cache_off -> "off"
  | Pipeline.Cache_hit -> "hit"
  | Pipeline.Cache_miss -> "miss"
  | Pipeline.Cache_corrupt _ -> "corrupt"

(** [render_table r] — the human summary (wall clock included, so not a
    determinism artifact; diff {!render_ppa} for that). *)
let render_table (r : result) : string =
  let row (it : item) =
    match it.outcome with
    | Ok s ->
        let m = s.Pipeline.sum_metrics in
        [
          string_of_int it.index;
          Spec.describe it.spec;
          (if s.Pipeline.sum_timing_closed then "closed" else "MISSED");
          cache_word s;
          Table.f ~digits:1 m.Pipeline.crit_ps;
          Table.f ~digits:3 m.Pipeline.fmax_ghz;
          Table.f (m.Pipeline.power_w *. 1e3);
          Table.f ~digits:4 m.Pipeline.area_mm2;
          Table.f ~digits:4 m.Pipeline.tops;
          Printf.sprintf "%.3f" it.wall_s;
        ]
    | Error d ->
        [
          string_of_int it.index;
          Spec.describe it.spec;
          Printf.sprintf "FAILED[%s]" (Diag.stage d);
          "-"; "-"; "-"; "-"; "-"; "-";
          Printf.sprintf "%.3f" it.wall_s;
        ]
  in
  Table.render
    (Table.make
       ~header:
         [
           "#"; "spec"; "timing"; "cache"; "crit (ps)"; "fmax (GHz)";
           "power (mW)"; "area (mm2)"; "TOPS"; "wall (s)";
         ]
       (List.map row r.items))
  ^ "\n"

(** One-line batch summary. *)
let describe (r : result) : string =
  Printf.sprintf
    "batch: %d spec(s) — %d cache hit(s), %d compiled (%d corrupt entr%s \
     replaced, %d uncached), %d failed, %.2f s"
    (List.length r.items) r.hits
    (r.misses + r.corrupt + r.uncached)
    r.corrupt
    (if r.corrupt = 1 then "y" else "ies")
    r.uncached r.failed r.wall_s

(** [render_ppa r] — the deterministic per-spec PPA record: every float
    at full precision ([%.17g] round-trips doubles exactly), no wall
    clock, no cache state. Cold, warm, [--no-cache] and any job count
    must all render byte-identical text for the same manifest. *)
let render_ppa (r : result) : string =
  let line (it : item) =
    match it.outcome with
    | Ok s ->
        let m = s.Pipeline.sum_metrics in
        Printf.sprintf
          "%d | %s | crit_ps=%.17g fmax_ghz=%.17g power_w=%.17g \
           area_mm2=%.17g tops=%.17g tops_per_w=%.17g tops_per_mm2=%.17g \
           ops_norm=%.17g closed=%b insts=%d nets=%d attempts=%d boost=%.17g"
          it.index (Spec.describe it.spec) m.Pipeline.crit_ps
          m.Pipeline.fmax_ghz m.Pipeline.power_w m.Pipeline.area_mm2
          m.Pipeline.tops m.Pipeline.tops_per_w m.Pipeline.tops_per_mm2
          m.Pipeline.ops_norm s.Pipeline.sum_timing_closed
          s.Pipeline.sum_insts s.Pipeline.sum_nets s.Pipeline.sum_attempts
          s.Pipeline.sum_boost
    | Error d ->
        Printf.sprintf "%d | %s | FAILED %s" it.index (Spec.describe it.spec)
          (Diag.to_string d)
  in
  String.concat "\n" (List.map line r.items) ^ "\n"

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** [manifest_json r] — the machine-readable batch manifest: per-spec
    status, cache participation, wall time and full-precision PPA. *)
let manifest_json (r : result) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"syndcim-batch-manifest/1\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"specs\": %d,\n  \"hits\": %d,\n  \"misses\": %d,\n  \
        \"corrupt\": %d,\n  \"uncached\": %d,\n  \"failed\": %d,\n  \
        \"total_wall_s\": %.6f,\n"
       (List.length r.items) r.hits r.misses r.corrupt r.uncached r.failed
       r.wall_s);
  Buffer.add_string b "  \"items\": [\n";
  let n = List.length r.items in
  List.iteri
    (fun i (it : item) ->
      let comma = if i = n - 1 then "" else "," in
      (match it.outcome with
      | Ok s ->
          let m = s.Pipeline.sum_metrics in
          Buffer.add_string b
            (Printf.sprintf
               "    { \"index\": %d, \"spec\": \"%s\", \"status\": \"ok\", \
                \"cache\": \"%s\", \"timing_closed\": %b, \"attempts\": %d, \
                \"boost\": %.17g, \"insts\": %d, \"nets\": %d, \"metrics\": \
                { \"crit_ps\": %.17g, \"fmax_ghz\": %.17g, \"power_w\": \
                %.17g, \"area_mm2\": %.17g, \"tops\": %.17g, \"tops_per_w\": \
                %.17g, \"tops_per_mm2\": %.17g, \"ops_norm\": %.17g }, \
                \"wall_s\": %.6f }"
               it.index
               (json_escape (Spec.describe it.spec))
               (cache_word s) s.Pipeline.sum_timing_closed
               s.Pipeline.sum_attempts s.Pipeline.sum_boost
               s.Pipeline.sum_insts s.Pipeline.sum_nets m.Pipeline.crit_ps
               m.Pipeline.fmax_ghz m.Pipeline.power_w m.Pipeline.area_mm2
               m.Pipeline.tops m.Pipeline.tops_per_w m.Pipeline.tops_per_mm2
               m.Pipeline.ops_norm it.wall_s)
      | Error d ->
          Buffer.add_string b
            (Printf.sprintf
               "    { \"index\": %d, \"spec\": \"%s\", \"status\": \
                \"failed\", \"diagnostic\": \"%s\", \"wall_s\": %.6f }"
               it.index
               (json_escape (Spec.describe it.spec))
               (json_escape (Diag.to_string d))
               it.wall_s));
      Buffer.add_string b (comma ^ "\n"))
    r.items;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
