(** The warm compile service: one process-resident facade over a
    {!Ctx.t} that serves repeated compile and batch requests from a
    warmed world — the library characterized once, the shared SCL memo
    growing monotonically, the persistent compile cache held open — with
    cumulative hit/miss accounting and a per-request instrumentation
    trace.

    This is the first serving-shaped API: where a CLI invocation
    rebuilds the world per call, a service constructed once keeps it hot,
    so request latency drops from "characterize + compile" to "compile"
    (and to a cache lookup when the compile cache already holds the
    spec). Two tenants — or two corners — are two services over two
    contexts; nothing is global.

    Ownership follows {!Ctx}: the service never hands out netlists from
    a cache (ECO mutates them), and every request gets its own private
    {!Trace.t}, so concurrent requests never share a mutable sink. The
    cumulative counters are mutex-guarded. *)

type stats = {
  requests : int;  (** compile requests served (batch items included) *)
  cache_hits : int;  (** served from the persistent compile cache *)
  compiled : int;  (** ran the full pipeline (miss/corrupt/uncached) *)
  failures : int;  (** requests that returned a diagnostic *)
  wall_s : float;  (** cumulative request wall clock *)
  scl : Scl.stats;  (** the shared subcircuit memo's counters *)
}

type t = {
  ctx : Ctx.t;
  lock : Mutex.t;
  mutable requests : int;
  mutable cache_hits : int;
  mutable compiled : int;
  mutable failures : int;
  mutable wall_s : float;
  mutable next_id : int;
}

(** One served compile request: the metrics-level outcome plus the
    request's own stage trace (cache row included on cached paths). *)
type request = {
  id : int;  (** monotonically increasing per service *)
  outcome : (Pipeline.summary, Diag.t) Stdlib.result;
  trace : Trace.t;  (** this request's private instrumentation rows *)
  wall_s : float;
}

(** [create ctx] — bring the world up: force the shared library pair,
    merge the persisted SCL LUT if the context names one
    ({!Ctx.load_scl}), and hold the compile cache open. Returns a
    service with zeroed counters. *)
let create (ctx : Ctx.t) : t =
  ignore (Ctx.load_scl ctx);
  {
    ctx;
    lock = Mutex.create ();
    requests = 0;
    cache_hits = 0;
    compiled = 0;
    failures = 0;
    wall_s = 0.0;
    next_id = 0;
  }

let ctx t = t.ctx

(* Request counts mirror the mutex-guarded fields into the registry;
   the latency histogram is deterministic because only its observation
   count (one per request) enters the fingerprint. *)
let m_requests = Metrics.counter "service.requests"
let m_cache_hits = Metrics.counter "service.cache_hits"
let m_compiled = Metrics.counter "service.compiled"
let m_failures = Metrics.counter "service.failures"
let m_request_ms = Metrics.histogram "service.request_ms"

let account t ~(outcome : (Pipeline.summary, Diag.t) Stdlib.result) ~wall_s
    =
  Metrics.incr m_requests;
  Metrics.observe m_request_ms (wall_s *. 1e3);
  Mutex.protect t.lock (fun () ->
      let id = t.next_id in
      t.next_id <- id + 1;
      t.requests <- t.requests + 1;
      t.wall_s <- t.wall_s +. wall_s;
      (match outcome with
      | Ok s -> (
          match s.Pipeline.sum_cache with
          | Pipeline.Cache_hit ->
              t.cache_hits <- t.cache_hits + 1;
              Metrics.incr m_cache_hits
          | Pipeline.Cache_miss | Pipeline.Cache_corrupt _
          | Pipeline.Cache_off ->
              t.compiled <- t.compiled + 1;
              Metrics.incr m_compiled)
      | Error d ->
          t.failures <- t.failures + 1;
          Metrics.incr m_failures;
          Ctx.emit t.ctx d);
      id)

(** [compile t spec] — serve one metrics-level compilation through the
    warm context and the compile cache. Every request gets a fresh
    private trace; failures are accounted, sent to the context's
    diagnostic sink, and returned — a bad spec never takes the service
    down. *)
let compile ?style ?policy ?verify_engine (t : t) (spec : Spec.t) : request
    =
  let tr = Trace.create () in
  let t0 = Unix.gettimeofday () in
  let outcome =
    Pipeline.run_cached ?style ?policy ?verify_engine ~trace:tr t.ctx spec
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let id = account t ~outcome ~wall_s in
  { id; outcome; trace = tr; wall_s }

(** Full-artifact variant of {!compile}, for callers that need the
    netlist and layout (the CLI's [compile] subcommand, artifact
    export). Never served from the compile cache — artifacts cannot be
    reconstructed from a metrics-level entry — but still warms and
    reuses the shared SCL memo, and still accounts the request. *)
type artifact_request = {
  art_id : int;
  art_outcome : (Pipeline.run, Diag.t) Stdlib.result;
  art_trace : Trace.t;
  art_wall_s : float;
}

let compile_artifact ?style ?policy ?verify_engine ?inject (t : t)
    (spec : Spec.t) : artifact_request =
  let tr = Trace.create () in
  let t0 = Unix.gettimeofday () in
  let outcome =
    Pipeline.run ?style ?policy ?verify_engine ?inject ~trace:tr t.ctx spec
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let summary_view =
    Result.map Pipeline.summary_of_run outcome
  in
  let id = account t ~outcome:summary_view ~wall_s in
  { art_id = id; art_outcome = outcome; art_trace = tr; art_wall_s = wall_s }

(** [batch ?jobs t specs] — fan a whole manifest out over the domain
    pool through the warm context (jobs defaults to the context's), and
    fold the per-item cache outcomes into the service's cumulative
    counters. The returned {!Batch.result} is exactly what
    {!Batch.run} produces — manifest order, per-spec isolation,
    deterministic PPA rendering. *)
let batch ?jobs ?trace (t : t) (specs : Spec.t list) : Batch.result =
  let t0 = Unix.gettimeofday () in
  let r = Batch.run ?jobs ?trace t.ctx specs in
  let wall_s = Unix.gettimeofday () -. t0 in
  let n = List.length r.Batch.items in
  Metrics.add m_requests n;
  Metrics.add m_cache_hits r.Batch.hits;
  Metrics.add m_compiled (r.Batch.misses + r.Batch.corrupt + r.Batch.uncached);
  Metrics.add m_failures r.Batch.failed;
  List.iter
    (fun (it : Batch.item) -> Metrics.observe m_request_ms (it.Batch.wall_s *. 1e3))
    r.Batch.items;
  Mutex.protect t.lock (fun () ->
      t.next_id <- t.next_id + n;
      t.requests <- t.requests + n;
      t.cache_hits <- t.cache_hits + r.Batch.hits;
      t.compiled <-
        t.compiled + r.Batch.misses + r.Batch.corrupt + r.Batch.uncached;
      t.failures <- t.failures + r.Batch.failed;
      t.wall_s <- t.wall_s +. wall_s);
  r

let stats (t : t) : stats =
  Mutex.protect t.lock (fun () ->
      {
        requests = t.requests;
        cache_hits = t.cache_hits;
        compiled = t.compiled;
        failures = t.failures;
        wall_s = t.wall_s;
        scl = Scl.stats (Ctx.scl t.ctx);
      })

(** [describe t] — the cumulative service counters as one line,
    including the request-latency p50/p99 from the metrics registry. *)
let describe (t : t) : string =
  let s = stats t in
  let latency =
    if Metrics.histogram_count m_request_ms = 0 then ""
    else
      Printf.sprintf "; req p50 %.1f ms / p99 %.1f ms"
        (Metrics.quantile m_request_ms 0.5)
        (Metrics.quantile m_request_ms 0.99)
  in
  Printf.sprintf
    "service: %d request(s) — %d cache hit(s), %d compiled, %d failed, \
     %.2f s; scl memo: %s%s"
    s.requests s.cache_hits s.compiled s.failures s.wall_s
    (Scl.describe_stats s.scl) latency

(** [metrics _t] — the process-wide metrics registry as the one-page
    human table ({!Metrics.render}): the serving-side answer to "where
    did this service spend its time". *)
let metrics (_ : t) : string = Metrics.render ()

(** [metrics_json _t] — the registry as JSON ({!Metrics.to_json}), the
    same document [--metrics-out] writes. *)
let metrics_json (_ : t) : string = Metrics.to_json ()

(** [close t] — persist the warmed SCL LUT if the context names a CSV
    ({!Ctx.save_scl}); the compile cache needs no closing (entries are
    written atomically as they are produced). Returns the entry count
    written, if persistence is configured. *)
let close (t : t) : int option = Ctx.save_scl t.ctx
