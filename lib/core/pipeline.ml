(** The staged compilation pipeline (paper Fig. 2), as composable passes.

    The flow is five typed stages threaded by {!run}:

    {v
      Spec.t --search--> search_art --signoff_verify--> search_art
             --backend--> backend_art --power--> Power.report
             --metrics--> verdict
    v}

    1. [search]: the multi-spec-oriented searcher picks the subcircuit
       configuration and pipeline structure (Algorithm 1), evaluating
       candidates through a per-attempt memoizing {!Eval_cache};
    2. [signoff_verify]: functional sign-off — the generated netlist is
       simulated against the golden MAC over randomized batches; the
       compiler refuses to emit a macro that miscomputes;
    3. [backend]: SDP placement, routing estimate, wire-aware timing
       re-closure (the ECO sizing loop, every iteration recorded), DRC
       and LVS;
    4. [power]: post-layout power at the spec's operating point;
    5. [metrics]: the reported PPA, the timing verdict, and the explicit
       retry policy — a post-layout miss whose search closed pre-layout
       re-runs the whole pipeline against a tightened internal clock.

    Each stage returns [('a, Diag.t) result]; nothing inside the pipeline
    escapes by exception. Every stage execution appends an instrumented
    {!Trace} row (wall-clock, cells touched, crit in/out, cache hit/miss,
    ECO iterations, retry boost), so [syndcim compile --trace] shows not
    just what each stage produced but {e why} a retry boost happened.
    {!Compiler.compile} is a thin compatibility wrapper over {!run}. *)

let ( let* ) = Diag.( let* )

(* ------------------------------------------------------------------ *)
(* Stage names and artifacts                                           *)
(* ------------------------------------------------------------------ *)

let stage_search = "search"
let stage_verify = "signoff_verify"
let stage_backend = "backend"
let stage_power = "power"
let stage_metrics = "metrics"

let stage_names =
  [ stage_search; stage_verify; stage_backend; stage_power; stage_metrics ]

type metrics = {
  crit_ps : float;  (** post-layout, nominal voltage *)
  fmax_ghz : float;  (** at the spec's operating voltage *)
  power_w : float;  (** post-layout, at the spec operating point *)
  area_mm2 : float;
  tops : float;  (** native precision, at the spec frequency *)
  tops_per_w : float;
  tops_per_mm2 : float;
  ops_norm : float;  (** 1b x 1b ops per native MAC, for normalization *)
}

(** Output of the search stage: the searcher's result plus the boost it
    ran under and its evaluation-cache counters. *)
type search_art = {
  search_spec : Spec.t;  (** the spec the result is reported against *)
  boost : float;  (** internal clock tightening (1.0 = none) *)
  search : Searcher.result;
  macro : Macro_rtl.t;
  cache : Eval_cache.stats;
}

(** One iteration of the backend's ECO re-closure loop. *)
type eco_iteration = {
  iter : int;
  crit_before_ps : float;  (** post-route critical path entering the pass *)
  crit_after_ps : float;  (** post-route critical path after re-placement *)
  upsized : int;  (** cells the wire-aware sizing pass touched *)
  rolled_back : bool;
  reason : string;  (** why the loop continued, rolled back, or stopped *)
}

(** Output of the backend stage: the signed-off layout plus the full ECO
    iteration record. *)
type backend_art = {
  signoff : Post_layout.t;
  eco : eco_iteration list;  (** in iteration order *)
  eco_capped : bool;  (** budget still missed when the iteration cap hit *)
  upsized : int;  (** total cells upsized by committed ECO passes *)
}

(** The metrics stage's verdict: reported PPA, the timing decision, and
    the retry policy's output (the boost the next attempt should use). *)
type verdict = {
  metrics : metrics;
  timing_closed : bool;
  retry_boost : float option;
}

(** The final compilation artifact: every intermediate result, so
    reports, experiments and the CLI can drill in. *)
type artifact = {
  spec : Spec.t;
  search : Searcher.result;
  macro : Macro_rtl.t;
  signoff : Post_layout.t;
  power : Power.report;
  metrics : metrics;
  timing_closed : bool;  (** post-layout, at the spec's operating point *)
}

(** One full pass through the five stages, kept per retry boost. *)
type attempt = {
  attempt_boost : float;
  attempt_cache : Eval_cache.stats;
  attempt_eco : eco_iteration list;
  attempt_closed : bool;
}

type run = {
  artifact : artifact;
  attempts : attempt list;  (** in execution order; last one won *)
}

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)
(* ------------------------------------------------------------------ *)

(** The retry-on-routing-miss loop, as explicit policy: when the search
    met its pre-layout budget but routed wires ate the margin, re-run the
    pipeline with the internal clock tightened by [boost_step], up to
    [max_boost]. [max_eco_iters] caps the backend's re-closure loop. *)
type policy = {
  verify : bool;
  retry : bool;
  max_boost : float;
  boost_step : float;
  max_eco_iters : int;
}

let default_policy =
  { verify = true; retry = true; max_boost = 1.2; boost_step = 1.12;
    max_eco_iters = 3 }

(** Workload assumptions for the reported power: the paper's measurement
    conditions (12.5 % input sparsity, 50 % weight sparsity). *)
let report_input_density = 0.125

let report_weight_density = 0.5
let report_macs = 8
let verify_batches = 2

(* ------------------------------------------------------------------ *)
(* Stages                                                              *)
(* ------------------------------------------------------------------ *)

(* Reject malformed specs with a spec-context diagnostic before they can
   trip an [invalid_arg] deep inside Macro_rtl/Mulmux. *)
let validate (spec : Spec.t) : (unit, Diag.t) Stdlib.result =
  let err msg payload = Error (Diag.error ~stage:stage_search ~spec ~payload msg) in
  let is_pow2 n = n > 0 && n land (n - 1) = 0 in
  let wb = Precision.datapath_bits spec.Spec.weight_prec in
  if spec.Spec.rows <= 0 || spec.Spec.cols <= 0 then
    err "array dimensions must be positive"
      [
        ("rows", string_of_int spec.Spec.rows);
        ("cols", string_of_int spec.Spec.cols);
      ]
  else if not (is_pow2 spec.Spec.mcr) then
    err "MCR must be a positive power of two"
      [ ("mcr", string_of_int spec.Spec.mcr) ]
  else if spec.Spec.cols mod wb <> 0 then
    err "column count must be a multiple of the stored weight width"
      [
        ("cols", string_of_int spec.Spec.cols);
        ("weight_bits", string_of_int wb);
      ]
  else if spec.Spec.mac_freq_hz <= 0.0 || spec.Spec.weight_update_freq_hz <= 0.0
  then err "clock targets must be positive" []
  else if spec.Spec.vdd <= 0.0 then err "operating voltage must be positive" []
  else Ok ()

(** Stage 1 — MSO search under [boost]-tightened internal clock. *)
let search_stage lib scl ~boost : (Spec.t, search_art) Stage.t =
  Stage.v stage_search (fun (spec : Spec.t) ->
      let* () = validate spec in
      let* search, cache =
        Diag.guard ~stage:stage_search ~spec (fun () ->
            let cache = Eval_cache.create () in
            let search_spec =
              { spec with Spec.mac_freq_hz = spec.Spec.mac_freq_hz *. boost }
            in
            let r = Searcher.search ~cache lib scl search_spec in
            (r, Eval_cache.stats cache))
      in
      let macro = search.Searcher.final.Design_point.macro in
      let note =
        Printf.sprintf "%s, %d points, %d techniques%s"
          (if search.Searcher.timing_closed then "pre-layout closed"
           else "pre-layout NOT closed")
          (List.length search.Searcher.visited)
          (List.length search.Searcher.applied)
          (if boost > 1.0 then " [retry]" else "")
      in
      Ok
        ( { search_spec = spec; boost; search; macro; cache },
          Stage.meta
            ~cells:(Ir.n_insts macro.Macro_rtl.design)
            ~crit_out_ps:search.Searcher.final.Design_point.crit_ps
            ~cache_hits:cache.Eval_cache.hits
            ~cache_misses:cache.Eval_cache.misses ~boost ~note () ))

(** Stage 2 — functional sign-off against the golden MAC. The default
    [`Packed] engine settles each weight copy's MAC batch as
    {!Sim_packed} lanes (any failing lane is shrunk back to one scalar
    transaction); [`Scalar] is the reference engine the equivalence
    property pins it against. Both produce bit-identical verdicts. *)
let verify_stage ?(engine = `Packed) ~enabled () :
    (search_art, search_art) Stage.t =
  Stage.v stage_verify (fun (sa : search_art) ->
      if not enabled then
        Ok (sa, Stage.meta ~note:"skipped (verification disabled)" ())
      else
        let* () =
          Diag.guard ~stage:stage_verify ~spec:sa.search_spec (fun () ->
              Testbench.verify ~engine sa.macro ~seed:0xACC
                ~batches:verify_batches)
        in
        let copies = sa.macro.Macro_rtl.cfg.Macro_rtl.mcr in
        Ok
          ( sa,
            Stage.meta
              ~cells:(Ir.n_insts sa.macro.Macro_rtl.design)
              ~note:
                (Printf.sprintf
                   "%d random MACs vs golden (%d weight copies, %s engine)"
                   (copies * verify_batches) copies (Engine.name engine))
              () ))

(** Stage 3 — back-end: place, route, sign off, and re-close timing with
    the wire-aware ECO sizing loop, recording every iteration. The loop
    alternates placement/extraction with upsizing until the post-route
    timing stops improving (sizing only ever upsizes, so it is monotone),
    rolls back a resize that did not survive re-placement, and caps at
    [max_eco_iters]. *)
let backend_stage ?spec lib ~style ~budget_ps ~max_eco_iters :
    (Macro_rtl.t, backend_art) Stage.t =
  Stage.v stage_backend (fun (macro : Macro_rtl.t) ->
      let* art =
        Diag.guard ~stage:stage_backend ?spec (fun () ->
            let design = macro.Macro_rtl.design in
            let iters = ref [] in
            let capped = ref false in
            let rec eco_loop iter pass =
              let crit = pass.Post_layout.sta.Sta.crit_ps in
              if crit <= budget_ps then pass
              else if iter >= max_eco_iters then begin
                capped := max_eco_iters > 0;
                pass
              end
              else begin
                let snap = Sizing.snapshot design in
                let wire_cap =
                  Route.wire_cap_fn pass.Post_layout.routing lib.Library.node
                in
                let sized =
                  Sizing.speed_up ~wire_cap design lib ~target_ps:budget_ps
                in
                let next = Post_layout.run lib macro ~style in
                let next_crit = next.Post_layout.sta.Sta.crit_ps in
                if next_crit >= crit -. 1.0 then begin
                  (* the resize did not help once re-placed: roll back *)
                  Sizing.restore design snap;
                  iters :=
                    {
                      iter;
                      crit_before_ps = crit;
                      crit_after_ps = next_crit;
                      upsized = sized.Sizing.upsized;
                      rolled_back = true;
                      reason =
                        Printf.sprintf
                          "re-placed crit %.1f -> %.1f ps (< 1 ps gain): \
                           %d upsizes rolled back"
                          crit next_crit sized.Sizing.upsized;
                    }
                    :: !iters;
                  Post_layout.run lib macro ~style
                end
                else begin
                  iters :=
                    {
                      iter;
                      crit_before_ps = crit;
                      crit_after_ps = next_crit;
                      upsized = sized.Sizing.upsized;
                      rolled_back = false;
                      reason =
                        Printf.sprintf
                          "crit %.1f -> %.1f ps after %d upsizes" crit
                          next_crit sized.Sizing.upsized;
                    }
                    :: !iters;
                  eco_loop (iter + 1) next
                end
              end
            in
            let first = Post_layout.run lib macro ~style in
            let first_crit = first.Post_layout.sta.Sta.crit_ps in
            let signoff = eco_loop 0 first in
            let eco = List.rev !iters in
            let upsized =
              List.fold_left
                (fun acc (i : eco_iteration) ->
                  if i.rolled_back then acc else acc + i.upsized)
                0 eco
            in
            ( { signoff; eco; eco_capped = !capped; upsized },
              first_crit ))
      in
      let ba, first_crit = art in
      let note =
        let base =
          Printf.sprintf "budget %.1f ps%s" budget_ps
            (if ba.eco_capped then
               Printf.sprintf ", ECO capped at %d iteration(s)" max_eco_iters
             else "")
        in
        match List.rev ba.eco with
        | last :: _ when last.rolled_back -> base ^ ", last ECO rolled back"
        | _ -> base
      in
      Ok
        ( ba,
          Stage.meta ~cells:ba.upsized ~crit_in_ps:first_crit
            ~crit_out_ps:ba.signoff.Post_layout.sta.Sta.crit_ps
            ~eco_iters:(List.length ba.eco) ~note () ))

(** Stage 4 — post-layout power at the spec's operating point. *)
let power_stage lib ~(spec : Spec.t) :
    (Macro_rtl.t * Post_layout.t, Power.report) Stage.t =
  Stage.v stage_power (fun ((macro : Macro_rtl.t), signoff) ->
      let* power =
        Diag.guard ~stage:stage_power ~spec (fun () ->
            Post_layout.power lib macro signoff
              ~freq_hz:spec.Spec.mac_freq_hz ~vdd:spec.Spec.vdd
              ~input_density:report_input_density
              ~weight_density:report_weight_density ~macs:report_macs)
      in
      Ok
        ( power,
          Stage.meta
            ~cells:(Ir.n_insts macro.Macro_rtl.design)
            ~note:
              (Printf.sprintf "%.2f mW @ %.0f MHz (%.1f %%/%.0f %% density)"
                 (power.Power.total_w *. 1e3)
                 (spec.Spec.mac_freq_hz /. 1e6)
                 (report_input_density *. 100.)
                 (report_weight_density *. 100.))
            () ))

let compute_metrics (spec : Spec.t) (m : Macro_rtl.t)
    (signoff : Post_layout.t) (power : Power.report) node =
  let crit_ps = signoff.Post_layout.sta.Sta.crit_ps in
  let fmax_hz = Voltage.fmax node ~crit_path_ps:crit_ps ~vdd:spec.Spec.vdd in
  let tops = Design_point.throughput_tops m ~freq_hz:spec.Spec.mac_freq_hz in
  let area_mm2 = signoff.Post_layout.area_mm2 in
  let ops_norm = float_of_int (m.Macro_rtl.db * m.Macro_rtl.wb) in
  {
    crit_ps;
    fmax_ghz = fmax_hz /. 1e9;
    power_w = power.Power.total_w;
    area_mm2;
    tops;
    tops_per_w = tops /. power.Power.total_w;
    tops_per_mm2 = tops /. area_mm2;
    ops_norm;
  }

(** Stage 5 — reported PPA, the timing verdict, and the retry decision:
    a post-layout miss whose search closed pre-layout schedules a
    tightened re-run ([boost *. boost_step], capped at [max_boost]). *)
let metrics_stage lib ~(policy : policy) :
    (search_art * backend_art * Power.report, verdict) Stage.t =
  Stage.v stage_metrics
    (fun ((sa : search_art), (ba : backend_art), (power : Power.report)) ->
      let spec = sa.search_spec in
      let* metrics =
        Diag.guard ~stage:stage_metrics ~spec (fun () ->
            compute_metrics spec sa.macro ba.signoff power lib.Library.node)
      in
      let timing_closed =
        metrics.fmax_ghz *. 1e9 >= spec.Spec.mac_freq_hz *. 0.999
      in
      let retry_boost =
        if
          (not timing_closed) && policy.retry && sa.boost < policy.max_boost
          && sa.search.Searcher.timing_closed
        then Some (sa.boost *. policy.boost_step)
        else None
      in
      let note =
        if timing_closed then
          Printf.sprintf "timing closed: fmax %.2f GHz >= %.0f MHz"
            metrics.fmax_ghz
            (spec.Spec.mac_freq_hz /. 1e6)
        else
          match retry_boost with
          | Some b ->
              Printf.sprintf
                "post-route miss (fmax %.2f GHz < %.0f MHz) but search \
                 closed pre-layout: retry at boost x%.2f"
                metrics.fmax_ghz
                (spec.Spec.mac_freq_hz /. 1e6)
                b
          | None ->
              Printf.sprintf "timing NOT closed (fmax %.2f GHz), no retry %s"
                metrics.fmax_ghz
                (if not sa.search.Searcher.timing_closed then
                   "(search missed pre-layout)"
                 else if not policy.retry then "(retry disabled)"
                 else "(boost exhausted)")
      in
      Ok
        ( { metrics; timing_closed; retry_boost },
          Stage.meta ~crit_in_ps:ba.signoff.Post_layout.sta.Sta.crit_ps
            ~crit_out_ps:metrics.crit_ps ~boost:sa.boost ~note () ))

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(* Pipeline-level registry instruments. Attempt/retry/ECO counts are
   decided by PPA floats that every engine reproduces bit-identically
   and every job count schedules identically, so all are deterministic. *)
let m_pipeline_runs = Metrics.counter "pipeline.runs"
let m_attempts = Metrics.counter "pipeline.attempts"
let m_retries = Metrics.counter "pipeline.retries"
let m_eco_iters = Metrics.counter "pipeline.eco_iters"

(* The lookup latency distribution is wall-clock; counts come from the
   deterministic cache.disk.* counters instead. *)
let m_cache_lookup_ms = Metrics.histogram ~det:false "cache.disk.lookup_ms"

(** [run ?style ?policy ?verify_engine ?trace ?inject ctx spec] — thread
    the five stages over the context's library and shared SCL memo,
    re-running the whole pipeline under the retry policy when the metrics
    stage asks for a boost. Every stage execution (across every attempt)
    appends a row to the trace ([?trace] overrides the context's sink);
    [inject] forces the named stage to fail, for exercising the
    diagnostic path. [verify_engine] selects the sign-off simulation
    engine (default: the context's); both engines produce bit-identical
    verdicts, so the choice never changes the compiled artifact. *)
let run ?(style = Floorplan.Sdp) ?(policy = default_policy) ?verify_engine
    ?trace ?inject (ctx : Ctx.t) (spec : Spec.t) :
    (run, Diag.t) Stdlib.result =
  let lib = Ctx.lib ctx and scl = Ctx.scl ctx in
  let verify_engine =
    match verify_engine with Some e -> e | None -> Ctx.verify_engine ctx
  in
  let trace = match trace with Some t -> Some t | None -> Ctx.trace ctx in
  let exec s x = Stage.execute ?trace ?inject s x in
  let budget_ps = Spec.nominal_budget_ps spec lib.Library.node in
  let rec attempt acc boost =
    let* sa = exec (search_stage lib scl ~boost) spec in
    let* sa =
      exec (verify_stage ~engine:verify_engine ~enabled:policy.verify ()) sa
    in
    let* ba =
      exec
        (backend_stage lib ~style ~spec ~budget_ps
           ~max_eco_iters:policy.max_eco_iters)
        sa.macro
    in
    let* power = exec (power_stage lib ~spec) (sa.macro, ba.signoff) in
    let* v = exec (metrics_stage lib ~policy) (sa, ba, power) in
    Metrics.incr m_attempts;
    Metrics.add m_eco_iters (List.length ba.eco);
    (match v.retry_boost with
    | Some _ -> Metrics.incr m_retries
    | None -> ());
    let acc =
      acc
      @ [
          {
            attempt_boost = boost;
            attempt_cache = sa.cache;
            attempt_eco = ba.eco;
            attempt_closed = v.timing_closed;
          };
        ]
    in
    match v.retry_boost with
    | Some b -> attempt acc b
    | None ->
        Ok
          {
            artifact =
              {
                spec;
                search = sa.search;
                macro = sa.macro;
                signoff = ba.signoff;
                power;
                metrics = v.metrics;
                timing_closed = v.timing_closed;
              };
            attempts = acc;
          }
  in
  Metrics.incr m_pipeline_runs;
  attempt [] 1.0

(** [artifact_exn r] — unwrap a pipeline result, raising {!Diag.Failed}
    on a diagnostic. For harness code whose specs are known-good. *)
let artifact_exn = function
  | Ok r -> r.artifact
  | Error d -> raise (Diag.Failed d)

(* ------------------------------------------------------------------ *)
(* Cached driver (persistent compile cache)                            *)
(* ------------------------------------------------------------------ *)

(** Name of the pseudo-stage the cached driver traces: one row per
    lookup, carrying the hit/miss counters for this compilation. *)
let stage_cache = "cache"

(** How the persistent cache participated in a compilation. *)
type cache_outcome =
  | Cache_off  (** no cache was given *)
  | Cache_hit  (** served from the store; no stage ran *)
  | Cache_miss  (** compiled, result stored *)
  | Cache_corrupt of string
      (** an entry existed but failed integrity checks; compiled and the
          entry was replaced — the reason is the integrity failure *)

(** Metrics-level result of a (possibly cached) compilation: everything
    the batch driver reports, with no netlist or layout attached — a
    cache hit reconstructs it without running any stage. *)
type summary = {
  sum_spec : Spec.t;
  sum_metrics : metrics;
  sum_timing_closed : bool;
  sum_insts : int;  (** netlist instance count *)
  sum_nets : int;
  sum_attempts : int;  (** pipeline attempts (1 + retries) *)
  sum_boost : float;  (** boost the winning attempt ran under *)
  sum_cache : cache_outcome;
}

let summary_of_run (r : run) : summary =
  let a = r.artifact in
  {
    sum_spec = a.spec;
    sum_metrics = a.metrics;
    sum_timing_closed = a.timing_closed;
    sum_insts = Ir.n_insts a.macro.Macro_rtl.design;
    sum_nets = a.macro.Macro_rtl.design.Ir.n_nets;
    sum_attempts = List.length r.attempts;
    sum_boost =
      (match List.rev r.attempts with
      | last :: _ -> last.attempt_boost
      | [] -> 1.0);
    sum_cache = Cache_off;
  }

let cache_value_of_summary (s : summary) : Disk_cache.value =
  let m = s.sum_metrics in
  {
    Disk_cache.spec_desc = Spec.describe s.sum_spec;
    crit_ps = m.crit_ps;
    fmax_ghz = m.fmax_ghz;
    power_w = m.power_w;
    area_mm2 = m.area_mm2;
    tops = m.tops;
    tops_per_w = m.tops_per_w;
    tops_per_mm2 = m.tops_per_mm2;
    ops_norm = m.ops_norm;
    timing_closed = s.sum_timing_closed;
    insts = s.sum_insts;
    nets = s.sum_nets;
    attempts = s.sum_attempts;
    boost = s.sum_boost;
  }

let summary_of_cache_value (spec : Spec.t) (v : Disk_cache.value) : summary =
  {
    sum_spec = spec;
    sum_metrics =
      {
        crit_ps = v.Disk_cache.crit_ps;
        fmax_ghz = v.Disk_cache.fmax_ghz;
        power_w = v.Disk_cache.power_w;
        area_mm2 = v.Disk_cache.area_mm2;
        tops = v.Disk_cache.tops;
        tops_per_w = v.Disk_cache.tops_per_w;
        tops_per_mm2 = v.Disk_cache.tops_per_mm2;
        ops_norm = v.Disk_cache.ops_norm;
      };
    sum_timing_closed = v.Disk_cache.timing_closed;
    sum_insts = v.Disk_cache.insts;
    sum_nets = v.Disk_cache.nets;
    sum_attempts = v.Disk_cache.attempts;
    sum_boost = v.Disk_cache.boost;
    sum_cache = Cache_hit;
  }

(** Pipeline-level inputs to the cache key: the floorplan style and the
    retry policy both steer the compiled result, so they version the key
    alongside {!Searcher.algorithm_version}. *)
let cache_algo_tag ~style (p : policy) : string =
  Printf.sprintf "%s|style=%s|policy=v%b,r%b,mb%h,bs%h,eco%d"
    Searcher.algorithm_version (Floorplan.style_name style) p.verify p.retry
    p.max_boost p.boost_step p.max_eco_iters

let add_cache_row trace ~ok ~wall_ms ~cells ~crit_out_ps ~hit ~boost ~note =
  match trace with
  | None -> ()
  | Some tr ->
      Trace.add tr
        {
          Trace.stage = stage_cache;
          ok;
          wall_ms;
          cells;
          crit_in_ps = None;
          crit_out_ps;
          cache_hits = Some (if hit then 1 else 0);
          cache_misses = Some (if hit then 0 else 1);
          eco_iters = None;
          boost;
          note;
        }

(** [run_cached ?style ?policy ?trace ?inject ?cache ctx spec] — {!run}
    behind the persistent compile cache. The cache defaults to the
    context's ([?cache] overrides for one call; detach with
    {!Ctx.without_cache}). With a cache attached, the spec's content
    address is looked up first: a hit skips every stage and reconstructs
    the {!summary} from the store (appending a single [cache] trace
    row); a miss — including a corrupt entry, which is diagnosed but
    never fatal — runs the full pipeline and stores the result. Without
    a cache this is exactly [run] plus summarization. *)
let run_cached ?(style = Floorplan.Sdp) ?(policy = default_policy)
    ?verify_engine ?trace ?inject ?cache (ctx : Ctx.t) (spec : Spec.t) :
    (summary, Diag.t) Stdlib.result =
  let trace = match trace with Some t -> Some t | None -> Ctx.trace ctx in
  let cache =
    match cache with Some c -> Some c | None -> Ctx.cache ctx
  in
  match cache with
  | None ->
      let* r = run ~style ~policy ?verify_engine ?trace ?inject ctx spec in
      Ok (summary_of_run r)
  | Some dc -> (
      let t0 = Unix.gettimeofday () in
      let k =
        Disk_cache.key
          ~lib_fp:(Disk_cache.library_fingerprint (Ctx.lib ctx))
          ~algo:(cache_algo_tag ~style policy)
          spec
      in
      let short = String.sub k 0 12 in
      let looked = Disk_cache.lookup dc k in
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      Metrics.observe m_cache_lookup_ms wall_ms;
      match looked with
      | Disk_cache.Hit v ->
          add_cache_row trace ~ok:true ~wall_ms
            ~cells:(Some v.Disk_cache.insts)
            ~crit_out_ps:(Some v.Disk_cache.crit_ps) ~hit:true
            ~boost:(Some v.Disk_cache.boost)
            ~note:(Printf.sprintf "hit %s (all stages skipped)" short);
          Ok (summary_of_cache_value spec v)
      | (Disk_cache.Miss | Disk_cache.Corrupt _) as l ->
          let outcome, note =
            match l with
            | Disk_cache.Corrupt reason ->
                ( Cache_corrupt reason,
                  Printf.sprintf "corrupt entry %s (%s): recompiling" short
                    reason )
            | _ -> (Cache_miss, Printf.sprintf "miss %s" short)
          in
          add_cache_row trace ~ok:true ~wall_ms ~cells:None ~crit_out_ps:None
            ~hit:false ~boost:None ~note;
          let* r =
            run ~style ~policy ?verify_engine ?trace ?inject ctx spec
          in
          let s = { (summary_of_run r) with sum_cache = outcome } in
          Disk_cache.store dc k (cache_value_of_summary s);
          Ok s)

(* ------------------------------------------------------------------ *)
(* Stage-level entry points for the experiment harnesses               *)
(* ------------------------------------------------------------------ *)

(** [search_only ?trace ctx spec] — run just the search stage. *)
let search_only ?trace (ctx : Ctx.t) (spec : Spec.t) :
    (search_art, Diag.t) Stdlib.result =
  let trace = match trace with Some t -> Some t | None -> Ctx.trace ctx in
  Stage.execute ?trace
    (search_stage (Ctx.lib ctx) (Ctx.scl ctx) ~boost:1.0)
    spec

(** [backend_once ?trace ?spec ctx ~style macro] — one
    place/route/sign-off pass with no ECO re-closure (infinite budget,
    zero iterations). *)
let backend_once ?trace ?spec (ctx : Ctx.t) ~style (macro : Macro_rtl.t) :
    (backend_art, Diag.t) Stdlib.result =
  let trace = match trace with Some t -> Some t | None -> Ctx.trace ctx in
  Stage.execute ?trace
    (backend_stage (Ctx.lib ctx) ~style ?spec ~budget_ps:infinity
       ~max_eco_iters:0)
    macro

(* ------------------------------------------------------------------ *)
(* Stage artifact serialization (--dump-stage)                         *)
(* ------------------------------------------------------------------ *)

let describe_eco (eco : eco_iteration list) =
  if eco = [] then "eco: no iterations (budget met at first sign-off)\n"
  else
    String.concat ""
      (List.map
         (fun (i : eco_iteration) ->
           Printf.sprintf "eco[%d]: %s%s\n" i.iter i.reason
             (if i.rolled_back then " [rolled back]" else ""))
         eco)

let rec mkdirs dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdirs (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

(** [dump_stage ctx r ~name ~dir] — serialize the named stage's artifact
    (netlist + stats, floorplan DEF, STA summary with the ECO record,
    power breakdown, metrics) into [dir]; returns the files written. *)
let dump_stage (ctx : Ctx.t) (r : run) ~name ~dir :
    (string list, Diag.t) Stdlib.result =
  let lib = Ctx.lib ctx in
  let a = r.artifact in
  Diag.guard ~stage:name ~spec:a.spec (fun () ->
      mkdirs dir;
      let file fname text =
        let oc = open_out (Filename.concat dir fname) in
        output_string oc text;
        close_out oc;
        fname
      in
      match name with
      | "search" ->
          Verilog.write_file
            (Filename.concat dir "netlist.v")
            a.macro.Macro_rtl.design;
          let stats = Stats.of_design a.macro.Macro_rtl.design lib in
          let txt =
            Printf.sprintf
              "spec: %s\nattempts: %d (final boost x%.2f)\npre-layout crit: \
               %.1f ps\npre-layout timing: %s\ninstances: %d\nnets: %d\n\
               area: %.0f um2\ncache: %d hits / %d misses\ntechniques:\n%s"
              (Spec.describe a.spec) (List.length r.attempts)
              (match List.rev r.attempts with
              | last :: _ -> last.attempt_boost
              | [] -> 1.0)
              a.search.Searcher.final.Design_point.crit_ps
              (if a.search.Searcher.timing_closed then "closed"
               else "NOT closed")
              (Ir.n_insts a.macro.Macro_rtl.design)
              a.macro.Macro_rtl.design.Ir.n_nets stats.Stats.area_um2
              (match List.rev r.attempts with
              | last :: _ -> last.attempt_cache.Eval_cache.hits
              | [] -> 0)
              (match List.rev r.attempts with
              | last :: _ -> last.attempt_cache.Eval_cache.misses
              | [] -> 0)
              (String.concat ""
                 (List.map
                    (fun t ->
                      Printf.sprintf "  - %s\n" (Searcher.technique_name t))
                    a.search.Searcher.applied))
          in
          [ "netlist.v"; file "search.txt" txt ]
      | "signoff_verify" ->
          [
            file "verify.txt"
              (Printf.sprintf
                 "spec: %s\nverified: %d random MAC batches per weight copy \
                  (%d copies) against the golden model, seed 0x%X\n"
                 (Spec.describe a.spec) verify_batches
                 a.macro.Macro_rtl.cfg.Macro_rtl.mcr 0xACC);
          ]
      | "backend" ->
          Def_writer.write_file lib
            (Filename.concat dir "floorplan.def")
            a.signoff.Post_layout.placement;
          let eco =
            match List.rev r.attempts with
            | last :: _ -> last.attempt_eco
            | [] -> []
          in
          let txt =
            Printf.sprintf
              "post-layout crit: %.1f ps\narea: %.4f mm2\nwirelength: %.1f \
               mm\nDRC violations: %d\nLVS: %s\n%s"
              a.signoff.Post_layout.sta.Sta.crit_ps
              a.signoff.Post_layout.area_mm2
              a.signoff.Post_layout.total_wirelength_mm
              (List.length a.signoff.Post_layout.drc_violations)
              (if a.signoff.Post_layout.lvs.Lvs.clean then "clean" else "DIRTY")
              (describe_eco eco)
          in
          [ "floorplan.def"; file "sta.txt" txt ]
      | "power" ->
          let b = Buffer.create 512 in
          Buffer.add_string b
            (Printf.sprintf "total: %.4f mW @ %.0f MHz, %.2f V\n"
               (a.power.Power.total_w *. 1e3)
               (a.spec.Spec.mac_freq_hz /. 1e6)
               a.spec.Spec.vdd);
          List.iter
            (fun (name, w) ->
              Buffer.add_string b
                (Printf.sprintf "  %-16s %.4f mW\n" name (w *. 1e3)))
            a.power.Power.by_subcircuit;
          [ file "power.txt" (Buffer.contents b) ]
      | "metrics" ->
          let m = a.metrics in
          [
            file "metrics.txt"
              (Printf.sprintf
                 "crit_ps: %.1f\nfmax_ghz: %.3f\npower_w: %.6f\narea_mm2: \
                  %.6f\ntops: %.4f\ntops_per_w: %.2f\ntops_per_mm2: %.2f\n\
                  ops_norm: %.0f\ntiming_closed: %b\n"
                 m.crit_ps m.fmax_ghz m.power_w m.area_mm2 m.tops
                 m.tops_per_w m.tops_per_mm2 m.ops_norm a.timing_closed);
          ]
      | other ->
          failwith
            (Printf.sprintf "unknown stage %S (expected one of: %s)" other
               (String.concat ", " stage_names)))
