(** The pipeline's pass abstraction: a named, typed transformation from
    one artifact to the next, returning [('b, Diag.t) result].

    A stage's run function also produces a {!meta} — the instrumentation
    the stage measured about itself (cells touched, critical path in/out,
    cache hits, ECO iterations). {!execute} wraps the run with wall-clock
    timing, records one {!Trace} row per invocation (successful or not),
    and supports fault injection by stage name so the failure path can be
    exercised end-to-end without a genuinely broken netlist. *)

type meta = {
  cells : int option;
  crit_in_ps : float option;
  crit_out_ps : float option;
  cache_hits : int option;
  cache_misses : int option;
  eco_iters : int option;
  boost : float option;
  note : string;
}

let meta ?cells ?crit_in_ps ?crit_out_ps ?cache_hits ?cache_misses ?eco_iters
    ?boost ?(note = "") () =
  { cells; crit_in_ps; crit_out_ps; cache_hits; cache_misses; eco_iters;
    boost; note }

type ('a, 'b) t = {
  name : string;
  run : 'a -> ('b * meta, Diag.t) Stdlib.result;
}

let v name run = { name; run }
let name (s : ('a, 'b) t) = s.name

(** [execute ?trace ?inject stage input] — run the stage, time it, and
    append one row to [trace]. With [inject = Some stage.name] the run is
    skipped and the stage fails with an "injected failure" diagnostic —
    the hook the CLI's [--inject-fail] and the failure-path tests use. *)
let execute ?trace ?inject (s : ('a, 'b) t) (x : 'a) :
    ('b, Diag.t) Stdlib.result =
  let injected =
    match inject with Some n when n = s.name -> true | _ -> false
  in
  let t0 = Unix.gettimeofday () in
  let outcome =
    if injected then
      Error
        (Diag.error ~stage:s.name
           ~payload:[ ("injected", "true") ]
           "injected failure (test hook)")
    else s.run x
  in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  (* Per-stage registry instruments, keyed by stage name. Run/failure
     counts are jobs- and engine-invariant, so they are deterministic;
     the latency histogram is too, because only its observation count
     (not the wall-clock buckets) enters the fingerprint. *)
  Metrics.incr (Metrics.counter ("stage." ^ s.name ^ ".runs"));
  (match outcome with
  | Error _ -> Metrics.incr (Metrics.counter ("stage." ^ s.name ^ ".fail"))
  | Ok _ -> ());
  Metrics.observe (Metrics.histogram ("stage." ^ s.name ^ ".wall_ms")) wall_ms;
  (match trace with
  | None -> ()
  | Some tr ->
      let row =
        match outcome with
        | Ok (_, m) ->
            {
              Trace.stage = s.name;
              ok = true;
              wall_ms;
              cells = m.cells;
              crit_in_ps = m.crit_in_ps;
              crit_out_ps = m.crit_out_ps;
              cache_hits = m.cache_hits;
              cache_misses = m.cache_misses;
              eco_iters = m.eco_iters;
              boost = m.boost;
              note = m.note;
            }
        | Error d ->
            {
              Trace.stage = s.name;
              ok = false;
              wall_ms;
              cells = None;
              crit_in_ps = None;
              crit_out_ps = None;
              cache_hits = None;
              cache_misses = None;
              eco_iters = None;
              boost = None;
              note = Diag.to_string d;
            }
      in
      Trace.add tr row);
  Stdlib.Result.map fst outcome
