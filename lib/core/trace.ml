(** Per-stage instrumentation sink for the compilation pipeline.

    Every executed stage appends one {!row}: wall-clock, cells touched,
    critical path in/out, {!Eval_cache} hits/misses, ECO iterations and
    the retry boost in effect. [syndcim compile --trace] renders the rows
    as a table; {!fingerprint} renders the same table without the
    wall-clock column, so two runs of a deterministic flow produce
    byte-identical fingerprints regardless of machine load or job count. *)

type row = {
  stage : string;
  ok : bool;
  wall_ms : float;  (** the only non-deterministic column *)
  cells : int option;  (** instances built / touched by the stage *)
  crit_in_ps : float option;
  crit_out_ps : float option;
  cache_hits : int option;
  cache_misses : int option;
  eco_iters : int option;
  boost : float option;  (** retry boost the stage ran under *)
  note : string;
}

type t = { mutable rev_rows : row list }

let create () = { rev_rows = [] }
let add (t : t) (r : row) = t.rev_rows <- r :: t.rev_rows
let rows (t : t) = List.rev t.rev_rows
let length (t : t) = List.length t.rev_rows

let opt_int = function None -> "-" | Some n -> string_of_int n
let opt_ps = function None -> "-" | Some f -> Printf.sprintf "%.1f" f

let cache_cell r =
  match (r.cache_hits, r.cache_misses) with
  | None, None -> "-"
  | h, m -> Printf.sprintf "%s/%s" (opt_int h) (opt_int m)

let boost_cell = function
  | None -> "-"
  | Some b -> Printf.sprintf "x%.2f" b

let row_cells ~with_wall (r : row) =
  [ r.stage; (if r.ok then "ok" else "FAIL") ]
  @ (if with_wall then [ Printf.sprintf "%.1f" r.wall_ms ] else [])
  @ [
      opt_int r.cells;
      opt_ps r.crit_in_ps;
      opt_ps r.crit_out_ps;
      cache_cell r;
      opt_int r.eco_iters;
      boost_cell r.boost;
      r.note;
    ]

let header ~with_wall =
  [ "stage"; "status" ]
  @ (if with_wall then [ "wall (ms)" ] else [])
  @ [
      "cells"; "crit in (ps)"; "crit out (ps)"; "cache h/m"; "eco"; "boost";
      "note";
    ]

(** [render t] — the full instrumentation table, wall-clock included. *)
let render (t : t) =
  Table.render
    (Table.make ~header:(header ~with_wall:true)
       (List.map (row_cells ~with_wall:true) (rows t)))
  ^ "\n"

(** [fingerprint t] — the deterministic view: the same table without the
    wall-clock column. Equal runs produce equal fingerprints. *)
let fingerprint (t : t) =
  Table.render
    (Table.make ~header:(header ~with_wall:false)
       (List.map (row_cells ~with_wall:false) (rows t)))
  ^ "\n"
