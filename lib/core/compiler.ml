(** SynDCIM's end-to-end compilation entry point: from a user
    specification to a signed-off macro with measured PPA.

    The flow itself lives in {!Pipeline} as five typed stages (paper
    Fig. 2): search → signoff_verify → backend (with the recorded ECO
    re-closure loop) → power → metrics, with the retry-on-routing-miss
    loop as explicit policy. This module is the thin compatibility
    wrapper that keeps the original exception-typed [compile] signature;
    new callers should use {!Pipeline.run} and handle the
    [('a, Diag.t) result] directly. *)

type metrics = Pipeline.metrics = {
  crit_ps : float;  (** post-layout, nominal voltage *)
  fmax_ghz : float;  (** at the spec's operating voltage *)
  power_w : float;  (** post-layout, at the spec operating point *)
  area_mm2 : float;
  tops : float;  (** native precision, at the spec frequency *)
  tops_per_w : float;
  tops_per_mm2 : float;
  ops_norm : float;  (** 1b x 1b ops per native MAC, for normalization *)
}

type artifact = Pipeline.artifact = {
  spec : Spec.t;
  search : Searcher.result;
  macro : Macro_rtl.t;
  signoff : Post_layout.t;
  power : Power.report;
  metrics : metrics;
  timing_closed : bool;  (** post-layout, at the spec's operating point *)
}

exception Verification_failed of string

let report_input_density = Pipeline.report_input_density
let report_weight_density = Pipeline.report_weight_density
let report_macs = Pipeline.report_macs
let verify_batches = Pipeline.verify_batches
let compute_metrics = Pipeline.compute_metrics

(** [compile ctx spec] runs the whole staged pipeline over the context's
    library and shared SCL memo. Raises {!Verification_failed} if the
    generated netlist ever disagrees with the golden model,
    {!Diag.Failed} on any other stage diagnostic. With [retry] (default),
    a post-layout miss re-runs the search against a tightened internal
    clock (up to ~1.2x). *)
let compile ?(style = Floorplan.Sdp) ?(verify = true) ?(retry = true)
    (ctx : Ctx.t) (spec : Spec.t) : artifact =
  let policy = { Pipeline.default_policy with Pipeline.verify; retry } in
  match Pipeline.run ~style ~policy ctx spec with
  | Ok r -> r.Pipeline.artifact
  | Error d when Diag.stage d = Pipeline.stage_verify ->
      raise (Verification_failed (Diag.message d))
  | Error d -> raise (Diag.Failed d)
