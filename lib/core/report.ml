(** Human-readable compilation reports. *)

(** One-line summary of a sweep's evaluation-cache effectiveness, for the
    experiment harnesses that share an {!Eval_cache} across searches. *)
let eval_cache_line (stats : Eval_cache.stats) = Eval_cache.describe stats

let subcircuit_table lib (a : Compiler.artifact) =
  let areas =
    Stats.area_by_subcircuit a.Compiler.macro.Macro_rtl.design lib
  in
  let power = a.Compiler.power.Power.by_subcircuit in
  let rows =
    List.map
      (fun (name, area) ->
        let w = try List.assoc name power with Not_found -> 0.0 in
        [
          name;
          Printf.sprintf "%.0f" area;
          Printf.sprintf "%.3f" (w *. 1e3);
        ])
      areas
  in
  Table.make ~header:[ "subcircuit"; "area (um2)"; "power (mW)" ] rows

let to_string lib (a : Compiler.artifact) =
  let b = Buffer.create 4096 in
  let m = a.Compiler.metrics in
  let spec = a.Compiler.spec in
  Buffer.add_string b (Printf.sprintf "spec: %s\n" (Spec.describe spec));
  Buffer.add_string b
    (Printf.sprintf "search: %s, %d points visited\n"
       (if a.Compiler.search.Searcher.timing_closed then "timing closed"
        else "TIMING NOT CLOSED")
       (List.length a.Compiler.search.Searcher.visited));
  List.iter
    (fun t ->
      Buffer.add_string b
        (Printf.sprintf "  - %s\n" (Searcher.technique_name t)))
    a.Compiler.search.Searcher.applied;
  Buffer.add_string b
    (Printf.sprintf "netlist: %d instances, %d nets\n"
       (Ir.n_insts a.Compiler.macro.Macro_rtl.design)
       a.Compiler.macro.Macro_rtl.design.Ir.n_nets);
  Buffer.add_string b
    (Printf.sprintf
       "post-layout: crit %.0f ps (fmax %.2f GHz @ %.2f V), area %.4f mm2, \
        wirelength %.1f mm\n"
       m.Compiler.crit_ps m.Compiler.fmax_ghz spec.Spec.vdd
       m.Compiler.area_mm2
       a.Compiler.signoff.Post_layout.total_wirelength_mm);
  Buffer.add_string b
    (Printf.sprintf
       "power @ %.0f MHz: %.2f mW  ->  %.2f TOPS, %.0f TOPS/W, %.0f \
        TOPS/mm2 (native); x%.0f for 1b-1b\n"
       (spec.Spec.mac_freq_hz /. 1e6)
       (m.Compiler.power_w *. 1e3)
       m.Compiler.tops m.Compiler.tops_per_w m.Compiler.tops_per_mm2
       m.Compiler.ops_norm);
  Buffer.add_string b (Table.render (subcircuit_table lib a));
  Buffer.add_char b '\n';
  Buffer.contents b
