(** The execution context: one immutable value bundling everything a
    compilation needs beyond its {!Spec.t} — the characterized cell
    library, the shared subcircuit-library memo, the domain-pool width,
    the simulation-engine choices, default seeds, the persistent compile
    cache and the trace/diagnostic sinks.

    Every layer threads a [Ctx.t]: {!Pipeline.run}, {!Batch.run}, the
    {!Service} facade, the seven [Eval] harnesses and the [Verify]
    campaign stack all take a context instead of hand-assembled
    [lib]/[scl]/[?jobs]/[?engine]/[?cache] arguments. Per-call optional
    arguments still exist where a caller genuinely wants to deviate for
    one call (e.g. an engine-equivalence test), but they default to the
    context's values, so constructing two contexts is all it takes to run
    two corners — or two tenants — side by side.

    {2 Ownership rules}

    - [lib] and [scl] are shared and safe to share: the library is
      immutable after {!Library.n40} builds it, and the SCL memo is
      mutex-guarded ({!Scl.memo}), so any number of domains — and any
      number of contexts built over the same pair — may compile
      concurrently. {!default} returns contexts over one process-wide
      memoized pair; {!fresh} builds an isolated pair (first compile
      re-characterizes).
    - [cache] (the persistent compile cache) is append-only,
      content-addressed and crash-safe ({!Disk_cache}); sharing one root
      across contexts and processes is the intended mode.
    - Netlists are {e not} part of the context and are never cached by
      it: an ECO pass mutates cell drives in place ({!Sizing.speed_up}),
      so a [Macro_rtl.t] belongs to exactly one compilation. Only
      metrics-level summaries enter the compile cache.
    - [trace] is a mutable row sink; give each concurrent request its own
      ([?trace] override or {!with_trace}) — the batch driver already
      records per-spec traces and merges them in manifest order. *)

type engine = Engine.t
(** [`Scalar], [`Packed] (63 lanes) or [`Multiword w] (63·k lanes, see
    {!Sim_multiword}); the conformance suite proves all of them
    bit-identical, so the choice is purely a throughput knob *)

let engine_name : engine -> string = Engine.name

(** [validate_engine s] — parse a CLI [--engine] argument ([scalar],
    [packed], [multiword:N] or [auto]); [auto] runs the bench-probe
    {!Engine.autodetect} (the only path that ever calls it). A bad value
    is a one-line diagnostic, not an exception. *)
let validate_engine (s : string) : (engine, Diag.t) Stdlib.result =
  match Engine.of_string s with
  | Ok `Auto -> Ok (Engine.autodetect () :> engine)
  | Ok (#Engine.t as e) -> Ok e
  | Error msg ->
      Error (Diag.error ~stage:"ctx" ~payload:[ ("engine", s) ] msg)

type t = {
  lib : Library.t;  (** the characterized cell library (immutable) *)
  scl : Scl.t;  (** shared subcircuit-library memo (mutex-guarded) *)
  jobs : int option;
      (** domain-pool width; [None] = [SYNDCIM_JOBS], then core count *)
  engine : engine;
      (** batch simulation engine for sweeps/diffing (default [`Packed]) *)
  verify_engine : engine;
      (** sign-off verification engine (default [`Packed]) *)
  seed : int;  (** default seed for fuzz campaigns and stimulus *)
  cache : Disk_cache.t option;  (** persistent compile cache, if open *)
  scl_cache : string option;
      (** CSV path for SCL LUT persistence ({!load_scl}/{!save_scl}) *)
  trace : Trace.t option;  (** default instrumentation sink *)
  on_diag : (Diag.t -> unit) option;
      (** out-of-band diagnostic sink (warnings from batch/service) *)
}

let default_seed = 0xC1A0

(* The process-wide library + SCL pair behind [default ()]. Mutex-guarded
   rather than [lazy] because two domains may race the first call. *)
let shared_world : (Library.t * Scl.t) option ref = ref None
let shared_lock = Mutex.create ()

let shared_pair () =
  Mutex.protect shared_lock (fun () ->
      match !shared_world with
      | Some pair -> pair
      | None ->
          let lib = Library.n40 () in
          let pair = (lib, Scl.create lib) in
          shared_world := Some pair;
          pair)

let make (lib, scl) =
  {
    lib;
    scl;
    jobs = None;
    engine = `Packed;
    verify_engine = `Packed;
    seed = default_seed;
    cache = None;
    scl_cache = None;
    trace = None;
    on_diag = None;
  }

(** [default ()] — a context over the process-wide shared library and
    SCL memo: every [default] context reuses the same characterization
    work. This is what the CLI, bench and examples construct. *)
let default () = make (shared_pair ())

(** [fresh ()] — a context over a brand-new library and empty SCL memo,
    isolated from every other context (first compile re-characterizes).
    For tests that must observe cold-memo behaviour, and for tenants
    that need hard isolation. *)
let fresh () =
  let lib = Library.n40 () in
  make (lib, Scl.create lib)

(** [of_parts lib scl] — wrap an existing pair (e.g. a test that built
    its own library) in a context. *)
let of_parts lib scl = make (lib, scl)

(* ---------------- accessors ---------------- *)

let lib t = t.lib
let scl t = t.scl
let jobs t = t.jobs
let engine t = t.engine
let verify_engine t = t.verify_engine
let seed t = t.seed
let cache t = t.cache
let trace t = t.trace

(** [scl_stats t] — the shared memo's hit/miss/entry counters. *)
let scl_stats t = Scl.stats t.scl

(* ---------------- builders ---------------- *)

(** [with_jobs j t] — pin the domain-pool width. Raises
    [Invalid_argument] on [j < 1]; CLI layers validate first
    ({!validate_jobs}). *)
let with_jobs j t =
  if j < 1 then invalid_arg "Ctx.with_jobs: jobs must be >= 1";
  { t with jobs = Some j }

(** [validate_jobs j] — the CLI-facing check: [--jobs 0] is a user
    error carried as a diagnostic, not an exception. *)
let validate_jobs (j : int) : (int, Diag.t) Stdlib.result =
  if j >= 1 then Ok j
  else
    Error
      (Diag.error ~stage:"ctx"
         ~payload:[ ("jobs", string_of_int j) ]
         "jobs must be >= 1")

let with_engine engine t = { t with engine }
let with_verify_engine verify_engine t = { t with verify_engine }

(** [with_engines e t] — set both the sweep and sign-off engines. *)
let with_engines e t = { t with engine = e; verify_engine = e }

let with_seed seed t = { t with seed }
let with_trace tr t = { t with trace = Some tr }
let without_trace t = { t with trace = None }
let with_diag_sink f t = { t with on_diag = Some f }

(** [emit t d] — send a diagnostic to the context's sink, if any. *)
let emit t d = match t.on_diag with Some f -> f d | None -> ()

let with_cache c t = { t with cache = Some c }
let without_cache t = { t with cache = None }

(** [with_cache_dir dir t] — open (creating if missing) a persistent
    compile cache under [dir] and attach it. The error is a one-line
    diagnostic, as the CLI reports it. *)
let with_cache_dir dir t : (t, Diag.t) Stdlib.result =
  match Disk_cache.open_root dir with
  | Ok c -> Ok { t with cache = Some c }
  | Error msg ->
      Error (Diag.error ~stage:"ctx" ~payload:[ ("cache-dir", dir) ] msg)

let with_scl_cache path t = { t with scl_cache = Some path }

(* ---------------- SCL LUT persistence ---------------- *)

(** [load_scl t] — merge the persisted SCL LUT into the shared memo, if
    the context names a CSV that exists. Returns the number of entries
    loaded (0 when no path is set or the file is absent — a cold first
    run is not an error). *)
let load_scl t : int =
  match t.scl_cache with
  | Some path when Sys.file_exists path -> Persist.load t.scl path
  | Some _ | None -> 0

(** [save_scl t] — persist the shared memo to the context's CSV, if a
    path is set. Returns the entry count written ([None] when no path
    is configured). *)
let save_scl t : int option =
  match t.scl_cache with
  | Some path ->
      Persist.save t.scl path;
      Some (Persist.entries t.scl)
  | None -> None

(** [describe t] — one line of context configuration, for logs. *)
let describe t =
  Printf.sprintf
    "ctx: jobs=%s engine=%s verify=%s seed=0x%X cache=%s scl-cache=%s"
    (match t.jobs with Some j -> string_of_int j | None -> "auto")
    (engine_name t.engine)
    (engine_name t.verify_engine)
    t.seed
    (match t.cache with Some c -> Disk_cache.root c | None -> "off")
    (match t.scl_cache with Some p -> p | None -> "off")
