(** Macro test benches: weight loading, single verified MACs, and streaming
    stimulus for power measurement.

    The single-MAC bench is the repository's DRC/LVS/post-simulation
    sign-off equivalent: it drives the generated netlist cycle by cycle and
    compares every word's result against {!Golden}. The streaming bench
    issues back-to-back MACs at full throughput (one MAC per [db] cycles)
    with configurable input/weight sparsity, which is what the paper's
    power measurements use (12.5 % input, 50 % weight sparsity). *)

exception
  Mismatch of {
    word : int;
    expected : int;
    got : int;
    detail : string;
  }

(** A bench-protocol failure that is not a value mismatch: the macro never
    produced a result, or the bench was asked to drive a macro it cannot.
    Structured (operation + detail) so the compiler's diagnostic layer can
    attach the spec context instead of parsing a [failwith] string. *)
exception
  Bench_error of {
    op : string;  (** the bench entry point that failed *)
    detail : string;
  }

(** [load_weights m sim ~copy weights] writes [weights.(word).(row)]
    (signed [wb]-bit integers) into weight copy [copy]. *)
let load_weights (m : Macro_rtl.t) sim ~copy
    (weights : int array array) =
  assert (Array.length weights = m.words);
  Array.iteri
    (fun g per_row ->
      assert (Array.length per_row = m.cfg.rows);
      Array.iteri
        (fun r w ->
          for j = 0 to m.wb - 1 do
            Sim.set_weight sim ~row:r ~col:((g * m.wb) + j) ~copy
              ((w asr j) land 1 = 1)
          done)
        per_row)
    weights

let is_fp (m : Macro_rtl.t) =
  match m.cfg.input_prec with
  | Precision.Fp _ -> true
  | Precision.Int _ -> false

let set_controls sim ~load ~sa_en ~sa_clr ~sa_neg =
  Sim.set_bus sim "load" (if load then 1 else 0);
  Sim.set_bus sim "sa_en" (if sa_en then 1 else 0);
  Sim.set_bus sim "sa_clr" (if sa_clr then 1 else 0);
  Sim.set_bus sim "sa_neg" (if sa_neg then 1 else 0)

let present_inputs (m : Macro_rtl.t) sim (inputs : int array) =
  assert (Array.length inputs = m.cfg.rows);
  Array.iteri
    (fun r v -> Sim.set_bus sim (Printf.sprintf "x%d" r) v)
    inputs

(** [run_mac m sim ~inputs] executes one complete MAC with the raw input
    words [inputs] (signed integers for INT, packed bit patterns for FP)
    and returns the per-word signed results. The accumulator schedule
    follows the macro's latency fields.

    [active_bits] is the paper's runtime bit-width flexibility: an INT
    macro built for [db]-bit inputs executes a narrower precision in that
    many serial cycles — the serializer simply stops early (MSB-first
    datapaths take the value pre-shifted into the top bits, LSB-first
    datapaths consume the low bits directly) and the sign cycle moves to
    the narrow width's sign position. Throughput scales accordingly. *)
let run_mac ?active_bits (m : Macro_rtl.t) sim ~(inputs : int array) =
  let ab =
    match active_bits with
    | None -> m.db
    | Some b ->
        assert (b >= 1 && b <= m.db);
        assert (not (is_fp m));
        b
  in
  let inputs =
    if ab = m.db || m.neg_on_last then inputs
    else Array.map (fun v -> v lsl (m.db - ab)) inputs
  in
  present_inputs m sim inputs;
  set_controls sim ~load:false ~sa_en:false ~sa_clr:false ~sa_neg:false;
  if is_fp m then Sim.set_bus sim "align_en" 1;
  for _ = 1 to m.align_lat do
    Sim.step sim
  done;
  if is_fp m then Sim.set_bus sim "align_en" 0;
  set_controls sim ~load:true ~sa_en:false ~sa_clr:false ~sa_neg:false;
  Sim.step sim;
  let last = m.tree_lat + ab - 1 in
  for k = 0 to last do
    let first = k = m.tree_lat in
    let sign_cycle = if m.neg_on_last then k = last else first in
    set_controls sim ~load:false
      ~sa_en:(k >= m.tree_lat)
      ~sa_clr:first
      ~sa_neg:(sign_cycle && ab > 1);
    Sim.step sim
  done;
  set_controls sim ~load:false ~sa_en:false ~sa_clr:false ~sa_neg:false;
  for _ = 1 to m.post_lat do
    Sim.step sim
  done;
  Sim.eval sim;
  (* LSB-first datapaths place a narrow result at the full-width scale
     (each partial sum lands [db - ab] positions higher); exact shift back *)
  let scale = if m.neg_on_last then m.db - ab else 0 in
  Array.init m.words (fun g ->
      Sim.read_bus_signed sim (Printf.sprintf "result%d" g) asr scale)

(** [run_mac_auto m sim ~inputs] — the controller-driven variant of
    {!run_mac}: pulse [start], hold the inputs, wait for the [done] pulse
    (bounded by twice the expected latency) and read the results. Only
    valid for macros built with [with_controller = true]. *)
let run_mac_auto (m : Macro_rtl.t) sim ~(inputs : int array) =
  if not m.cfg.with_controller then
    raise
      (Bench_error
         {
           op = "run_mac_auto";
           detail = "macro was built without the controller FSM";
         });
  present_inputs m sim inputs;
  Sim.set_bus sim "start" 1;
  Sim.step sim;
  Sim.set_bus sim "start" 0;
  let limit = 2 * (Macro_rtl.mac_latency m + 2) in
  let rec wait k =
    if k > limit then
      raise
        (Bench_error
           {
             op = "run_mac_auto";
             detail =
               Printf.sprintf "done never asserted within %d cycles" limit;
           });
    Sim.eval sim;
    if Sim.read_bus sim "done" = 1 then ()
    else begin
      Sim.clock sim;
      wait (k + 1)
    end
  in
  wait 0;
  Array.init m.words (fun g ->
      Sim.read_bus_signed sim (Printf.sprintf "result%d" g))

(** Datapath view of the raw inputs: identity for INT, behavioural
    alignment for FP (also returns the expected group exponent). *)
let datapath_inputs (m : Macro_rtl.t) (inputs : int array) =
  match m.cfg.input_prec with
  | Precision.Int _ -> (inputs, None)
  | Precision.Fp fmt ->
      let a = Align.align fmt inputs in
      (a.values, Some a.group_exp)

(** [check_mac m sim ~weights ~inputs] runs one MAC and raises
    {!Mismatch} if any word (or the FP group exponent) deviates from the
    golden model. [weights] are the datapath (signed integer) weights. *)
let check_mac (m : Macro_rtl.t) sim ~(weights : int array array)
    ~(inputs : int array) =
  let results = run_mac m sim ~inputs in
  let xs, exp_expected = datapath_inputs m inputs in
  (match exp_expected with
  | Some e ->
      let got = Sim.read_bus sim "group_exp" in
      if got <> e then
        raise
          (Mismatch
             { word = -1; expected = e; got; detail = "group exponent" })
  | None -> ());
  Array.iteri
    (fun g got ->
      let expected = Golden.dot ~weights:weights.(g) ~inputs:xs in
      if got <> expected then
        raise
          (Mismatch { word = g; expected; got; detail = "word result" }))
    results;
  results

(** Random raw input for the macro's input precision: a signed integer for
    INT (unsigned bit for INT1), a packed pattern for FP. [density] is the
    probability of a non-zero value (sparsity = 1 - density).

    With [realistic] (used by the power workloads), FP exponents cluster
    around the bias the way trained-network activations do, so most
    mantissas survive alignment; uniform exponents (the verification
    default) would flush almost everything to zero and understate FP
    datapath activity. *)
let random_input ?(realistic = false) rng (m : Macro_rtl.t) ~density =
  match m.cfg.input_prec with
  | Precision.Int 1 -> if Rng.float rng 1.0 < density then 1 else 0
  | Precision.Int w -> Rng.sparse_signed rng ~width:w ~density
  | Precision.Fp fmt ->
      if Rng.float rng 1.0 >= density then 0
      else if not realistic then Fpfmt.random rng fmt
      else begin
        let bias = Fpfmt.bias fmt in
        let exp =
          Intmath.clamp ~lo:1
            ~hi:(Intmath.pow2 fmt.Fpfmt.exp_bits - 1)
            (bias + Rng.int rng 5 - 2)
        in
        let man = Rng.int rng (Intmath.pow2 fmt.Fpfmt.man_bits) in
        Fpfmt.pack fmt ~sign:(Rng.bit rng ~p1:0.5 = 1) ~exp ~man
      end

(** Random datapath weight. *)
let random_weight rng (m : Macro_rtl.t) ~density =
  if m.wb = 1 then if Rng.float rng 1.0 < density then 1 else 0
  else Rng.sparse_signed rng ~width:m.wb ~density

let random_weights rng (m : Macro_rtl.t) ~density =
  Array.init m.words (fun _ ->
      Array.init m.cfg.rows (fun _ -> random_weight rng m ~density))

(** [verify_scalar m ~seed ~batches] builds a simulator, loads random
    weights and checks [batches] random MACs (covering every weight
    copy), one transaction at a time. Returns unit or raises
    {!Mismatch}. This is the reference engine the packed sign-off is
    property-tested against. *)
let verify_scalar (m : Macro_rtl.t) ~seed ~batches =
  let rng = Rng.create seed in
  let sim = Sim.create m.design in
  if m.cfg.mcr > 1 then Sim.set_bus sim "copy_sel" 0;
  for copy = 0 to m.cfg.mcr - 1 do
    let weights = random_weights rng m ~density:1.0 in
    load_weights m sim ~copy weights;
    if m.cfg.mcr > 1 then Sim.set_bus sim "copy_sel" copy;
    for _ = 1 to batches do
      let inputs =
        Array.init m.cfg.rows (fun _ -> random_input rng m ~density:1.0)
      in
      ignore (check_mac m sim ~weights ~inputs)
    done
  done

(* ---------------- bit-sliced bench path ---------------- *)

(** The lane-parallel bench, written once against {!Slice.S}: the
    63-lane {!Sim_packed} engine and every {!Sim_multiword} width share
    this single implementation, so their sign-off verdicts, Mismatch
    payloads and activity counters agree by construction — the property
    the cross-engine conformance suite pins. [Packed_bench] below
    instantiates it for {!Slice.Packed}; the historical [*_packed]
    top-level names are aliases into that instance. *)
module Sliced (E : Slice.S) = struct
  (* the scalar single-MAC checker, before this module shadows the name
     with its sliced counterpart: the reproducer path re-runs through it *)
  let scalar_check_mac = check_mac

  (** [set_controls sim ~load ~sa_en ~sa_clr ~sa_neg] — the sliced
      mirror of {!set_controls}: one MAC schedule broadcast to every
      lane. *)
  let set_controls sim ~load ~sa_en ~sa_clr ~sa_neg =
    E.set_bus sim "load" (if load then 1 else 0);
    E.set_bus sim "sa_en" (if sa_en then 1 else 0);
    E.set_bus sim "sa_clr" (if sa_clr then 1 else 0);
    E.set_bus sim "sa_neg" (if sa_neg then 1 else 0)

  (** [present_inputs_lanes m sim inputs] drives every row bus with a
      distinct word per lane: [inputs.(lane).(row)]. *)
  let present_inputs_lanes (m : Macro_rtl.t) sim
      (inputs : int array array) =
    let n = Array.length inputs in
    assert (n >= 1 && n <= E.lanes_of sim);
    Array.iter (fun per_row -> assert (Array.length per_row = m.cfg.rows))
      inputs;
    let per_lane = Array.make n 0 in
    for r = 0 to m.cfg.rows - 1 do
      for l = 0 to n - 1 do
        per_lane.(l) <- inputs.(l).(r)
      done;
      E.set_bus_lanes sim (Printf.sprintf "x%d" r) per_lane
    done

  (** [load_weights_lanes m sim ~copy weights] writes
      [weights.(lane).(word).(row)] (signed [wb]-bit integers) into
      weight copy [copy], a different weight matrix per lane. Lanes
      beyond [Array.length weights] store lane 0's weights (a harmless
      fill: their outputs are never compared). *)
  let load_weights_lanes (m : Macro_rtl.t) sim ~copy
      (weights : int array array array) =
    let n = Array.length weights in
    assert (n >= 1 && n <= E.lanes_of sim);
    Array.iter
      (fun per_word ->
        assert (Array.length per_word = m.words);
        Array.iter
          (fun per_row -> assert (Array.length per_row = m.cfg.rows))
          per_word)
      weights;
    let n_lanes = E.lanes_of sim in
    let bits = Array.make n_lanes false in
    for g = 0 to m.words - 1 do
      for r = 0 to m.cfg.rows - 1 do
        for j = 0 to m.wb - 1 do
          for l = 0 to n_lanes - 1 do
            let src = weights.(if l < n then l else 0) in
            bits.(l) <- (src.(g).(r) asr j) land 1 = 1
          done;
          E.set_weight_lanes sim ~row:r ~col:((g * m.wb) + j) ~copy bits
        done
      done
    done

  (** [run_mac m sim ~inputs] — the bit-sliced mirror of the top-level
      {!run_mac}: one MAC schedule broadcast to every lane, with a
      distinct input word vector per lane ([inputs.(lane).(row)]).
      Returns the per-word signed results of the driven lanes only:
      [results.(lane).(word)]. The [active_bits] runtime-precision
      contract is identical to the scalar bench's. *)
  let run_mac ?active_bits (m : Macro_rtl.t) sim
      ~(inputs : int array array) =
    let ab =
      match active_bits with
      | None -> m.db
      | Some b ->
          assert (b >= 1 && b <= m.db);
          assert (not (is_fp m));
          b
    in
    let inputs =
      if ab = m.db || m.neg_on_last then inputs
      else Array.map (Array.map (fun v -> v lsl (m.db - ab))) inputs
    in
    present_inputs_lanes m sim inputs;
    set_controls sim ~load:false ~sa_en:false ~sa_clr:false ~sa_neg:false;
    if is_fp m then E.set_bus sim "align_en" 1;
    for _ = 1 to m.align_lat do
      E.step sim
    done;
    if is_fp m then E.set_bus sim "align_en" 0;
    set_controls sim ~load:true ~sa_en:false ~sa_clr:false ~sa_neg:false;
    E.step sim;
    let last = m.tree_lat + ab - 1 in
    for k = 0 to last do
      let first = k = m.tree_lat in
      let sign_cycle = if m.neg_on_last then k = last else first in
      set_controls sim ~load:false
        ~sa_en:(k >= m.tree_lat)
        ~sa_clr:first
        ~sa_neg:(sign_cycle && ab > 1);
      E.step sim
    done;
    set_controls sim ~load:false ~sa_en:false ~sa_clr:false ~sa_neg:false;
    for _ = 1 to m.post_lat do
      E.step sim
    done;
    E.eval sim;
    let scale = if m.neg_on_last then m.db - ab else 0 in
    Array.init (Array.length inputs) (fun l ->
        Array.init m.words (fun g ->
            E.read_bus_signed_lane sim (Printf.sprintf "result%d" g) l
            asr scale))

  (* Judge one lane of a finished sliced MAC with {!check_mac}'s exact
     semantics: FP group exponent first, then words in order; the raised
     {!Mismatch} carries the same payload the scalar bench would raise
     for the same transaction. *)
  let judge_mac_lane (m : Macro_rtl.t) sim ~(weights : int array array)
      ~(inputs : int array) (results : int array) lane =
    let xs, exp_expected = datapath_inputs m inputs in
    (match exp_expected with
    | Some e ->
        let got = E.read_bus_lane sim "group_exp" lane in
        if got <> e then
          raise
            (Mismatch
               { word = -1; expected = e; got; detail = "group exponent" })
    | None -> ());
    Array.iteri
      (fun g got ->
        let expected = Golden.dot ~weights:weights.(g) ~inputs:xs in
        if got <> expected then
          raise
            (Mismatch { word = g; expected; got; detail = "word result" }))
      results

  (** [check_mac m sim ~weights ~inputs] — the sliced counterpart of
      the top-level {!check_mac}: up to [lanes_of sim] independent MAC
      transactions settle in one pass, lane [l] checking [weights.(l)]
      × [inputs.(l)] against {!Golden}. Weights must already be loaded
      per lane ({!load_weights_lanes}). Lanes are judged in order and
      the first divergence raises {!Mismatch} with the scalar bench's
      payload. Returns [results.(lane).(word)]. *)
  let check_mac (m : Macro_rtl.t) sim
      ~(weights : int array array array) ~(inputs : int array array) =
    assert (Array.length weights = Array.length inputs);
    let results = run_mac m sim ~inputs in
    Array.iteri
      (fun l r ->
        judge_mac_lane m sim ~weights:weights.(l) ~inputs:inputs.(l) r l)
      results;
    results

  (** [verify m ~seed ~batches] — the bit-sliced sign-off engine: the
      same random weight/input draws as {!verify_scalar} (identical RNG
      order — all of a copy's inputs are drawn up-front, so the verdict
      is independent of the engine's lane width), but each weight
      copy's batch of MAC jobs packs [E.max_lanes] wide, so a whole
      batch settles per netlist pass. A failing lane is re-run through
      a fresh scalar simulator for a minimal single-transaction
      reproducer: if the scalar re-run confirms, its {!Mismatch} is
      raised verbatim; a sliced-only divergence (a lane bug in the
      engine itself) is raised with an explicit [" (packed-only)"]
      marker instead of being hidden. *)
  let verify (m : Macro_rtl.t) ~seed ~batches =
    let rng = Rng.create seed in
    let psim = E.create m.design in
    if m.cfg.mcr > 1 then E.set_bus psim "copy_sel" 0;
    let n_lanes = E.lanes_of psim in
    let reproduce ~copy ~weights ~inputs ~word ~expected ~got ~detail =
      let sim = Sim.create m.design in
      if m.cfg.mcr > 1 then Sim.set_bus sim "copy_sel" 0;
      load_weights m sim ~copy weights;
      if m.cfg.mcr > 1 then Sim.set_bus sim "copy_sel" copy;
      ignore (scalar_check_mac m sim ~weights ~inputs);
      (* the scalar re-run did not reproduce: surface the sliced payload *)
      raise
        (Mismatch { word; expected; got; detail = detail ^ " (packed-only)" })
    in
    for copy = 0 to m.cfg.mcr - 1 do
      let weights = random_weights rng m ~density:1.0 in
      load_weights_lanes m psim ~copy [| weights |];
      if m.cfg.mcr > 1 then E.set_bus psim "copy_sel" copy;
      (* all of the copy's inputs up-front: check_mac performs no draws,
         so the RNG stream stays bit-identical to the scalar engine's *)
      let all =
        Array.init batches (fun _ ->
            Array.init m.cfg.rows (fun _ -> random_input rng m ~density:1.0))
      in
      let pos = ref 0 in
      while !pos < batches do
        let n = min n_lanes (batches - !pos) in
        let chunk = Array.sub all !pos n in
        let results = run_mac m psim ~inputs:chunk in
        for l = 0 to n - 1 do
          try judge_mac_lane m psim ~weights ~inputs:chunk.(l) results.(l) l
          with Mismatch { word; expected; got; detail } ->
            reproduce ~copy ~weights ~inputs:chunk.(l) ~word ~expected ~got
              ~detail
        done;
        pos := !pos + n
      done
    done

  (** [run_stream_with m sim ~next_inputs ~macs] — the bit-sliced
      mirror of the top-level {!run_stream_with}: [macs] back-to-back
      MACs at full pipeline rate in every lane, [next_inputs k]
      supplying MAC [k]'s per-lane input words. One sliced run gathers
      [lanes_of sim ×] the toggle sample mass of a scalar run of the
      same length — the power Monte Carlo fan-out. Weights must already
      be loaded ({!load_weights_lanes}); statistics should be read from
      [sim] afterwards. *)
  let run_stream_with (m : Macro_rtl.t) sim
      ~(next_inputs : int -> int array array) ~macs =
    let db = m.db in
    let total = m.align_lat + (macs * db) + m.tree_lat + m.post_lat + 1 in
    for cyc = 0 to total - 1 do
      if cyc mod db = 0 && cyc / db < macs then
        present_inputs_lanes m sim (next_inputs (cyc / db));
      let load = cyc >= m.align_lat && (cyc - m.align_lat) mod db = 0
                 && (cyc - m.align_lat) / db < macs in
      let k = cyc - m.align_lat - 1 - m.tree_lat in
      let first_fill = m.align_lat + 1 + m.tree_lat in
      let sa_en = cyc >= first_fill && k < macs * db in
      let sa_clr = sa_en && k mod db = 0 in
      let sa_neg =
        sa_en && db > 1
        && k mod db = (if m.neg_on_last then db - 1 else 0)
      in
      if is_fp m then
        E.set_bus sim "align_en"
          (if cyc mod db < max m.align_lat 1 && cyc / db < macs then 1
           else 0);
      set_controls sim ~load ~sa_en ~sa_clr ~sa_neg;
      E.step sim
    done

  let run_stream (m : Macro_rtl.t) sim ~rng ~macs ~input_density =
    let n_lanes = E.lanes_of sim in
    run_stream_with m sim ~macs ~next_inputs:(fun _ ->
        Array.init n_lanes (fun _ ->
            Array.init m.cfg.rows (fun _ ->
                random_input ~realistic:true rng m ~density:input_density)))
end

(** The {!Sliced} bench over {!Sim_packed} — the default engine. *)
module Packed_bench = Sliced (Slice.Packed)

(* Historical names for the packed instance, kept for direct callers. *)
let set_controls_packed = Packed_bench.set_controls
let present_inputs_lanes = Packed_bench.present_inputs_lanes
let load_weights_lanes = Packed_bench.load_weights_lanes
let run_mac_packed = Packed_bench.run_mac
let judge_mac_lane = Packed_bench.judge_mac_lane
let check_mac_packed = Packed_bench.check_mac
let verify_packed = Packed_bench.verify
let run_stream_packed_with = Packed_bench.run_stream_with
let run_stream_packed = Packed_bench.run_stream

(** [verify ?engine m ~seed ~batches] — functional sign-off: random
    weights into every copy, [batches] random MACs per copy checked
    against {!Golden}. Returns unit or raises {!Mismatch}. The default
    [`Packed] engine batches each copy's MACs as {!Sim_packed} lanes
    and shrinks any failing lane back to one scalar transaction;
    [`Multiword w] does the same [w] lanes at a time ({!Sim_multiword});
    [`Scalar] checks one MAC at a time (the reference the conformance
    suite pins every sliced engine against). All engines draw one
    identical RNG stream, so the verdict — and any Mismatch payload —
    is engine-independent. *)
let m_verify_runs = Metrics.counter "signoff.verify_runs"
let m_macs_checked = Metrics.counter "signoff.macs_checked"

let verify ?(engine : Engine.t = `Packed) (m : Macro_rtl.t) ~seed ~batches =
  (* Every engine checks the same MACs against the same golden stream,
     so both counts are engine-invariant: deterministic. *)
  Metrics.incr m_verify_runs;
  Metrics.add m_macs_checked (batches * m.cfg.Macro_rtl.mcr);
  match engine with
  | `Scalar -> verify_scalar m ~seed ~batches
  | `Packed -> verify_packed m ~seed ~batches
  | `Multiword _ as e ->
      let module E = (val Engine.slice e) in
      let module B = Sliced (E) in
      B.verify m ~seed ~batches

(** [run_stream_with m sim ~next_inputs ~macs] — the replayable core of
    {!run_stream}: [next_inputs k] supplies MAC [k]'s raw input words, so
    a caller can drive a pre-drawn stimulus deterministically (the shmoo
    column batching replays the identical stream through the scalar and
    the packed engine). *)
let run_stream_with (m : Macro_rtl.t) sim ~(next_inputs : int -> int array)
    ~macs =
  let db = m.db in
  let total = m.align_lat + (macs * db) + m.tree_lat + m.post_lat + 1 in
  for cyc = 0 to total - 1 do
    (* present the inputs of MAC i during [i*db, (i+1)*db) *)
    if cyc mod db = 0 && cyc / db < macs then
      present_inputs m sim (next_inputs (cyc / db));
    let load = cyc >= m.align_lat && (cyc - m.align_lat) mod db = 0
               && (cyc - m.align_lat) / db < macs in
    let k = cyc - m.align_lat - 1 - m.tree_lat in
    (* accumulation window: continuous once the pipeline fills *)
    let first_fill = m.align_lat + 1 + m.tree_lat in
    let sa_en = cyc >= first_fill && k < macs * db in
    let sa_clr = sa_en && k mod db = 0 in
    let sa_neg =
      sa_en && db > 1
      && k mod db = (if m.neg_on_last then db - 1 else 0)
    in
    if is_fp m then
      (* the aligner pipeline advances during each MAC's load window *)
      Sim.set_bus sim "align_en"
        (if cyc mod db < max m.align_lat 1 && cyc / db < macs then 1 else 0);
    set_controls sim ~load ~sa_en ~sa_clr ~sa_neg;
    Sim.step sim
  done

(** [run_stream m sim ~rng ~macs ~input_density] issues [macs] back-to-back
    MACs at full pipeline rate (one per [db] cycles) for power
    measurement; weights must already be loaded. Statistics should be read
    from [sim] afterwards. *)
let run_stream (m : Macro_rtl.t) sim ~rng ~macs ~input_density =
  run_stream_with m sim ~macs ~next_inputs:(fun _ ->
      Array.init m.cfg.rows (fun _ ->
          random_input ~realistic:true rng m ~density:input_density))

(** [stream_cycles m ~macs] — total simulated cycles of one
    {!run_stream}/{!run_stream_packed} run of [macs] MACs; the
    denominator energy-per-MAC accounting divides by. *)
let stream_cycles (m : Macro_rtl.t) ~macs =
  m.align_lat + (macs * m.db) + m.tree_lat + m.post_lat + 1
