(** The synthetic 40 nm-class cell library: per-cell PPA models.

    Every number is characterized at the node's nominal voltage (1.1 V) and
    scaled at use sites via {!Voltage}. The delay model is the linear
    NLDM approximation [d(out) = intrinsic(out) + drive_res * load_ff],
    which is the same first-order model a Liberty table interpolates.

    Absolute values are calibrated so that an X1 inverter has FO4 = 20 ps,
    matching public 40 nm data, and a full-adder output toggle costs ~2 fJ
    internal energy (~3.5 fJ with a typical load at 1.1 V), the
    power-optimized-datapath figure 40 nm DCIM papers report; everything
    else is set relative to the
    inverter following standard-cell-library proportions. The paper's
    claims (compressors smaller/lower-power but slower than full adders;
    carry outputs faster than sum outputs; 1T pass-gate muxes small but slow
    and leaky) are encoded in these relative numbers. *)

type params = {
  kind : Cell.kind;
  drive : Cell.drive;
  area_um2 : float;
  input_cap_ff : float;  (** capacitance of one input pin *)
  clock_cap_ff : float;  (** clock-pin capacitance (sequential only) *)
  intrinsic_ps : float array;  (** per output pin, at nominal VDD *)
  drive_res_ps_per_ff : float;  (** slope of delay vs. output load *)
  energy_fj : float;  (** internal energy per output toggle *)
  clock_energy_fj : float;  (** energy per clock edge (sequential only) *)
  leakage_nw : float;
  setup_ps : float;  (** setup time (sequential only) *)
  clk_q_ps : float;  (** clock-to-Q delay (sequential only) *)
}

let comb ?(leak = 0.4) kind ~area ~cap ~intr ~res ~energy =
  {
    kind;
    drive = Cell.X1;
    area_um2 = area;
    input_cap_ff = cap;
    clock_cap_ff = 0.0;
    intrinsic_ps = intr;
    drive_res_ps_per_ff = res;
    energy_fj = energy;
    clock_energy_fj = 0.0;
    leakage_nw = leak;
    setup_ps = 0.0;
    clk_q_ps = 0.0;
  }

let seq kind ~area ~cap ~clk_cap ~energy ~clk_energy ~setup ~clk_q ~res =
  {
    kind;
    drive = Cell.X1;
    area_um2 = area;
    input_cap_ff = cap;
    clock_cap_ff = clk_cap;
    intrinsic_ps = [| clk_q |];
    drive_res_ps_per_ff = res;
    energy_fj = energy;
    clock_energy_fj = clk_energy;
    leakage_nw = 1.2;
    setup_ps = setup;
    clk_q_ps = clk_q;
  }

(** Base (X1) parameters for every kind.

    The arithmetic cells expose per-output intrinsics: for FA the carry
    output (index 1) is faster than sum (index 0); for COMP42 carry/cout
    are faster than sum — the slack the paper's connection-reordering
    optimization harvests. COMP42 does the work of two FAs in 1.7x the
    area and 1.5x the energy but with a slower sum path. *)
let base_params (k : Cell.kind) : params =
  match k with
  | Inv -> comb k ~area:0.7 ~cap:1.0 ~intr:[| 8.0 |] ~res:3.0 ~energy:0.6
  | Buf -> comb k ~area:1.1 ~cap:1.0 ~intr:[| 16.0 |] ~res:2.2 ~energy:0.9
  | Nand2 -> comb k ~area:1.0 ~cap:1.2 ~intr:[| 10.0 |] ~res:3.2 ~energy:0.9
  | Nor2 -> comb k ~area:1.0 ~cap:1.3 ~intr:[| 12.0 |] ~res:3.6 ~energy:0.9
  | And2 -> comb k ~area:1.3 ~cap:1.1 ~intr:[| 18.0 |] ~res:3.0 ~energy:1.1
  | Or2 -> comb k ~area:1.3 ~cap:1.1 ~intr:[| 19.0 |] ~res:3.0 ~energy:1.2
  | Xor2 -> comb k ~area:2.1 ~cap:1.8 ~intr:[| 24.0 |] ~res:3.8 ~energy:1.9
  | Xnor2 -> comb k ~area:2.1 ~cap:1.8 ~intr:[| 24.0 |] ~res:3.8 ~energy:1.9
  | Mux2 -> comb k ~area:2.0 ~cap:1.4 ~intr:[| 22.0 |] ~res:3.4 ~energy:1.5
  | Aoi22 -> comb k ~area:1.6 ~cap:1.3 ~intr:[| 16.0 |] ~res:3.8 ~energy:1.3
  | Oai22 -> comb k ~area:1.6 ~cap:1.3 ~intr:[| 15.0 |] ~res:3.8 ~energy:1.3
  | Ha ->
      comb k ~area:2.8 ~cap:1.8 ~intr:[| 26.0; 18.0 |] ~res:3.8 ~energy:2.1
  | Fa ->
      (* sum slower than carry: XOR3 path vs majority path *)
      comb k ~area:4.6 ~cap:2.0 ~intr:[| 46.0; 30.0 |] ~res:4.0 ~energy:3.5
  | Comp42 ->
      (* two-FA function at 1.7x FA area, 1.5x FA energy; the
         power/area-optimized compressor is markedly slower than an FA
         (sum 78 ps vs 46 ps), which is what makes the paper's
         FA-substitution-under-tight-timing technique pay off *)
      comb k ~area:7.8 ~cap:2.1 ~intr:[| 78.0; 50.0; 38.0 |] ~res:4.2
        ~energy:5.2 ~leak:0.7
  | Dff ->
      seq k ~area:4.5 ~cap:1.2 ~clk_cap:1.4 ~energy:1.7 ~clk_energy:1.0
        ~setup:25.0 ~clk_q:45.0 ~res:3.4
  | Dff_en ->
      seq k ~area:5.6 ~cap:1.3 ~clk_cap:1.4 ~energy:2.0 ~clk_energy:1.2
        ~setup:28.0 ~clk_q:48.0 ~res:3.4
  | Sram S6t ->
      (* high-density foundry bit cell + read port; output drives the
         multiplier input *)
      comb k ~area:0.6 ~cap:0.0 ~intr:[| 30.0 |] ~res:6.0 ~energy:0.5
        ~leak:0.05
  | Sram S8t ->
      (* 8T D-latch cell: robust read/write, bigger, stronger read drive *)
      comb k ~area:1.05 ~cap:0.0 ~intr:[| 24.0 |] ~res:4.5 ~energy:0.6
        ~leak:0.08
  | Sram S12t ->
      (* 12T OAI-based cell: design-feasibility oriented, largest *)
      comb k ~area:1.55 ~cap:0.0 ~intr:[| 20.0 |] ~res:4.0 ~energy:0.8
        ~leak:0.12
  | Mul Tg_nor ->
      (* 2T transmission gate + NOR multiply: the commonly adopted point *)
      comb k ~area:1.5 ~cap:1.3 ~intr:[| 16.0 |] ~res:3.6 ~energy:1.0
        ~leak:0.35
  | Mul Pass_1t ->
      (* 1T passing gate: area-efficient but the threshold drop makes it
         slow and leaky (AutoDCIM's choice) *)
      comb k ~area:0.8 ~cap:1.0 ~intr:[| 34.0 |] ~res:6.5 ~energy:1.4
        ~leak:1.1
  | Mul Oai22_fused ->
      (* fused multiplier+mux: saves wiring, only usable when MCR <= 2 *)
      comb k ~area:1.9 ~cap:1.3 ~intr:[| 17.0 |] ~res:3.9 ~energy:1.2
        ~leak:0.4
  | Tgmux2 ->
      comb k ~area:1.4 ~cap:1.2 ~intr:[| 14.0 |] ~res:3.3 ~energy:1.0
  | Ptmux2 ->
      comb k ~area:0.9 ~cap:1.0 ~intr:[| 26.0 |] ~res:5.8 ~energy:1.2
        ~leak:0.9

(** Upsizing trades area/power for drive: X2 halves the drive resistance at
    ~1.8x area/energy and ~1.9x input capacitance. *)
let apply_drive (p : params) (d : Cell.drive) : params =
  let scale ~a ~c ~r ~e =
    {
      p with
      drive = d;
      area_um2 = p.area_um2 *. a;
      input_cap_ff = p.input_cap_ff *. c;
      clock_cap_ff = p.clock_cap_ff *. c;
      drive_res_ps_per_ff = p.drive_res_ps_per_ff *. r;
      energy_fj = p.energy_fj *. e;
      clock_energy_fj = p.clock_energy_fj *. e;
      leakage_nw = p.leakage_nw *. a;
    }
  in
  match d with
  | Cell.X1 -> p
  | Cell.X2 -> scale ~a:1.8 ~c:1.9 ~r:0.55 ~e:1.8
  | Cell.X4 -> scale ~a:3.2 ~c:3.6 ~r:0.32 ~e:3.2

type t = {
  node : Node.t;
  get : Cell.kind -> Cell.drive -> params;
}

(** [n40 ()] builds the synthetic 40 nm library. The per-(kind, drive)
    table is populated eagerly over {!Cell.all_kinds} x every drive, so
    lookups never mutate it afterwards — which is what lets parallel
    searcher domains share one library without locking. *)
let n40 () =
  let tbl = Hashtbl.create 128 in
  List.iter
    (fun k ->
      List.iter
        (fun d -> Hashtbl.replace tbl (k, d) (apply_drive (base_params k) d))
        [ Cell.X1; Cell.X2; Cell.X4 ])
    Cell.all_kinds;
  let get k d =
    match Hashtbl.find_opt tbl (k, d) with
    | Some p -> p
    | None -> apply_drive (base_params k) d (* unreachable: all_kinds is total *)
  in
  { node = Node.n40; get }

(** [params t k d] looks up the PPA model of kind [k] at drive [d]. *)
let params t k d = t.get k d

(** [delay_ps t ~kind ~drive ~out ~load_ff] is the nominal-voltage delay of
    output pin [out] driving [load_ff]. *)
let delay_ps t ~kind ~drive ~out ~load_ff =
  let p = t.get kind drive in
  let n = Array.length p.intrinsic_ps in
  let out = if out < n then out else n - 1 in
  p.intrinsic_ps.(out) +. (p.drive_res_ps_per_ff *. load_ff)
