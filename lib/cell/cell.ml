(** Cell kinds of the synthetic 40 nm library.

    Three families, mirroring the paper's subcircuit library (Fig. 3):

    - standard combinational/sequential cells that any digital flow has;
    - arithmetic cells (half/full adders, 4-2 compressors) that the bit-wise
      carry-save adder trees are built from;
    - DCIM custom cells (SRAM storage bits and the fused multiplier /
      multiplexer variants) that the paper characterizes through a custom
      cell flow and injects into the digital flow as standard cells. *)

type sram_kind =
  | S6t  (** classic 6T storage cell + read port *)
  | S8t  (** 8T D-latch cell, robust read and write *)
  | S12t  (** 12T OAI-gate-based cell, design-feasibility oriented *)

type mul_kind =
  | Tg_nor  (** 2T transmission-gate select + NOR multiply (common) *)
  | Pass_1t  (** 1T passing-gate mux; area-efficient, slow, leaky *)
  | Oai22_fused  (** fused multiplier+mux (OAI22); only scales to MCR<=2 *)

type kind =
  | Inv
  | Buf
  | Nand2
  | Nor2
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Mux2  (** inputs [a; b; sel], output [sel ? b : a] *)
  | Aoi22  (** inputs [a; b; c; d], output [!(a&b | c&d)] *)
  | Oai22  (** inputs [a; b; c; d], output [!((a|b) & (c|d))] *)
  | Ha  (** inputs [a; b], outputs [sum; carry] *)
  | Fa  (** inputs [a; b; cin], outputs [sum; carry] *)
  | Comp42  (** inputs [a; b; c; d; cin], outputs [sum; carry; cout] *)
  | Dff  (** input [d], output [q]; clocked *)
  | Dff_en  (** inputs [d; en], output [q]; clocked, holds when !en *)
  | Sram of sram_kind  (** no logic input; output is the stored bit *)
  | Mul of mul_kind
      (** [Tg_nor]/[Pass_1t]: inputs [x; w] output [x & w].
          [Oai22_fused]: inputs [x; w0; w1; sel] output [x & (sel?w1:w0)]. *)
  | Tgmux2  (** transmission-gate mux: inputs [a; b; sel] *)
  | Ptmux2  (** pass-transistor mux: inputs [a; b; sel]; cheap but weak *)

(** Drive strength of a cell instance. *)
type drive = X1 | X2 | X4

let drive_to_string = function X1 -> "X1" | X2 -> "X2" | X4 -> "X4"

let kind_to_string = function
  | Inv -> "INV"
  | Buf -> "BUF"
  | Nand2 -> "NAND2"
  | Nor2 -> "NOR2"
  | And2 -> "AND2"
  | Or2 -> "OR2"
  | Xor2 -> "XOR2"
  | Xnor2 -> "XNOR2"
  | Mux2 -> "MUX2"
  | Aoi22 -> "AOI22"
  | Oai22 -> "OAI22"
  | Ha -> "HA"
  | Fa -> "FA"
  | Comp42 -> "COMP42"
  | Dff -> "DFF"
  | Dff_en -> "DFFE"
  | Sram S6t -> "SRAM6T"
  | Sram S8t -> "SRAM8T"
  | Sram S12t -> "SRAM12T"
  | Mul Tg_nor -> "MUL_TGNOR"
  | Mul Pass_1t -> "MUL_PASS1T"
  | Mul Oai22_fused -> "MUL_OAI22F"
  | Tgmux2 -> "TGMUX2"
  | Ptmux2 -> "PTMUX2"

let all_kinds =
  [
    Inv; Buf; Nand2; Nor2; And2; Or2; Xor2; Xnor2; Mux2; Aoi22; Oai22; Ha;
    Fa; Comp42; Dff; Dff_en; Sram S6t; Sram S8t; Sram S12t; Mul Tg_nor;
    Mul Pass_1t; Mul Oai22_fused; Tgmux2; Ptmux2;
  ]

(** [n_inputs k] is the number of logic input pins (clock excluded). *)
let n_inputs = function
  | Inv | Buf -> 1
  | Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 | Ha -> 2
  | Mux2 | Fa | Tgmux2 | Ptmux2 -> 3
  | Aoi22 | Oai22 -> 4
  | Comp42 -> 5
  | Dff -> 1
  | Dff_en -> 2
  | Sram _ -> 0
  | Mul Tg_nor | Mul Pass_1t -> 2
  | Mul Oai22_fused -> 4

(** [n_outputs k] is the number of output pins. *)
let n_outputs = function
  | Ha | Fa -> 2
  | Comp42 -> 3
  | Inv | Buf | Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 | Mux2 | Aoi22
  | Oai22 | Dff | Dff_en | Sram _ | Mul _ | Tgmux2 | Ptmux2 ->
      1

(** [is_sequential k] holds for clocked state elements. SRAM cells are
    state too, but written through the BL driver rather than the clock. *)
let is_sequential = function
  | Dff | Dff_en -> true
  | Inv | Buf | Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 | Mux2 | Aoi22
  | Oai22 | Ha | Fa | Comp42 | Sram _ | Mul _ | Tgmux2 | Ptmux2 ->
      false

let is_storage = function Sram _ -> true | _ -> false

let maj3 a b c = (a && b) || (a && c) || (b && c)

(** Widest input/output arity over all kinds — the scratch-buffer sizes a
    zero-allocation simulator needs. *)
let max_inputs = 5

let max_outputs = 3

(** [eval_into k ins outs] computes the combinational function of kind [k]
    from [ins.(0 .. n_inputs k - 1)] into [outs.(0 .. n_outputs k - 1)].
    Both buffers may be longer than the cell's arity, so one preallocated
    pair ({!max_inputs} / {!max_outputs} wide) serves every instance: this
    is the allocation-free hot path the cycle simulator runs per instance
    per cycle. *)
let eval_into k (ins : bool array) (outs : bool array) : unit =
  match k with
  | Inv -> outs.(0) <- not ins.(0)
  | Buf -> outs.(0) <- ins.(0)
  | Nand2 -> outs.(0) <- not (ins.(0) && ins.(1))
  | Nor2 -> outs.(0) <- not (ins.(0) || ins.(1))
  | And2 -> outs.(0) <- ins.(0) && ins.(1)
  | Or2 -> outs.(0) <- ins.(0) || ins.(1)
  | Xor2 -> outs.(0) <- ins.(0) <> ins.(1)
  | Xnor2 -> outs.(0) <- ins.(0) = ins.(1)
  | Mux2 | Tgmux2 | Ptmux2 ->
      outs.(0) <- (if ins.(2) then ins.(1) else ins.(0))
  | Aoi22 -> outs.(0) <- not ((ins.(0) && ins.(1)) || (ins.(2) && ins.(3)))
  | Oai22 -> outs.(0) <- not ((ins.(0) || ins.(1)) && (ins.(2) || ins.(3)))
  | Ha ->
      outs.(0) <- ins.(0) <> ins.(1);
      outs.(1) <- ins.(0) && ins.(1)
  | Fa ->
      outs.(0) <- ins.(0) <> ins.(1) <> ins.(2);
      outs.(1) <- maj3 ins.(0) ins.(1) ins.(2)
  | Comp42 ->
      let s1 = ins.(0) <> ins.(1) <> ins.(2)
      and co = maj3 ins.(0) ins.(1) ins.(2) in
      outs.(0) <- s1 <> ins.(3) <> ins.(4);
      outs.(1) <- maj3 s1 ins.(3) ins.(4);
      outs.(2) <- co
  | Mul (Tg_nor | Pass_1t) -> outs.(0) <- ins.(0) && ins.(1)
  | Mul Oai22_fused ->
      outs.(0) <- ins.(0) && (if ins.(3) then ins.(2) else ins.(1))
  | Dff | Dff_en | Sram _ ->
      invalid_arg "Cell.eval: sequential/storage cell"

(** [eval_word_into k ins outs] is {!eval_into} on bit-sliced words: every
    input and output [int] carries one simulation lane per bit, and the
    cell function is applied to all lanes at once with bitwise ops. The
    XOR/majority identities make every arithmetic cell a handful of
    word ops: [maj3 a b c = (a&b) | (a&c) | (b&c)], a mux is
    [(sel&b) | (~sel&a)]. Complemented outputs may carry set bits above
    the caller's active lanes; the packed simulator masks on commit. *)
let eval_word_into k (ins : int array) (outs : int array) : unit =
  match k with
  | Inv -> outs.(0) <- lnot ins.(0)
  | Buf -> outs.(0) <- ins.(0)
  | Nand2 -> outs.(0) <- lnot (ins.(0) land ins.(1))
  | Nor2 -> outs.(0) <- lnot (ins.(0) lor ins.(1))
  | And2 -> outs.(0) <- ins.(0) land ins.(1)
  | Or2 -> outs.(0) <- ins.(0) lor ins.(1)
  | Xor2 -> outs.(0) <- ins.(0) lxor ins.(1)
  | Xnor2 -> outs.(0) <- lnot (ins.(0) lxor ins.(1))
  | Mux2 | Tgmux2 | Ptmux2 ->
      let sel = ins.(2) in
      outs.(0) <- (sel land ins.(1)) lor (lnot sel land ins.(0))
  | Aoi22 -> outs.(0) <- lnot ((ins.(0) land ins.(1)) lor (ins.(2) land ins.(3)))
  | Oai22 -> outs.(0) <- lnot ((ins.(0) lor ins.(1)) land (ins.(2) lor ins.(3)))
  | Ha ->
      outs.(0) <- ins.(0) lxor ins.(1);
      outs.(1) <- ins.(0) land ins.(1)
  | Fa ->
      let a = ins.(0) and b = ins.(1) and c = ins.(2) in
      outs.(0) <- a lxor b lxor c;
      outs.(1) <- (a land b) lor (a land c) lor (b land c)
  | Comp42 ->
      let a = ins.(0) and b = ins.(1) and c = ins.(2) in
      let d = ins.(3) and cin = ins.(4) in
      let s1 = a lxor b lxor c in
      let co = (a land b) lor (a land c) lor (b land c) in
      outs.(0) <- s1 lxor d lxor cin;
      outs.(1) <- (s1 land d) lor (s1 land cin) lor (d land cin);
      outs.(2) <- co
  | Mul (Tg_nor | Pass_1t) -> outs.(0) <- ins.(0) land ins.(1)
  | Mul Oai22_fused ->
      let sel = ins.(3) in
      outs.(0) <- ins.(0) land ((sel land ins.(2)) lor (lnot sel land ins.(1)))
  | Dff | Dff_en | Sram _ ->
      invalid_arg "Cell.eval_word: sequential/storage cell"

(** [eval_word k ins] — allocating form of {!eval_word_into}, mirroring
    {!eval}. Hot loops use {!eval_word_into} with preallocated buffers. *)
let eval_word k (ins : int array) : int array =
  (match k with
  | Dff | Dff_en | Sram _ ->
      invalid_arg "Cell.eval_word: sequential/storage cell"
  | _ ->
      if Array.length ins <> n_inputs k then
        invalid_arg "Cell.eval_word: arity mismatch");
  let outs = Array.make (n_outputs k) 0 in
  eval_word_into k ins outs;
  outs

(** [eval k ins] computes the combinational function of kind [k]. For
    sequential and storage kinds this is the identity on the held state and
    must not be called by the simulator's combinational phase. Allocates
    the result; hot loops use {!eval_into} instead. *)
let eval k (ins : bool array) : bool array =
  (match k with
  | Dff | Dff_en | Sram _ -> invalid_arg "Cell.eval: sequential/storage cell"
  | _ ->
      if Array.length ins <> n_inputs k then
        invalid_arg "Cell.eval: arity mismatch");
  let outs = Array.make (n_outputs k) false in
  eval_into k ins outs;
  outs
