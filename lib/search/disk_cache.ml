(** Persistent, content-addressed compile cache.

    One entry per compiled specification, keyed by a fingerprint of
    everything that determines the compilation result:

    - the {e canonicalized specification}: every {!Spec.t} field rendered
      in a fixed order with hex ([%h]) floats, so two manifest lines that
      describe the same macro with different field ordering or whitespace
      hash identically, while any single-field perturbation changes the
      key — the cache can never serve a false hit for a different spec;
    - the {e cell-library characterization hash}: a digest over every
      (kind, drive) parameter record plus the process node, so editing a
      single timing/power/area number invalidates every entry cleanly;
    - an {e algorithm version tag} supplied by the caller (the searcher
      version plus the pipeline's style and retry policy), so a semantic
      change to the search can never resurrect stale results.

    Values carry the stage artifacts a batch report needs without
    re-running the pipeline: final metrics, netlist shape, attempt count
    and boost. Floats round-trip exactly ([%h] in, [float_of_string]
    out), so a cache hit reproduces the cold run bit for bit.

    The store is a flat directory of [<key>.entry] files. Writes go
    through a temp file in the same directory followed by an atomic
    [rename], so concurrent pool domains sharing one store can only ever
    observe a complete entry. Loads are corruption-tolerant: every entry
    ends in a whole-body checksum, and a truncated, bit-flipped or
    otherwise unparseable entry is reported as {!Corrupt} — a miss that
    recomputes, never an exception. *)

(** Bump when the entry serialization changes shape: old entries then
    fail the magic check and are recomputed. *)
let format_version = "syndcim-cache-entry v1"

(* ------------------------------------------------------------------ *)
(* Key construction                                                    *)
(* ------------------------------------------------------------------ *)

(** [canonical_spec s] — the fixed-order, whitespace-free rendering of
    every spec field the compiler reads. Unlike {!Eval_cache.key}, the
    preference is included: the fine-tuning step steers which design a
    spec compiles to. *)
let canonical_spec (s : Spec.t) : string =
  Printf.sprintf "rows=%d;cols=%d;mcr=%d;iprec=%s;wprec=%s;freq=%h;wupd=%h;vdd=%h;pref=%s"
    s.Spec.rows s.Spec.cols s.Spec.mcr
    (Precision.name s.Spec.input_prec)
    (Precision.name s.Spec.weight_prec)
    s.Spec.mac_freq_hz s.Spec.weight_update_freq_hz s.Spec.vdd
    (Spec.preference_name s.Spec.preference)

let drive_name = function Cell.X1 -> "X1" | Cell.X2 -> "X2" | Cell.X4 -> "X4"

(** [library_fingerprint lib] — digest of the full characterization: all
    (kind, drive) parameter records and the process-node constants. Any
    recharacterization changes the fingerprint and invalidates every
    entry keyed under it. *)
let library_fingerprint (lib : Library.t) : string =
  let b = Buffer.create 4096 in
  let node = lib.Library.node in
  Buffer.add_string b
    (Printf.sprintf "node=%s;%h;%h;%h;%h;%h;%h;%h\n" node.Node.name
       node.Node.feature_nm node.Node.vdd_nominal node.Node.vth
       node.Node.fo4_ps node.Node.gate_cap_ff_per_um
       node.Node.wire_cap_ff_per_um node.Node.wire_res_ohm_per_um);
  List.iter
    (fun kind ->
      List.iter
        (fun drive ->
          let p = Library.params lib kind drive in
          Buffer.add_string b
            (Printf.sprintf "%s@%s:a=%h;c=%h;cc=%h;i=%s;r=%h;e=%h;ce=%h;l=%h;s=%h;q=%h\n"
               (Cell.kind_to_string kind) (drive_name drive)
               p.Library.area_um2 p.Library.input_cap_ff
               p.Library.clock_cap_ff
               (String.concat ","
                  (Array.to_list
                     (Array.map (Printf.sprintf "%h") p.Library.intrinsic_ps)))
               p.Library.drive_res_ps_per_ff p.Library.energy_fj
               p.Library.clock_energy_fj p.Library.leakage_nw
               p.Library.setup_ps p.Library.clk_q_ps))
        [ Cell.X1; Cell.X2; Cell.X4 ])
    Cell.all_kinds;
  Digest.to_hex (Digest.string (Buffer.contents b))

(** [key ~lib_fp ~algo spec] — the content address: a hex digest over the
    format version, the library fingerprint, the algorithm tag and the
    canonicalized spec. *)
let key ~lib_fp ~algo (spec : Spec.t) : string =
  Digest.to_hex
    (Digest.string
       (String.concat "|" [ format_version; lib_fp; algo; canonical_spec spec ]))

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

(** What a hit restores: the reported metrics plus the netlist/attempt
    shape the batch manifest prints. (The full netlist and layout are
    deliberately not stored — a batch report needs PPA, and anything that
    needs the artifacts recompiles.) *)
type value = {
  spec_desc : string;  (** human-readable, for reports; not part of the key *)
  crit_ps : float;
  fmax_ghz : float;
  power_w : float;
  area_mm2 : float;
  tops : float;
  tops_per_w : float;
  tops_per_mm2 : float;
  ops_norm : float;
  timing_closed : bool;
  insts : int;
  nets : int;
  attempts : int;
  boost : float;
}

let render_value (key : string) (v : value) : string =
  let b = Buffer.create 512 in
  let line k s = Buffer.add_string b (k ^ " " ^ s ^ "\n") in
  Buffer.add_string b (format_version ^ "\n");
  line "key" key;
  line "spec" v.spec_desc;
  line "crit_ps" (Printf.sprintf "%h" v.crit_ps);
  line "fmax_ghz" (Printf.sprintf "%h" v.fmax_ghz);
  line "power_w" (Printf.sprintf "%h" v.power_w);
  line "area_mm2" (Printf.sprintf "%h" v.area_mm2);
  line "tops" (Printf.sprintf "%h" v.tops);
  line "tops_per_w" (Printf.sprintf "%h" v.tops_per_w);
  line "tops_per_mm2" (Printf.sprintf "%h" v.tops_per_mm2);
  line "ops_norm" (Printf.sprintf "%h" v.ops_norm);
  line "timing_closed" (string_of_bool v.timing_closed);
  line "insts" (string_of_int v.insts);
  line "nets" (string_of_int v.nets);
  line "attempts" (string_of_int v.attempts);
  line "boost" (Printf.sprintf "%h" v.boost);
  let body = Buffer.contents b in
  body ^ "#md5 " ^ Digest.to_hex (Digest.string body) ^ "\n"

exception Bad of string

let parse_value ~key text : value =
  (* integrity first: the last line must be the checksum of everything
     before it, so truncation and bit flips both surface here *)
  let fail msg = raise (Bad msg) in
  let text_len = String.length text in
  if text_len = 0 then fail "empty entry";
  let body_end =
    match String.rindex_opt (String.sub text 0 (text_len - 1)) '\n' with
    | Some i -> i + 1
    | None -> fail "single-line entry"
  in
  let body = String.sub text 0 body_end in
  let last = String.trim (String.sub text body_end (text_len - body_end)) in
  (match String.split_on_char ' ' last with
  | [ "#md5"; sum ] ->
      if sum <> Digest.to_hex (Digest.string body) then
        fail "checksum mismatch"
  | _ -> fail "missing checksum line");
  let fields = Hashtbl.create 16 in
  let lines = String.split_on_char '\n' body in
  (match lines with
  | magic :: rest ->
      if magic <> format_version then fail "wrong format version";
      List.iter
        (fun l ->
          if l <> "" then
            match String.index_opt l ' ' with
            | Some i ->
                Hashtbl.replace fields
                  (String.sub l 0 i)
                  (String.sub l (i + 1) (String.length l - i - 1))
            | None -> fail ("malformed line: " ^ l))
        rest
  | [] -> fail "empty entry");
  let str k =
    match Hashtbl.find_opt fields k with
    | Some v -> v
    | None -> fail ("missing field " ^ k)
  in
  let flt k =
    match float_of_string_opt (str k) with
    | Some f -> f
    | None -> fail ("bad float in field " ^ k)
  in
  let int k =
    match int_of_string_opt (str k) with
    | Some i -> i
    | None -> fail ("bad int in field " ^ k)
  in
  let bool k =
    match bool_of_string_opt (str k) with
    | Some v -> v
    | None -> fail ("bad bool in field " ^ k)
  in
  if str "key" <> key then fail "entry key does not match its address";
  {
    spec_desc = str "spec";
    crit_ps = flt "crit_ps";
    fmax_ghz = flt "fmax_ghz";
    power_w = flt "power_w";
    area_mm2 = flt "area_mm2";
    tops = flt "tops";
    tops_per_w = flt "tops_per_w";
    tops_per_mm2 = flt "tops_per_mm2";
    ops_norm = flt "ops_norm";
    timing_closed = bool "timing_closed";
    insts = int "insts";
    nets = int "nets";
    attempts = int "attempts";
    boost = flt "boost";
  }

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

type stats = {
  hits : int;
  misses : int;
  corrupt : int;
  stores : int;
  swept : int;  (** stale temp files reaped when the store was opened *)
}

type t = {
  root : string;
  hit_n : int Atomic.t;
  miss_n : int Atomic.t;
  corrupt_n : int Atomic.t;
  store_n : int Atomic.t;
  swept_n : int Atomic.t;
  tmp_seq : int Atomic.t;
}

(* Disk-cache outcome counts depend only on what is on disk for the keys
   asked about, so they are deterministic; the sweep count depends on
   when a previous writer died, so it is not. *)
let m_hits = Metrics.counter "cache.disk.hits"
let m_misses = Metrics.counter "cache.disk.misses"
let m_corrupt = Metrics.counter "cache.disk.corrupt"
let m_stores = Metrics.counter "cache.disk.stores"
let m_swept = Metrics.counter ~det:false "cache.disk.tmp_swept"

(* A temp file is live for the milliseconds between open and rename; one
   older than this was left by a writer that died mid-store. Generous so
   a stalled NFS writer is never swept out from under itself. *)
let stale_temp_age_s = 600.0

(* Reap orphaned [.tmp-*] files a killed writer left behind. Only files
   with the temp prefix are candidates, and only when their mtime is
   older than {!stale_temp_age_s} — an in-flight write from a concurrent
   process keeps its temp. Unlinking races are benign: whoever loses
   just skips the file. *)
let sweep_stale_temps (dir : string) : int =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | files ->
      let now = Unix.gettimeofday () in
      Array.fold_left
        (fun acc f ->
          if String.length f >= 5 && String.sub f 0 5 = ".tmp-" then
            let path = Filename.concat dir f in
            match Unix.stat path with
            | exception Unix.Unix_error _ -> acc
            | st ->
                if now -. st.Unix.st_mtime > stale_temp_age_s then
                  match Sys.remove path with
                  | () -> acc + 1
                  | exception Sys_error _ -> acc
                else acc
          else acc)
        0 files

(** [open_root dir] — open (creating if needed) the store at [dir],
    reaping any stale temp files a previously killed writer orphaned.
    The parent of [dir] must already exist: a typo'd [--cache-dir]
    should be a one-line error, not a silently created directory tree. *)
let open_root (dir : string) : (t, string) Stdlib.result =
  let mk () =
    let swept = sweep_stale_temps dir in
    Metrics.add m_swept swept;
    Ok
      {
        root = dir;
        hit_n = Atomic.make 0;
        miss_n = Atomic.make 0;
        corrupt_n = Atomic.make 0;
        store_n = Atomic.make 0;
        swept_n = Atomic.make swept;
        tmp_seq = Atomic.make 0;
      }
  in
  if Sys.file_exists dir then
    if Sys.is_directory dir then mk ()
    else Error (Printf.sprintf "cache path %s exists and is not a directory" dir)
  else
    let parent = Filename.dirname dir in
    if Sys.file_exists parent && Sys.is_directory parent then begin
      (match Sys.mkdir dir 0o755 with
      | () -> ()
      | exception Sys_error _ when Sys.file_exists dir ->
          (* another domain/process created it between the check and the
             mkdir: that is exactly the directory we wanted *)
          ());
      mk ()
    end
    else
      Error
        (Printf.sprintf "cache directory parent %s does not exist" parent)

let root (t : t) = t.root
let path_of_key (t : t) k = Filename.concat t.root (k ^ ".entry")

type lookup = Hit of value | Miss | Corrupt of string

(** [lookup t key] — {!Hit} with the stored value, {!Miss} when no entry
    exists, {!Corrupt} (counted as a miss) when an entry exists but fails
    its integrity or parse checks. Never raises. *)
let lookup (t : t) (key : string) : lookup =
  let path = path_of_key t key in
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ ->
      Atomic.incr t.miss_n;
      Metrics.incr m_misses;
      Miss
  | exception End_of_file ->
      Atomic.incr t.corrupt_n;
      Metrics.incr m_corrupt;
      Corrupt "short read"
  | text -> (
      match parse_value ~key text with
      | v ->
          Atomic.incr t.hit_n;
          Metrics.incr m_hits;
          Hit v
      | exception Bad reason ->
          Atomic.incr t.corrupt_n;
          Metrics.incr m_corrupt;
          Corrupt reason)

(** [store t key v] — write the entry atomically: a temp file in the
    store directory, then [rename] over the final name, so a concurrent
    reader (or a second writer racing on the same key) only ever sees a
    complete entry. Write failures are swallowed: the cache is an
    accelerator, and a read-only or full disk must not fail the build. *)
let store (t : t) (key : string) (v : value) : unit =
  let path = path_of_key t key in
  let tmp =
    Filename.concat t.root
      (Printf.sprintf ".tmp-%s-%d-%d" key (Unix.getpid ())
         (Atomic.fetch_and_add t.tmp_seq 1))
  in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (render_value key v));
    Sys.rename tmp path
  with
  | () ->
      Atomic.incr t.store_n;
      Metrics.incr m_stores
  | exception Sys_error _ -> (try Sys.remove tmp with Sys_error _ -> ())

let stats (t : t) : stats =
  {
    hits = Atomic.get t.hit_n;
    misses = Atomic.get t.miss_n;
    corrupt = Atomic.get t.corrupt_n;
    stores = Atomic.get t.store_n;
    swept = Atomic.get t.swept_n;
  }

(** [entry_count t] — complete entries currently on disk. *)
let entry_count (t : t) : int =
  match Sys.readdir t.root with
  | exception Sys_error _ -> 0
  | files ->
      Array.fold_left
        (fun acc f -> if Filename.check_suffix f ".entry" then acc + 1 else acc)
        0 files

let describe (s : stats) =
  Printf.sprintf
    "compile cache: %d hits / %d misses (%d corrupt entries replaced), %d \
     stores%s"
    s.hits s.misses s.corrupt s.stores
    (if s.swept > 0 then Printf.sprintf ", %d stale temp(s) swept" s.swept
     else "")
