(** One evaluated candidate of the searcher: a macro configuration, its
    built netlist, and its measured (pre-layout) PPA at the spec's
    operating point.

    Evaluation = build the netlist, size the critical path toward the
    budget, run static timing, stream a sparse MAC workload for switching
    power, and check both frequency constraints. This plays the role the
    LUT-composed estimate plays in the paper's searcher, with the final
    netlist numbers always taken from the real structure. *)

type t = {
  cfg : Macro_rtl.config;
  macro : Macro_rtl.t;
  sta : Sta.report;  (** post-sizing *)
  crit_ps : float;  (** nominal-voltage critical path after sizing *)
  upsized : int;  (** instances upsized by timing-driven sizing *)
  area_um2 : float;  (** standard-cell area (pre-layout) *)
  power_w : float;  (** at the spec's frequency/voltage, streaming MACs *)
  meets_mac : bool;
  meets_wupd : bool;
  tops : float;  (** native-precision TOPS at the spec frequency *)
}

(** Activity assumptions during search-time power evaluation. *)
let search_input_density = 0.5

let search_weight_density = 0.5
let search_macs = 6

(** [throughput_tops m ~freq_hz] — native ops: one MAC = 2 ops, one word
    per [db] cycles per column group. *)
let throughput_tops (m : Macro_rtl.t) ~freq_hz =
  2.0
  *. float_of_int (m.cfg.rows * m.words)
  *. freq_hz
  /. float_of_int (Macro_rtl.serial_cycles m)
  /. 1e12

(** [measure_power lib m ~freq_hz ~vdd ~input_density ~weight_density
    ~macs] loads sparse random weights and streams [macs] back-to-back
    MACs. Exposed for the experiment harness, which uses the paper's
    measurement sparsity. *)
let measure_power ?(seed = 0xD1C) ?loads lib (m : Macro_rtl.t) ~freq_hz ~vdd
    ~input_density ~weight_density ~macs =
  let rng = Rng.create seed in
  let sim = Sim.create m.design in
  if m.cfg.mcr > 1 then Sim.set_bus sim "copy_sel" 0;
  Testbench.load_weights m sim ~copy:0
    (Testbench.random_weights rng m ~density:weight_density);
  Sim.reset_stats sim;
  Testbench.run_stream m sim ~rng ~macs ~input_density;
  Power.estimate m.design lib sim ~freq_hz ~vdd ?loads ()

(** [measure_power_packed lib m ~freq_hz ~vdd ~input_density
    ~weight_density ~macs] — the bit-sliced Monte Carlo form of
    {!measure_power}: one {!Sim_packed} run streams [macs] MACs in
    [n_lanes] (default all 63) concurrent replicas, each with its own
    random weights and input stream, and the lane-summed toggle
    statistics fold into the standard accounting as the average power of
    one replica ({!Power.estimate_packed}). Same simulated cycle count,
    [n_lanes ×] the sample mass. *)
let measure_power_packed ?(seed = 0xD1C) ?loads ?n_lanes lib
    (m : Macro_rtl.t) ~freq_hz ~vdd ~input_density ~weight_density ~macs =
  let rng = Rng.create seed in
  let sim = Sim_packed.create ?n_lanes m.Macro_rtl.design in
  if m.cfg.mcr > 1 then Sim_packed.set_bus sim "copy_sel" 0;
  Testbench.load_weights_lanes m sim ~copy:0
    (Array.init (Sim_packed.lanes_of sim) (fun _ ->
         Testbench.random_weights rng m ~density:weight_density));
  Sim_packed.reset_stats sim;
  Testbench.run_stream_packed m sim ~rng ~macs ~input_density;
  Power.estimate_packed m.design lib sim ~freq_hz ~vdd ?loads ()

(** [measure_power_sliced (module E) lib m ...] — {!measure_power_packed}
    generalized over the slice engine: any {!Slice.S} implementation
    (63-lane packed, 126/252-lane multi-word) streams the same Monte
    Carlo workload and folds its lane-summed counters through
    {!Power.estimate_activity} with [lanes × cycles] effective cycles.
    Given the same [n_lanes], every engine draws the identical stimulus
    and produces bit-identical counters, hence bit-identical reports —
    the conformance property the test suite pins. *)
let measure_power_sliced (module E : Slice.S) ?(seed = 0xD1C) ?loads
    ?n_lanes lib (m : Macro_rtl.t) ~freq_hz ~vdd ~input_density
    ~weight_density ~macs =
  let module B = Testbench.Sliced (E) in
  let rng = Rng.create seed in
  let sim = E.create ?n_lanes m.Macro_rtl.design in
  if m.cfg.mcr > 1 then E.set_bus sim "copy_sel" 0;
  B.load_weights_lanes m sim ~copy:0
    (Array.init (E.lanes_of sim) (fun _ ->
         Testbench.random_weights rng m ~density:weight_density));
  E.reset_stats sim;
  B.run_stream m sim ~rng ~macs ~input_density;
  Power.estimate_activity m.design lib ~toggles:(E.toggles sim)
    ~en_cycles:(E.en_cycles sim)
    ~cycles:(E.cycles sim * E.lanes_of sim)
    ~weight_flips:(E.weight_flips sim) ~freq_hz ~vdd ?loads ()

(** [evaluate lib spec cfg] builds and measures one candidate. *)
let evaluate (lib : Library.t) (spec : Spec.t) (cfg : Macro_rtl.config) : t =
  let macro = Macro_rtl.build lib cfg in
  let budget = Spec.search_budget_ps spec lib.Library.node in
  let sized = Sizing.speed_up macro.design lib ~target_ps:budget in
  (* drives are final after sizing: one load map serves STA and power *)
  let loads = Ir.fanout_loads macro.design lib () in
  let sta = Sta.analyze ~loads macro.design lib in
  let stats = Stats.of_design macro.design lib in
  let power =
    measure_power ~loads lib macro ~freq_hz:spec.Spec.mac_freq_hz
      ~vdd:spec.Spec.vdd ~input_density:search_input_density
      ~weight_density:search_weight_density ~macs:search_macs
  in
  let wupd_ps =
    Driver.weight_update_ps lib ~rows:spec.Spec.rows
    *. Voltage.delay_scale lib.Library.node ~vdd:spec.Spec.vdd
  in
  {
    cfg;
    macro;
    sta;
    crit_ps = sta.Sta.crit_ps;
    upsized = sized.Sizing.upsized;
    area_um2 = stats.Stats.area_um2;
    power_w = power.Power.total_w;
    meets_mac = sta.Sta.crit_ps <= budget +. 0.5;
    meets_wupd = wupd_ps <= 1e12 /. spec.Spec.weight_update_freq_hz;
    tops = throughput_tops macro ~freq_hz:spec.Spec.mac_freq_hz;
  }

(** Which pipeline stage owns the critical path: the dominant subcircuit
    tag among the combinational instances on it. Drives Algorithm 1's
    branch between MAC-path and OFU-path techniques. *)
type stage = Mac_path | Ofu_path | Sa_path | Align_path

let stage_name = function
  | Mac_path -> "mac"
  | Ofu_path -> "ofu"
  | Sa_path -> "shift_adder"
  | Align_path -> "fp_align"

let critical_stage (p : t) : stage =
  let share = Hashtbl.create 8 in
  let bump key w =
    let cur = try Hashtbl.find share key with Not_found -> 0.0 in
    Hashtbl.replace share key (cur +. w)
  in
  let design = p.macro.Macro_rtl.design in
  List.iter
    (fun (s : Sta.path_step) ->
      if s.Sta.inst >= 0 then
        let inst = design.Ir.insts.(s.Sta.inst) in
        if not (Cell.is_sequential inst.Ir.kind) then
          let key =
            match inst.Ir.tag with
            | Ir.Subcircuit ("wl_driver" | "mulmux" | "adder_tree") -> Mac_path
            | Ir.Weight_bit _ -> Mac_path
            | Ir.Subcircuit "ofu" -> Ofu_path
            | Ir.Subcircuit "shift_adder" -> Sa_path
            | Ir.Subcircuit "fp_align" -> Align_path
            | Ir.Subcircuit _ | Ir.Pipeline_reg _ | Ir.Plain -> Mac_path
          in
          bump key 1.0)
    p.sta.Sta.path;
  let best = ref Mac_path and best_w = ref 0.0 in
  Hashtbl.iter
    (fun k w ->
      if w > !best_w then begin
        best := k;
        best_w := w
      end)
    share;
  !best

let summary (p : t) =
  Printf.sprintf
    "%s tree, split=%d, mul=%s, regs(tree=%b,sa=%b), retime(rca=%b,ofu=%b), \
     pipe=%b: crit %.0f ps, %.2f mW, %.3f mm2, %s"
    (Adder_tree.topology_name p.cfg.tree)
    p.cfg.tree_split
    (Cell.kind_to_string (Cell.Mul p.cfg.mul_kind))
    p.cfg.reg_after_tree p.cfg.reg_sa_to_ofu p.cfg.retime_final_rca
    p.cfg.ofu_retime p.cfg.ofu_extra_pipe p.crit_ps (p.power_w *. 1e3)
    (p.area_um2 /. 1e6)
    (if p.meets_mac then "MEETS" else "VIOLATES")
