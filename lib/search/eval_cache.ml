(** Memoizing design-point cache.

    [Design_point.evaluate] is a pure function of the candidate
    configuration and the spec's operating point, and the searcher's four
    per-preference greedy walks plus the exploration lattice revisit the
    same early configurations over and over — Algorithm 1 step 1 starts
    every walk from the same initial config, and steps 2/3 retrace shared
    prefixes. Caching on a canonical key makes every revisit free and is
    safe to share across domains: shards are mutex-guarded, and entries
    are deterministic, so a rare double-compute race is only wasted work.

    The cache must not outlive mutation of its values: the compiler's ECO
    loop resizes a design's instance drives in place, so cached points are
    only handed to consumers that treat the netlist as frozen (the sweep
    machinery). Scope a cache per sweep. *)

type stats = { hits : int; misses : int }

let zero_stats = { hits = 0; misses = 0 }

(** [combine_stats a b] — counter totals, for rolling per-attempt or
    per-spec stats up into sweep and batch aggregates. *)
let combine_stats a b = { hits = a.hits + b.hits; misses = a.misses + b.misses }

let shard_count = 16

(* Nondeterministic by design: two domains racing a cold key both count
   a miss (the "rare double-compute race" above), so the totals vary
   with scheduling and must stay out of the deterministic fingerprint. *)
let m_hits = Metrics.counter ~det:false "cache.eval.hits"
let m_misses = Metrics.counter ~det:false "cache.eval.misses"

type t = {
  shards : (string, Design_point.t) Hashtbl.t array;
  locks : Mutex.t array;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create () =
  {
    shards = Array.init shard_count (fun _ -> Hashtbl.create 64);
    locks = Array.init shard_count (fun _ -> Mutex.create ());
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

(* Canonical serialization of everything [Design_point.evaluate] reads:
   every [Macro_rtl.config] field plus the spec's operating point (MAC and
   weight-update frequency targets and VDD — the preference does not
   influence an evaluation, which is exactly why walks under different
   preferences can share entries). Floats print as %h so distinct
   operating points can never collide. *)
let key (spec : Spec.t) (cfg : Macro_rtl.config) : string =
  let tree =
    match cfg.Macro_rtl.tree with
    | Adder_tree.Rca_tree -> "rca"
    | Adder_tree.Csa { fa_ratio; reorder } ->
        Printf.sprintf "csa:%h:%b" fa_ratio reorder
  in
  Printf.sprintf
    "%dx%dx%d|i%s|w%s|cell%s|mul%s|tree%s|sa%s|split%d|rt%b|rca%b|rs%b|or%b|op%b|of%b|ap%d|ro%b|wc%b|f%h|wu%h|v%h"
    cfg.Macro_rtl.rows cfg.Macro_rtl.cols cfg.Macro_rtl.mcr
    (Precision.name cfg.Macro_rtl.input_prec)
    (Precision.name cfg.Macro_rtl.weight_prec)
    (Cell.kind_to_string (Cell.Sram cfg.Macro_rtl.cell_kind))
    (Cell.kind_to_string (Cell.Mul cfg.Macro_rtl.mul_kind))
    tree
    (Shift_adder.kind_name cfg.Macro_rtl.sa_kind)
    cfg.Macro_rtl.tree_split cfg.Macro_rtl.reg_after_tree
    cfg.Macro_rtl.retime_final_rca cfg.Macro_rtl.reg_sa_to_ofu
    cfg.Macro_rtl.ofu_retime cfg.Macro_rtl.ofu_extra_pipe
    cfg.Macro_rtl.ofu_fast_adder cfg.Macro_rtl.align_pipeline
    cfg.Macro_rtl.reg_output cfg.Macro_rtl.with_controller
    spec.Spec.mac_freq_hz spec.Spec.weight_update_freq_hz spec.Spec.vdd

let shard_of t k = Hashtbl.hash k mod Array.length t.shards

(** [evaluate t lib spec cfg] — {!Design_point.evaluate} through the
    cache. A hit returns the stored point itself (physical equality), so
    overlapping walks share one evaluation. *)
let evaluate (t : t) lib (spec : Spec.t) (cfg : Macro_rtl.config) :
    Design_point.t =
  let k = key spec cfg in
  let s = shard_of t k in
  let tbl = t.shards.(s) and lock = t.locks.(s) in
  match Mutex.protect lock (fun () -> Hashtbl.find_opt tbl k) with
  | Some p ->
      Atomic.incr t.hits;
      Metrics.incr m_hits;
      p
  | None ->
      let p = Design_point.evaluate lib spec cfg in
      Atomic.incr t.misses;
      Metrics.incr m_misses;
      Mutex.protect lock (fun () ->
          (* keep the first stored point so later hits stay physically
             equal to earlier ones even if two domains raced *)
          match Hashtbl.find_opt tbl k with
          | Some p' -> p'
          | None ->
              Hashtbl.add tbl k p;
              p)

let stats (t : t) =
  { hits = Atomic.get t.hits; misses = Atomic.get t.misses }

let size (t : t) =
  Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 t.shards

let describe (s : stats) =
  let total = s.hits + s.misses in
  Printf.sprintf "eval cache: %d hits / %d misses (%.0f %% hit rate)" s.hits
    s.misses
    (if total = 0 then 0.0
     else 100.0 *. float_of_int s.hits /. float_of_int total)
