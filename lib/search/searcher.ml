(** The multi-spec-oriented (MSO) searcher: the paper's Algorithm 1,
    "Heuristic Hierarchical Search".

    Step 1 sets every subcircuit from the spec (or its default). Step 2
    closes timing: while the MAC path (WL driver → multiplier → adder
    tree) violates, it applies throughput techniques tt1 (a faster adder
    tree from the SCL), tt2 (retime the tree's output register before the
    final RCA) and tt3 (split the column height) in sequence; while the
    OFU path violates, tt4 (retime fusion logic into the S&A stage) and
    tt5 (an extra OFU pipeline stage). Cell sizing acts as the synthesis
    engine's own effort within each evaluation. Step 3 recovers latency by
    removing pipeline registers that the remaining slack allows. Step 4
    fine-tunes toward the spec's PPA preference by substituting
    power/area-efficient subcircuits while timing still closes.

    The searcher records every point it evaluates, so a Pareto sweep over
    preferences falls out of the same machinery. *)

type technique =
  | Tt1_faster_adder of Adder_tree.topology
  | Tt1_faster_sa of Shift_adder.kind
  | Tt1_faster_ofu_adder
  | Tt2_retime_tree
  | Tt3_split_column of int
  | Tt4_retime_ofu
  | Tt5_pipe_ofu
  | Align_pipe of int
  | Fuse_tree_sa
  | Fuse_sa_ofu
  | Ft_substitute of string

let technique_name = function
  | Tt1_faster_adder t ->
      Printf.sprintf "tt1: faster adder (%s)" (Adder_tree.topology_name t)
  | Tt1_faster_sa k ->
      Printf.sprintf "tt1: faster shift-adder (%s)" (Shift_adder.kind_name k)
  | Tt1_faster_ofu_adder -> "tt1: carry-select adders in the OFU"
  | Tt2_retime_tree -> "tt2: retime tree output register before final RCA"
  | Tt3_split_column s -> Printf.sprintf "tt3: split column height (x%d)" s
  | Tt4_retime_ofu -> "tt4: retime OFU stage into S&A"
  | Tt5_pipe_ofu -> "tt5: extra OFU pipeline stage"
  | Align_pipe n -> Printf.sprintf "deepen FP aligner pipeline (%d)" n
  | Fuse_tree_sa -> "latency: fuse adder tree with S&A (drop register)"
  | Fuse_sa_ofu -> "latency: fuse S&A with OFU (drop register)"
  | Ft_substitute s -> Printf.sprintf "ft: substitute %s" s

(** Version tag of the search algorithm, folded into the persistent
    compile-cache key ({!Disk_cache}). Bump it whenever a change to the
    technique ladders, the evaluation model or the walk order can alter
    which design a spec compiles to, so a newer searcher never serves a
    stale cached result. *)
let algorithm_version = "mso-hhs-1"

type result = {
  spec : Spec.t;
  final : Design_point.t;
  applied : technique list;  (** in application order *)
  visited : Design_point.t list;  (** every evaluated point *)
  timing_closed : bool;
}

(* Candidate next configuration for a violating stage, or None when the
   technique ladder for that stage is exhausted. *)
let next_mac_technique scl (cfg : Macro_rtl.config) =
  match Scl.faster_tree scl ~rows:(cfg.rows / cfg.tree_split) ~than:cfg.tree with
  | Some topo -> Some (Tt1_faster_adder topo, { cfg with tree = topo })
  | None ->
      if not cfg.retime_final_rca then
        Some (Tt2_retime_tree, { cfg with retime_final_rca = true })
      else if cfg.tree_split < 4 && cfg.rows mod (cfg.tree_split * 2) = 0
      then
        let s = cfg.tree_split * 2 in
        Some (Tt3_split_column s, { cfg with tree_split = s })
      else None

let next_sa_technique (cfg : Macro_rtl.config) =
  match cfg.sa_kind with
  | Shift_adder.Ripple ->
      Some
        ( Tt1_faster_sa Shift_adder.Lsb_right,
          { cfg with sa_kind = Shift_adder.Lsb_right } )
  | Shift_adder.Lsb_right ->
      Some
        ( Tt1_faster_sa Shift_adder.Carry_save,
          { cfg with sa_kind = Shift_adder.Carry_save } )
  | Shift_adder.Carry_save -> None

let next_ofu_technique (cfg : Macro_rtl.config) =
  if not cfg.ofu_fast_adder then
    Some (Tt1_faster_ofu_adder, { cfg with ofu_fast_adder = true })
  else if not cfg.ofu_retime then
    Some (Tt4_retime_ofu, { cfg with ofu_retime = true })
  else if not cfg.ofu_extra_pipe then
    Some (Tt5_pipe_ofu, { cfg with ofu_extra_pipe = true })
  else None

let next_align_technique (cfg : Macro_rtl.config) =
  if cfg.align_pipeline < 3 then
    Some
      ( Align_pipe (cfg.align_pipeline + 1),
        { cfg with align_pipeline = cfg.align_pipeline + 1 } )
  else None

(* Evaluation entry point for every search step: through the shared
   memoizing cache when one is given, direct otherwise. *)
let evaluate_via ?cache lib spec cfg =
  match cache with
  | Some c -> Eval_cache.evaluate c lib spec cfg
  | None -> Design_point.evaluate lib spec cfg

(* Step 2: timing closure. Budget-limited to a dozen structural moves. *)
let close_timing ?cache lib scl spec cfg0 =
  let visited = ref [] in
  let eval cfg =
    let p = evaluate_via ?cache lib spec cfg in
    visited := p :: !visited;
    p
  in
  let rec go cfg applied round =
    let p = eval cfg in
    if p.Design_point.meets_mac || round > 12 then (p, List.rev applied)
    else
      let move =
        match Design_point.critical_stage p with
        | Design_point.Mac_path -> next_mac_technique scl cfg
        | Design_point.Ofu_path -> (
            match next_ofu_technique cfg with
            | Some m -> Some m
            | None -> next_mac_technique scl cfg)
        | Design_point.Sa_path -> (
            match next_sa_technique cfg with
            | Some m -> Some m
            | None -> next_mac_technique scl cfg)
        | Design_point.Align_path -> next_align_technique cfg
      in
      match move with
      | None -> (p, List.rev applied)
      | Some (t, cfg') -> go cfg' (t :: applied) (round + 1)
  in
  let p, applied = go cfg0 [] 0 in
  (p, applied, !visited)

(* Step 3: remove pipeline registers while timing still closes. *)
let recover_latency ?cache lib spec (p : Design_point.t) =
  let visited = ref [] in
  let try_cfg tech (cur : Design_point.t) cfg =
    let q = evaluate_via ?cache lib spec cfg in
    visited := q :: !visited;
    if q.Design_point.meets_mac then (q, [ tech ]) else (cur, [])
  in
  let cfg = p.Design_point.cfg in
  let p, a1 =
    if cfg.reg_after_tree && cfg.reg_sa_to_ofu then
      try_cfg Fuse_tree_sa p
        { cfg with reg_after_tree = false; retime_final_rca = false }
    else (p, [])
  in
  let cfg = p.Design_point.cfg in
  let p, a2 =
    if cfg.reg_sa_to_ofu && not cfg.ofu_retime then
      try_cfg Fuse_sa_ofu p { cfg with reg_sa_to_ofu = false }
    else (p, [])
  in
  (p, a1 @ a2, !visited)

(* Step 4: preference-oriented substitutions, kept while timing closes and
   the preferred objective improves. *)
let fine_tune ?cache lib spec (p : Design_point.t) =
  let visited = ref [] in
  let better (q : Design_point.t) (cur : Design_point.t) =
    match spec.Spec.preference with
    | Spec.Prefer_power -> q.power_w < cur.power_w
    | Spec.Prefer_area -> q.area_um2 < cur.area_um2
    | Spec.Prefer_performance -> q.crit_ps < cur.crit_ps
    | Spec.Balanced ->
        q.power_w *. q.area_um2 < cur.power_w *. cur.area_um2
  in
  let try_sub name (cur : Design_point.t) cfg =
    let q = evaluate_via ?cache lib spec cfg in
    visited := q :: !visited;
    if q.Design_point.meets_mac && better q cur then
      (q, [ Ft_substitute name ])
    else (cur, [])
  in
  let cfg = p.Design_point.cfg in
  let candidates =
    match spec.Spec.preference with
    | Spec.Prefer_power | Spec.Balanced ->
        (* ft1: more compressors in the tree; ft2: low-leak mulmux *)
        [
          ( "compressor-heavier adder tree",
            {
              cfg with
              tree = Adder_tree.Csa { fa_ratio = 0.0; reorder = true };
            } );
          ("TG+NOR multiplier", { cfg with mul_kind = Cell.Tg_nor });
        ]
    | Spec.Prefer_area ->
        (* ft3: area-efficient multiplier/mux and cell *)
        [
          ("1T pass-gate multiplier", { cfg with mul_kind = Cell.Pass_1t });
          ("6T bit cell", { cfg with cell_kind = Cell.S6t });
        ]
        @
        (if cfg.mcr <= 2 then
           [
             ( "fused OAI22 multiplier+mux",
               { cfg with mul_kind = Cell.Oai22_fused } );
           ]
         else [])
    | Spec.Prefer_performance ->
        [
          ( "FA-heavy reordered adder tree",
            {
              cfg with
              tree = Adder_tree.Csa { fa_ratio = 1.0; reorder = true };
            } );
          ("8T bit cell (stronger read)", { cfg with cell_kind = Cell.S8t });
        ]
  in
  let p, applied =
    List.fold_left
      (fun (cur, acc) (name, cfg) ->
        let cur', a = try_sub name cur { cfg with tree_split = cur.Design_point.cfg.tree_split } in
        (cur', acc @ a))
      (p, []) candidates
  in
  (p, applied, !visited)

(** [search ?cache lib scl spec] runs the full Algorithm 1 pipeline.
    [cache] memoizes candidate evaluations, so overlapping walks (e.g.
    the four preference searches of a Pareto sweep) evaluate each design
    point once. *)
let search ?cache lib scl (spec : Spec.t) : result =
  let cfg0 = Spec.initial_config spec in
  let p1, a1, v1 = close_timing ?cache lib scl spec cfg0 in
  if not p1.Design_point.meets_mac then
    {
      spec;
      final = p1;
      applied = a1;
      visited = List.rev v1;
      timing_closed = false;
    }
  else
    let p2, a2, v2 = recover_latency ?cache lib spec p1 in
    let p3, a3, v3 = fine_tune ?cache lib spec p2 in
    {
      spec;
      final = p3;
      applied = a1 @ a2 @ a3;
      visited = List.rev (v3 @ v2 @ v1);
      timing_closed = true;
    }

(** Curated configuration lattice evaluated on top of the per-preference
    searches during a Pareto sweep: the paper's searcher emits "a series
    of DCIM designs at Pareto frontiers ... partly biased towards energy
    efficiency and partly towards area efficiency", which needs more
    diversity than the four greedy walks alone visit. *)
let exploration_lattice (spec : Spec.t) =
  let base = Spec.initial_config spec in
  let trees =
    [
      Adder_tree.Csa { fa_ratio = 0.0; reorder = true };
      Adder_tree.Csa { fa_ratio = 0.35; reorder = true };
      Adder_tree.Csa { fa_ratio = 1.0; reorder = true };
    ]
  in
  let sas = [ Shift_adder.Lsb_right; Shift_adder.Carry_save ] in
  let muls =
    Cell.Tg_nor :: Cell.Pass_1t
    :: (if spec.Spec.mcr <= 2 then [ Cell.Oai22_fused ] else [])
  in
  List.concat_map
    (fun tree ->
      List.concat_map
        (fun sa_kind ->
          List.map
            (fun mul_kind ->
              {
                base with
                Macro_rtl.tree;
                sa_kind;
                mul_kind;
                ofu_retime = true;
                ofu_fast_adder = sa_kind = Shift_adder.Carry_save;
              })
            muls)
        sas)
    trees

(** [pareto_sweep ?jobs ?cache lib scl spec] runs the searcher under every
    PPA preference, adds the exploration lattice, and returns the Pareto
    frontier over (power, area) of all timing-meeting points plus the
    full cloud — the paper's Fig. 8 series of design points.

    The four preference searches and the lattice evaluations are
    independent pure computations, so they fan out over a domain pool
    ([?jobs], default {!Pool.default_jobs}); a shared {!Eval_cache}
    deduplicates the walks' overlapping prefixes. Results are bit-for-bit
    identical for any job count: order is preserved by the pool and every
    evaluation is deterministic. Pass [?cache] to observe hit/miss
    statistics. *)
let pareto_sweep ?jobs ?cache lib scl (spec : Spec.t) =
  let cache = match cache with Some c -> c | None -> Eval_cache.create () in
  let prefs =
    [
      Spec.Prefer_power; Spec.Prefer_area; Spec.Prefer_performance;
      Spec.Balanced;
    ]
  in
  let searched =
    Pool.parallel_map ?jobs
      (fun preference ->
        let r = search ~cache lib scl { spec with preference } in
        r.visited)
      prefs
    |> List.concat
  in
  let explored =
    Pool.parallel_map ?jobs
      (Eval_cache.evaluate cache lib spec)
      (exploration_lattice spec)
  in
  let all = searched @ explored in
  let meeting = List.filter (fun p -> p.Design_point.meets_mac) all in
  (* three objectives: the paper's "top designs are energy-efficient with
     low power, the right designs are area-efficient with small area or
     high throughput" — throughput headroom is the (negated) critical
     path *)
  let objectives (p : Design_point.t) =
    [| p.power_w; p.area_um2; p.crit_ps |]
  in
  let front = Pareto.frontier ~objectives meeting in
  (front, meeting)
