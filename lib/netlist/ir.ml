(** Gate-level netlist intermediate representation.

    A netlist is a set of cell instances connected by integer-identified
    nets, with named input/output buses. Nets 0 and 1 are the constant-0
    and constant-1 nets. A netlist under construction is mutable; {!freeze}
    validates it (single driver per net, no combinational cycles) and
    derives the views the simulator, STA and power engines need. *)

type net = int

(** Semantic label attached to an instance so higher layers can address it:
    weight bits are written by the test bench / BL driver model, and
    pipeline registers are what the searcher's retiming moves. *)
type tag =
  | Plain
  | Weight_bit of { row : int; col : int; copy : int }
  | Pipeline_reg of string
  | Subcircuit of string
      (** which paper subcircuit the instance belongs to, e.g. "adder_tree";
          used for per-subcircuit PPA breakdowns *)

type inst = {
  kind : Cell.kind;
  mutable drive : Cell.drive;  (** mutable: the sizing fine-tuning pass *)
  ins : net array;
  outs : net array;
  tag : tag;
}

type t = {
  mutable n_nets : int;
  insts : inst Vec.t;
  mutable inputs : (string * net array) list;  (** named input buses *)
  mutable outputs : (string * net array) list;  (** named output buses *)
  mutable name : string;
}

let const0 : net = 0
let const1 : net = 1

let create ?(name = "top") () =
  let dummy =
    { kind = Cell.Inv; drive = Cell.X1; ins = [||]; outs = [||]; tag = Plain }
  in
  { n_nets = 2; insts = Vec.create dummy; inputs = []; outputs = []; name }

(** [new_net t] allocates a fresh net. *)
let new_net t =
  let n = t.n_nets in
  t.n_nets <- n + 1;
  n

(** [new_bus t width] allocates [width] fresh nets, LSB first. *)
let new_bus t width = Array.init width (fun _ -> new_net t)

(** [add t kind ~ins ~outs] appends an instance and returns its id. *)
let add ?(tag = Plain) ?(drive = Cell.X1) t kind ~ins ~outs =
  assert (Array.length ins = Cell.n_inputs kind);
  assert (Array.length outs = Cell.n_outputs kind);
  Vec.push t.insts { kind; drive; ins; outs; tag }

(** [add_input t name bus] registers a named primary input bus. *)
let add_input t name bus = t.inputs <- t.inputs @ [ (name, bus) ]

(** [add_output t name bus] registers a named primary output bus. *)
let add_output t name bus = t.outputs <- t.outputs @ [ (name, bus) ]

let find_bus buses name =
  match List.assoc_opt name buses with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Ir: no bus named %s" name)

let input_bus t = find_bus t.inputs
let output_bus t = find_bus t.outputs

(** A frozen, validated netlist with derived connectivity. *)
type design = {
  src : t;
  insts : inst array;
  n_nets : int;
  driver : (int * int) option array;  (** net -> (inst, out pin) *)
  consumers : (int * int) list array;  (** net -> [(inst, in pin)] *)
  comb_order : int array;
      (** combinational instances in topological evaluation order *)
  seq : int array;  (** DFF-like instances *)
  storage : int array;  (** SRAM storage instances *)
  weight_index : (int * int * int, int) Hashtbl.t;
      (** (row, col, copy) -> storage instance id *)
}

exception Multiple_drivers of net
exception Combinational_cycle of int

(** [freeze t] validates and derives the evaluation views. Raises
    {!Multiple_drivers} or {!Combinational_cycle} on malformed input. *)
let freeze (t : t) : design =
  let insts = Vec.to_array t.insts in
  let n_nets = t.n_nets in
  let driver = Array.make n_nets None in
  let consumers = Array.make n_nets [] in
  Array.iteri
    (fun i inst ->
      Array.iteri
        (fun o net ->
          (match driver.(net) with
          | Some _ -> raise (Multiple_drivers net)
          | None -> ());
          driver.(net) <- Some (i, o))
        inst.outs;
      Array.iteri
        (fun p net -> consumers.(net) <- (i, p) :: consumers.(net))
        inst.ins)
    insts;
  (* Topological order over combinational instances only: sequential and
     storage outputs are sources, so they never appear in the dependency
     graph as producers. *)
  let is_comb i =
    let k = insts.(i).kind in
    (not (Cell.is_sequential k)) && not (Cell.is_storage k)
  in
  let indeg = Array.make (Array.length insts) 0 in
  Array.iteri
    (fun i inst ->
      if is_comb i then
        Array.iter
          (fun net ->
            match driver.(net) with
            | Some (j, _) when is_comb j -> indeg.(i) <- indeg.(i) + 1
            | Some _ | None -> ())
          inst.ins)
    insts;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if is_comb i && d = 0 then Queue.add i queue) indeg;
  let order = Vec.create 0 in
  let seen = ref 0 in
  let n_comb = ref 0 in
  Array.iteri (fun i _ -> if is_comb i then incr n_comb) insts;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    ignore (Vec.push order i);
    incr seen;
    Array.iter
      (fun net ->
        List.iter
          (fun (j, _) ->
            if is_comb j then begin
              indeg.(j) <- indeg.(j) - 1;
              if indeg.(j) = 0 then Queue.add j queue
            end)
          consumers.(net))
      insts.(i).outs
  done;
  if !seen <> !n_comb then begin
    (* find one instance stuck in a cycle for the error message *)
    let stuck = ref (-1) in
    Array.iteri
      (fun i d -> if is_comb i && d > 0 && !stuck < 0 then stuck := i)
      indeg;
    raise (Combinational_cycle !stuck)
  end;
  let seq = Vec.create 0 and storage = Vec.create 0 in
  let weight_index = Hashtbl.create 1024 in
  Array.iteri
    (fun i inst ->
      if Cell.is_sequential inst.kind then ignore (Vec.push seq i);
      if Cell.is_storage inst.kind then begin
        ignore (Vec.push storage i);
        match inst.tag with
        | Weight_bit { row; col; copy } ->
            Hashtbl.replace weight_index (row, col, copy) i
        | Plain | Pipeline_reg _ | Subcircuit _ -> ()
      end)
    insts;
  {
    src = t;
    insts;
    n_nets;
    driver;
    consumers;
    comb_order = Vec.to_array order;
    seq = Vec.to_array seq;
    storage = Vec.to_array storage;
    weight_index;
  }

(** [n_insts d] is the number of instances. *)
let n_insts d = Array.length d.insts

(** [fanout_load d lib ~wire_cap net] is the capacitive load on [net]: the
    input-pin capacitance of every consumer plus optional routed-wire
    capacitance from the layout. *)
let fanout_load (d : design) (lib : Library.t) ?(wire_cap = fun _ -> 0.0) net =
  let pins =
    List.fold_left
      (fun acc (i, p) ->
        let inst = d.insts.(i) in
        let prm = Library.params lib inst.kind inst.drive in
        ignore p;
        acc +. prm.input_cap_ff)
      0.0 d.consumers.(net)
  in
  pins +. wire_cap net

(** [fanout_loads d lib ~wire_cap ()] — {!fanout_load} for every net at
    once, as one array indexed by net id. STA forward/backward passes and
    the power estimator all walk loads per net per iteration; computing
    the map once per frozen design (per sizing round — loads depend on
    the mutable instance drives) and sharing it replaces thousands of
    consumer-list folds per evaluation. *)
let fanout_loads (d : design) (lib : Library.t) ?(wire_cap = fun _ -> 0.0) ()
    : float array =
  let loads = Array.make d.n_nets 0.0 in
  Array.iter
    (fun inst ->
      let prm = Library.params lib inst.kind inst.drive in
      let cap = prm.Library.input_cap_ff in
      Array.iter (fun net -> loads.(net) <- loads.(net) +. cap) inst.ins)
    d.insts;
  for net = 0 to d.n_nets - 1 do
    loads.(net) <- loads.(net) +. wire_cap net
  done;
  loads
