(** Cycle-accurate functional simulator with toggle counting.

    Drives a frozen design one clock cycle at a time: set the primary
    inputs, {!eval} settles combinational logic in topological order,
    {!clock} commits every flip-flop. SRAM storage bits are written through
    {!set_weight} (the BL-driver write path), and every write that flips a
    bit is charged SRAM write energy.

    Toggle counts per net accumulate across the run; the power engine
    multiplies them by per-cell switching energies. *)

type t = {
  d : Ir.design;
  values : bool array;  (** current value per net *)
  seq_state : bool array;  (** per instance id; only sequential slots used *)
  storage_state : bool array;  (** per instance id; only storage slots used *)
  toggles : int array;  (** output toggle count per net *)
  en_cycles : int array;
      (** per instance: cycles an enabled flip-flop saw its enable high —
          the clock-gating duty the power model charges instead of every
          cycle *)
  mutable cycles : int;
  mutable weight_flips : int;  (** SRAM bits flipped by writes *)
  mutable weight_writes : int;  (** SRAM write operations *)
  scratch_ins : bool array;
      (** {!eval} staging buffer, {!Cell.max_inputs} wide — reused for
          every instance so the settle loop allocates nothing *)
  scratch_outs : bool array;  (** same, {!Cell.max_outputs} wide *)
  seq_next : bool array;  (** {!clock}'s next-state staging, per seq slot *)
}

let create (d : Ir.design) =
  let n = Ir.n_insts d in
  let t =
    {
      d;
      values = Array.make d.n_nets false;
      seq_state = Array.make (max n 1) false;
      storage_state = Array.make (max n 1) false;
      toggles = Array.make d.n_nets 0;
      en_cycles = Array.make (max n 1) 0;
      cycles = 0;
      weight_flips = 0;
      weight_writes = 0;
      scratch_ins = Array.make Cell.max_inputs false;
      scratch_outs = Array.make Cell.max_outputs false;
      seq_next = Array.make (max (Array.length d.seq) 1) false;
    }
  in
  t.values.(Ir.const1) <- true;
  t

let set_net t net v =
  if t.values.(net) <> v then begin
    t.values.(net) <- v;
    t.toggles.(net) <- t.toggles.(net) + 1
  end

(** [set_bus t name v] drives the named input bus with the low bits of the
    (possibly signed) integer [v]. *)
let set_bus t name v =
  let bus = Ir.input_bus t.d.src name in
  Array.iteri (fun i net -> set_net t net ((v asr i) land 1 = 1)) bus

(** [set_bus_bits t name bits] drives the named input bus bit-by-bit. *)
let set_bus_bits t name bits =
  let bus = Ir.input_bus t.d.src name in
  assert (Array.length bits = Array.length bus);
  Array.iteri (fun i net -> set_net t net bits.(i)) bus

(** [read_bus t name] reads the named output bus as an unsigned integer.
    Allocation-free: it runs once per result group per MAC in the bench
    hot path. *)
let read_bus t name =
  let bus = Ir.output_bus t.d.src name in
  let v = ref 0 in
  for i = 0 to Array.length bus - 1 do
    if t.values.(bus.(i)) then v := !v lor (1 lsl i)
  done;
  !v

(** [read_bus_signed t name] reads the named output bus as a signed
    two's-complement integer. *)
let read_bus_signed t name =
  let bus = Ir.output_bus t.d.src name in
  Intmath.sign_extend ~width:(Array.length bus) (read_bus t name)

(** [set_weight t ~row ~col ~copy bit] writes one SRAM weight bit through
    its (row, col, copy) address. *)
let set_weight t ~row ~col ~copy bit =
  match Hashtbl.find_opt t.d.weight_index (row, col, copy) with
  | None ->
      invalid_arg
        (Printf.sprintf "Sim.set_weight: no weight bit (%d,%d,%d)" row col
           copy)
  | Some i ->
      t.weight_writes <- t.weight_writes + 1;
      if t.storage_state.(i) <> bit then begin
        t.storage_state.(i) <- bit;
        t.weight_flips <- t.weight_flips + 1
      end;
      set_net t t.d.insts.(i).outs.(0) bit

(** [eval t] settles all combinational logic from the current inputs and
    register/storage state. Allocation-free: inputs and outputs stage
    through the simulator's scratch buffers ({!Cell.eval_into}), which
    matters because this loop runs per instance on every cycle of every
    power simulation the searcher issues. *)
let eval t =
  let d = t.d in
  let ins_buf = t.scratch_ins and outs_buf = t.scratch_outs in
  let values = t.values in
  Array.iter
    (fun i ->
      let inst = d.insts.(i) in
      let ins = inst.Ir.ins in
      for p = 0 to Array.length ins - 1 do
        ins_buf.(p) <- values.(ins.(p))
      done;
      Cell.eval_into inst.Ir.kind ins_buf outs_buf;
      let outs = inst.Ir.outs in
      for o = 0 to Array.length outs - 1 do
        set_net t outs.(o) outs_buf.(o)
      done)
    d.comb_order

(** [clock t] commits every flip-flop: a plain DFF captures D, an
    enabled DFF captures D only when EN is high. New Q values are driven
    onto the nets; call {!eval} afterwards to propagate. *)
let clock t =
  let d = t.d in
  let next = t.seq_next in
  Array.iteri
    (fun idx i ->
      let inst = d.insts.(i) in
      next.(idx) <-
        (match inst.kind with
        | Cell.Dff -> t.values.(inst.ins.(0))
        | Cell.Dff_en ->
            if t.values.(inst.ins.(1)) then begin
              t.en_cycles.(i) <- t.en_cycles.(i) + 1;
              t.values.(inst.ins.(0))
            end
            else t.seq_state.(i)
        | _ -> assert false))
    d.seq;
  Array.iteri
    (fun idx i ->
      t.seq_state.(i) <- next.(idx);
      set_net t t.d.insts.(i).outs.(0) next.(idx))
    d.seq;
  t.cycles <- t.cycles + 1

(** [step t] = eval then clock: one full cycle with inputs already set. *)
let step t =
  eval t;
  clock t

(** [reset_stats t] clears toggle and cycle counters (state is kept), so
    warm-up cycles can be excluded from power measurement. *)
let reset_stats t =
  Array.fill t.toggles 0 (Array.length t.toggles) 0;
  Array.fill t.en_cycles 0 (Array.length t.en_cycles) 0;
  t.cycles <- 0;
  t.weight_flips <- 0;
  t.weight_writes <- 0
