(** Random-vector combinational/sequential equivalence checking between
    two designs with the same I/O interface.

    The searcher's retiming and fusion moves must never change what a
    macro computes; this checker drives both designs with the same random
    input sequences and compares every output bus on every cycle of a
    hold window after both pipelines have drained — the light-weight
    formal-equivalence stand-in the test suite uses to cross-check
    structurally different configurations of the same spec. *)

type verdict =
  | Equivalent of int  (** number of vectors checked *)
  | Mismatch of {
      vector : int;
      cycle : int;  (** cycles after the vector was applied *)
      bus : string;
      a : int;
      b : int;
    }

let bus_names d = List.map fst d.Ir.src.Ir.outputs

let interfaces_match (a : Ir.design) (b : Ir.design) =
  let sig_of d =
    ( List.map (fun (n, bus) -> (n, Array.length bus)) d.Ir.src.Ir.inputs,
      List.map (fun (n, bus) -> (n, Array.length bus)) d.Ir.src.Ir.outputs )
  in
  sig_of a = sig_of b

(** [check ~seed ~vectors ~settle ~hold a b] drives both designs with
    identical random inputs for [vectors] rounds of [settle + hold] cycles
    each. Designs must have identical input/output bus signatures.
    [settle] covers pipeline-depth differences up to that many cycles —
    the drain window during which outputs are allowed to disagree while
    the deeper pipeline catches up. After the drain, outputs are compared
    on *every* cycle of the [hold] window (inputs stay stable), not only
    once at the end of the round: a retiming bug that produces a
    single-cycle glitch between sample points cannot slip through the
    comparison grid. *)
let check ?(seed = 0xE9) ?(vectors = 24) ?(settle = 8) ?(hold = 4)
    (a : Ir.design) (b : Ir.design) : verdict =
  if not (interfaces_match a b) then
    invalid_arg "Equiv.check: interface mismatch";
  if settle < 1 || hold < 0 then
    invalid_arg "Equiv.check: settle must be >= 1 and hold >= 0";
  let rng = Rng.create seed in
  let sa = Sim.create a and sb = Sim.create b in
  let drive sim values =
    List.iter (fun (name, v) -> Sim.set_bus sim name v) values
  in
  let outputs = bus_names a in
  (* compare all output buses with both simulators settled; [cycle] is the
     age of the current vector when the mismatch was observed *)
  let compare_at vector cycle =
    Sim.eval sa;
    Sim.eval sb;
    List.find_map
      (fun bus ->
        let va = Sim.read_bus sa bus and vb = Sim.read_bus sb bus in
        if va <> vb then Some (Mismatch { vector; cycle; bus; a = va; b = vb })
        else None)
      outputs
  in
  let rec rounds k =
    if k >= vectors then Equivalent vectors
    else begin
      let values =
        List.map
          (fun (name, bus) ->
            (name, Rng.int rng (Intmath.pow2 (min (Array.length bus) 30))))
          a.Ir.src.Ir.inputs
      in
      drive sa values;
      drive sb values;
      (* drain: both pipelines absorb the new vector *)
      for _ = 1 to settle do
        Sim.step sa;
        Sim.step sb
      done;
      (* hold: inputs stable, outputs must agree on every remaining cycle *)
      let rec watch cycle =
        if cycle > settle + hold then rounds (k + 1)
        else
          match compare_at k cycle with
          | Some m -> m
          | None ->
              Sim.step sa;
              Sim.step sb;
              watch (cycle + 1)
      in
      watch settle
    end
  in
  rounds 0
