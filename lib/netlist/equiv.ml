(** Random-vector combinational/sequential equivalence checking between
    two designs with the same I/O interface.

    The searcher's retiming and fusion moves must never change what a
    macro computes; this checker drives both designs with the same random
    input sequences and compares every output bus on every cycle of a
    hold window after both pipelines have drained — the light-weight
    formal-equivalence stand-in the test suite uses to cross-check
    structurally different configurations of the same spec. *)

type verdict =
  | Equivalent of int  (** number of vectors checked *)
  | Mismatch of {
      vector : int;
      cycle : int;  (** cycles after the vector was applied *)
      bus : string;
      a : int;
      b : int;
    }

let bus_names d = List.map fst d.Ir.src.Ir.outputs

let interfaces_match (a : Ir.design) (b : Ir.design) =
  let sig_of d =
    ( List.map (fun (n, bus) -> (n, Array.length bus)) d.Ir.src.Ir.inputs,
      List.map (fun (n, bus) -> (n, Array.length bus)) d.Ir.src.Ir.outputs )
  in
  sig_of a = sig_of b

(* Per-round input values, drawn in round order with the same per-bus
   order both engines use, so scalar and packed consume one identical
   RNG stream. *)
let draw_round rng (a : Ir.design) =
  List.map
    (fun (name, bus) ->
      (name, Rng.int rng (Intmath.pow2 (min (Array.length bus) 30))))
    a.Ir.src.Ir.inputs

(* Scalar engine: one simulator pair, rounds in sequence on the same
   state history. *)
let check_scalar ~seed ~vectors ~settle ~hold (a : Ir.design)
    (b : Ir.design) : verdict =
  let rng = Rng.create seed in
  let sa = Sim.create a and sb = Sim.create b in
  let drive sim values =
    List.iter (fun (name, v) -> Sim.set_bus sim name v) values
  in
  let outputs = bus_names a in
  (* compare all output buses with both simulators settled; [cycle] is the
     age of the current vector when the mismatch was observed *)
  let compare_at vector cycle =
    Sim.eval sa;
    Sim.eval sb;
    List.find_map
      (fun bus ->
        let va = Sim.read_bus sa bus and vb = Sim.read_bus sb bus in
        if va <> vb then Some (Mismatch { vector; cycle; bus; a = va; b = vb })
        else None)
      outputs
  in
  let rec rounds k =
    if k >= vectors then Equivalent vectors
    else begin
      let values = draw_round rng a in
      drive sa values;
      drive sb values;
      (* drain: both pipelines absorb the new vector *)
      for _ = 1 to settle do
        Sim.step sa;
        Sim.step sb
      done;
      (* hold: inputs stable, outputs must agree on every remaining cycle *)
      let rec watch cycle =
        if cycle > settle + hold then rounds (k + 1)
        else
          match compare_at k cycle with
          | Some m -> m
          | None ->
              Sim.step sa;
              Sim.step sb;
              watch (cycle + 1)
      in
      watch settle
    end
  in
  rounds 0

(* Bit-sliced engines: vectors become lanes. Each chunk of up to
   [E.max_lanes] vectors runs on a fresh simulator pair with every
   lane starting from reset, so rounds are independent rather than
   sharing the scalar engine's state history — a strictly cleaner
   stimulus (no cross-round state leakage) that still drains and holds
   exactly like the scalar path. Vectors are drawn in round order from
   the same RNG stream the scalar engine consumes (so the verdict is
   independent of the chunk width), and mismatches are reported in
   scalar order: lowest vector first, then lowest cycle, then
   output-bus declaration order. *)
let check_sliced (module E : Slice.S) ~seed ~vectors ~settle ~hold
    (a : Ir.design) (b : Ir.design) : verdict =
  let rng = Rng.create seed in
  let outputs = bus_names a in
  let rec chunks start =
    if start >= vectors then Equivalent vectors
    else begin
      let n = min E.max_lanes (vectors - start) in
      let rounds = Array.init n (fun _ -> draw_round rng a) in
      let sa = E.create ~n_lanes:n a and sb = E.create ~n_lanes:n b in
      List.iter
        (fun (name, _) ->
          let vs = Array.map (fun values -> List.assoc name values) rounds in
          E.set_bus_lanes sa name vs;
          E.set_bus_lanes sb name vs)
        a.Ir.src.Ir.inputs;
      for _ = 1 to settle do
        E.step sa;
        E.step sb
      done;
      (* record each lane's first mismatch; the scan order (cycle
         ascending, buses in declaration order) matches the scalar
         watch loop, so the recorded tuple is the one the scalar
         engine would have reported for that vector *)
      let first = Array.make n None in
      for cycle = settle to settle + hold do
        E.eval sa;
        E.eval sb;
        List.iter
          (fun bus ->
            for l = 0 to n - 1 do
              if first.(l) = None then begin
                let va = E.read_bus_lane sa bus l
                and vb = E.read_bus_lane sb bus l in
                if va <> vb then first.(l) <- Some (cycle, bus, va, vb)
              end
            done)
          outputs;
        E.step sa;
        E.step sb
      done;
      let rec scan l =
        if l >= n then chunks (start + n)
        else
          match first.(l) with
          | Some (cycle, bus, va, vb) ->
              Mismatch { vector = start + l; cycle; bus; a = va; b = vb }
          | None -> scan (l + 1)
      in
      scan 0
    end
  in
  chunks 0

(** [check ~seed ~vectors ~settle ~hold a b] drives both designs with
    identical random inputs for [vectors] rounds of [settle + hold] cycles
    each. Designs must have identical input/output bus signatures.
    [settle] covers pipeline-depth differences up to that many cycles —
    the drain window during which outputs are allowed to disagree while
    the deeper pipeline catches up. After the drain, outputs are compared
    on *every* cycle of the [hold] window (inputs stay stable), not only
    once at the end of the round: a retiming bug that produces a
    single-cycle glitch between sample points cannot slip through the
    comparison grid.

    [engine] selects the simulation backend. [`Packed] (the default)
    packs vectors as bit-slice lanes, amortizing gate evaluation ~63x;
    [`Multiword w] packs them [w] lanes wide ({!Sim_multiword});
    [`Scalar] is the reference implementation. All engines consume the
    same RNG stream and report mismatches in the same vector/cycle/bus
    order; sliced rounds each start from reset instead of inheriting
    the previous round's pipeline state. *)
let check ?(engine : Engine.t = `Packed) ?(seed = 0xE9) ?(vectors = 24)
    ?(settle = 8) ?(hold = 4) (a : Ir.design) (b : Ir.design) : verdict =
  if not (interfaces_match a b) then
    invalid_arg "Equiv.check: interface mismatch";
  if settle < 1 || hold < 0 then
    invalid_arg "Equiv.check: settle must be >= 1 and hold >= 0";
  match engine with
  | `Scalar -> check_scalar ~seed ~vectors ~settle ~hold a b
  | #Engine.batch as e ->
      check_sliced (Engine.slice e) ~seed ~vectors ~settle ~hold a b
