(** The bit-sliced simulator abstraction every batch consumer drives.

    {!Sim_packed} (63 lanes, one word per net) and {!Sim_multiword}
    (63·k lanes, k words per net) expose the same semantics: independent
    lanes, broadcast or per-lane bus drives, exact lane-summed toggle
    accounting. This module captures that contract as a module type so
    the sign-off bench, the differential checker, the equivalence
    checker and the shmoo harness are each written once against {!S}
    and instantiated per engine — which is also what makes the
    cross-engine conformance suite in test/ parametric: any two
    implementations of {!S} can be checked lane-for-lane against each
    other and against the scalar {!Sim}.

    [max_lanes] is the implementation's configured slice width (the
    chunk size batch consumers fan jobs out by), and [create]'s default
    width. A 1-lane {!Scalar} adapter over {!Sim} closes the family, so
    the reference engine participates in the same generic harnesses. *)

module type S = sig
  type t

  val name : string
  (** engine label for traces and error messages, e.g. ["packed"],
      ["multiword:126"] *)

  val max_lanes : int
  (** configured slice width: the widest [create] this engine accepts,
      and the chunk size consumers batch jobs by *)

  val create : ?n_lanes:int -> Ir.design -> t
  (** fresh simulator, [n_lanes] defaulting to [max_lanes] *)

  val lanes_of : t -> int
  val set_bus : t -> string -> int -> unit
  (** broadcast: every lane sees the same bus value *)

  val set_bus_lanes : t -> string -> int array -> unit
  (** per-lane bus values; lanes beyond the array are driven to zero *)

  val read_bus_lane : t -> string -> int -> int
  val read_bus_signed_lane : t -> string -> int -> int
  val extract_lane : t -> int -> bool array
  val seq_state_lane : t -> int -> bool array
  val storage_state_lane : t -> int -> bool array

  val set_weight_lanes :
    t -> row:int -> col:int -> copy:int -> bool array -> unit
  (** one weight bit per lane; lanes beyond the array store [false].
      Every active lane is charged a write; flipped lanes a flip. *)

  val set_weight_all : t -> row:int -> col:int -> copy:int -> bool -> unit
  val eval : t -> unit
  val clock : t -> unit
  val step : t -> unit
  val reset_stats : t -> unit

  (* lane-summed activity counters, in {!Sim}'s layout *)
  val toggles : t -> int array
  val en_cycles : t -> int array
  val cycles : t -> int
  val weight_flips : t -> int
  val weight_writes : t -> int
end

(** The 63-lane single-word engine: {!Sim_packed} verbatim; per-lane
    weight bits pack into one native word. *)
module Packed : S with type t = Sim_packed.t = struct
  type t = Sim_packed.t

  let name = "packed"
  let max_lanes = Sim_packed.lanes
  let create = Sim_packed.create
  let lanes_of = Sim_packed.lanes_of
  let set_bus = Sim_packed.set_bus
  let set_bus_lanes = Sim_packed.set_bus_lanes
  let read_bus_lane = Sim_packed.read_bus_lane
  let read_bus_signed_lane = Sim_packed.read_bus_signed_lane
  let extract_lane = Sim_packed.extract_lane
  let seq_state_lane = Sim_packed.seq_state_lane
  let storage_state_lane = Sim_packed.storage_state_lane

  let set_weight_lanes t ~row ~col ~copy (bits : bool array) =
    let n = min (Array.length bits) (Sim_packed.lanes_of t) in
    let w = ref 0 in
    for l = 0 to n - 1 do
      if bits.(l) then w := !w lor (1 lsl l)
    done;
    Sim_packed.set_weight t ~row ~col ~copy !w

  let set_weight_all = Sim_packed.set_weight_all
  let eval = Sim_packed.eval
  let clock = Sim_packed.clock
  let step = Sim_packed.step
  let reset_stats = Sim_packed.reset_stats
  let toggles (t : t) = t.Sim_packed.toggles
  let en_cycles (t : t) = t.Sim_packed.en_cycles
  let cycles (t : t) = t.Sim_packed.cycles
  let weight_flips (t : t) = t.Sim_packed.weight_flips
  let weight_writes (t : t) = t.Sim_packed.weight_writes
end

(** A width-[w] multi-word engine over {!Sim_multiword}: [multiword w]
    is a first-class {!S} whose [max_lanes] (and default [create]
    width) is [w]. *)
let multiword (w : int) : (module S with type t = Sim_multiword.t) =
  if w < 1 || w > Sim_multiword.max_lanes then
    invalid_arg
      (Printf.sprintf "Slice.multiword: requested %d lanes, valid range is 1..%d"
         w Sim_multiword.max_lanes);
  (module struct
    type t = Sim_multiword.t

    let name = Printf.sprintf "multiword:%d" w
    let max_lanes = w

    let create ?n_lanes d =
      let n_lanes = match n_lanes with None -> w | Some l -> l in
      if n_lanes > w then
        invalid_arg
          (Printf.sprintf "%s.create: requested %d lanes, valid range is 1..%d"
             name n_lanes w);
      Sim_multiword.create ~n_lanes d

    let lanes_of = Sim_multiword.lanes_of
    let set_bus = Sim_multiword.set_bus
    let set_bus_lanes = Sim_multiword.set_bus_lanes
    let read_bus_lane = Sim_multiword.read_bus_lane
    let read_bus_signed_lane = Sim_multiword.read_bus_signed_lane
    let extract_lane = Sim_multiword.extract_lane
    let seq_state_lane = Sim_multiword.seq_state_lane
    let storage_state_lane = Sim_multiword.storage_state_lane
    let set_weight_lanes = Sim_multiword.set_weight_lanes
    let set_weight_all = Sim_multiword.set_weight_all
    let eval = Sim_multiword.eval
    let clock = Sim_multiword.clock
    let step = Sim_multiword.step
    let reset_stats = Sim_multiword.reset_stats
    let toggles (t : t) = t.Sim_multiword.toggles
    let en_cycles (t : t) = t.Sim_multiword.en_cycles
    let cycles (t : t) = t.Sim_multiword.cycles
    let weight_flips (t : t) = t.Sim_multiword.weight_flips
    let weight_writes (t : t) = t.Sim_multiword.weight_writes
  end)

(** The scalar {!Sim} as a 1-lane slice, closing the family: the
    conformance harness runs the reference engine through the same
    generic code path it runs every wide engine through. *)
module Scalar : S with type t = Sim.t = struct
  type t = Sim.t

  let name = "scalar"
  let max_lanes = 1

  let create ?n_lanes d =
    (match n_lanes with
    | Some l when l <> 1 ->
        invalid_arg
          (Printf.sprintf
             "Slice.Scalar.create: requested %d lanes, valid range is 1..1" l)
    | Some _ | None -> ());
    Sim.create d

  let lanes_of (_ : t) = 1
  let set_bus = Sim.set_bus

  let set_bus_lanes t name vs =
    Sim.set_bus t name (if Array.length vs >= 1 then vs.(0) else 0)

  let read_bus_lane t name lane =
    assert (lane = 0);
    Sim.read_bus t name

  let read_bus_signed_lane t name lane =
    assert (lane = 0);
    Sim.read_bus_signed t name

  let extract_lane (t : t) lane =
    assert (lane = 0);
    Array.copy t.Sim.values

  let seq_state_lane (t : t) lane =
    assert (lane = 0);
    Array.copy t.Sim.seq_state

  let storage_state_lane (t : t) lane =
    assert (lane = 0);
    Array.copy t.Sim.storage_state

  let set_weight_lanes t ~row ~col ~copy (bits : bool array) =
    Sim.set_weight t ~row ~col ~copy (Array.length bits >= 1 && bits.(0))

  let set_weight_all t ~row ~col ~copy bit = Sim.set_weight t ~row ~col ~copy bit
  let eval = Sim.eval
  let clock = Sim.clock
  let step = Sim.step
  let reset_stats = Sim.reset_stats
  let toggles (t : t) = t.Sim.toggles
  let en_cycles (t : t) = t.Sim.en_cycles
  let cycles (t : t) = t.Sim.cycles
  let weight_flips (t : t) = t.Sim.weight_flips
  let weight_writes (t : t) = t.Sim.weight_writes
end
