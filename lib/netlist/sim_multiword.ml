(** Multi-word bit-sliced cycle simulator: [k] native words per net, so
    up to [63 * k] independent lanes of one design advance together.

    {!Sim_packed} tops out at {!Sim_packed.lanes} (= [Sys.int_size] = 63)
    lanes because it stores one word per net. This simulator widens the
    slice: lane [l] lives in word [l / 63], bit [l mod 63], and every net
    holds its [k] words contiguously in one flat array ([net * words + w]),
    so gate evaluation is the same {!Cell.eval_word_into} expression run
    [k] times per instance with no per-net indirection. A host whose
    vector units can keep 2 or 4 scalar ALU chains in flight gets 126 or
    252 lanes for close to the 63-lane wall clock; whether that pays on a
    given machine is exactly what {!Engine.autodetect} and the
    [multiword_sim] bench section measure, and the default engine stays
    {!Sim_packed} until the gate shows a win.

    Semantics are lane-for-lane identical to {!Sim_packed} (and therefore
    to the scalar {!Sim}): toggle accounting stays exact per lane by
    summing [popcount ((old lxor new) land mask)] over the words of a
    net, enabled-DFF duty sums enable popcounts per word, and weight
    writes charge every active lane. The cross-engine conformance suite
    in test/ proves the equivalence bit-for-bit per width. *)

(** Lanes carried per word: the native [int] width (63 on 64-bit hosts),
    matching {!Sim_packed.lanes}. *)
let word_lanes = Sys.int_size

(** Hard cap on the slice width — 64 words (4032 lanes on 64-bit hosts).
    Wide enough for any plausible vector unit, small enough that a typo
    in a width argument fails loudly instead of allocating gigabytes. *)
let max_words = 64

let max_lanes = word_lanes * max_words

type t = {
  d : Ir.design;
  n_lanes : int;  (** active lanes across all words *)
  words : int;  (** words per net: [ceil_div n_lanes word_lanes] *)
  masks : int array;
      (** active-lane mask per word; every word is [-1] except a partial
          last word *)
  values : int array;  (** [net * words + w]: value words per net *)
  seq_state : int array;  (** [inst * words + w]; only sequential slots *)
  storage_state : int array;  (** [inst * words + w]; only storage slots *)
  toggles : int array;
      (** output toggle count per net, summed over all lanes of all
          words — the exact sum of the per-lane scalar counters *)
  en_cycles : int array;
      (** per instance: lane-summed enabled-flip-flop duty *)
  mutable cycles : int;  (** cycles advanced (per lane, not lane-summed) *)
  mutable weight_flips : int;  (** SRAM bits flipped by writes, lane-summed *)
  mutable weight_writes : int;  (** SRAM write ops, lane-summed *)
  scratch_ins : int array;  (** word staging, {!Cell.max_inputs} wide *)
  scratch_outs : int array;  (** same, {!Cell.max_outputs} wide *)
  seq_next : int array;  (** {!clock}'s next-state staging, seq slot * words *)
}

(** [words_for n_lanes] is the number of native words a [n_lanes]-wide
    slice needs. *)
let words_for n_lanes = Intmath.ceil_div n_lanes word_lanes

let create ?n_lanes (d : Ir.design) =
  let n_lanes =
    match n_lanes with None -> 2 * word_lanes | Some l -> l
  in
  if n_lanes < 1 || n_lanes > max_lanes then
    invalid_arg
      (Printf.sprintf
         "Sim_multiword.create: requested %d lanes, valid range is 1..%d"
         n_lanes max_lanes);
  let words = words_for n_lanes in
  let masks =
    Array.init words (fun w ->
        let lo = w * word_lanes in
        let n = min word_lanes (n_lanes - lo) in
        if n = word_lanes then -1 else (1 lsl n) - 1)
  in
  let n = Ir.n_insts d in
  let t =
    {
      d;
      n_lanes;
      words;
      masks;
      values = Array.make (d.n_nets * words) 0;
      seq_state = Array.make (max n 1 * words) 0;
      storage_state = Array.make (max n 1 * words) 0;
      toggles = Array.make d.n_nets 0;
      en_cycles = Array.make (max n 1) 0;
      cycles = 0;
      weight_flips = 0;
      weight_writes = 0;
      scratch_ins = Array.make Cell.max_inputs 0;
      scratch_outs = Array.make Cell.max_outputs 0;
      seq_next = Array.make (max (Array.length d.seq) 1 * words) 0;
    }
  in
  for w = 0 to words - 1 do
    t.values.((Ir.const1 * words) + w) <- masks.(w)
  done;
  t

let lanes_of t = t.n_lanes
let words_of t = t.words

(** [set_net_word t net w v] drives word [w] of [net] with the lane word
    [v] (masked to that word's active lanes) and charges one toggle per
    lane that changed. *)
let set_net_word t net w v =
  let v = v land t.masks.(w) in
  let idx = (net * t.words) + w in
  let old = t.values.(idx) in
  if old <> v then begin
    t.values.(idx) <- v;
    t.toggles.(net) <- t.toggles.(net) + Intmath.popcount (old lxor v)
  end

(** [set_bus t name v] drives the named input bus with the low bits of
    [v], broadcast identically to every lane in every word — the
    control-signal path: all lanes share one MAC schedule. *)
let set_bus t name v =
  let bus = Ir.input_bus t.d.src name in
  Array.iteri
    (fun i net ->
      let b = (v asr i) land 1 = 1 in
      for w = 0 to t.words - 1 do
        set_net_word t net w (if b then t.masks.(w) else 0)
      done)
    bus

(** [set_bus_lanes t name vs] drives the named input bus with a distinct
    integer per lane: bit [i] of [vs.(l)] lands in lane [l] of bus bit
    [i]. Lanes beyond [Array.length vs] are driven to zero. *)
let set_bus_lanes t name (vs : int array) =
  let bus = Ir.input_bus t.d.src name in
  let n = min (Array.length vs) t.n_lanes in
  Array.iteri
    (fun i net ->
      for w = 0 to t.words - 1 do
        let lo = w * word_lanes in
        let hi = min n (lo + word_lanes) in
        let v = ref 0 in
        for l = lo to hi - 1 do
          v := !v lor (((vs.(l) asr i) land 1) lsl (l - lo))
        done;
        set_net_word t net w !v
      done)
    bus

(** [read_bus_lane t name lane] reads the named output bus of one lane as
    an unsigned integer. *)
let read_bus_lane t name lane =
  assert (lane >= 0 && lane < t.n_lanes);
  let w = lane / word_lanes and bit = lane mod word_lanes in
  let bus = Ir.output_bus t.d.src name in
  let v = ref 0 in
  for i = 0 to Array.length bus - 1 do
    if (t.values.((bus.(i) * t.words) + w) lsr bit) land 1 = 1 then
      v := !v lor (1 lsl i)
  done;
  !v

(** [read_bus_signed_lane t name lane] — {!read_bus_lane} as a signed
    two's-complement integer. *)
let read_bus_signed_lane t name lane =
  let bus = Ir.output_bus t.d.src name in
  Intmath.sign_extend ~width:(Array.length bus) (read_bus_lane t name lane)

let lane_bit words (state : int array) lane slot =
  let w = lane / word_lanes and bit = lane mod word_lanes in
  (state.((slot * words) + w) lsr bit) land 1 = 1

(** [extract_lane t lane] snapshots one lane's net values as the bool
    array the scalar simulator holds — the cross-check hook the
    conformance suite drives. *)
let extract_lane t lane : bool array =
  assert (lane >= 0 && lane < t.n_lanes);
  Array.init t.d.n_nets (fun net -> lane_bit t.words t.values lane net)

(** [seq_state_lane t lane] / [storage_state_lane t lane] — one lane's
    register / SRAM state, for cross-checking against [Sim.seq_state] /
    [Sim.storage_state]. *)
let seq_state_lane t lane : bool array =
  let n = Array.length t.seq_state / t.words in
  Array.init n (fun i -> lane_bit t.words t.seq_state lane i)

let storage_state_lane t lane : bool array =
  let n = Array.length t.storage_state / t.words in
  Array.init n (fun i -> lane_bit t.words t.storage_state lane i)

(** [set_weight_lanes t ~row ~col ~copy bits] writes one SRAM weight bit
    per lane through its (row, col, copy) address: [bits.(l)] is lane
    [l]'s bit. Lanes beyond [Array.length bits] store [false]. Every
    active lane performs a write; only flipped lanes are charged a
    flip. *)
let set_weight_lanes t ~row ~col ~copy (bits : bool array) =
  match Hashtbl.find_opt t.d.weight_index (row, col, copy) with
  | None ->
      invalid_arg
        (Printf.sprintf "Sim_multiword.set_weight_lanes: no weight bit (%d,%d,%d)"
           row col copy)
  | Some i ->
      t.weight_writes <- t.weight_writes + t.n_lanes;
      let n = min (Array.length bits) t.n_lanes in
      let out = t.d.insts.(i).outs.(0) in
      for w = 0 to t.words - 1 do
        let lo = w * word_lanes in
        let hi = min n (lo + word_lanes) in
        let v = ref 0 in
        for l = lo to hi - 1 do
          if bits.(l) then v := !v lor (1 lsl (l - lo))
        done;
        let v = !v land t.masks.(w) in
        let idx = (i * t.words) + w in
        let old = t.storage_state.(idx) in
        if old <> v then begin
          t.storage_state.(idx) <- v;
          t.weight_flips <- t.weight_flips + Intmath.popcount (old lxor v)
        end;
        set_net_word t out w v
      done

(** [set_weight_all t ~row ~col ~copy bit] — the broadcast form: every
    lane stores the same [bit]. *)
let set_weight_all t ~row ~col ~copy bit =
  match Hashtbl.find_opt t.d.weight_index (row, col, copy) with
  | None ->
      invalid_arg
        (Printf.sprintf "Sim_multiword.set_weight_all: no weight bit (%d,%d,%d)"
           row col copy)
  | Some i ->
      t.weight_writes <- t.weight_writes + t.n_lanes;
      let out = t.d.insts.(i).outs.(0) in
      for w = 0 to t.words - 1 do
        let v = if bit then t.masks.(w) else 0 in
        let idx = (i * t.words) + w in
        let old = t.storage_state.(idx) in
        if old <> v then begin
          t.storage_state.(idx) <- v;
          t.weight_flips <- t.weight_flips + Intmath.popcount (old lxor v)
        end;
        set_net_word t out w v
      done

(** [eval t] settles all combinational logic, all lanes at once: one
    {!Cell.eval_word_into} per instance per word. Complemented cell
    outputs may carry set bits above the active lanes (see {!Cell}), so
    commits mask per word. *)
let eval t =
  let d = t.d in
  let ins_buf = t.scratch_ins and outs_buf = t.scratch_outs in
  let values = t.values in
  let words = t.words in
  Array.iter
    (fun i ->
      let inst = d.insts.(i) in
      let ins = inst.Ir.ins in
      let outs = inst.Ir.outs in
      let n_ins = Array.length ins and n_outs = Array.length outs in
      for w = 0 to words - 1 do
        for p = 0 to n_ins - 1 do
          ins_buf.(p) <- values.((ins.(p) * words) + w)
        done;
        Cell.eval_word_into inst.Ir.kind ins_buf outs_buf;
        for o = 0 to n_outs - 1 do
          set_net_word t outs.(o) w outs_buf.(o)
        done
      done)
    d.comb_order

(** [clock t] commits every flip-flop in every lane of every word: a
    plain DFF captures D, an enabled DFF captures D lane-wise where EN is
    high and holds elsewhere. Enabled-cycle accounting advances by the
    popcount of each enable word, the lane-summed duty the power model
    charges. *)
let clock t =
  let d = t.d in
  let next = t.seq_next in
  let words = t.words in
  Array.iteri
    (fun idx i ->
      let inst = d.insts.(i) in
      for w = 0 to words - 1 do
        next.((idx * words) + w) <-
          (match inst.kind with
          | Cell.Dff -> t.values.((inst.ins.(0) * words) + w)
          | Cell.Dff_en ->
              let en = t.values.((inst.ins.(1) * words) + w) in
              if en <> 0 then
                t.en_cycles.(i) <- t.en_cycles.(i) + Intmath.popcount en;
              (en land t.values.((inst.ins.(0) * words) + w))
              lor (lnot en land t.seq_state.((i * words) + w))
          | _ -> assert false)
      done)
    d.seq;
  Array.iteri
    (fun idx i ->
      let out = t.d.insts.(i).outs.(0) in
      for w = 0 to words - 1 do
        let v = next.((idx * words) + w) land t.masks.(w) in
        t.seq_state.((i * words) + w) <- v;
        set_net_word t out w v
      done)
    d.seq;
  t.cycles <- t.cycles + 1

(** [step t] = eval then clock: one full cycle with inputs already set. *)
let step t =
  eval t;
  clock t

(** [reset_stats t] clears toggle and cycle counters (state is kept). *)
let reset_stats t =
  Array.fill t.toggles 0 (Array.length t.toggles) 0;
  Array.fill t.en_cycles 0 (Array.length t.en_cycles) 0;
  t.cycles <- 0;
  t.weight_flips <- 0;
  t.weight_writes <- 0
