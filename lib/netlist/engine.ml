(** Simulation-engine selection: which backend batch consumers run on.

    Three engines exist: the scalar reference {!Sim}, the 63-lane
    bit-sliced {!Sim_packed}, and the 63·k-lane {!Sim_multiword}. The
    batch consumers (sign-off verification, differential checking,
    equivalence checking, shmoo power sweeps) only need the {!Slice.S}
    contract, so an engine value is just a name for which implementation
    {!slice} hands them.

    The default stays [`Packed] everywhere: multi-word slices trade more
    work per net for fewer passes per job batch, and whether that wins
    depends on the host's ALU/vector pipelining. {!autodetect} settles
    the question empirically — it times a synthetic probe netlist on
    each candidate width and only returns a wider engine on a clear
    (≥ [min_gain], default 1.5×) lane-cycles/s win, mirroring the CI
    bench gate on the [multiword_sim] section of BENCH_RESULTS.json.
    Nothing calls it implicitly; it runs only behind [--engine auto]. *)

type batch = [ `Packed | `Multiword of int ]
(** engines that run many lanes per pass — the ones {!slice} serves *)

type t = [ `Scalar | batch ]

let name : [< t ] -> string = function
  | `Scalar -> "scalar"
  | `Packed -> "packed"
  | `Multiword w -> Printf.sprintf "multiword:%d" w

(** [validate e] — range-check a [`Multiword] width before any simulator
    is built, so a bad [--engine] fails as one line, not a deep raise. *)
let validate (e : t) : (t, string) Stdlib.result =
  match e with
  | `Scalar | `Packed -> Ok e
  | `Multiword w ->
      if w >= 1 && w <= Sim_multiword.max_lanes then Ok e
      else
        Error
          (Printf.sprintf
             "multiword width %d out of range (1..%d)" w
             Sim_multiword.max_lanes)

(** [of_string s] parses an [--engine] argument: [scalar], [packed],
    [multiword:N] (N lanes, e.g. 126 or 252), or [auto] (probe the host
    with {!autodetect}). *)
let of_string (s : string) : ([ `Auto | t ], string) Stdlib.result =
  match String.lowercase_ascii (String.trim s) with
  | "scalar" -> Ok `Scalar
  | "packed" -> Ok `Packed
  | "auto" -> Ok `Auto
  | s -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "multiword" -> (
          let rest = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt rest with
          | Some w -> (
              match validate (`Multiword w) with
              | Ok e -> Ok (e :> [ `Auto | t ])
              | Error msg -> Error msg)
          | None ->
              Error (Printf.sprintf "bad multiword width %S" rest))
      | _ ->
          Error
            (Printf.sprintf
               "unknown engine %S (scalar|packed|multiword:N|auto)" s))

(** [slice e] — the {!Slice.S} implementation behind a batch engine. *)
let slice : batch -> (module Slice.S) = function
  | `Packed -> (module Slice.Packed)
  | `Multiword w ->
      let (module M) = Slice.multiword w in
      (module M)

(* ---------------- bench-probe autodetection ---------------- *)

(* A synthetic netlist with the mix that dominates real macros: an XOR
   reduction layer, a register row, a full-adder carry chain and an
   output register row — enough sequential and combinational work that
   per-word evaluation cost, not harness overhead, dominates. *)
let probe_design () =
  let t = Ir.create ~name:"engine-probe" () in
  let n = 24 in
  let a = Ir.new_bus t n and b = Ir.new_bus t n in
  Ir.add_input t "a" a;
  Ir.add_input t "b" b;
  let mixed =
    Array.init n (fun i ->
        let x = Ir.new_net t in
        ignore (Ir.add t Cell.Xor2 ~ins:[| a.(i); b.(i) |] ~outs:[| x |]);
        let y = Ir.new_net t in
        ignore
          (Ir.add t Cell.Nand2 ~ins:[| x; a.((i + 1) mod n) |] ~outs:[| y |]);
        y)
  in
  let regs =
    Array.map
      (fun x ->
        let q = Ir.new_net t in
        ignore (Ir.add t Cell.Dff ~ins:[| x |] ~outs:[| q |]);
        q)
      mixed
  in
  let carry = ref Ir.const0 in
  let sums =
    Array.init n (fun i ->
        let s = Ir.new_net t and co = Ir.new_net t in
        ignore
          (Ir.add t Cell.Fa ~ins:[| regs.(i); b.(i); !carry |]
             ~outs:[| s; co |]);
        carry := co;
        s)
  in
  let outs =
    Array.map
      (fun s ->
        let q = Ir.new_net t in
        ignore (Ir.add t Cell.Dff ~ins:[| s |] ~outs:[| q |]);
        q)
      sums
  in
  Ir.add_output t "s" outs;
  Ir.freeze t

(* Lane-cycles per second of one engine on the probe: full-width sim,
   fresh input pattern each cycle, best of [reps] timed runs. *)
let probe_rate (module E : Slice.S) (d : Ir.design) ~cycles ~reps =
  let rng = Rng.create 0xBE7C in
  let sim = E.create d in
  let lanes = E.lanes_of sim in
  let vs = Array.init lanes (fun _ -> Rng.int rng 0x1000000) in
  (* warm-up pass so allocation and code paths are hot before timing *)
  E.set_bus_lanes sim "a" vs;
  E.set_bus_lanes sim "b" vs;
  E.step sim;
  let best = ref 0.0 in
  for _ = 1 to reps do
    let t0 = Sys.time () in
    for c = 0 to cycles - 1 do
      E.set_bus sim "a" (0x5A5A5A lxor c);
      E.set_bus sim "b" (0x33CC33 + c);
      E.step sim
    done;
    let dt = Sys.time () -. t0 in
    if dt > 0.0 then begin
      let rate = float_of_int (lanes * cycles) /. dt in
      if rate > !best then best := rate
    end
  done;
  !best

(** [autodetect ()] — time the probe netlist on [`Packed] and each
    candidate multi-word width (default 126 and 252 lanes) and return
    the widest candidate that beats packed by at least [min_gain]
    (default 1.5×) in lane-cycles/s, or [`Packed] when none does. This
    is deliberately conservative: equal-rate hosts keep the engine the
    whole test suite exercises hardest. *)
let autodetect ?(candidates = [ 2 * Sim_multiword.word_lanes; 4 * Sim_multiword.word_lanes ])
    ?(min_gain = 1.5) ?(cycles = 2000) ?(reps = 3) () : batch =
  let d = probe_design () in
  let packed_rate = probe_rate (module Slice.Packed) d ~cycles ~reps in
  if packed_rate <= 0.0 then `Packed
  else
    List.fold_left
      (fun acc w ->
        match validate (`Multiword w) with
        | Error _ -> acc
        | Ok _ ->
            let rate = probe_rate (slice (`Multiword w)) d ~cycles ~reps in
            if rate >= min_gain *. packed_rate then `Multiword w else acc)
      `Packed candidates
