(** Bit-sliced cycle simulator: up to {!lanes} independent simulations of
    one design, packed one lane per bit of a native [int] per net.

    Gate evaluation is word-level ({!Cell.eval_word_into}): one bitwise
    expression settles a cell for every lane at once, so a full-width run
    advances 63 simulations for roughly the cost the scalar {!Sim} pays
    for one. The lanes are completely independent — different inputs,
    different weights, different register histories — which is exactly
    the shape of the two workloads that dominate the compiler:

    - power Monte Carlo: 63 random MAC replicas per simulated cycle, so
      toggle statistics converge with a fraction of the wall clock;
    - verification fan-out: 63 spec-fuzzer vectors checked against
      {!Golden} per netlist pass, with a failing lane shrunk back to a
      single scalar reproduction.

    Toggle accounting stays exact per lane: a net's counter advances by
    [popcount ((old lxor new) land mask)], the total number of lane
    transitions, which is bit-for-bit the sum of the per-lane scalar
    counters. OCaml's boxed-free [int] has 63 usable bits (one bit of
    the machine word is the pointer tag), hence 63 lanes, not 64. *)

(** Number of packed lanes a full-width simulator runs: the native [int]
    width (63 on 64-bit platforms). *)
let lanes = Sys.int_size

type t = {
  d : Ir.design;
  n_lanes : int;  (** active lanes; bits above are kept zero *)
  mask : int;  (** [2^n_lanes - 1]: the active-lane mask *)
  values : int array;  (** current value word per net, one bit per lane *)
  seq_state : int array;  (** per instance id; only sequential slots used *)
  storage_state : int array;  (** per instance id; only storage slots used *)
  toggles : int array;
      (** output toggle count per net, summed over lanes — the exact sum
          of the 63 per-lane scalar counters *)
  en_cycles : int array;
      (** per instance: lane-summed cycles an enabled flip-flop saw its
          enable high *)
  mutable cycles : int;  (** cycles advanced (per lane, not lane-summed) *)
  mutable weight_flips : int;  (** SRAM bits flipped by writes, lane-summed *)
  mutable weight_writes : int;  (** SRAM write ops, lane-summed *)
  scratch_ins : int array;  (** word staging, {!Cell.max_inputs} wide *)
  scratch_outs : int array;  (** same, {!Cell.max_outputs} wide *)
  seq_next : int array;  (** {!clock}'s next-state staging, per seq slot *)
}

let create ?n_lanes (d : Ir.design) =
  let n_lanes = match n_lanes with None -> lanes | Some l -> l in
  if n_lanes < 1 || n_lanes > lanes then
    invalid_arg
      (Printf.sprintf
         "Sim_packed.create: requested %d lanes, valid range is 1..%d"
         n_lanes lanes);
  let mask = if n_lanes = lanes then -1 else (1 lsl n_lanes) - 1 in
  let n = Ir.n_insts d in
  let t =
    {
      d;
      n_lanes;
      mask;
      values = Array.make d.n_nets 0;
      seq_state = Array.make (max n 1) 0;
      storage_state = Array.make (max n 1) 0;
      toggles = Array.make d.n_nets 0;
      en_cycles = Array.make (max n 1) 0;
      cycles = 0;
      weight_flips = 0;
      weight_writes = 0;
      scratch_ins = Array.make Cell.max_inputs 0;
      scratch_outs = Array.make Cell.max_outputs 0;
      seq_next = Array.make (max (Array.length d.seq) 1) 0;
    }
  in
  t.values.(Ir.const1) <- t.mask;
  t

let lanes_of t = t.n_lanes

(** [broadcast t b] is the value word driving every active lane to [b]. *)
let broadcast t b = if b then t.mask else 0

(** [set_net t net w] drives [net] with the lane word [w] (masked to the
    active lanes) and charges one toggle per lane that changed. *)
let set_net t net w =
  let w = w land t.mask in
  let old = t.values.(net) in
  if old <> w then begin
    t.values.(net) <- w;
    t.toggles.(net) <- t.toggles.(net) + Intmath.popcount (old lxor w)
  end

(** [set_bus t name v] drives the named input bus with the low bits of
    [v], broadcast identically to every lane — the control-signal path:
    all lanes share one MAC schedule. *)
let set_bus t name v =
  let bus = Ir.input_bus t.d.src name in
  Array.iteri
    (fun i net -> set_net t net (broadcast t ((v asr i) land 1 = 1)))
    bus

(** [set_bus_lanes t name vs] drives the named input bus with a distinct
    integer per lane: bit [i] of [vs.(l)] lands in lane [l] of bus bit
    [i]. Lanes beyond [Array.length vs] are driven to zero. *)
let set_bus_lanes t name (vs : int array) =
  let bus = Ir.input_bus t.d.src name in
  let n = min (Array.length vs) t.n_lanes in
  Array.iteri
    (fun i net ->
      let w = ref 0 in
      for l = 0 to n - 1 do
        w := !w lor (((vs.(l) asr i) land 1) lsl l)
      done;
      set_net t net !w)
    bus

(** [read_bus_lane t name lane] reads the named output bus of one lane as
    an unsigned integer. *)
let read_bus_lane t name lane =
  assert (lane >= 0 && lane < t.n_lanes);
  let bus = Ir.output_bus t.d.src name in
  let v = ref 0 in
  for i = 0 to Array.length bus - 1 do
    if (t.values.(bus.(i)) lsr lane) land 1 = 1 then v := !v lor (1 lsl i)
  done;
  !v

(** [read_bus_signed_lane t name lane] — {!read_bus_lane} as a signed
    two's-complement integer. *)
let read_bus_signed_lane t name lane =
  let bus = Ir.output_bus t.d.src name in
  Intmath.sign_extend ~width:(Array.length bus) (read_bus_lane t name lane)

(** [extract_lane t lane] snapshots one lane's net values as the bool
    array the scalar simulator holds — the cross-check hook the
    equivalence property drives. *)
let extract_lane t lane : bool array =
  assert (lane >= 0 && lane < t.n_lanes);
  Array.map (fun w -> (w lsr lane) land 1 = 1) t.values

(** [seq_state_lane t lane] / [storage_state_lane t lane] — one lane's
    register / SRAM state, for cross-checking against [Sim.seq_state] /
    [Sim.storage_state]. *)
let seq_state_lane t lane : bool array =
  Array.map (fun w -> (w lsr lane) land 1 = 1) t.seq_state

let storage_state_lane t lane : bool array =
  Array.map (fun w -> (w lsr lane) land 1 = 1) t.storage_state

(** [set_weight t ~row ~col ~copy w] writes one SRAM weight bit per lane
    through its (row, col, copy) address: bit [l] of [w] is lane [l]'s
    bit. Every active lane performs a write; only flipped lanes are
    charged a flip. *)
let set_weight t ~row ~col ~copy w =
  match Hashtbl.find_opt t.d.weight_index (row, col, copy) with
  | None ->
      invalid_arg
        (Printf.sprintf "Sim_packed.set_weight: no weight bit (%d,%d,%d)"
           row col copy)
  | Some i ->
      let w = w land t.mask in
      t.weight_writes <- t.weight_writes + t.n_lanes;
      let old = t.storage_state.(i) in
      if old <> w then begin
        t.storage_state.(i) <- w;
        t.weight_flips <- t.weight_flips + Intmath.popcount (old lxor w)
      end;
      set_net t t.d.insts.(i).outs.(0) w

(** [set_weight_all t ~row ~col ~copy bit] — the broadcast form: every
    lane stores the same [bit]. *)
let set_weight_all t ~row ~col ~copy bit =
  set_weight t ~row ~col ~copy (broadcast t bit)

(** [eval t] settles all combinational logic, all lanes at once: one
    {!Cell.eval_word_into} per instance replaces one scalar
    {!Cell.eval_into} per instance *per lane*. *)
let eval t =
  let d = t.d in
  let ins_buf = t.scratch_ins and outs_buf = t.scratch_outs in
  let values = t.values in
  Array.iter
    (fun i ->
      let inst = d.insts.(i) in
      let ins = inst.Ir.ins in
      for p = 0 to Array.length ins - 1 do
        ins_buf.(p) <- values.(ins.(p))
      done;
      Cell.eval_word_into inst.Ir.kind ins_buf outs_buf;
      let outs = inst.Ir.outs in
      for o = 0 to Array.length outs - 1 do
        set_net t outs.(o) outs_buf.(o)
      done)
    d.comb_order

(** [clock t] commits every flip-flop in every lane: a plain DFF captures
    D, an enabled DFF captures D lane-wise where EN is high and holds
    elsewhere. Enabled-cycle accounting advances by the popcount of the
    enable word, the lane-summed duty the power model charges. *)
let clock t =
  let d = t.d in
  let next = t.seq_next in
  Array.iteri
    (fun idx i ->
      let inst = d.insts.(i) in
      next.(idx) <-
        (match inst.kind with
        | Cell.Dff -> t.values.(inst.ins.(0))
        | Cell.Dff_en ->
            let en = t.values.(inst.ins.(1)) in
            if en <> 0 then
              t.en_cycles.(i) <- t.en_cycles.(i) + Intmath.popcount en;
            (en land t.values.(inst.ins.(0)))
            lor (lnot en land t.seq_state.(i))
        | _ -> assert false))
    d.seq;
  Array.iteri
    (fun idx i ->
      let w = next.(idx) land t.mask in
      t.seq_state.(i) <- w;
      set_net t t.d.insts.(i).outs.(0) w)
    d.seq;
  t.cycles <- t.cycles + 1

(** [step t] = eval then clock: one full cycle with inputs already set. *)
let step t =
  eval t;
  clock t

(** [reset_stats t] clears toggle and cycle counters (state is kept). *)
let reset_stats t =
  Array.fill t.toggles 0 (Array.length t.toggles) 0;
  Array.fill t.en_cycles 0 (Array.length t.en_cycles) 0;
  t.cycles <- 0;
  t.weight_flips <- 0;
  t.weight_writes <- 0
