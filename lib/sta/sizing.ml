(** Drive-strength assignment: the cell-sizing half of the paper's PPA
    fine-tuning step. Upsizes every instance on a violating path (negative
    slack against the target) in parallel, the way a synthesis engine's
    incremental optimization does, and confirms everything off-path stays
    at minimum drive. *)

type result = {
  before_ps : float;
  after_ps : float;
  upsized : int;  (** number of drive bumps applied *)
}

let bump = function
  | Cell.X1 -> Some Cell.X2
  | Cell.X2 -> Some Cell.X4
  | Cell.X4 -> None

(** [speed_up d lib ~target_ps] repeatedly upsizes every combinational or
    sequential cell whose output has negative slack until the nominal
    critical path meets [target_ps], sizing saturates, or the round budget
    (enough for the X1→X2→X4 ladder plus load-feedback settling) runs
    out. Mutates instance drives in place. *)
let speed_up ?(max_rounds = 6) ?(wire_cap = fun (_ : Ir.net) -> 0.0)
    (d : Ir.design) (lib : Library.t) ~target_ps =
  (* one load map and one STA per round, shared between the forward pass
     and the slack pass; recomputed only after a round changed drives *)
  let analyze () =
    let loads = Ir.fanout_loads d lib ~wire_cap () in
    (Sta.analyze ~wire_cap ~loads d lib, loads)
  in
  let r0, loads0 = analyze () in
  let before = r0.Sta.crit_ps in
  let upsized = ref 0 in
  let rec go round (r : Sta.report) loads =
    if r.Sta.crit_ps <= target_ps || round >= max_rounds then r.Sta.crit_ps
    else begin
      let slack = Sta.slacks r d lib ~wire_cap ~loads ~target_ps () in
      let changed = ref false in
      Array.iter
        (fun (inst : Ir.inst) ->
          if not (Cell.is_storage inst.kind) then
            let violating =
              Array.exists (fun net -> slack.(net) < -0.5) inst.outs
            in
            if violating then
              match bump inst.drive with
              | Some up ->
                  inst.drive <- up;
                  incr upsized;
                  changed := true
              | None -> ())
        d.insts;
      if not !changed then r.Sta.crit_ps
      else
        let r', loads' = analyze () in
        go (round + 1) r' loads'
    end
  in
  let after = go 0 r0 loads0 in
  { before_ps = before; after_ps = after; upsized = !upsized }

(** [relax d] returns every instance to X1 (minimum power/area), e.g.
    before re-running a power-preferring fine-tune. *)
let relax (d : Ir.design) =
  Array.iter (fun (i : Ir.inst) -> i.drive <- Cell.X1) d.insts

(** [snapshot d] captures every instance's drive so a speculative sizing
    round can be rolled back with {!restore}. *)
let snapshot (d : Ir.design) =
  Array.map (fun (i : Ir.inst) -> i.drive) d.insts

let restore (d : Ir.design) snap =
  Array.iteri (fun idx (i : Ir.inst) -> i.drive <- snap.(idx)) d.insts
