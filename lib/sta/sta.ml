(** Static timing analysis over frozen netlists.

    Arrival times propagate in topological order from launch points
    (primary inputs at 0 ps, flip-flop Q pins at clock-to-Q, SRAM outputs at
    0 ps because weights are static during MAC) through load-dependent cell
    delays. Endpoints are flip-flop D pins (plus setup) and primary
    outputs. All delays are at the library's nominal voltage; operating
    points scale the reported critical path through {!Voltage}, which
    is exact because the alpha-power law scales every cell uniformly. *)

type endpoint =
  | Reg_d of int  (** instance id of the capturing flip-flop *)
  | Primary_out of string * int  (** bus name, bit index *)

type path_step = { inst : int; through_net : Ir.net; at_ps : float }

type report = {
  crit_ps : float;  (** worst endpoint arrival incl. setup, nominal VDD *)
  endpoint : endpoint;
  path : path_step list;  (** launch-to-capture, in order *)
  arrivals : float array;  (** per net, nominal VDD *)
}

(** [fmax_ghz r] converts the nominal critical path to a clock ceiling. *)
let fmax_ghz r = if r.crit_ps <= 0.0 then infinity else 1000.0 /. r.crit_ps

(** [analyze ?loads d lib] — [loads] is the per-net fanout-load map
    ({!Ir.fanout_loads}); pass it to share one map across the forward
    pass, {!slacks} and {!Power.estimate} instead of recomputing the
    consumer folds in each. It must reflect the current instance drives
    (recompute after sizing mutates them). *)
let analyze ?(wire_cap = fun (_ : Ir.net) -> 0.0)
    ?(input_arrival = fun (_ : string) -> 0.0) ?loads (d : Ir.design)
    (lib : Library.t) : report =
  let loads =
    match loads with
    | Some l -> l
    | None -> Ir.fanout_loads d lib ~wire_cap ()
  in
  let arr = Array.make d.n_nets 0.0 in
  let pred = Array.make d.n_nets (-1) in
  (* predecessor net on the worst path *)
  let via = Array.make d.n_nets (-1) in
  (* instance producing the net *)
  List.iter
    (fun (name, bus) ->
      let a = input_arrival name in
      Array.iter (fun net -> arr.(net) <- a) bus)
    d.src.inputs;
  Array.iter
    (fun i ->
      let inst = d.insts.(i) in
      let p = Library.params lib inst.kind inst.drive in
      Array.iter
        (fun net ->
          arr.(net) <- p.clk_q_ps;
          via.(net) <- i)
        inst.outs)
    d.seq;
  Array.iter
    (fun i ->
      let inst = d.insts.(i) in
      (* static weights: launch at 0 but still record provenance *)
      Array.iter (fun net -> via.(net) <- i) inst.outs)
    d.storage;
  Array.iter
    (fun i ->
      let inst = d.insts.(i) in
      let worst_in = ref Ir.const0 and worst_arr = ref neg_infinity in
      Array.iter
        (fun net ->
          if arr.(net) > !worst_arr then begin
            worst_arr := arr.(net);
            worst_in := net
          end)
        inst.ins;
      let in_arr = if Array.length inst.ins = 0 then 0.0 else !worst_arr in
      Array.iteri
        (fun o net ->
          let load = loads.(net) in
          let dly =
            Library.delay_ps lib ~kind:inst.kind ~drive:inst.drive ~out:o
              ~load_ff:load
          in
          let a = in_arr +. dly in
          if a > arr.(net) then begin
            arr.(net) <- a;
            pred.(net) <- (if Array.length inst.ins = 0 then -1 else !worst_in);
            via.(net) <- i
          end)
        inst.outs)
    d.comb_order;
  (* Endpoints *)
  let worst = ref neg_infinity in
  let worst_ep = ref (Primary_out ("", 0)) in
  let worst_net = ref (-1) in
  Array.iter
    (fun i ->
      let inst = d.insts.(i) in
      let p = Library.params lib inst.kind inst.drive in
      Array.iter
        (fun net ->
          let a = arr.(net) +. p.setup_ps in
          if a > !worst then begin
            worst := a;
            worst_ep := Reg_d i;
            worst_net := net
          end)
        inst.ins)
    d.seq;
  List.iter
    (fun (name, bus) ->
      Array.iteri
        (fun idx net ->
          if arr.(net) > !worst then begin
            worst := arr.(net);
            worst_ep := Primary_out (name, idx);
            worst_net := net
          end)
        bus)
    d.src.outputs;
  (* Reconstruct the critical path by walking predecessors. *)
  let rec walk net acc =
    if net < 0 then acc
    else
      let step = { inst = via.(net); through_net = net; at_ps = arr.(net) } in
      let acc = if via.(net) >= 0 then step :: acc else acc in
      walk pred.(net) acc
  in
  let path = if !worst_net >= 0 then walk !worst_net [] else [] in
  {
    crit_ps = (if !worst = neg_infinity then 0.0 else !worst);
    endpoint = !worst_ep;
    path;
    arrivals = arr;
  }

(** [slacks r d lib ~target_ps] — per-net slack against a cycle budget:
    a reverse-topological required-time pass from the endpoints (flip-flop
    D pins at [target - setup], primary outputs at [target]) back through
    the same load-dependent delays the forward pass used. Negative slack
    marks every net on a violating path, not just the single worst one —
    which is what lets the sizing pass fix all parallel columns in one
    round. *)
let slacks (r : report) (d : Ir.design) (lib : Library.t)
    ?(wire_cap = fun (_ : Ir.net) -> 0.0) ?loads ~target_ps () =
  let loads =
    match loads with
    | Some l -> l
    | None -> Ir.fanout_loads d lib ~wire_cap ()
  in
  let req = Array.make d.n_nets infinity in
  let relax net v = if v < req.(net) then req.(net) <- v in
  Array.iter
    (fun i ->
      let inst = d.insts.(i) in
      let p = Library.params lib inst.kind inst.drive in
      Array.iter (fun net -> relax net (target_ps -. p.setup_ps)) inst.ins)
    d.seq;
  List.iter
    (fun (_, bus) -> Array.iter (fun net -> relax net target_ps) bus)
    d.src.outputs;
  (* reverse topological order over combinational instances *)
  for idx = Array.length d.comb_order - 1 downto 0 do
    let i = d.comb_order.(idx) in
    let inst = d.insts.(i) in
    let worst_req = ref infinity in
    Array.iteri
      (fun o net ->
        let load = loads.(net) in
        let dly =
          Library.delay_ps lib ~kind:inst.kind ~drive:inst.drive ~out:o
            ~load_ff:load
        in
        let v = req.(net) -. dly in
        if v < !worst_req then worst_req := v)
      inst.outs;
    Array.iter (fun net -> relax net !worst_req) inst.ins
  done;
  Array.init d.n_nets (fun net -> req.(net) -. r.arrivals.(net))

(** [crit_ps_at r node ~vdd] scales the nominal critical path to an
    operating voltage. *)
let crit_ps_at (r : report) node ~vdd =
  r.crit_ps *. Voltage.delay_scale node ~vdd

(** [meets r node ~vdd ~freq_hz] checks the design closes timing at the
    operating point. *)
let meets (r : report) node ~vdd ~freq_hz =
  Voltage.fmax node ~crit_path_ps:r.crit_ps ~vdd >= freq_hz
