(** The Subcircuit Library (SCL, paper §III-B): enumerated variants of the
    seven DCIM subcircuits with memoized PPA look-up tables.

    The searcher consults this library to (a) enumerate the search space of
    selectable subcircuits for a given specification and (b) rank variants
    by delay/power/area when applying its techniques ("the searcher checks
    if faster adders are available in the SCL"). Entries are characterized
    on demand through {!Standalone} and cached, which is the in-memory
    equivalent of the paper's pre-characterized LUT files. *)

type key = string

type t = {
  lib : Library.t;
  table : (key, Ppa.t) Hashtbl.t;
  lock : Mutex.t;
      (** guards [table] and the memo counters: parallel searcher domains
          share one SCL, and a plain Hashtbl is not safe under concurrent
          lookup/insert *)
  mutable hits : int;  (** memo lookups served from [table] *)
  mutable misses : int;  (** memo lookups that characterized *)
}

(** Memo counters, so a shared SCL can show it is actually being reused
    (e.g. the second compile through one {!Ctx} reports hits > 0). *)
type stats = { hits : int; misses : int; entries : int }

let create lib =
  { lib; table = Hashtbl.create 256; lock = Mutex.create ();
    hits = 0; misses = 0 }

let stats t : stats =
  Mutex.protect t.lock (fun () ->
      { hits = t.hits; misses = t.misses;
        entries = Hashtbl.length t.table })

let describe_stats (s : stats) =
  Printf.sprintf "%d hit(s) / %d miss(es), %d characterized entr%s" s.hits
    s.misses s.entries
    (if s.entries = 1 then "y" else "ies")

(* The double-count race below makes these totals scheduling-dependent,
   so they are registered nondeterministic. *)
let m_hits = Metrics.counter ~det:false "cache.scl.hits"
let m_misses = Metrics.counter ~det:false "cache.scl.misses"

(* Characterization runs outside the lock (it is the expensive part and
   may itself build netlists); two domains racing on a cold key both
   characterize (both counting a miss), and the first insert wins —
   harmless because entries are deterministic functions of the key. *)
let memo t key f =
  match
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some v ->
            t.hits <- t.hits + 1;
            Metrics.incr m_hits;
            Some v
        | None ->
            t.misses <- t.misses + 1;
            Metrics.incr m_misses;
            None)
  with
  | Some v -> v
  | None ->
      let v = f () in
      Mutex.protect t.lock (fun () ->
          match Hashtbl.find_opt t.table key with
          | Some v' -> v'
          | None ->
              Hashtbl.add t.table key v;
              v)

(** Adder-tree topologies offered by the library, ordered from most
    power/area-efficient to fastest (the order tt1 walks). *)
let tree_menu =
  [
    Adder_tree.Csa { fa_ratio = 0.0; reorder = false };
    Adder_tree.Csa { fa_ratio = 0.0; reorder = true };
    Adder_tree.Csa { fa_ratio = 0.35; reorder = true };
    Adder_tree.Csa { fa_ratio = 0.7; reorder = true };
    Adder_tree.Csa { fa_ratio = 1.0; reorder = true };
  ]

(** The conventional baseline tree, kept out of {!tree_menu} so the
    searcher never picks it but comparisons can. *)
let tree_baseline = Adder_tree.Rca_tree

let mul_menu = [ Cell.Tg_nor; Cell.Pass_1t; Cell.Oai22_fused ]
let cell_menu = [ Cell.S6t; Cell.S8t; Cell.S12t ]

let adder_tree t ~topology ~rows =
  let key =
    Printf.sprintf "tree/%s/h%d" (Adder_tree.topology_name topology) rows
  in
  memo t key (fun () -> Standalone.adder_tree t.lib ~topology ~rows)

let mulmux t ~variant ~mcr =
  let key =
    Printf.sprintf "mulmux/%s/m%d"
      (Cell.kind_to_string (Cell.Mul variant))
      mcr
  in
  memo t key (fun () -> Standalone.mulmux t.lib ~variant ~mcr)

let memory_cell t ~kind =
  let key = Printf.sprintf "cell/%s" (Cell.kind_to_string (Cell.Sram kind)) in
  memo t key (fun () -> Standalone.memory_cell t.lib ~kind)

let fp_align t ~fmt ~pipeline ~rows =
  let key =
    Printf.sprintf "align/%s/p%d/h%d" fmt.Fpfmt.name pipeline rows
  in
  memo t key (fun () -> Standalone.fp_align t.lib ~fmt ~pipeline ~rows)

let sa_menu =
  [ Shift_adder.Lsb_right; Shift_adder.Ripple; Shift_adder.Carry_save ]

let shift_adder t ~kind ~rows ~serial_bits =
  let key =
    Printf.sprintf "sa/%s/h%d/b%d" (Shift_adder.kind_name kind) rows
      serial_bits
  in
  memo t key (fun () -> Standalone.shift_adder t.lib ~kind ~rows ~serial_bits)

let ofu t ~wb ~w_sa ~result_width ~pipe ~fast =
  let key =
    Printf.sprintf "ofu/w%d/s%d/r%d/p%b/f%b" wb w_sa result_width pipe fast
  in
  memo t key (fun () ->
      Standalone.ofu t.lib ~wb ~w_sa ~result_width ~pipe ~fast)

let wl_driver t ~cols =
  let key = Printf.sprintf "wl/c%d" cols in
  memo t key (fun () -> Standalone.wl_driver t.lib ~cols)

(** [faster_tree t ~rows ~than] — the cheapest menu topology strictly
    faster (by characterized delay) than topology [than] at this height;
    [None] when [than] is already the fastest available. This is the tt1
    query of Algorithm 1. *)
let faster_tree t ~rows ~than =
  let d topo = (adder_tree t ~topology:topo ~rows).Ppa.delay_ps in
  let current = d than in
  List.find_opt (fun topo -> d topo < current -. 1.0) tree_menu

(** [estimate_macro t cfg] — an analytic pre-RTL PPA composition of a full
    macro from LUT entries, used by the searcher to order candidates
    before it commits to building netlists. Delay is the max pipeline
    stage; area/energy/leakage sum over instance counts. *)
let estimate_macro t (cfg : Macro_rtl.config) =
  let db = Precision.datapath_bits cfg.input_prec in
  let wb = Precision.datapath_bits cfg.weight_prec in
  let words = cfg.cols / wb in
  let w_sa = Shift_adder.width ~rows:cfg.rows ~serial_bits:db in
  let rw =
    Golden.result_width ~rows:cfg.rows ~input_bits:db ~weight_bits:wb
  in
  let tree_rows = cfg.rows / cfg.tree_split in
  let tree = adder_tree t ~topology:cfg.tree ~rows:tree_rows in
  let sa = shift_adder t ~kind:cfg.sa_kind ~rows:cfg.rows ~serial_bits:db in
  let ofu_e =
    ofu t ~wb ~w_sa ~result_width:rw ~pipe:cfg.ofu_extra_pipe
      ~fast:cfg.ofu_fast_adder
  in
  let mm = mulmux t ~variant:cfg.mul_kind ~mcr:cfg.mcr in
  let cell = memory_cell t ~kind:cfg.cell_kind in
  let wl = wl_driver t ~cols:cfg.cols in
  let align =
    match cfg.input_prec with
    | Precision.Int _ -> Ppa.zero
    | Precision.Fp fmt ->
        (* characterize at a capped height, scale the additive metrics *)
        let cap = min cfg.rows 64 in
        let unit = fp_align t ~fmt ~pipeline:cfg.align_pipeline ~rows:cap in
        let f = float_of_int cfg.rows /. float_of_int cap in
        {
          unit with
          Ppa.area_um2 = unit.Ppa.area_um2 *. f;
          energy_fj = unit.Ppa.energy_fj *. f;
          leakage_nw = unit.Ppa.leakage_nw *. f;
        }
  in
  let open Ppa in
  scale (cfg.rows * cfg.cols * cfg.mcr) cell
  + scale (cfg.rows * cfg.cols) mm
  + scale (cfg.cols * cfg.tree_split) tree
  + scale cfg.cols sa + scale words ofu_e + scale cfg.rows wl + align
