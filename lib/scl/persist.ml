(** Subcircuit-library persistence: the characterized PPA LUT as a CSV
    file, so a long characterization run (the paper ships its LUTs with
    the compiler) can be reused across compiler invocations.

    Format: one entry per line, [key,delay_ps,area_um2,energy_fj,
    leakage_nw]. Keys are the same strings {!Scl} memoizes under, so a
    loaded table short-circuits characterization exactly. *)

let save (scl : Scl.t) path =
  let oc = open_out path in
  output_string oc "key,delay_ps,area_um2,energy_fj,leakage_nw\n";
  let rows =
    Mutex.protect scl.Scl.lock (fun () ->
        Hashtbl.fold (fun k (v : Ppa.t) acc -> (k, v) :: acc) scl.Scl.table [])
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (k, (v : Ppa.t)) ->
      Printf.fprintf oc "%s,%.6g,%.6g,%.6g,%.6g\n" k v.Ppa.delay_ps
        v.Ppa.area_um2 v.Ppa.energy_fj v.Ppa.leakage_nw)
    rows;
  close_out oc

exception Bad_format of string

(** [load scl path] merges entries from [path] into [scl]'s table,
    overwriting duplicates. Raises {!Bad_format} on malformed lines. *)
let load (scl : Scl.t) path =
  let ic = open_in path in
  let count = ref 0 in
  (try
     ignore (input_line ic);
     (* header *)
     let rec go () =
       let line = input_line ic in
       if String.trim line <> "" then begin
         match String.split_on_char ',' line with
         | [ key; d; a; e; l ] -> (
             match
               ( float_of_string_opt d,
                 float_of_string_opt a,
                 float_of_string_opt e,
                 float_of_string_opt l )
             with
             | Some delay_ps, Some area_um2, Some energy_fj, Some leakage_nw
               ->
                 Mutex.protect scl.Scl.lock (fun () ->
                     Hashtbl.replace scl.Scl.table key
                       { Ppa.delay_ps; area_um2; energy_fj; leakage_nw });
                 incr count
             | _ -> raise (Bad_format line))
         | _ -> raise (Bad_format line)
       end;
       go ()
     in
     go ()
   with End_of_file -> ());
  close_in ic;
  !count

(** [entries scl] — the number of characterized entries currently cached. *)
let entries (scl : Scl.t) =
  Mutex.protect scl.Scl.lock (fun () -> Hashtbl.length scl.Scl.table)
