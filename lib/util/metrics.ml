(** Process-wide metrics/telemetry registry: named counters, gauges and
    fixed-bucket histograms behind one mutex-safe surface, with JSON
    export ({!to_json}), a human table ({!render}) and a deterministic
    subset for tests ({!fingerprint}).

    The registry is the single measurement substrate the whole stack
    records into: {!Pool} (tasks scheduled, domains spawned, per-domain
    items, queue drain time), the pipeline stages (per-stage latency
    histograms, retries, ECO iterations), the three caches
    ({!Eval_cache}, {!Disk_cache}, the {!Scl} memo), the batch driver and
    the compile service. It lives in [lib/util] — the bottom of the
    dependency graph — precisely so those low layers can record into it;
    the core layer re-exports it through [--metrics-out] and
    [Service.metrics].

    {2 Determinism rules}

    Metric {e values} split into two classes, chosen at registration:

    - {e deterministic} ([~det:true], the default): invariant across job
      counts, simulation engines and machine load — stage execution
      counts, disk-cache hit/miss/store counts, batch item outcomes,
      sign-off MAC counts. These enter the {!fingerprint}.
    - {e nondeterministic} ([~det:false]): anything that legitimately
      varies run-to-run — pool domain counts (jobs-dependent by
      definition), the racy in-memory cache counters (two domains racing
      a cold key both count a miss), wall-clock-derived values. These
      appear in {!to_json}/{!render} but never in the fingerprint.

    Histograms straddle the line: latency {e distributions} are
    nondeterministic, but the {e observation count} of a deterministic
    instrument (how many times stage X ran) is not — so the fingerprint
    renders a deterministic histogram as its count alone, buckets and
    sums excluded. This mirrors the {!Trace.fingerprint} discipline
    (same table, wall-clock column dropped).

    {2 Concurrency}

    Registration is guarded by the registry mutex; counters are
    [Atomic]s; each gauge and histogram carries its own mutex. Any
    number of pool domains may record concurrently. {!set_enabled}
    [false] turns every record operation into a cheap no-op — the knob
    the [metrics_overhead] bench section uses to price instrumentation. *)

type counter = { c_name : string; c_det : bool; c_value : int Atomic.t }

type gauge = {
  g_name : string;
  g_det : bool;
  g_lock : Mutex.t;
  mutable g_value : float;
}

type histogram = {
  h_name : string;
  h_det : bool;
  bounds : float array;  (** strictly increasing bucket upper bounds *)
  h_lock : Mutex.t;
  counts : int array;  (** [Array.length bounds + 1]: last is overflow *)
  mutable h_sum : float;
  mutable h_count : int;
}

type instrument = C of counter | G of gauge | H of histogram

type t = { lock : Mutex.t; tbl : (string, instrument) Hashtbl.t }

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 64 }

(** The process-wide registry every instrumented module records into by
    default. One per process, like the instrumented resources (domain
    pool, caches) themselves; tests that need isolation either build
    their own registry or {!reset} this one. *)
let global = create ()

let enabled = Atomic.make true

(** [set_enabled b] — globally enable/disable recording. Registration
    still works when disabled; [incr]/[observe]/[set_gauge] become
    no-ops. *)
let set_enabled b = Atomic.set enabled b

let is_enabled () = Atomic.get enabled

(* Default latency buckets (milliseconds): log-ish spacing from 10 us to
   30 s, wide enough for a cache probe and a full multi-attempt compile
   alike. *)
let latency_ms_buckets =
  [| 0.01; 0.03; 0.1; 0.3; 1.0; 3.0; 10.0; 30.0; 100.0; 300.0; 1000.0;
     3000.0; 10000.0; 30000.0 |]

(* Default size buckets (items, lanes, entries): powers of two. *)
let size_buckets =
  [| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0; 256.0; 512.0; 1024.0;
     4096.0 |]

let kind_name = function
  | C _ -> "counter"
  | G _ -> "gauge"
  | H _ -> "histogram"

let register (reg : t) name (build : unit -> instrument)
    (select : instrument -> 'a option) : 'a =
  Mutex.protect reg.lock (fun () ->
      let inst =
        match Hashtbl.find_opt reg.tbl name with
        | Some i -> i
        | None ->
            let i = build () in
            Hashtbl.add reg.tbl name i;
            i
      in
      match select inst with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is already registered as a %s" name
               (kind_name inst)))

(** [counter ?registry ?det name] — get-or-create the named counter.
    Re-registration returns the existing instrument (the [det] flag of
    the first registration wins); registering the name as a different
    kind raises [Invalid_argument]. *)
let counter ?(registry = global) ?(det = true) name : counter =
  register registry name
    (fun () -> C { c_name = name; c_det = det; c_value = Atomic.make 0 })
    (function C c -> Some c | _ -> None)

let add (c : counter) n =
  if n <> 0 && Atomic.get enabled then ignore (Atomic.fetch_and_add c.c_value n)

let incr (c : counter) = add c 1
let counter_value (c : counter) = Atomic.get c.c_value

(** [gauge ?registry ?det name] — get-or-create the named gauge (a
    last-write-wins float, e.g. a pool width or an entry count). *)
let gauge ?(registry = global) ?(det = true) name : gauge =
  register registry name
    (fun () ->
      G { g_name = name; g_det = det; g_lock = Mutex.create (); g_value = 0.0 })
    (function G g -> Some g | _ -> None)

let set_gauge (g : gauge) v =
  if Atomic.get enabled then
    Mutex.protect g.g_lock (fun () -> g.g_value <- v)

let gauge_value (g : gauge) = Mutex.protect g.g_lock (fun () -> g.g_value)

(** [histogram ?registry ?det ?buckets name] — get-or-create the named
    fixed-bucket histogram. [buckets] are strictly increasing upper
    bounds (default {!latency_ms_buckets}); one implicit overflow bucket
    catches everything above the last bound. *)
let histogram ?(registry = global) ?(det = true) ?(buckets = latency_ms_buckets)
    name : histogram =
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: empty bucket list";
  Array.iteri
    (fun i b ->
      if i > 0 && buckets.(i - 1) >= b then
        invalid_arg "Metrics.histogram: bounds must be strictly increasing")
    buckets;
  register registry name
    (fun () ->
      H
        {
          h_name = name;
          h_det = det;
          bounds = Array.copy buckets;
          h_lock = Mutex.create ();
          counts = Array.make (Array.length buckets + 1) 0;
          h_sum = 0.0;
          h_count = 0;
        })
    (function H h -> Some h | _ -> None)

let bucket_index (h : histogram) v =
  let n = Array.length h.bounds in
  let rec go i = if i >= n then n else if v <= h.bounds.(i) then i else go (i + 1) in
  go 0

let observe (h : histogram) v =
  if Atomic.get enabled then
    Mutex.protect h.h_lock (fun () ->
        let i = bucket_index h v in
        h.counts.(i) <- h.counts.(i) + 1;
        h.h_sum <- h.h_sum +. v;
        h.h_count <- h.h_count + 1)

let histogram_count (h : histogram) =
  Mutex.protect h.h_lock (fun () -> h.h_count)

let histogram_sum (h : histogram) = Mutex.protect h.h_lock (fun () -> h.h_sum)

(* Quantile over the bucketed distribution, linearly interpolated inside
   the target bucket (the standard Prometheus estimate). The overflow
   bucket has no upper bound, so it reports the last finite bound — a
   floor, not a guess. *)
let quantile_locked (h : histogram) q =
  if h.h_count = 0 then 0.0
  else begin
    let rank = q *. float_of_int h.h_count in
    let n = Array.length h.bounds in
    let rec go i cum =
      if i > n then h.bounds.(n - 1)
      else
        let cum' = cum + h.counts.(i) in
        if float_of_int cum' >= rank && h.counts.(i) > 0 then
          if i = n then h.bounds.(n - 1)
          else
            let lower = if i = 0 then 0.0 else h.bounds.(i - 1) in
            let frac = (rank -. float_of_int cum) /. float_of_int h.counts.(i) in
            lower +. (frac *. (h.bounds.(i) -. lower))
        else go (i + 1) cum'
    in
    go 0 0
  end

(** [quantile h q] — the [q]-quantile ([0..1]) estimate: p50 is
    [quantile h 0.5]. Linear interpolation within the target bucket;
    values in the overflow bucket report the last finite bound. *)
let quantile (h : histogram) q = Mutex.protect h.h_lock (fun () -> quantile_locked h q)

(* ------------------------------------------------------------------ *)
(* Reset and snapshot                                                  *)
(* ------------------------------------------------------------------ *)

(** [reset ?registry ()] — zero every instrument's value, keeping the
    registrations. Tests use this to scope the process-wide registry to
    one workload run. *)
let reset ?(registry = global) () =
  Mutex.protect registry.lock (fun () ->
      Hashtbl.iter
        (fun _ inst ->
          match inst with
          | C c -> Atomic.set c.c_value 0
          | G g -> Mutex.protect g.g_lock (fun () -> g.g_value <- 0.0)
          | H h ->
              Mutex.protect h.h_lock (fun () ->
                  Array.fill h.counts 0 (Array.length h.counts) 0;
                  h.h_sum <- 0.0;
                  h.h_count <- 0))
        registry.tbl)

(* Name-sorted instruments: export order is deterministic no matter the
   registration (module initialization) order. *)
let sorted_instruments (registry : t) : instrument list =
  let all =
    Mutex.protect registry.lock (fun () ->
        Hashtbl.fold (fun _ inst acc -> inst :: acc) registry.tbl [])
  in
  let name = function C c -> c.c_name | G g -> g.g_name | H h -> h.h_name in
  List.sort (fun a b -> compare (name a) (name b)) all

(** [family name] — the dotted prefix that groups instruments (e.g.
    ["pool"] for ["pool.domains_spawned"]); the whole name when undotted. *)
let family name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

(* ------------------------------------------------------------------ *)
(* Exports                                                             *)
(* ------------------------------------------------------------------ *)

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %.17g round-trips doubles; JSON has no Infinity/NaN literals, so
   clamp those to null (they never arise from real observations). *)
let json_float v =
  if Float.is_finite v then Printf.sprintf "%.17g" v else "null"

(** [to_json ?registry ()] — the full registry as one JSON document:
    every counter and gauge with its value and determinism class, every
    histogram with count, sum, p50/p90/p99 and per-bucket counts. *)
let to_json ?(registry = global) () : string =
  let insts = sorted_instruments registry in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"syndcim-metrics/1\",\n";
  let section title f items =
    Buffer.add_string b (Printf.sprintf "  \"%s\": [" title);
    List.iteri
      (fun i x ->
        Buffer.add_string b (if i = 0 then "\n" else ",\n");
        Buffer.add_string b (f x))
      items;
    Buffer.add_string b (if items = [] then "]" else "\n  ]")
  in
  let counters = List.filter_map (function C c -> Some c | _ -> None) insts in
  let gauges = List.filter_map (function G g -> Some g | _ -> None) insts in
  let hists = List.filter_map (function H h -> Some h | _ -> None) insts in
  section "counters"
    (fun (c : counter) ->
      Printf.sprintf "    {\"name\": \"%s\", \"value\": %d, \"det\": %b}"
        (json_escape c.c_name) (counter_value c) c.c_det)
    counters;
  Buffer.add_string b ",\n";
  section "gauges"
    (fun (g : gauge) ->
      Printf.sprintf "    {\"name\": \"%s\", \"value\": %s, \"det\": %b}"
        (json_escape g.g_name) (json_float (gauge_value g)) g.g_det)
    gauges;
  Buffer.add_string b ",\n";
  section "histograms"
    (fun (h : histogram) ->
      Mutex.protect h.h_lock (fun () ->
          let buckets =
            String.concat ", "
              (List.init
                 (Array.length h.counts)
                 (fun i ->
                   let le =
                     if i < Array.length h.bounds then
                       json_float h.bounds.(i)
                     else "\"+inf\""
                   in
                   Printf.sprintf "{\"le\": %s, \"count\": %d}" le h.counts.(i)))
          in
          Printf.sprintf
            "    {\"name\": \"%s\", \"det\": %b, \"count\": %d, \"sum\": %s, \
             \"p50\": %s, \"p90\": %s, \"p99\": %s, \"buckets\": [%s]}"
            (json_escape h.h_name) h.h_det h.h_count (json_float h.h_sum)
            (json_float (quantile_locked h 0.5))
            (json_float (quantile_locked h 0.9))
            (json_float (quantile_locked h 0.99))
            buckets))
    hists;
  Buffer.add_string b "\n}\n";
  Buffer.contents b

(** [render ?registry ()] — the one-page human table: counters and
    gauges (name, value, class), then histograms (count, p50/p90/p99,
    sum). The [--metrics] CLI flag prints this. *)
let render ?(registry = global) () : string =
  let insts = sorted_instruments registry in
  let counters = List.filter_map (function C c -> Some c | _ -> None) insts in
  let gauges = List.filter_map (function G g -> Some g | _ -> None) insts in
  let hists = List.filter_map (function H h -> Some h | _ -> None) insts in
  let b = Buffer.create 1024 in
  let det_cell d = if d then "det" else "nondet" in
  if counters <> [] || gauges <> [] then begin
    let rows =
      List.map
        (fun (c : counter) ->
          [ c.c_name; string_of_int (counter_value c); det_cell c.c_det ])
        counters
      @ List.map
          (fun (g : gauge) ->
            [ g.g_name; Printf.sprintf "%g" (gauge_value g); det_cell g.g_det ])
          gauges
    in
    Buffer.add_string b
      (Table.render (Table.make ~header:[ "metric"; "value"; "class" ] rows));
    Buffer.add_char b '\n'
  end;
  if hists <> [] then begin
    let rows =
      List.map
        (fun (h : histogram) ->
          Mutex.protect h.h_lock (fun () ->
              [
                h.h_name;
                string_of_int h.h_count;
                Printf.sprintf "%.3g" (quantile_locked h 0.5);
                Printf.sprintf "%.3g" (quantile_locked h 0.9);
                Printf.sprintf "%.3g" (quantile_locked h 0.99);
                Printf.sprintf "%.3g" h.h_sum;
                det_cell h.h_det;
              ]))
        hists
    in
    Buffer.add_string b
      (Table.render
         (Table.make
            ~header:[ "histogram"; "count"; "p50"; "p90"; "p99"; "sum"; "class" ]
            rows));
    Buffer.add_char b '\n'
  end;
  if Buffer.length b = 0 then "(no metrics recorded)\n" else Buffer.contents b

(** [fingerprint ?registry ()] — the deterministic subset, rendered as
    sorted [kind name = value] lines: deterministic counters and gauges
    with their values, deterministic histograms as their observation
    count only (no buckets, no sums — those carry wall-clock). Two runs
    of the same workload at any job count and any simulation engine must
    produce byte-identical fingerprints; nondeterministic instruments
    never appear. *)
let fingerprint ?(registry = global) () : string =
  let lines =
    List.filter_map
      (function
        | C c when c.c_det ->
            Some (Printf.sprintf "counter %s = %d" c.c_name (counter_value c))
        | G g when g.g_det ->
            Some (Printf.sprintf "gauge %s = %.17g" g.g_name (gauge_value g))
        | H h when h.h_det ->
            Some (Printf.sprintf "hist %s count = %d" h.h_name (histogram_count h))
        | C _ | G _ | H _ -> None)
      (sorted_instruments registry)
  in
  String.concat "\n" lines ^ "\n"
