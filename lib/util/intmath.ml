(** Small integer helpers shared across the compiler. *)

(** [ceil_log2 n] is the smallest [k] with [2{^k} >= n]. Requires [n >= 1]. *)
let ceil_log2 n =
  assert (n >= 1);
  let rec go k p = if p >= n then k else go (k + 1) (p * 2) in
  go 0 1

(** [floor_log2 n] is the largest [k] with [2{^k} <= n]. Requires [n >= 1]. *)
let floor_log2 n =
  assert (n >= 1);
  let rec go k p = if p * 2 > n then k else go (k + 1) (p * 2) in
  go 0 1

(** [pow2 k] is [2{^k}]. Requires [0 <= k < 62]. *)
let pow2 k =
  assert (k >= 0 && k < 62);
  1 lsl k

(** [is_pow2 n] holds when [n] is a positive power of two. *)
let is_pow2 n = n >= 1 && n land (n - 1) = 0

(** [ceil_div a b] is [a / b] rounded towards positive infinity, for
    non-negative [a] and positive [b]. *)
let ceil_div a b =
  assert (a >= 0 && b > 0);
  (a + b - 1) / b

(** [clamp ~lo ~hi x] bounds [x] into the interval [\[lo, hi\]]. *)
let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

(** [clamp_f ~lo ~hi x] is {!clamp} for floats. *)
let clamp_f ~lo ~hi (x : float) = if x < lo then lo else if x > hi then hi else x

(** [range n] is [\[0; 1; ...; n-1\]]. *)
let range n = List.init n Fun.id

(** [sum_by f l] folds [f] over [l] and sums the results as floats. *)
let sum_by f l = List.fold_left (fun acc x -> acc +. f x) 0.0 l

(** [sign_extend ~width v] reinterprets the low [width] bits of [v] as a
    signed two's-complement value. *)
let sign_extend ~width v =
  assert (width >= 1 && width < 62);
  let m = pow2 width in
  let v = v land (m - 1) in
  if v land pow2 (width - 1) <> 0 then v - m else v

(** [truncate_bits ~width v] keeps the low [width] bits of [v]. *)
let truncate_bits ~width v = v land (pow2 width - 1)

(** [bits_for_unsigned n] is the number of bits needed to represent the
    unsigned value [n] ([n >= 0]); 0 needs one bit. *)
let bits_for_unsigned n =
  assert (n >= 0);
  if n = 0 then 1 else floor_log2 n + 1

(** [popcount w] is the number of set bits in [w], counted over the full
    native word (negative values count their two's-complement bits).
    SWAR: the bit-sliced simulator calls this once per net per cycle, so
    it must not loop over bits. *)
let popcount w =
  (* the sign bit is counted separately so the SWAR body runs on a
     non-negative 62-bit payload *)
  let top = if w < 0 then 1 else 0 in
  let w = w land max_int in
  let m1 = 0x5555_5555_5555_5555 land max_int in
  let m2 = 0x3333_3333_3333_3333 land max_int in
  let m4 = 0x0F0F_0F0F_0F0F_0F0F land max_int in
  let w = w - ((w lsr 1) land m1) in
  let w = (w land m2) + ((w lsr 2) land m2) in
  let w = (w + (w lsr 4)) land m4 in
  top + ((w * 0x0101_0101_0101_0101) lsr 56) land 0xFF
