(** A fixed-size domain pool for data-parallel sweeps on OCaml 5.

    Candidate evaluation in the searcher — and every figure/table sweep
    built on it — is a pure function of its inputs, so the work-sharing
    model is deliberately simple: a {!parallel_map} that carves the input
    list over a fixed set of domains, preserves input order, propagates
    the first exception, and degrades to a plain [List.map] when only one
    job is requested (or available).

    Job-count resolution, in priority order:
    - the [?jobs] argument when given;
    - the [SYNDCIM_JOBS] environment variable;
    - [Domain.recommended_domain_count ()].

    Nested calls (a [parallel_map] issued from inside a worker) run
    sequentially in the calling worker, so composed sweeps — e.g. a
    parallel figure grid whose points each run a parallel searcher —
    never oversubscribe the machine or deadlock on domain exhaustion. *)

let env_jobs () =
  match Sys.getenv_opt "SYNDCIM_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some j
      | Some _ | None -> None)

(** [default_jobs ()] — the pool width used when [?jobs] is omitted. *)
let default_jobs () =
  match env_jobs () with
  | Some j -> j
  | None -> max 1 (Domain.recommended_domain_count ())

(* Set inside every worker (and in the caller while it participates), so
   nested parallel_map calls detect they are already on a pool domain. *)
let inside_pool : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Pool metrics are jobs-dependent by definition, so every instrument is
   registered nondeterministic and stays out of the test fingerprint. *)
let m_runs = Metrics.counter ~det:false "pool.runs"
let m_tasks = Metrics.counter ~det:false "pool.tasks"
let m_spawned = Metrics.counter ~det:false "pool.domains_spawned"

let m_items_per_domain =
  Metrics.histogram ~det:false ~buckets:Metrics.size_buckets
    "pool.items_per_domain"

let m_drain_ms = Metrics.histogram ~det:false "pool.drain_ms"

(* One shared counter hands out indices; results land by index, so output
   order is input order no matter which domain computed what. The first
   failure is kept (with its backtrace) and re-raised after the join; the
   remaining workers drain quickly because they stop claiming work. *)
let run_parallel ~jobs f (items : 'a array) : 'b array =
  let n = Array.length items in
  let results : 'b option array = Array.make n None in
  let next = Atomic.make 0 in
  let failure : (exn * Printexc.raw_backtrace) option Atomic.t =
    Atomic.make None
  in
  let worker () =
    Domain.DLS.set inside_pool true;
    let mine = ref 0 in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n && Atomic.get failure = None then begin
        (try
           results.(i) <- Some (f items.(i));
           incr mine
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set failure None (Some (e, bt))));
        loop ()
      end
    in
    loop ();
    Metrics.observe m_items_per_domain (float_of_int !mine)
  in
  (* Never spawn more helpers than there are items left for them to
     claim: 3 items at jobs=16 need 2 helpers (the caller is the third
     worker), not 15 domains of which 12 exit without ever winning an
     index; 0 or 1 items need none at all. *)
  let helper_count = max 0 (min jobs n - 1) in
  Metrics.incr m_runs;
  Metrics.add m_tasks n;
  Metrics.add m_spawned helper_count;
  let t0 = Unix.gettimeofday () in
  let helpers = Array.init helper_count (fun _ -> Domain.spawn worker) in
  worker ();
  Domain.DLS.set inside_pool false;
  Array.iter Domain.join helpers;
  Metrics.observe m_drain_ms ((Unix.gettimeofday () -. t0) *. 1e3);
  match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None ->
      Array.map
        (function
          | Some v -> v
          | None -> invalid_arg "Pool.run_parallel: missing result")
        results

(** [parallel_map ?jobs f xs] maps [f] over [xs] on up to [jobs] domains.
    Output order matches input order; the first exception raised by [f]
    propagates to the caller. [jobs = 1] (or [SYNDCIM_JOBS=1], or a call
    from inside another [parallel_map]) runs sequentially. *)
let parallel_map ?jobs (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let n = List.length xs in
  let jobs =
    let j = match jobs with Some j -> max 1 j | None -> default_jobs () in
    min j n
  in
  if jobs <= 1 || n <= 1 || Domain.DLS.get inside_pool then List.map f xs
  else Array.to_list (run_parallel ~jobs f (Array.of_list xs))

(** [parallel_iter ?jobs f xs] — {!parallel_map} for effects only. *)
let parallel_iter ?jobs f xs =
  ignore (parallel_map ?jobs (fun x -> f x) xs)
