(** Fuzz-campaign orchestration: generate → check → shrink → report.

    A campaign generates [count] stratified specs ({!Specgen}), checks
    each differentially against {!Golden} ({!Diffcheck}) with the work
    fanned out over {!Pool}, shrinks every failure to a minimal
    reproducer, and (for clean campaigns) runs the metamorphic
    move-preservation and LUT-monotonicity properties on a stratified
    subset. The report is bit-for-bit identical for any job count:
    per-spec seeds are derived from the campaign seed and the spec index
    alone, the pool preserves order, and shrinking is sequential over the
    ordered failure list. *)

type failure_report = {
  index : int;  (** spec index within the campaign *)
  original : Spec.t;
  shrunk : Spec.t;  (** minimal reproducer *)
  shrink_steps : int;
  detail : string;  (** first divergence on the original spec *)
  diag : Diag.t;  (** the divergence as a structured stage diagnostic *)
}

type property = { name : string; passed : int; failed : int }

type report = {
  seed : int;
  specs : int;  (** fuzzed specs compiled and checked *)
  checks : int;  (** total word/exponent comparisons *)
  failures : failure_report list;
  properties : property list;  (** metamorphic + monotonicity results *)
}

let spec_seed ~seed i = seed lxor ((i + 1) * 0x5_1C1D)

(* aggregate per-name results into pass/fail counters, input order kept *)
let tally (results : Metamorph.result list) : property list =
  let order = ref [] in
  let table = Hashtbl.create 16 in
  List.iter
    (fun (r : Metamorph.result) ->
      let p =
        match Hashtbl.find_opt table r.Metamorph.name with
        | Some p -> p
        | None ->
            order := r.Metamorph.name :: !order;
            { name = r.Metamorph.name; passed = 0; failed = 0 }
      in
      let p =
        if r.Metamorph.ok then { p with passed = p.passed + 1 }
        else { p with failed = p.failed + 1 }
      in
      Hashtbl.replace table r.Metamorph.name p)
    results;
  List.rev_map (Hashtbl.find table) !order

(** [run ?jobs ?bug ?random_batches ?meta_stride ?seed ~count ctx] —
    the full campaign over the context's library. [bug] injects a
    datapath fault into every differential check (the self-test mode:
    the campaign must then report failures and shrink them);
    metamorphic properties only run on clean campaigns, on every
    [meta_stride]-th spec. The job count and campaign seed default to
    the context's. *)
let run ?jobs ?bug ?(random_batches = 2) ?(meta_stride = 25) ?seed ~count
    (ctx : Ctx.t) : report =
  let jobs = match jobs with Some j -> Some j | None -> Ctx.jobs ctx in
  let seed = match seed with Some s -> s | None -> Ctx.seed ctx in
  let specs = Specgen.generate ~seed ~count in
  let indexed = List.mapi (fun i s -> (i, s)) specs in
  let outcomes =
    Pool.parallel_map ?jobs
      (fun (i, s) ->
        (i, s, Diffcheck.check_spec ?bug ~random_batches
                 ~seed:(spec_seed ~seed i) ctx s))
      indexed
  in
  let checks =
    List.fold_left
      (fun acc (_, _, (o : Diffcheck.outcome)) -> acc + o.Diffcheck.checks)
      0 outcomes
  in
  (* shrink failures sequentially, in campaign order, so the reproducer
     list is deterministic for any job count *)
  let failures =
    List.filter_map
      (fun (i, s, (o : Diffcheck.outcome)) ->
        match o.Diffcheck.failure with
        | None -> None
        | Some f ->
            let fails =
              Diffcheck.fails ?bug ~seed:(spec_seed ~seed i) ctx
            in
            let shrunk, shrink_steps =
              Specgen.shrink_to_minimal ~fails s
            in
            Some
              {
                index = i;
                original = s;
                shrunk;
                shrink_steps;
                detail = Diffcheck.describe_failure f;
                diag = Diffcheck.diag_of_failure ~stage:"campaign" s f;
              })
      outcomes
  in
  let properties =
    if bug <> None then []
    else begin
      let meta_specs =
        List.filter_map
          (fun (i, s) -> if i mod meta_stride = 0 then Some (i, s) else None)
          indexed
      in
      let moves =
        Pool.parallel_map ?jobs
          (fun (i, s) ->
            Metamorph.check_moves ~jobs:1 ~seed:(spec_seed ~seed i) ctx s
            @ [ Metamorph.check_equiv_pair ~seed:(spec_seed ~seed i) ctx s ])
          meta_specs
        |> List.concat
      in
      tally (moves @ Metamorph.lut_monotonicity ctx)
    end
  in
  { seed; specs = count; checks; failures; properties }

let clean (r : report) =
  r.failures = []
  && List.for_all (fun p -> p.failed = 0) r.properties

(** [diagnostics r] — every campaign finding as a structured diagnostic:
    one per differential failure (with the shrunk reproducer in the
    payload), one per failing metamorphic property. The CLI and tests
    assert on these instead of string-matching the human report. *)
let diagnostics (r : report) : Diag.t list =
  let failure_diags =
    List.map
      (fun f ->
        {
          f.diag with
          Diag.payload =
            f.diag.Diag.payload
            @ [
                ("spec_index", string_of_int f.index);
                ("shrunk", Spec.describe f.shrunk);
                ("shrink_steps", string_of_int f.shrink_steps);
              ];
        })
      r.failures
  in
  let property_diags =
    List.filter_map
      (fun p ->
        if p.failed = 0 then None
        else
          Some
            (Diag.error ~stage:"campaign"
               ~payload:
                 [
                   ("property", p.name);
                   ("passed", string_of_int p.passed);
                   ("failed", string_of_int p.failed);
                 ]
               (Printf.sprintf "metamorphic property %S failed %d of %d"
                  p.name p.failed (p.passed + p.failed))))
      r.properties
  in
  failure_diags @ property_diags

(** [describe r] — the human report: campaign counters, one line per
    property with pass/fail counts, and every failure with its shrunk
    minimal reproducer. *)
let describe (r : report) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "fuzz campaign: seed 0x%X, %d specs compiled, %d differential \
        checks, %d failure(s)\n"
       r.seed r.specs r.checks (List.length r.failures));
  if r.properties <> [] then begin
    Buffer.add_string b "properties:\n";
    List.iter
      (fun p ->
        Buffer.add_string b
          (Printf.sprintf "  %-28s %4d passed %4d failed %s\n" p.name
             p.passed p.failed
             (if p.failed = 0 then "ok" else "FAIL")))
      r.properties
  end;
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf
           "failure at spec #%d: %s\n  spec:   %s\n  shrunk: %s (%d \
            step(s))\n"
           f.index f.detail
           (Spec.describe f.original)
           (Spec.describe f.shrunk)
           f.shrink_steps))
    r.failures;
  Buffer.add_string b
    (if clean r then "verdict: PASS\n" else "verdict: FAIL\n");
  Buffer.contents b
