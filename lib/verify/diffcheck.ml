(** Differential checking of a compiled macro against {!Golden}.

    The netlist is driven through complete MAC transactions — directed
    corner vectors first ({!Corners}), dense random batches after — and
    every word result (and the FP group exponent) is compared against the
    behavioural model. This replaces the random-only equivalence pass as
    the correctness core: the corners are exactly the inputs where a
    broken sign cycle, a saturated carry chain or a mis-aligned FP group
    diverge from random-vector behaviour.

    The driver also supports *fault injection*: a {!bug} reproduces a
    class of searcher-move defect (a retimed result register sampled one
    cycle early; a dropped sign cycle) so the test suite can prove the
    checker catches it and the shrinker reduces it. *)

type bug =
  | Retime_early_sample
      (** read the result one cycle before the retimed pipeline commits *)
  | Skip_sign_cycle  (** never assert [sa_neg]: the two's-complement bug *)

let bug_name = function
  | Retime_early_sample -> "retime-early-sample"
  | Skip_sign_cycle -> "skip-sign-cycle"

type failure = {
  set_name : string;  (** which vector set diverged *)
  word : int;  (** word index, or -1 for the FP group exponent *)
  expected : int;
  got : int;
}

type outcome = {
  checks : int;  (** word/exponent comparisons performed *)
  failure : failure option;  (** first divergence, if any *)
}

let describe_failure (f : failure) =
  Printf.sprintf "%s: word %d expected %d, got %d" f.set_name f.word
    f.expected f.got

(** [diag_of_failure spec f] — a differential divergence as a structured
    stage diagnostic, so the campaign and the CLI report through the same
    {!Diag} channel as the compilation pipeline. *)
let diag_of_failure ?(stage = "diffcheck") (spec : Spec.t) (f : failure) :
    Diag.t =
  Diag.error ~stage ~spec
    ~payload:
      [
        ("set", f.set_name);
        ("word", string_of_int f.word);
        ("expected", string_of_int f.expected);
        ("got", string_of_int f.got);
      ]
    (describe_failure f)

let is_fp (m : Macro_rtl.t) =
  match m.Macro_rtl.cfg.Macro_rtl.input_prec with
  | Precision.Fp _ -> true
  | Precision.Int _ -> false

(* One full MAC transaction, optionally with an injected fault. Mirrors
   the sign-off schedule in {!Testbench.run_mac}; kept separate so a
   fault never leaks into the production bench. *)
let run_mac ?bug (m : Macro_rtl.t) sim ~(inputs : int array) =
  let db = m.Macro_rtl.db in
  Testbench.present_inputs m sim inputs;
  Testbench.set_controls sim ~load:false ~sa_en:false ~sa_clr:false
    ~sa_neg:false;
  if is_fp m then Sim.set_bus sim "align_en" 1;
  for _ = 1 to m.Macro_rtl.align_lat do
    Sim.step sim
  done;
  if is_fp m then Sim.set_bus sim "align_en" 0;
  Testbench.set_controls sim ~load:true ~sa_en:false ~sa_clr:false
    ~sa_neg:false;
  Sim.step sim;
  let last = m.Macro_rtl.tree_lat + db - 1 in
  for k = 0 to last do
    let first = k = m.Macro_rtl.tree_lat in
    let sign_cycle =
      if m.Macro_rtl.neg_on_last then k = last else first
    in
    let sa_neg =
      sign_cycle && db > 1 && bug <> Some Skip_sign_cycle
    in
    Testbench.set_controls sim ~load:false
      ~sa_en:(k >= m.Macro_rtl.tree_lat)
      ~sa_clr:first ~sa_neg;
    Sim.step sim
  done;
  Testbench.set_controls sim ~load:false ~sa_en:false ~sa_clr:false
    ~sa_neg:false;
  let post =
    match bug with
    | Some Retime_early_sample -> max 0 (m.Macro_rtl.post_lat - 1)
    | _ -> m.Macro_rtl.post_lat
  in
  for _ = 1 to post do
    Sim.step sim
  done;
  Sim.eval sim;
  Array.init m.Macro_rtl.words (fun g ->
      Sim.read_bus_signed sim (Printf.sprintf "result%d" g))

(* Expected datapath values of the raw inputs (identity for INT, aligner
   for FP) plus the expected group exponent. *)
let datapath_view (m : Macro_rtl.t) inputs =
  match m.Macro_rtl.cfg.Macro_rtl.input_prec with
  | Precision.Int _ -> (inputs, None)
  | Precision.Fp fmt ->
      let a = Align.align fmt inputs in
      (a.Align.values, Some a.Align.group_exp)

(* Run one vector set with the given weights already loaded; first
   divergence wins. *)
let check_set ?bug (m : Macro_rtl.t) sim (set : Corners.vector_set) :
    int * failure option =
  let results = run_mac ?bug m sim ~inputs:set.Corners.inputs in
  let xs, exp_expected = datapath_view m set.Corners.inputs in
  let checks = ref 0 in
  let fail = ref None in
  (match exp_expected with
  | Some e ->
      incr checks;
      let got = Sim.read_bus sim "group_exp" in
      if got <> e then
        fail :=
          Some
            {
              set_name = set.Corners.name ^ " (group exponent)";
              word = -1;
              expected = e;
              got;
            }
  | None -> ());
  Array.iteri
    (fun g got ->
      if !fail = None then begin
        incr checks;
        let expected =
          Golden.dot ~weights:set.Corners.weights.(g) ~inputs:xs
        in
        if got <> expected then
          fail :=
            Some { set_name = set.Corners.name; word = g; expected; got }
      end)
    results;
  (!checks, !fail)

(* rotate rows so each weight copy stores a distinguishable pattern *)
let rotate_rows (weights : int array array) =
  Array.map
    (fun per_row ->
      let n = Array.length per_row in
      Array.init n (fun r -> per_row.((r + 1) mod n)))
    weights

(* Scalar engine: one simulator, one transaction per set, in order. *)
let check_macro_scalar ?bug ~seed ~random_batches (m : Macro_rtl.t) :
    outcome =
  let sim = Sim.create m.Macro_rtl.design in
  let mcr = m.Macro_rtl.cfg.Macro_rtl.mcr in
  if mcr > 1 then Sim.set_bus sim "copy_sel" 0;
  let rng = Rng.create seed in
  let sets =
    Corners.sets m @ Corners.random_sets rng m ~batches:random_batches
  in
  let checks = ref 0 in
  let run_on ~copy set =
    let weights =
      if copy = 0 then set.Corners.weights
      else rotate_rows set.Corners.weights
    in
    Testbench.load_weights m sim ~copy weights;
    if mcr > 1 then Sim.set_bus sim "copy_sel" copy;
    let c, f = check_set ?bug m sim { set with Corners.weights } in
    checks := !checks + c;
    f
  in
  let rec loop = function
    | [] -> { checks = !checks; failure = None }
    | set :: rest -> (
        match run_on ~copy:0 set with
        | Some f -> { checks = !checks; failure = Some f }
        | None ->
            if mcr > 1 then
              match run_on ~copy:(mcr - 1) set with
              | Some f ->
                  {
                    checks = !checks;
                    failure =
                      Some
                        {
                          f with
                          set_name =
                            Printf.sprintf "%s@copy%d" f.set_name (mcr - 1);
                        };
                  }
              | None -> loop rest
            else loop rest)
  in
  loop sets

(* ---------------- bit-sliced engines ---------------- *)

(* One lane of a sliced batch: a vector set checked on one weight copy
   (weights already rotated for copy > 0). *)
type lane_job = { set : Corners.vector_set; copy : int }

(* Shrink a sliced-lane divergence back to a single scalar simulation:
   the minimal reproducer a debug session replays without the lane
   machinery. If the scalar rerun confirms, its failure record wins;
   a packed-only divergence (a lane-equivalence bug in the engine
   itself) is reported with an explicit marker instead of being hidden. *)
let scalar_reproduce ?bug (m : Macro_rtl.t) (job : lane_job)
    (packed : failure) : failure =
  let sim = Sim.create m.Macro_rtl.design in
  if m.Macro_rtl.cfg.Macro_rtl.mcr > 1 then
    Sim.set_bus sim "copy_sel" job.copy;
  Testbench.load_weights m sim ~copy:job.copy job.set.Corners.weights;
  match check_set ?bug m sim job.set with
  | _, Some f -> f
  | _, None -> { packed with set_name = packed.set_name ^ " (packed-only)" }

(** The bit-sliced differential engine, written once against {!Slice.S}:
    every (vector set × weight copy) job becomes one lane, so up to
    [E.max_lanes] differential transactions settle per netlist pass
    instead of one. The outcome mirrors the scalar engine's counting
    exactly — lanes are judged in set order and the first divergence
    wins, independent of the engine's lane width — and a failing lane is
    re-run through the scalar simulator for a minimal reproducer. *)
module Sliced_engine (E : Slice.S) = struct
  (* The sliced mirror of [run_mac]: the control schedule (and any
     injected fault) is broadcast to every lane, the inputs differ per
     lane. Returns results.(lane).(word). *)
  let run_mac ?bug (m : Macro_rtl.t) sim ~(inputs : int array array) =
    let module B = Testbench.Sliced (E) in
    let db = m.Macro_rtl.db in
    B.present_inputs_lanes m sim inputs;
    B.set_controls sim ~load:false ~sa_en:false ~sa_clr:false
      ~sa_neg:false;
    if is_fp m then E.set_bus sim "align_en" 1;
    for _ = 1 to m.Macro_rtl.align_lat do
      E.step sim
    done;
    if is_fp m then E.set_bus sim "align_en" 0;
    B.set_controls sim ~load:true ~sa_en:false ~sa_clr:false
      ~sa_neg:false;
    E.step sim;
    let last = m.Macro_rtl.tree_lat + db - 1 in
    for k = 0 to last do
      let first = k = m.Macro_rtl.tree_lat in
      let sign_cycle =
        if m.Macro_rtl.neg_on_last then k = last else first
      in
      let sa_neg =
        sign_cycle && db > 1 && bug <> Some Skip_sign_cycle
      in
      B.set_controls sim ~load:false
        ~sa_en:(k >= m.Macro_rtl.tree_lat)
        ~sa_clr:first ~sa_neg;
      E.step sim
    done;
    B.set_controls sim ~load:false ~sa_en:false ~sa_clr:false
      ~sa_neg:false;
    let post =
      match bug with
      | Some Retime_early_sample -> max 0 (m.Macro_rtl.post_lat - 1)
      | _ -> m.Macro_rtl.post_lat
    in
    for _ = 1 to post do
      E.step sim
    done;
    E.eval sim;
    Array.init (E.lanes_of sim) (fun l ->
        Array.init m.Macro_rtl.words (fun g ->
            E.read_bus_signed_lane sim (Printf.sprintf "result%d" g) l))

  (* Load one chunk of lane jobs into a fresh sliced simulator: every
     lane stores its own weights in the copy it reads, and (with MCR >
     1) selects that copy through a per-lane [copy_sel]. Bits written
     into a copy no lane of that copy owns are zero — never read, since
     each lane only observes its selected copy. *)
  let load_chunk (m : Macro_rtl.t) (jobs : lane_job array) =
    let n = Array.length jobs in
    let sim = E.create ~n_lanes:n m.Macro_rtl.design in
    let copies =
      List.sort_uniq compare
        (Array.to_list (Array.map (fun j -> j.copy) jobs))
    in
    let bits = Array.make n false in
    List.iter
      (fun c ->
        for g = 0 to m.Macro_rtl.words - 1 do
          for r = 0 to m.Macro_rtl.cfg.Macro_rtl.rows - 1 do
            for j = 0 to m.Macro_rtl.wb - 1 do
              for l = 0 to n - 1 do
                bits.(l) <-
                  jobs.(l).copy = c
                  && (jobs.(l).set.Corners.weights.(g).(r) asr j) land 1 = 1
              done;
              E.set_weight_lanes sim ~row:r
                ~col:((g * m.Macro_rtl.wb) + j)
                ~copy:c bits
            done
          done
        done)
      copies;
    if m.Macro_rtl.cfg.Macro_rtl.mcr > 1 then
      E.set_bus_lanes sim "copy_sel" (Array.map (fun j -> j.copy) jobs);
    sim

  (* Judge one finished lane with [check_set]'s exact counting
     semantics: exponent first (FP), then words in order, first
     divergence wins. *)
  let judge_lane (m : Macro_rtl.t) sim (results : int array array) l
      (job : lane_job) : int * failure option =
    let set = job.set in
    let xs, exp_expected = datapath_view m set.Corners.inputs in
    let checks = ref 0 in
    let fail = ref None in
    (match exp_expected with
    | Some e ->
        incr checks;
        let got = E.read_bus_lane sim "group_exp" l in
        if got <> e then
          fail :=
            Some
              {
                set_name = set.Corners.name ^ " (group exponent)";
                word = -1;
                expected = e;
                got;
              }
    | None -> ());
    Array.iteri
      (fun g got ->
        if !fail = None then begin
          incr checks;
          let expected =
            Golden.dot ~weights:set.Corners.weights.(g) ~inputs:xs
          in
          if got <> expected then
            fail :=
              Some { set_name = set.Corners.name; word = g; expected; got }
        end)
      results.(l);
    (!checks, !fail)

  let check_macro ?bug ~seed ~random_batches (m : Macro_rtl.t) : outcome =
    let mcr = m.Macro_rtl.cfg.Macro_rtl.mcr in
    let rng = Rng.create seed in
    let sets =
      Corners.sets m @ Corners.random_sets rng m ~batches:random_batches
    in
    let jobs =
      List.concat_map
        (fun set ->
          if mcr > 1 then
            [
              { set; copy = 0 };
              {
                set =
                  {
                    set with
                    Corners.weights = rotate_rows set.Corners.weights;
                  };
                copy = mcr - 1;
              };
            ]
          else [ { set; copy = 0 } ])
        sets
      |> Array.of_list
    in
    let total = Array.length jobs in
    let checks = ref 0 in
    let failure = ref None in
    let pos = ref 0 in
    while !failure = None && !pos < total do
      let n = min E.max_lanes (total - !pos) in
      let chunk = Array.sub jobs !pos n in
      let sim = load_chunk m chunk in
      let results =
        run_mac ?bug m sim
          ~inputs:(Array.map (fun j -> j.set.Corners.inputs) chunk)
      in
      let l = ref 0 in
      while !failure = None && !l < n do
        let job = chunk.(!l) in
        let c, f = judge_lane m sim results !l job in
        checks := !checks + c;
        (match f with
        | None -> ()
        | Some f ->
            let f = scalar_reproduce ?bug m job f in
            let f =
              if job.copy = 0 then f
              else
                {
                  f with
                  set_name = Printf.sprintf "%s@copy%d" f.set_name job.copy;
                }
            in
            failure := Some f);
        incr l
      done;
      pos := !pos + n
    done;
    { checks = !checks; failure = !failure }
end

module Packed_engine = Sliced_engine (Slice.Packed)

(** [check_macro_packed ?bug ~seed ~random_batches m] — the 63-lane
    {!Sliced_engine} instance over {!Sim_packed}. *)
let check_macro_packed ?bug ~seed ~random_batches (m : Macro_rtl.t) :
    outcome =
  Packed_engine.check_macro ?bug ~seed ~random_batches m

(** [check_macro ?engine ?bug ~seed ~random_batches m] — drive a built
    macro through every directed corner set plus [random_batches] random
    sets, comparing every transaction against {!Golden}. With MCR > 1
    each set is additionally checked on the last weight copy (with
    row-rotated weights), covering the copy-select mux. The default
    [`Packed] engine batches the transactions {!Sim_packed.lanes} at a
    time; [`Multiword w] batches them [w] at a time ({!Sim_multiword});
    [`Scalar] runs them one by one (the reference the conformance suite
    pins the sliced engines against). *)
let check_macro ?(engine : Engine.t = `Packed) ?bug ~seed ~random_batches
    (m : Macro_rtl.t) : outcome =
  match engine with
  | `Scalar -> check_macro_scalar ?bug ~seed ~random_batches m
  | `Packed -> check_macro_packed ?bug ~seed ~random_batches m
  | `Multiword _ as e ->
      let module E = (val Engine.slice e) in
      let module D = Sliced_engine (E) in
      D.check_macro ?bug ~seed ~random_batches m

(** [check_spec ?engine ?bug ?random_batches ~seed ctx spec] — compile
    the spec's initial configuration over the context's library and
    check it differentially. This is the unit of work a fuzz campaign
    fans out over the pool; the engine defaults to the context's
    verification engine, and with the packed engine each unit settles
    its whole vector batch in one lane-parallel pass. *)
let check_spec ?engine ?bug ?(random_batches = 2) ~seed (ctx : Ctx.t)
    (spec : Spec.t) : outcome =
  let engine =
    match engine with Some e -> e | None -> Ctx.verify_engine ctx
  in
  let m = Macro_rtl.build (Ctx.lib ctx) (Spec.initial_config spec) in
  check_macro ~engine ?bug ~seed ~random_batches m

(** [fails ?bug ~seed ctx spec] — predicate form for the shrinker. *)
let fails ?bug ~seed (ctx : Ctx.t) spec =
  (check_spec ?bug ~seed ctx spec).failure <> None

(** [check_spec_result ?bug ~seed ctx spec] — result form: the number of
    comparisons performed, or the first divergence as a diagnostic.
    Callers assert on the diagnostic instead of catching exceptions. *)
let check_spec_result ?bug ?random_batches ~seed (ctx : Ctx.t)
    (spec : Spec.t) : (int, Diag.t) Stdlib.result =
  let o = check_spec ?bug ?random_batches ~seed ctx spec in
  match o.failure with
  | None -> Ok o.checks
  | Some f -> Error (diag_of_failure spec f)
