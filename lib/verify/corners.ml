(** Directed corner vectors for the differential checker.

    Random vectors almost never hit the corners DCIM datapaths break on:
    the two's-complement sign boundary (INT_MIN has no positive
    counterpart, so a dropped sign cycle or a mis-negated MSB column is
    invisible on typical values), the full-popcount carry chain (every
    row contributing forces the adder tree's longest carries), and the FP
    alignment edges (max-exponent groups, subnormals flushed to zero,
    signed zeros). Each vector set below targets one of those corners;
    the checker runs all of them on every fuzzed spec, before any random
    batches. *)

type vector_set = {
  name : string;
  weights : int array array;  (** [word][row], signed datapath weights *)
  inputs : int array;  (** [row], raw macro inputs (packed bits for FP) *)
}

let int_min w = if w = 1 then 0 else - (Intmath.pow2 (w - 1))
let int_max w = if w = 1 then 1 else Intmath.pow2 (w - 1) - 1

(* weight patterns over [words][rows] *)
let all_words m v =
  Array.init m.Macro_rtl.words (fun _ ->
      Array.make m.Macro_rtl.cfg.Macro_rtl.rows v)

let alternating_words m a b =
  Array.init m.Macro_rtl.words (fun _ ->
      Array.init m.Macro_rtl.cfg.Macro_rtl.rows (fun r ->
          if r mod 2 = 0 then a else b))

(* FP input patterns *)
let fp_pack f ~sign ~exp ~man = Fpfmt.pack f ~sign ~exp ~man

let fp_max f =
  fp_pack f ~sign:false
    ~exp:(Intmath.pow2 f.Fpfmt.exp_bits - 1)
    ~man:(Intmath.pow2 f.Fpfmt.man_bits - 1)

let fp_min_subnormal f = fp_pack f ~sign:false ~exp:0 ~man:1
let fp_neg_zero f = fp_pack f ~sign:true ~exp:0 ~man:0

(** [sets m] — the directed vector sets for macro [m]: weight corners
    crossed with input corners chosen for the macro's input precision. *)
let sets (m : Macro_rtl.t) : vector_set list =
  let rows = m.Macro_rtl.cfg.Macro_rtl.rows in
  let wb = m.Macro_rtl.wb in
  let weight_corners =
    [
      (* all-ones bit pattern: for wb>1 this is -1 (every column active,
         sign column included); for wb=1 it is the full popcount *)
      ("w=-1(all-bits)", all_words m (if wb = 1 then 1 else -1));
      ("w=max", all_words m (int_max wb));
      ("w=min", all_words m (int_min wb));
      ("w=min/max", alternating_words m (int_min wb) (int_max wb));
    ]
  in
  let input_corners =
    match m.Macro_rtl.cfg.Macro_rtl.input_prec with
    | Precision.Int w ->
        [
          (* full popcount saturation: every row drives every serial cycle *)
          ("x=-1(all-bits)", Array.make rows (if w = 1 then 1 else -1));
          ("x=min", Array.make rows (int_min w));
          ("x=max", Array.make rows (int_max w));
          ( "x=min/max",
            Array.init rows (fun r ->
                if r mod 2 = 0 then int_min w else int_max w) );
        ]
    | Precision.Fp f ->
        [
          (* all rows at the format's largest magnitude: the aligner's
             zero-shift, full-carry case *)
          ("x=fp_max", Array.make rows (fp_max f));
          (* one dominant exponent, everything else subnormal: the
             flush-to-zero path *)
          ( "x=fp_max/denorm",
            Array.init rows (fun r ->
                if r = 0 then fp_max f else fp_min_subnormal f) );
          (* signed zeros mixed with ordinary values: sign logic on a
             zero magnitude *)
          ( "x=neg_zero/one",
            Array.init rows (fun r ->
                if r mod 2 = 0 then fp_neg_zero f
                else fp_pack f ~sign:false ~exp:(Fpfmt.bias f) ~man:0) );
          (* subnormals only: group exponent pinned at 1 *)
          ("x=denorm", Array.make rows (fp_min_subnormal f));
        ]
  in
  List.concat_map
    (fun (wn, weights) ->
      List.map
        (fun (xn, inputs) ->
          { name = Printf.sprintf "%s,%s" wn xn; weights; inputs })
        input_corners)
    weight_corners

(** [random_sets rng m ~batches] — dense random vectors, the classic
    differential batch, as the tail of every campaign. *)
let random_sets rng (m : Macro_rtl.t) ~batches : vector_set list =
  List.init batches (fun i ->
      {
        name = Printf.sprintf "random#%d" i;
        weights = Testbench.random_weights rng m ~density:1.0;
        inputs =
          Array.init m.Macro_rtl.cfg.Macro_rtl.rows (fun _ ->
              Testbench.random_input rng m ~density:1.0);
      })
