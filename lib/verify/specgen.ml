(** Coverage-driven specification fuzzer.

    Generates valid {!Spec.t} instances deterministically from a seed,
    stratified so every fuzz campaign covers the axes the datapath
    actually branches on: array dimensions, INT widths and FP formats,
    memory-compute ratio, and frequency/preference targets. Stratification
    is round-robin over the cross product (index [i] walks each axis at a
    different co-prime stride), so even a short campaign touches every
    precision and every dimension class rather than sampling the bulk of
    a uniform distribution.

    A failing spec can be *shrunk*: {!shrink} proposes strictly simpler
    neighbours (fewer rows, narrower precisions, fewer copies…) and
    {!shrink_to_minimal} greedily descends while the caller's predicate
    still fails, yielding a minimal reproducer — the spec every debug
    session wants instead of the 32x32 FP8 monster the fuzzer found
    first. *)

(* Strata. Dimensions stay small enough that a smoke campaign of a few
   hundred specs builds and simulates in seconds, while still crossing
   every structural boundary (single word, many words, deep trees). *)
let rows_strata = [| 2; 4; 8; 16; 32 |]
let cols_strata = [| 8; 16; 32 |]
let mcr_strata = [| 1; 2; 4 |]

let input_strata =
  [|
    Precision.int1; Precision.int2; Precision.int4; Precision.int8;
    Precision.fp4; Precision.fp8; Precision.bf16;
  |]

(* Weights are stored and fused as integers; FP weights are not a valid
   macro configuration, so the weight axis is INT-only. *)
let weight_strata = [| Precision.int1; Precision.int2; Precision.int4;
                       Precision.int8 |]

let freq_strata = [| 400e6; 600e6; 800e6; 1000e6 |]

let pref_strata =
  [|
    Spec.Balanced; Spec.Prefer_power; Spec.Prefer_area;
    Spec.Prefer_performance;
  |]

let wb_of p = Precision.datapath_bits p

(* Repair the raw stratum choice into a legal configuration: the macro
   requires cols to be a positive multiple of the weight width. *)
let legalize ~cols ~weight_prec =
  let wb = wb_of weight_prec in
  let cols = max cols wb in
  cols - (cols mod wb)

(** [generate ~seed ~count] — [count] specs, deterministic in [seed].
    Spec [i] of a campaign only depends on [seed] and [i], so parallel
    workers can regenerate any spec independently. *)
let generate ~seed ~count : Spec.t list =
  List.init count (fun i ->
      (* per-index deterministic draw: a small LCG step decorrelates the
         axes without any shared mutable stream *)
      let h = (seed + (i * 0x9E3779B1)) land 0x3FFFFFFF in
      let pick arr salt = arr.((h / salt) mod Array.length arr) in
      let weight_prec = pick weight_strata 7 in
      let input_prec = pick input_strata 3 in
      let rows = pick rows_strata 1 in
      let cols = legalize ~cols:(pick cols_strata 5) ~weight_prec in
      {
        Spec.rows;
        cols;
        mcr = pick mcr_strata 11;
        input_prec;
        weight_prec;
        mac_freq_hz = pick freq_strata 13;
        weight_update_freq_hz = pick freq_strata 17;
        vdd = 0.9;
        preference = pick pref_strata 19;
      })

(* Simpler-precision ladder: FP shrinks into the INT ladder (an FP
   reproducer that also fails as INT is strictly easier to debug). *)
let simpler_precisions = function
  | Precision.Int 1 -> []
  | Precision.Int w -> [ Precision.Int (w / 2) ]
  | Precision.Fp _ -> [ Precision.int4; Precision.int1 ]

(** [shrink s] — strictly simpler candidate specs, most aggressive
    first. Every candidate is legal; the list is empty iff [s] is already
    minimal on every axis. *)
let shrink (s : Spec.t) : Spec.t list =
  let cands = ref [] in
  let add c = cands := c :: !cands in
  (* canonicalize the non-functional axes first so reproducers are
     uniform: preference and update frequency never change function *)
  if s.Spec.preference <> Spec.Balanced then
    add { s with Spec.preference = Spec.Balanced };
  if s.Spec.weight_update_freq_hz <> s.Spec.mac_freq_hz then
    add { s with Spec.weight_update_freq_hz = s.Spec.mac_freq_hz };
  if s.Spec.mcr > 1 then add { s with Spec.mcr = s.Spec.mcr / 2 };
  if s.Spec.rows > 2 then add { s with Spec.rows = s.Spec.rows / 2 };
  let wb = wb_of s.Spec.weight_prec in
  if s.Spec.cols / 2 >= wb && s.Spec.cols mod 2 = 0 then
    add { s with Spec.cols = s.Spec.cols / 2 };
  List.iter
    (fun p -> add { s with Spec.input_prec = p })
    (simpler_precisions s.Spec.input_prec);
  List.iter
    (fun p ->
      let cols = legalize ~cols:s.Spec.cols ~weight_prec:p in
      add { s with Spec.weight_prec = p; cols })
    (simpler_precisions s.Spec.weight_prec);
  List.rev !cands

(** [shrink_to_minimal ~fails s] — greedy descent: repeatedly adopt the
    first shrink candidate on which [fails] still holds, until no
    candidate fails. Returns the minimal reproducer and the number of
    successful shrink steps. [fails s] must be true on entry. Terminates:
    every candidate strictly decreases (rows, cols, precision widths,
    mcr) or canonicalizes a once-only axis. *)
let shrink_to_minimal ~(fails : Spec.t -> bool) (s : Spec.t) :
    Spec.t * int =
  let rec go s steps =
    match List.find_opt fails (shrink s) with
    | Some s' -> go s' (steps + 1)
    | None -> (s, steps)
  in
  go s 0

let describe = Spec.describe
