(** Metamorphic properties of the searcher and the subcircuit library.

    Two families:

    - *Move preservation*: every structural move Algorithm 1 can apply to
      a configuration — retiming, column splitting, pipelining, shift-
      adder and tree substitution, register fusion — must preserve the
      macro's function. Each variant of a spec's initial configuration is
      driven through the same directed + random transactions and must
      match {!Golden} (hence, by transitivity, match every other
      variant). Latency-preserving pairs are additionally cross-checked
      with {!Equiv.check}, whose post-drain hold window now watches every
      cycle.

    - *LUT monotonicity*: the PPA estimates the searcher ranks candidates
      by must be monotone along the axes the search walks — deeper trees
      are slower, bigger arrays are bigger, tighter frequency targets
      mean smaller budgets, lower supplies mean longer delays. A
      non-monotone LUT silently derails the greedy walk even when every
      individual entry is plausible. *)

type result = { name : string; ok : bool; detail : string }

(* ---------------- move preservation ---------------- *)

(** [variants spec] — the searcher moves applicable to the spec's initial
    configuration, as (technique name, config) pairs. The base
    configuration itself is checked by the differential pass. *)
let variants (spec : Spec.t) : (string * Macro_rtl.config) list =
  let base = Spec.initial_config spec in
  let splittable =
    base.Macro_rtl.rows mod 2 = 0 && base.Macro_rtl.rows >= 4
  in
  List.concat
    [
      [
        ("tt2:retime_final_rca", { base with Macro_rtl.retime_final_rca = true });
        ("tt4:retime_ofu", { base with Macro_rtl.ofu_retime = true });
        ("tt5:pipe_ofu", { base with Macro_rtl.ofu_extra_pipe = true });
        ( "tt1:carry_save_sa",
          { base with Macro_rtl.sa_kind = Shift_adder.Carry_save } );
        ( "tt1:fa_tree",
          {
            base with
            Macro_rtl.tree = Adder_tree.Csa { fa_ratio = 1.0; reorder = true };
          } );
        ("fuse:tree_sa", { base with Macro_rtl.reg_after_tree = false });
        ("ft:pass_1t_mul", { base with Macro_rtl.mul_kind = Cell.Pass_1t });
      ];
      (if splittable then
         [ ("tt3:split_column", { base with Macro_rtl.tree_split = 2 }) ]
       else []);
    ]

(** [check_moves ?jobs ?engine ~seed ctx spec] — build every variant and
    check it differentially; one result per move. Variants fan out over
    the pool (width from the context unless [?jobs] overrides), and
    within each variant the random-vector batch packs 63-wide through
    the bit-sliced engine (default: the context's verification engine);
    the results are engine- and job-count-invariant. *)
let check_moves ?jobs ?engine ~seed (ctx : Ctx.t) (spec : Spec.t) :
    result list =
  let jobs = match jobs with Some j -> Some j | None -> Ctx.jobs ctx in
  let engine =
    match engine with Some e -> e | None -> Ctx.verify_engine ctx
  in
  let lib = Ctx.lib ctx in
  Pool.parallel_map ?jobs
    (fun (name, cfg) ->
      let m = Macro_rtl.build lib cfg in
      let o = Diffcheck.check_macro ~engine ~seed ~random_batches:1 m in
      match o.Diffcheck.failure with
      | None ->
          { name; ok = true; detail = Printf.sprintf "%d checks" o.Diffcheck.checks }
      | Some f -> { name; ok = false; detail = Diffcheck.describe_failure f })
    (variants spec)

(** [check_equiv_pair ?engine ~seed ctx spec] — cycle-level equivalence
    between the base configuration and its latency-preserving tree
    substitution, through the glitch-proof {!Equiv.check} (vectors pack
    as lanes under the context's default verification engine). *)
let check_equiv_pair ?engine ~seed (ctx : Ctx.t) (spec : Spec.t) : result =
  let engine =
    match engine with Some e -> e | None -> Ctx.verify_engine ctx
  in
  let lib = Ctx.lib ctx in
  let base = Spec.initial_config spec in
  let sub =
    {
      base with
      Macro_rtl.tree = Adder_tree.Csa { fa_ratio = 1.0; reorder = true };
    }
  in
  let a = (Macro_rtl.build lib base).Macro_rtl.design in
  let b = (Macro_rtl.build lib sub).Macro_rtl.design in
  match Equiv.check ~engine ~seed ~vectors:12 ~settle:12 ~hold:4 a b with
  | Equiv.Equivalent n ->
      {
        name = "equiv:tree_substitution";
        ok = true;
        detail = Printf.sprintf "%d vectors" n;
      }
  | Equiv.Mismatch { vector; cycle; bus; a; b } ->
      {
        name = "equiv:tree_substitution";
        ok = false;
        detail =
          Printf.sprintf "vector %d cycle %d bus %s: %d vs %d" vector cycle
            bus a b;
      }

(* ---------------- LUT monotonicity ---------------- *)

let mono ~name ~detail xs le =
  let rec ok = function
    | a :: (b :: _ as rest) -> le a b && ok rest
    | _ -> true
  in
  { name; ok = ok xs; detail }

(** [lut_monotonicity ctx] — the monotonicity battery over the context's
    SCL and the spec-derived timing constraints. *)
let lut_monotonicity (ctx : Ctx.t) : result list =
  let lib = Ctx.lib ctx and scl = Ctx.scl ctx in
  let heights = [ 8; 16; 32; 64 ] in
  let topo = Adder_tree.Csa { fa_ratio = 0.0; reorder = false } in
  let tree_delays =
    List.map
      (fun rows -> (Scl.adder_tree scl ~topology:topo ~rows).Ppa.delay_ps)
      heights
  in
  let cfg rows cols =
    Macro_rtl.default ~rows ~cols ~mcr:1 ~input_prec:Precision.int8
      ~weight_prec:Precision.int8
  in
  let est rows cols = Scl.estimate_macro scl (cfg rows cols) in
  let areas =
    [ (est 16 16).Ppa.area_um2; (est 32 16).Ppa.area_um2;
      (est 32 32).Ppa.area_um2 ]
  in
  let est_delays =
    [ (est 8 16).Ppa.delay_ps; (est 64 16).Ppa.delay_ps ]
  in
  let spec_at freq =
    { Spec.fig8 with Spec.rows = 16; cols = 16; mac_freq_hz = freq }
  in
  let budgets =
    List.map
      (fun f -> Spec.nominal_budget_ps (spec_at f) lib.Library.node)
      [ 400e6; 600e6; 800e6; 1000e6 ]
  in
  let derate =
    Spec.search_budget_ps (spec_at 800e6) lib.Library.node
    < Spec.nominal_budget_ps (spec_at 800e6) lib.Library.node
  in
  let scales =
    List.map
      (fun vdd -> Voltage.delay_scale lib.Library.node ~vdd)
      [ 0.7; 0.9; 1.1 ]
  in
  [
    mono ~name:"lut:tree_delay_vs_rows"
      ~detail:"characterized tree delay non-decreasing in height"
      tree_delays (fun a b -> a <= b +. 1e-9);
    mono ~name:"lut:macro_area_vs_dims"
      ~detail:"composed macro area strictly increasing in rows and cols"
      areas (fun a b -> a < b);
    mono ~name:"lut:macro_delay_vs_rows"
      ~detail:"composed macro delay non-decreasing in rows" est_delays
      (fun a b -> a <= b +. 1e-9);
    mono ~name:"spec:budget_vs_freq"
      ~detail:"cycle budget strictly decreasing in target frequency"
      budgets (fun a b -> a > b);
    {
      name = "spec:search_budget_derated";
      ok = derate;
      detail = "pre-layout budget below nominal budget";
    };
    mono ~name:"tech:delay_scale_vs_vdd"
      ~detail:"delay derating non-increasing in supply" scales
      (fun a b -> a >= b -. 1e-9);
  ]
