(** Golden PPA regression snapshots.

    A snapshot is the rendered PPA fingerprint of a fixed set of
    canonical specifications, committed under [test/snapshots/]. Every
    verification run recomputes the fingerprints and diffs them against
    the committed text: a refactor that silently shifts timing, area or
    power — without breaking any functional test — fails the diff with a
    readable before/after report. [syndcim verify --update-snapshots]
    re-records after an intentional change.

    Fingerprints are rendered with fixed precision, so they are stable
    across job counts (evaluation is pure and the pool preserves order)
    and machines (the whole flow is deterministic float arithmetic). *)

type entry = {
  name : string;
  crit_ps : float;  (** post-sizing nominal-voltage critical path *)
  area_um2 : float;
  power_mw : float;
  tops : float;
  insts : int;  (** netlist instance count: structure fingerprint *)
}

(** The canonical spec set: one point per regime the compiler serves —
    plain INT8, narrow INT4, FP-aligned input, and a multi-copy array. *)
let canonical_specs : (string * Spec.t) list =
  let mk ?(mcr = 1) ?(iprec = Precision.int8) ?(wprec = Precision.int8)
      ~rows ~cols ~mhz name =
    ( name,
      {
        Spec.rows;
        cols;
        mcr;
        input_prec = iprec;
        weight_prec = wprec;
        mac_freq_hz = mhz *. 1e6;
        weight_update_freq_hz = mhz *. 1e6;
        vdd = 0.9;
        preference = Spec.Balanced;
      } )
  in
  [
    mk ~rows:16 ~cols:16 ~mhz:600.0 "int8_16x16_600MHz";
    mk ~iprec:Precision.int4 ~wprec:Precision.int4 ~rows:16 ~cols:16
      ~mhz:800.0 "int4_16x16_800MHz";
    mk ~iprec:Precision.fp8 ~rows:8 ~cols:8 ~mhz:500.0 "fp8_8x8_500MHz";
    mk ~mcr:2 ~rows:32 ~cols:32 ~mhz:800.0 "int8_32x32_mcr2_800MHz";
  ]

(** [fingerprint ?jobs ctx specs] — evaluate each spec's initial
    configuration over the context's library; order follows the input
    list for any job count (width from the context unless [?jobs]
    overrides). *)
let fingerprint ?jobs (ctx : Ctx.t) (specs : (string * Spec.t) list) :
    entry list =
  let jobs = match jobs with Some j -> Some j | None -> Ctx.jobs ctx in
  let lib = Ctx.lib ctx in
  Pool.parallel_map ?jobs
    (fun (name, s) ->
      let p = Design_point.evaluate lib s (Spec.initial_config s) in
      {
        name;
        crit_ps = p.Design_point.crit_ps;
        area_um2 = p.Design_point.area_um2;
        power_mw = p.Design_point.power_w *. 1e3;
        tops = p.Design_point.tops;
        insts = Ir.n_insts p.Design_point.macro.Macro_rtl.design;
      })
    specs

let header =
  "# SynDCIM golden PPA fingerprints — regenerate with `syndcim verify \
   --update-snapshots`\n\
   # spec | crit_ps | area_um2 | power_mw | tops | insts"

let render_entry (e : entry) =
  Printf.sprintf "%-24s | %10.1f | %12.1f | %10.4f | %8.4f | %7d" e.name
    e.crit_ps e.area_um2 e.power_mw e.tops e.insts

(** [render entries] — the canonical snapshot text. *)
let render (entries : entry list) : string =
  String.concat "\n" (header :: List.map render_entry entries) ^ "\n"

(* data lines only: comments and blanks don't participate in the diff *)
let data_lines text =
  String.split_on_char '\n' text
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')

(** [diff ~expected ~actual] — [None] when the fingerprints agree;
    otherwise a readable per-spec report of what moved. *)
let diff ~expected ~actual : string option =
  let e = data_lines expected and a = data_lines actual in
  let rec pair acc e a =
    match (e, a) with
    | [], [] -> List.rev acc
    | x :: e, [] -> pair ((Some x, None) :: acc) e []
    | [], y :: a -> pair ((None, Some y) :: acc) [] a
    | x :: e, y :: a -> pair ((Some x, Some y) :: acc) e a
  in
  let bad =
    List.filter (fun (x, y) -> x <> y) (pair [] e a)
  in
  if bad = [] then None
  else
    let lines =
      List.concat_map
        (fun (x, y) ->
          let pre tag = function
            | Some l -> [ Printf.sprintf " %s %s" tag l ]
            | None -> []
          in
          pre "- recorded:" x @ pre "+ measured:" y)
        bad
    in
    Some
      (String.concat "\n"
         (Printf.sprintf
            "PPA snapshot mismatch: %d of %d fingerprints shifted"
            (List.length bad)
            (max (List.length e) (List.length a))
         :: lines))

let save path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(** [check ?jobs ~dir ctx] — compare current fingerprints against the
    snapshot file under [dir]; [Ok checked] or [Error report]. A missing
    snapshot file is an error naming the update command. *)
let file = "ppa.snap"

let check ?jobs ~dir (ctx : Ctx.t) : (int, string) Stdlib.result =
  let path = Filename.concat dir file in
  let actual = render (fingerprint ?jobs ctx canonical_specs) in
  if not (Sys.file_exists path) then
    Error
      (Printf.sprintf
         "no PPA snapshot at %s — record one with `syndcim verify \
          --update-snapshots`"
         path)
  else
    match diff ~expected:(load path) ~actual with
    | None -> Ok (List.length canonical_specs)
    | Some report -> Error report

(** [check_diag ?jobs ~dir ctx] — {!check} with the mismatch carried as a
    structured diagnostic (stage ["snapshot"], per-spec payload), so the
    CLI reports it through the same channel as pipeline diagnostics. *)
let check_diag ?jobs ~dir (ctx : Ctx.t) : (int, Diag.t) Stdlib.result =
  match check ?jobs ~dir ctx with
  | Ok n -> Ok n
  | Error report ->
      Error
        (Diag.error ~stage:"snapshot"
           ~payload:[ ("dir", dir); ("file", file) ]
           report)

(** [update ?jobs ~dir ctx] — re-record the snapshot; returns the path. *)
let rec mkdirs dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdirs (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let update ?jobs ~dir (ctx : Ctx.t) : string =
  mkdirs dir;
  let path = Filename.concat dir file in
  save path (render (fingerprint ?jobs ctx canonical_specs));
  path
