(** Switching-activity power estimation.

    Consumes the toggle counters a {!Netlist.Sim} run accumulated and turns
    them into watts: every output toggle costs the driving cell's internal
    energy plus (1/2)·C_load·VDD², every clock edge costs each flip-flop its
    clock-pin energy (inflated by a clock-tree factor), every SRAM bit flip
    costs a write energy, and leakage integrates over time. This is the
    same accounting a gate-level PrimeTime power run performs. *)

(** Extra switching capacitance of the clock distribution, as a multiplier
    on the flip-flops' clock-pin energy. *)
let clock_tree_factor = 1.25

(** SRAM write energy per flipped bit at nominal VDD (fJ). *)
let sram_write_fj = 8.0

type breakdown = (string * float) list
(** watts per subcircuit label *)

type report = {
  dynamic_w : float;
  clock_w : float;
  leakage_w : float;
  weight_update_w : float;
  total_w : float;
  energy_per_cycle_fj : float;
  by_subcircuit : breakdown;
}

let tag_label = function
  | Ir.Subcircuit s -> s
  | Ir.Weight_bit _ -> "memory_cell"
  | Ir.Pipeline_reg _ -> "pipeline"
  | Ir.Plain -> "other"

(** [estimate_activity d lib ~toggles ~en_cycles ~cycles ~weight_flips
    ~freq_hz ~vdd ?wire_cap ?loads ()] converts raw switching-activity
    counters into a power report at the given operating point. This is
    the accounting core both simulators share: the scalar {!Sim} passes
    its counters through {!estimate}; the bit-sliced {!Sim_packed} passes
    lane-summed counters with [cycles] inflated by the lane count
    ({!estimate_packed}), which yields the *average* power of one macro
    replica over the whole lane ensemble. [cycles] must be positive.
    [loads] is the per-net fanout-load map ({!Ir.fanout_loads}); pass the
    one the timing pass already computed to avoid rebuilding it here. *)
let estimate_activity (d : Ir.design) (lib : Library.t)
    ~(toggles : int array) ~(en_cycles : int array) ~(cycles : int)
    ~(weight_flips : int) ~freq_hz ~vdd
    ?(wire_cap = fun (_ : Ir.net) -> 0.0) ?loads () =
  assert (cycles > 0);
  let loads =
    match loads with
    | Some l -> l
    | None -> Ir.fanout_loads d lib ~wire_cap ()
  in
  let node = lib.Library.node in
  let esc = Voltage.energy_scale node ~vdd in
  let lsc = Voltage.leakage_scale node ~vdd in
  let sub = Hashtbl.create 16 in
  let add_sub tag fj =
    let key = tag_label tag in
    let cur = try Hashtbl.find sub key with Not_found -> 0.0 in
    Hashtbl.replace sub key (cur +. fj)
  in
  (* switching energy, accumulated in fJ over the whole run *)
  let sw_fj = ref 0.0 in
  Array.iteri
    (fun net count ->
      if count > 0 then
        match d.driver.(net) with
        | None -> () (* primary input: charged to the driver upstream *)
        | Some (i, _o) ->
            let inst = d.insts.(i) in
            let p = Library.params lib inst.kind inst.drive in
            let load = loads.(net) in
            let per_toggle =
              (p.energy_fj *. esc) +. (0.5 *. load *. vdd *. vdd)
            in
            let fj = float_of_int count *. per_toggle in
            sw_fj := !sw_fj +. fj;
            add_sub inst.tag fj)
    toggles;
  (* clock network: plain flip-flops see every edge; enabled flip-flops
     sit behind integrated clock gates and are only charged for their
     enabled cycles *)
  let cycles = float_of_int cycles in
  let clk_fj =
    Array.fold_left
      (fun acc i ->
        let inst = d.insts.(i) in
        let p = Library.params lib inst.kind inst.drive in
        let active =
          match inst.kind with
          | Cell.Dff_en -> float_of_int en_cycles.(i)
          | _ -> cycles
        in
        acc +. (p.clock_energy_fj *. esc *. clock_tree_factor *. active))
      0.0 d.seq
  in
  (* weight updates through the BL drivers *)
  let wr_fj = float_of_int weight_flips *. sram_write_fj *. esc in
  let time_s = cycles /. freq_hz in
  let to_w fj = fj *. 1e-15 /. time_s in
  let leak_nw =
    Array.fold_left
      (fun acc (inst : Ir.inst) ->
        let p = Library.params lib inst.kind inst.drive in
        acc +. p.leakage_nw)
      0.0 d.insts
  in
  let leakage_w = leak_nw *. 1e-9 *. lsc in
  let dynamic_w = to_w !sw_fj in
  let clock_w = to_w clk_fj in
  let weight_update_w = to_w wr_fj in
  let total_w = dynamic_w +. clock_w +. leakage_w +. weight_update_w in
  {
    dynamic_w;
    clock_w;
    leakage_w;
    weight_update_w;
    total_w;
    energy_per_cycle_fj = (!sw_fj +. clk_fj +. wr_fj) /. cycles;
    by_subcircuit =
      Hashtbl.fold (fun k fj acc -> (k, to_w fj) :: acc) sub []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
  }

(** [estimate_at_vdds d lib ~toggles .. ~vdds ()] — one set of counters,
    a whole supply-voltage column of reports. Switching activity is
    voltage-independent (the stimulus fixes which nets toggle; the
    supply only rescales each toggle's energy through
    {!Voltage.energy_scale}/{!Voltage.leakage_scale}), so a single
    simulation run serves every VDD point of a shmoo column. The
    fanout-load map is built once and shared, which makes each column
    entry perform float arithmetic bit-identical to a standalone
    {!estimate_activity} call given the same [loads]. *)
let estimate_at_vdds (d : Ir.design) (lib : Library.t)
    ~(toggles : int array) ~(en_cycles : int array) ~(cycles : int)
    ~(weight_flips : int) ~freq_hz ~(vdds : float array) ?wire_cap ?loads
    () =
  let loads =
    match loads with
    | Some l -> l
    | None -> Ir.fanout_loads d lib ?wire_cap ()
  in
  Array.map
    (fun vdd ->
      estimate_activity d lib ~toggles ~en_cycles ~cycles ~weight_flips
        ~freq_hz ~vdd ~loads ())
    vdds

(** [estimate d lib sim ~freq_hz ~vdd ?wire_cap ?loads ()] — the scalar
    entry point: the toggle statistics of a finished {!Sim} run. [sim]
    must have run at least one cycle. *)
let estimate (d : Ir.design) (lib : Library.t) (sim : Sim.t) ~freq_hz ~vdd
    ?wire_cap ?loads () =
  estimate_activity d lib ~toggles:sim.Sim.toggles
    ~en_cycles:sim.Sim.en_cycles ~cycles:sim.Sim.cycles
    ~weight_flips:sim.Sim.weight_flips ~freq_hz ~vdd ?wire_cap ?loads ()

(** [estimate_packed d lib psim ~freq_hz ~vdd ?wire_cap ?loads ()] — the
    bit-sliced entry point: a finished {!Sim_packed} run is an ensemble
    of [lanes_of psim] independent replicas, so its lane-summed toggle /
    enable / flip counters are divided by the ensemble by charging them
    against [lanes × cycles] effective cycles. The report is the average
    power of one replica — the Monte Carlo estimate the search loop
    wants, converged over 63× the sample mass per simulated cycle. *)
let estimate_packed (d : Ir.design) (lib : Library.t) (psim : Sim_packed.t)
    ~freq_hz ~vdd ?wire_cap ?loads () =
  estimate_activity d lib ~toggles:psim.Sim_packed.toggles
    ~en_cycles:psim.Sim_packed.en_cycles
    ~cycles:(psim.Sim_packed.cycles * Sim_packed.lanes_of psim)
    ~weight_flips:psim.Sim_packed.weight_flips ~freq_hz ~vdd ?wire_cap
    ?loads ()
