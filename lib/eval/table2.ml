(** Paper Table II: the SynDCIM test macro against published
    state-of-the-art DCIM chips, under the paper's scaling footnotes:
    TOPS to a 4 Kb array at 1b x 1b; TOPS/mm2 to 40 nm assuming 80 % area
    efficiency gain per node; TOPS/W to 40 nm assuming 30 % energy
    efficiency gain per node.

    "This Design" is measured, not transcribed: the 64x64 MCR=2 INT4 macro
    is compiled, signed off, its peak frequency taken from the shmoo at
    1.2 V, its power simulated post-layout at the paper's measurement
    conditions (12.5 % input sparsity, 50 % weight sparsity, INT4) at the
    low-voltage efficiency point (0.7 V). *)

type this_design = {
  artifact : Pipeline.artifact;
  array_kb : float;
  area_mm2 : float;
  peak_ghz : float;  (** at 1.2 V *)
  tops_1b : float;  (** peak, 1b x 1b, 4 Kb array (no scaling needed) *)
  tops_mm2_1b : float;
  tops_w_1b : float;  (** at the 0.7 V efficiency point *)
}

(** The test-chip spec: 64x64, MCR = 2, INT4 measurement mode. *)
let chip_spec : Spec.t =
  {
    Spec.rows = 64;
    cols = 64;
    mcr = 2;
    input_prec = Precision.int4;
    weight_prec = Precision.int4;
    mac_freq_hz = 800e6;
    weight_update_freq_hz = 800e6;
    vdd = 0.9;
    preference = Spec.Prefer_power;
  }

let measure (ctx : Ctx.t) : this_design =
  let lib = Ctx.lib ctx in
  let a = Pipeline.artifact_exn (Pipeline.run ctx chip_spec) in
  let node = lib.Library.node in
  let crit = a.Pipeline.metrics.Pipeline.crit_ps in
  let m = a.Pipeline.macro in
  let peak_hz = Voltage.fmax node ~crit_path_ps:crit ~vdd:1.2 in
  let ops_norm = float_of_int (m.Macro_rtl.db * m.Macro_rtl.wb) in
  let tops_at hz = Design_point.throughput_tops m ~freq_hz:hz *. ops_norm in
  let tops_1b = tops_at peak_hz in
  (* efficiency point: highest frequency the macro passes at 0.7 V *)
  let eff_vdd = 0.7 in
  let eff_hz = Voltage.fmax node ~crit_path_ps:crit ~vdd:eff_vdd in
  let power =
    Post_layout.power lib m a.Pipeline.signoff ~freq_hz:eff_hz ~vdd:eff_vdd
      ~input_density:Pipeline.report_input_density
      ~weight_density:Pipeline.report_weight_density
      ~macs:Pipeline.report_macs
  in
  let area = a.Pipeline.metrics.Pipeline.area_mm2 in
  {
    artifact = a;
    array_kb =
      float_of_int (chip_spec.Spec.rows * chip_spec.Spec.cols) /. 1024.0;
    area_mm2 = area;
    peak_ghz = peak_hz /. 1e9;
    tops_1b;
    tops_mm2_1b = tops_1b /. area;
    tops_w_1b = tops_at eff_hz /. power.Power.total_w;
  }

let rows ?jobs (d : this_design) =
  let published =
    Pool.parallel_map ?jobs
      (fun (p : Scaling.datapoint) ->
        [
          p.Scaling.label;
          Printf.sprintf "%.0fnm" p.Scaling.technology_nm;
          Printf.sprintf "%.2gKb" p.Scaling.array_kb;
          p.Scaling.memory_cell;
          Printf.sprintf "%.4f" p.Scaling.macro_area_mm2;
          (if p.Scaling.mac_write then "yes" else "no");
          Table.f ~digits:1 (Scaling.tops_scaled p);
          Table.f ~digits:1 (Scaling.area_eff_scaled p);
          Table.f ~digits:0 (Scaling.energy_eff_scaled p);
        ])
      Scaling.published
  in
  let this =
    [
      "This Design (measured)";
      "40nm";
      Printf.sprintf "%.0fKb" d.array_kb;
      "6T";
      Printf.sprintf "%.4f" d.area_mm2;
      "yes";
      Table.f ~digits:1 d.tops_1b;
      Table.f ~digits:1 d.tops_mm2_1b;
      Table.f ~digits:0 d.tops_w_1b;
    ]
  in
  published @ [ this ]

let table ?jobs d =
  Table.make
    ~header:
      [
        "design"; "tech"; "array"; "cell"; "area (mm2)"; "MAC-write";
        "TOPS*"; "TOPS/mm2*"; "TOPS/W*";
      ]
    (rows ?jobs d)

let print ?jobs d =
  print_endline
    "Table II — comparison with state-of-the-art DCIM macros (*scaled per \
     the paper's footnotes: 4Kb 1bx1b; 40nm with 80 %/node area and 30 \
     %/node energy improvements)";
  Table.print (table ?jobs d);
  Printf.printf
    "this design: peak %.2f GHz @ 1.2 V; efficiency point 0.7 V\n"
    d.peak_ghz
