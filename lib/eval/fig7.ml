(** Paper Figure 7: post-layout energy efficiency of SynDCIM-generated
    macros across precisions (INT4, INT8, FP8, BF16) and dimensions
    (32x32 … 256x256).

    One macro is compiled per (dimension, precision) point. FP inputs are
    aligned on-line by the generated FP&INT alignment unit; FP weights are
    pre-aligned at load time into the stored integer mantissas (DESIGN.md
    documents this substitution — the paper's runtime-reconfigurable
    datapath is realized as per-precision datapath instances, which
    preserves the trend Fig. 7 plots: the alignment/OFU overhead of FP
    relative to INT).

    Efficiency is reported in 1b x 1b-normalized TOPS/W, the paper's unit,
    measured post-layout at the paper's sparsity (12.5 % input, 50 %
    weight). *)

type point = {
  dim : int;
  precision : string;
  power_mw : float;
  tops_native : float;
  tops_w_native : float;
  tops_w_1b : float;
  closed : bool;
}

let precisions : (string * Precision.t * Precision.t) list =
  [
    ("INT4", Precision.int4, Precision.int4);
    ("INT8", Precision.int8, Precision.int8);
    ("FP8", Precision.fp8, Precision.int8);
    ("BF16", Precision.bf16, Precision.int8);
  ]

(** The MAC frequency used for every Fig. 7 point; moderate so even the
    256x256 arrays close timing post-layout and the comparison stays
    iso-frequency as in the paper. *)
let freq_hz = 300e6

let vdd = 0.9

let spec ~dim ~input_prec ~weight_prec : Spec.t =
  {
    Spec.rows = dim;
    cols = dim;
    mcr = 1;
    input_prec;
    weight_prec;
    mac_freq_hz = freq_hz;
    weight_update_freq_hz = freq_hz;
    vdd;
    preference = Spec.Prefer_power;
  }

let run_point ctx ~dim ~name ~input_prec ~weight_prec =
  let a =
    Pipeline.artifact_exn
      (Pipeline.run ctx (spec ~dim ~input_prec ~weight_prec))
  in
  let m = a.Pipeline.metrics in
  {
    dim;
    precision = name;
    power_mw = m.Pipeline.power_w *. 1e3;
    tops_native = m.Pipeline.tops;
    tops_w_native = m.Pipeline.tops_per_w;
    tops_w_1b = m.Pipeline.tops_per_w *. m.Pipeline.ops_norm;
    closed = a.Pipeline.timing_closed;
  }

(** [run ctx ~dims] computes the full figure; [dims] defaults to the
    paper's four sizes. The (dimension, precision) grid points are
    independent compilations, so they fan out over the domain pool
    (width from the context unless [?jobs] overrides). *)
let run ?(dims = [ 32; 64; 128; 256 ]) ?jobs (ctx : Ctx.t) =
  let jobs = match jobs with Some j -> Some j | None -> Ctx.jobs ctx in
  let grid =
    List.concat_map (fun dim -> List.map (fun p -> (dim, p)) precisions) dims
  in
  Pool.parallel_map ?jobs
    (fun (dim, (name, ip, wp)) ->
      run_point ctx ~dim ~name ~input_prec:ip ~weight_prec:wp)
    grid

let table points =
  let rows =
    List.map
      (fun p ->
        [
          Printf.sprintf "%dx%d" p.dim p.dim;
          p.precision;
          Table.f p.power_mw;
          Table.f ~digits:3 p.tops_native;
          Table.f p.tops_w_native;
          Table.f ~digits:0 p.tops_w_1b;
          (if p.closed then "yes" else "no");
        ])
      points
  in
  Table.make
    ~header:
      [
        "array"; "precision"; "power (mW)"; "TOPS"; "TOPS/W";
        "TOPS/W (1b)"; "timing";
      ]
    rows

(** FP-over-INT power overhead at one dimension, for the paper's "FP8 and
    BF16 consume around 10 % and 20 % more power" claim. *)
let fp_overheads points ~dim =
  let find prec =
    List.find_opt (fun p -> p.dim = dim && p.precision = prec) points
  in
  match (find "INT8", find "FP8", find "BF16") with
  | Some i8, Some f8, Some b16 ->
      Some
        ( (f8.power_mw /. i8.power_mw -. 1.0) *. 100.0,
          (b16.power_mw /. i8.power_mw -. 1.0) *. 100.0 )
  | _ -> None

let print points =
  print_endline
    "Figure 7 — post-layout energy efficiency vs precision and dimension";
  Table.print (table points);
  let dims = List.sort_uniq compare (List.map (fun p -> p.dim) points) in
  List.iter
    (fun dim ->
      match fp_overheads points ~dim with
      | Some (f8, b16) ->
          Printf.printf
            "%dx%d: FP8 power overhead vs INT8 = %+.1f %%, BF16 = %+.1f %%\n"
            dim dim f8 b16
      | None -> ())
    dims
