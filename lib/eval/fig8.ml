(** Paper Figure 8: the Pareto frontier of SynDCIM-generated designs for
    the spec H = W = 64, MCR = 2, INT4/8 + FP4/8, MAC and weight update at
    800 MHz @ 0.9 V, with baseline compilers for comparison.

    The MSO searcher is swept over every PPA preference; all
    timing-meeting visited points form the cloud, its (power, area)
    non-dominated subset the frontier. Four representative designs (the
    per-preference winners) are taken through the full back-end, exactly
    like the paper implements four selected points into layouts. *)

type selected = {
  preference : string;
  summary : Pipeline.summary;
      (** metrics-level result: served from the persistent compile cache
          when [run] is given one *)
}

type result = {
  frontier : Design_point.t list;
  cloud : Design_point.t list;
  implemented : selected list;
  baseline_points : (string * Design_point.t) list;
  cache : Eval_cache.stats;
      (** hit/miss counters of the sweep's shared evaluation cache *)
}

(** [run ?jobs ?trace ?disk_cache ctx] — the sweep fans out over a
    domain pool and the four selected designs go through the staged
    pipeline in parallel as well; each back-end compile searches its own
    configuration, so they share no mutable state. Jobs, trace and the
    persistent compile cache all default to the context's values;
    [disk_cache] overrides the latter so a repeated harness run can
    serve the four implemented designs straight from a dedicated
    cache. *)
let run ?jobs ?trace ?disk_cache (ctx : Ctx.t) =
  let jobs = match jobs with Some j -> Some j | None -> Ctx.jobs ctx in
  let trace = match trace with Some t -> Some t | None -> Ctx.trace ctx in
  let disk_cache =
    match disk_cache with Some c -> Some c | None -> Ctx.cache ctx
  in
  let spec = Spec.fig8 in
  let cache = Eval_cache.create () in
  let frontier, cloud =
    Searcher.pareto_sweep ?jobs ~cache (Ctx.lib ctx) (Ctx.scl ctx) spec
  in
  let implemented =
    Pool.parallel_map ?jobs
      (fun preference ->
        {
          preference = Spec.preference_name preference;
          summary =
            (match
               Pipeline.run_cached ?cache:disk_cache
                 (Ctx.without_cache ctx)
                 { spec with Spec.preference }
             with
            | Ok s -> s
            | Error d -> raise (Diag.Failed d));
        })
      [
        Spec.Prefer_power; Spec.Prefer_area; Spec.Prefer_performance;
        Spec.Balanced;
      ]
  in
  let baseline_points = Baselines.all ?trace ctx spec in
  {
    frontier;
    cloud;
    implemented;
    baseline_points;
    cache = Eval_cache.stats cache;
  }

let point_row label (p : Design_point.t) =
  [
    label;
    Adder_tree.topology_name p.Design_point.cfg.Macro_rtl.tree;
    Shift_adder.kind_name p.Design_point.cfg.Macro_rtl.sa_kind;
    Table.f (p.Design_point.power_w *. 1e3);
    Table.f ~digits:4 (p.Design_point.area_um2 /. 1e6);
    Table.f ~digits:0 p.Design_point.crit_ps;
    (if p.Design_point.meets_mac then "meets" else "violates");
  ]

let print (r : result) =
  print_endline
    "Figure 8 — Pareto frontier of generated designs (pre-layout points)";
  let rows =
    List.map (point_row "frontier") r.frontier
    @ List.map (fun (n, p) -> point_row ("baseline: " ^ n) p)
        r.baseline_points
  in
  Table.print
    (Table.make
       ~header:
         [
           "kind"; "tree"; "S&A"; "power (mW)"; "area (mm2)"; "crit (ps)";
           "timing";
         ]
       rows);
  Printf.printf "cloud: %d timing-meeting points visited, %d on frontier\n"
    (List.length r.cloud) (List.length r.frontier);
  print_endline (Report.eval_cache_line r.cache);
  print_endline "implemented (post-layout, as the paper's four selections):";
  let rows =
    List.map
      (fun s ->
        let m = s.summary.Pipeline.sum_metrics in
        [
          s.preference;
          Table.f (m.Pipeline.power_w *. 1e3);
          Table.f ~digits:4 m.Pipeline.area_mm2;
          Table.f m.Pipeline.fmax_ghz;
          (if s.summary.Pipeline.sum_timing_closed then "closed"
           else "missed");
        ])
      r.implemented
  in
  Table.print
    (Table.make
       ~header:
         [ "preference"; "power (mW)"; "area (mm2)"; "fmax (GHz)"; "timing" ]
       rows)

(** Dominance check used by tests and the summary: does some searched
    frontier point dominate the given baseline on (power, area) while
    meeting timing? *)
let frontier_dominates (r : result) (baseline : Design_point.t) =
  List.exists
    (fun (p : Design_point.t) ->
      p.Design_point.power_w <= baseline.Design_point.power_w
      && p.Design_point.area_um2 <= baseline.Design_point.area_um2)
    r.frontier
