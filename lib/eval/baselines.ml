(** Baseline compilers the paper compares against (Table I, Fig. 8).

    These are running implementations, not just table checkmarks:

    - [autodcim]: AutoDCIM-style template generation — fixed subcircuits
      (1T passing-gate multiplier, conventional RCA adder tree, default
      pipeline), no spec-driven search, no sizing. End-to-end INT-only.
    - [rca_conventional]: the classic signed-RCA adder-tree macro that
      CSA-based designs are measured against.
    - [pure_compressor]: a You et al. [14]-style macro — all-4-2-compressor
      CSA, no path reordering, no FA substitution.

    Each returns an evaluated {!Design_point.t} at the given spec's
    operating point so it can be plotted against the searcher's frontier. *)

let template_base (spec : Spec.t) =
  Macro_rtl.default ~rows:spec.Spec.rows ~cols:spec.Spec.cols
    ~mcr:spec.Spec.mcr ~input_prec:spec.Spec.input_prec
    ~weight_prec:spec.Spec.weight_prec

(* Evaluate a fixed template with no timing-driven sizing: build fresh,
   measure as-is (every cell at minimum drive). *)
let evaluate_unsized_raw lib (spec : Spec.t) cfg =
  let macro = Macro_rtl.build lib cfg in
  let sta = Sta.analyze macro.Macro_rtl.design lib in
  let stats = Stats.of_design macro.Macro_rtl.design lib in
  let power =
    Design_point.measure_power lib macro ~freq_hz:spec.Spec.mac_freq_hz
      ~vdd:spec.Spec.vdd
      ~input_density:Design_point.search_input_density
      ~weight_density:Design_point.search_weight_density
      ~macs:Design_point.search_macs
  in
  let wupd_ps =
    Driver.weight_update_ps lib ~rows:spec.Spec.rows
    *. Voltage.delay_scale lib.Library.node ~vdd:spec.Spec.vdd
  in
  {
    Design_point.cfg;
    macro;
    sta;
    crit_ps = sta.Sta.crit_ps;
    upsized = 0;
    area_um2 = stats.Stats.area_um2;
    power_w = power.Power.total_w;
    meets_mac =
      sta.Sta.crit_ps <= Spec.search_budget_ps spec lib.Library.node +. 0.5;
    meets_wupd = wupd_ps <= 1e12 /. spec.Spec.weight_update_freq_hz;
    tops =
      Design_point.throughput_tops macro ~freq_hz:spec.Spec.mac_freq_hz;
  }

(* Each baseline evaluation runs as a named pipeline stage, so a trace
   shows the baselines alongside the compiled design's stage rows and a
   malformed template surfaces as a diagnostic, not an exception. *)
let evaluate_unsized ?trace ~name lib (spec : Spec.t) cfg =
  let stage_name = "baseline:" ^ name in
  let stage =
    Stage.v stage_name (fun () ->
        Diag.guard ~stage:stage_name ~spec (fun () ->
            evaluate_unsized_raw lib spec cfg)
        |> Result.map (fun (p : Design_point.t) ->
               ( p,
                 Stage.meta
                   ~cells:(Ir.n_insts p.Design_point.macro.Macro_rtl.design)
                   ~crit_out_ps:p.Design_point.crit_ps
                   ~note:"unsized template, no search" () )))
  in
  match Stage.execute ?trace stage () with
  | Ok p -> p
  | Error d -> raise (Diag.Failed d)

(** AutoDCIM-style template: area-greedy fixed choices, no optimization. *)
let autodcim ?trace lib (spec : Spec.t) =
  let cfg =
    {
      (template_base spec) with
      Macro_rtl.mul_kind = Cell.Pass_1t;
      tree = Adder_tree.Rca_tree;
    }
  in
  evaluate_unsized ?trace ~name:"autodcim" lib spec cfg

(** Conventional signed-RCA adder-tree macro. *)
let rca_conventional ?trace lib (spec : Spec.t) =
  let cfg = { (template_base spec) with Macro_rtl.tree = Adder_tree.Rca_tree } in
  evaluate_unsized ?trace ~name:"rca" lib spec cfg

(** Pure 4-2 compressor CSA macro (no reordering, no FA mixing). *)
let pure_compressor ?trace lib (spec : Spec.t) =
  let cfg =
    {
      (template_base spec) with
      Macro_rtl.tree = Adder_tree.Csa { fa_ratio = 0.0; reorder = false };
    }
  in
  evaluate_unsized ?trace ~name:"compressor" lib spec cfg

(** [all ?trace ctx spec] — every baseline evaluated at [spec]'s
    operating point over the context's library; the trace sink defaults
    to the context's. *)
let all ?trace (ctx : Ctx.t) spec =
  let lib = Ctx.lib ctx in
  let trace = match trace with Some t -> Some t | None -> Ctx.trace ctx in
  [
    ("AutoDCIM-style template", autodcim ?trace lib spec);
    ("conventional RCA tree", rca_conventional ?trace lib spec);
    ("pure 4-2 compressor", pure_compressor ?trace lib spec);
  ]
