(** Paper Table I: comparison with emerging CIM compilers.

    The published compilers' capabilities are literature facts; SynDCIM's
    four checkmarks are *demonstrated* by [evidence], which runs the
    feature: an end-to-end compile that signs off a layout, an FP-input
    compile, a count of selectable variants per subcircuit in the SCL, and
    the list of spec-driven techniques the searcher applied. *)

type row = {
  compiler : string;
  end_to_end : bool;
  fp_int : bool;
  ppa_selectable : bool;
  spec_oriented : bool;
}

let published =
  [
    { compiler = "AutoDCIM [5]"; end_to_end = true; fp_int = false;
      ppa_selectable = false; spec_oriented = false };
    { compiler = "EasyACIM [7]*"; end_to_end = true; fp_int = false;
      ppa_selectable = false; spec_oriented = true };
    { compiler = "ISLPED'23 [6]"; end_to_end = true; fp_int = false;
      ppa_selectable = false; spec_oriented = false };
    { compiler = "ARCTIC [8]"; end_to_end = true; fp_int = true;
      ppa_selectable = false; spec_oriented = false };
  ]

type evidence = {
  end_to_end_signoff : bool;  (** compile → DRC/LVS-clean layout *)
  fp_compile_verified : bool;  (** FP-input macro compiles and verifies *)
  selectable_variants : (string * int) list;  (** menu sizes per subcircuit *)
  techniques_applied : int;  (** spec-driven moves in the last search *)
}

(** [demonstrate ctx] runs each SynDCIM feature on a small spec and
    reports what actually happened. *)
let demonstrate (ctx : Ctx.t) =
  let spec =
    {
      Spec.fig8 with
      Spec.rows = 16;
      cols = 16;
      mac_freq_hz = 700e6;
      mcr = 2;
    }
  in
  let a = Pipeline.artifact_exn (Pipeline.run ctx spec) in
  let fp_spec =
    { spec with Spec.input_prec = Precision.fp8; mac_freq_hz = 500e6 }
  in
  let fp = Pipeline.artifact_exn (Pipeline.run ctx fp_spec) in
  {
    end_to_end_signoff =
      a.Pipeline.signoff.Post_layout.lvs.Lvs.clean
      && a.Pipeline.signoff.Post_layout.drc_violations = [];
    fp_compile_verified = fp.Pipeline.signoff.Post_layout.lvs.Lvs.clean;
    selectable_variants =
      [
        ("memory_cell", List.length Scl.cell_menu);
        ("mulmux", List.length Scl.mul_menu);
        ("adder_tree", List.length Scl.tree_menu);
        ("shift_adder", List.length Scl.sa_menu);
      ];
    techniques_applied = List.length a.Pipeline.search.Searcher.applied;
  }

let mark b = if b then "yes" else "no"

let table (e : evidence) =
  let syn =
    {
      compiler = "SynDCIM (this repo)";
      end_to_end = e.end_to_end_signoff;
      fp_int = e.fp_compile_verified;
      ppa_selectable =
        List.for_all (fun (_, n) -> n >= 2) e.selectable_variants;
      spec_oriented = e.techniques_applied >= 1;
    }
  in
  let rows =
    List.map
      (fun r ->
        [
          r.compiler;
          mark r.end_to_end;
          mark r.fp_int;
          mark r.ppa_selectable;
          mark r.spec_oriented;
        ])
      (published @ [ syn ])
  in
  Table.make
    ~header:
      [
        "compiler"; "end-to-end"; "FP&INT"; "PPA-selectable"; "spec-oriented";
      ]
    rows

let run (ctx : Ctx.t) =
  let e = demonstrate ctx in
  print_endline "Table I — comparison with emerging CIM compilers";
  Table.print (table e);
  Printf.printf
    "evidence: signoff=%b, FP verified=%b, variants: %s, %d spec-driven \
     techniques applied\n"
    e.end_to_end_signoff e.fp_compile_verified
    (String.concat ", "
       (List.map
          (fun (n, k) -> Printf.sprintf "%s x%d" n k)
          e.selectable_variants))
    e.techniques_applied;
  e
