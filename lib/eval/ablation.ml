(** Ablations of the design choices DESIGN.md calls out.

    A. Adder-tree topologies (paper §III-B): delay/area/energy of the RCA
       baseline, pure-compressor CSA, mixed CSA and the reordering
       optimization across column heights — the claims "compressor trees
       beat RCA trees", "FA substitution shortens the critical path under
       tight timing" and "reordering harvests the fast-carry slack".

    B. Search techniques (paper §III-C): which techniques the searcher
       needs as the target frequency tightens, and the resulting PPA.

    C. SDP vs scattered placement (paper §III-D): post-layout critical
       path and wirelength for structured vs unstructured placement.

    D. Memory-compute ratio (paper §II): on-macro weight density and the
       multiplier/mux cost as MCR grows, including the fused OAI22
       variant's MCR <= 2 boundary. *)

(* ------------------------------------------------------------------ *)
(* A: adder trees                                                      *)
(* ------------------------------------------------------------------ *)

type tree_point = {
  rows : int;
  topology : string;
  delay_ps : float;
  area_um2 : float;
  energy_fj : float;
}

let tree_menu_with_baseline =
  (Scl.tree_baseline :: Scl.tree_menu)
  @ [ Adder_tree.Csa { fa_ratio = 1.0; reorder = false } ]

let adder_trees ?(heights = [ 16; 32; 64; 128 ]) ?jobs (ctx : Ctx.t) =
  let scl = Ctx.scl ctx in
  let jobs = match jobs with Some j -> Some j | None -> Ctx.jobs ctx in
  let grid =
    List.concat_map
      (fun rows -> List.map (fun t -> (rows, t)) tree_menu_with_baseline)
      heights
  in
  Pool.parallel_map ?jobs
    (fun (rows, topology) ->
      let p = Scl.adder_tree scl ~topology ~rows in
      {
        rows;
        topology = Adder_tree.topology_name topology;
        delay_ps = p.Ppa.delay_ps;
        area_um2 = p.Ppa.area_um2;
        energy_fj = p.Ppa.energy_fj;
      })
    grid

let print_adder_trees points =
  print_endline "Ablation A — adder-tree topologies (standalone, per column)";
  Table.print
    (Table.make
       ~header:[ "rows"; "topology"; "delay (ps)"; "area (um2)"; "energy (fJ)" ]
       (List.map
          (fun p ->
            [
              string_of_int p.rows;
              p.topology;
              Table.f ~digits:0 p.delay_ps;
              Table.f ~digits:0 p.area_um2;
              Table.f ~digits:1 p.energy_fj;
            ])
          points))

(* ------------------------------------------------------------------ *)
(* B: search techniques vs target frequency                            *)
(* ------------------------------------------------------------------ *)

type search_point = {
  freq_mhz : float;
  closed : bool;
  techniques : string list;
  crit_ps : float;
  power_mw : float;
  area_mm2 : float;
}

let search_ladder ?(freqs_mhz = [ 300.; 500.; 800.; 1100. ]) ?jobs
    (ctx : Ctx.t) (base : Spec.t) =
  let jobs = match jobs with Some j -> Some j | None -> Ctx.jobs ctx in
  Pool.parallel_map ?jobs
    (fun f ->
      let spec = { base with Spec.mac_freq_hz = f *. 1e6 } in
      let r =
        match Pipeline.search_only ctx spec with
        | Ok sa -> sa.Pipeline.search
        | Error d -> raise (Diag.Failed d)
      in
      {
        freq_mhz = f;
        closed = r.Searcher.timing_closed;
        techniques =
          List.map Searcher.technique_name r.Searcher.applied;
        crit_ps = r.Searcher.final.Design_point.crit_ps;
        power_mw = r.Searcher.final.Design_point.power_w *. 1e3;
        area_mm2 = r.Searcher.final.Design_point.area_um2 /. 1e6;
      })
    freqs_mhz

let print_search_ladder points =
  print_endline
    "Ablation B — techniques required as the target frequency tightens";
  List.iter
    (fun p ->
      Printf.printf
        "%6.0f MHz: %s, crit %.0f ps, %.2f mW, %.4f mm2, %d techniques\n"
        p.freq_mhz
        (if p.closed then "closed" else "NOT CLOSED")
        p.crit_ps p.power_mw p.area_mm2
        (List.length p.techniques);
      List.iter (fun t -> Printf.printf "          - %s\n" t) p.techniques)
    points

(* ------------------------------------------------------------------ *)
(* D: memory-compute ratio                                             *)
(* ------------------------------------------------------------------ *)

type mcr_point = {
  mcr : int;
  mul_variant : string;
  area_um2 : float;
  memory_kb : float;  (** stored weight bits *)
  density_kb_per_mm2 : float;
  power_mw : float;
}

(** The paper's MCR-aware design point: raising MCR multiplies on-macro
    weight storage while sharing one compute element per [mcr] cells,
    trading a little mux delay/area for much higher memory density and
    background weight updates. Power streams through the bit-sliced
    Monte Carlo path by default ([engine = `Packed], 63 replicas per
    grid point); [`Scalar] keeps the single-replica reference run. *)
let mcr_sweep ?(dim = 32) ?engine ?jobs (ctx : Ctx.t) =
  let lib = Ctx.lib ctx in
  let engine = match engine with Some e -> e | None -> Ctx.engine ctx in
  let jobs = match jobs with Some j -> Some j | None -> Ctx.jobs ctx in
  let grid =
    List.concat_map
      (fun mcr ->
        let variants =
          Cell.Tg_nor :: (if mcr <= 2 then [ Cell.Oai22_fused ] else [])
        in
        List.map (fun mul_kind -> (mcr, mul_kind)) variants)
      [ 1; 2; 4 ]
  in
  Pool.parallel_map ?jobs
    (fun (mcr, mul_kind) ->
      let cfg =
        {
          (Macro_rtl.default ~rows:dim ~cols:dim ~mcr
             ~input_prec:Precision.int8 ~weight_prec:Precision.int8)
          with
          Macro_rtl.mul_kind;
        }
      in
      let m = Macro_rtl.build lib cfg in
      let stats = Stats.of_design m.Macro_rtl.design lib in
      let power =
        match engine with
        | `Scalar ->
            Design_point.measure_power lib m ~freq_hz:5e8 ~vdd:0.9
              ~input_density:0.5 ~weight_density:0.5 ~macs:4
        | #Engine.batch as e ->
            Design_point.measure_power_sliced (Engine.slice e) lib m
              ~freq_hz:5e8 ~vdd:0.9 ~input_density:0.5 ~weight_density:0.5
              ~macs:4
      in
      let memory_kb = float_of_int (dim * dim * mcr) /. 1024.0 in
      {
        mcr;
        mul_variant = Cell.kind_to_string (Cell.Mul mul_kind);
        area_um2 = stats.Stats.area_um2;
        memory_kb;
        density_kb_per_mm2 = memory_kb /. (stats.Stats.area_um2 /. 1e6);
        power_mw = power.Power.total_w *. 1e3;
      })
    grid

let print_mcr_sweep points =
  print_endline
    "Ablation D — memory-compute ratio (32x32 INT8, 500 MHz @ 0.9 V)";
  Table.print
    (Table.make
       ~header:
         [ "MCR"; "mul/mux"; "area (um2)"; "weights (Kb)"; "Kb/mm2";
           "power (mW)" ]
       (List.map
          (fun p ->
            [
              string_of_int p.mcr;
              p.mul_variant;
              Table.f ~digits:0 p.area_um2;
              Table.f ~digits:1 p.memory_kb;
              Table.f ~digits:0 p.density_kb_per_mm2;
              Table.f ~digits:2 p.power_mw;
            ])
          points))

(* ------------------------------------------------------------------ *)
(* C: SDP vs scattered placement                                       *)
(* ------------------------------------------------------------------ *)

type placement_point = {
  dim : int;
  style : string;
  crit_ps : float;
  wirelength_mm : float;
  area_mm2 : float;
}

let placements ?(dims = [ 32; 64; 128 ]) ?jobs (ctx : Ctx.t) =
  let lib = Ctx.lib ctx in
  let jobs = match jobs with Some j -> Some j | None -> Ctx.jobs ctx in
  let grid =
    List.concat_map
      (fun dim ->
        List.map (fun style -> (dim, style))
          [ Floorplan.Sdp; Floorplan.Scattered ])
      dims
  in
  (* each worker builds its own netlist so no two domains share a design *)
  Pool.parallel_map ?jobs
    (fun (dim, style) ->
      let cfg =
        Macro_rtl.default ~rows:dim ~cols:dim ~mcr:1
          ~input_prec:Precision.int8 ~weight_prec:Precision.int8
      in
      let m = Macro_rtl.build lib cfg in
      let s =
        match Pipeline.backend_once ctx ~style m with
        | Ok ba -> ba.Pipeline.signoff
        | Error d -> raise (Diag.Failed d)
      in
      {
        dim;
        style = Floorplan.style_name style;
        crit_ps = s.Post_layout.sta.Sta.crit_ps;
        wirelength_mm = s.Post_layout.total_wirelength_mm;
        area_mm2 = s.Post_layout.area_mm2;
      })
    grid

let print_placements points =
  print_endline "Ablation C — SDP vs scattered placement (post-layout)";
  Table.print
    (Table.make
       ~header:[ "array"; "placement"; "crit (ps)"; "wirelength (mm)"; "area (mm2)" ]
       (List.map
          (fun p ->
            [
              Printf.sprintf "%dx%d" p.dim p.dim;
              p.style;
              Table.f ~digits:0 p.crit_ps;
              Table.f ~digits:1 p.wirelength_mm;
              Table.f ~digits:4 p.area_mm2;
            ])
          points))
