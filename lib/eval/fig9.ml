(** Paper Figure 9: shmoo plot of the test macro — pass/fail over a
    (supply voltage x clock frequency) grid, derived from the signed-off
    post-layout critical path and the alpha-power-law voltage model (the
    fabricated-chip substitution documented in DESIGN.md).

    The paper's chip passes at 1.1 GHz / 1.2 V and reaches 300 MHz at
    0.7 V; the reproduced plot shows the same monotone frontier with
    GHz-class speed at 1.2 V and a few hundred MHz at 0.7 V. *)

type t = {
  crit_ps : float;  (** nominal-voltage post-layout critical path *)
  vdds : float array;
  freqs_mhz : float array;
  pass : bool array array;  (** [pass.(vi).(fi)] *)
}

let default_vdds = [| 0.6; 0.7; 0.8; 0.9; 1.0; 1.1; 1.2; 1.3 |]

let default_freqs_mhz =
  [| 100.; 200.; 300.; 400.; 500.; 600.; 700.; 800.; 900.; 1000.; 1100.; 1200.; 1300. |]

(** [shmoo node ~crit_ps] computes the grid; each supply-voltage row is
    independent and fans out over the domain pool. *)
let shmoo ?(vdds = default_vdds) ?(freqs_mhz = default_freqs_mhz) ?jobs node
    ~crit_ps =
  let pass =
    Pool.parallel_map ?jobs
      (fun vdd ->
        Array.map
          (fun f_mhz ->
            Voltage.passes node ~crit_path_ps:crit_ps ~vdd
              ~freq_hz:(f_mhz *. 1e6))
          freqs_mhz)
      (Array.to_list vdds)
    |> Array.of_list
  in
  { crit_ps; vdds; freqs_mhz; pass }

(** [run lib artifact] derives the shmoo of a compiled macro — any
    pipeline artifact works, so an experiment can reuse the compile
    another harness already ran. *)
let run ?jobs lib (a : Pipeline.artifact) =
  shmoo ?jobs lib.Library.node ~crit_ps:a.Pipeline.metrics.Pipeline.crit_ps

(** [fmax_mhz t ~vdd] — highest passing grid frequency at [vdd]. *)
let fmax_mhz (t : t) ~vdd =
  let vi = ref (-1) in
  Array.iteri (fun i v -> if Float.abs (v -. vdd) < 1e-6 then vi := i) t.vdds;
  if !vi < 0 then None
  else begin
    let best = ref None in
    Array.iteri
      (fun fi ok -> if ok then best := Some t.freqs_mhz.(fi))
      t.pass.(!vi);
    !best
  end

let print (t : t) =
  print_endline "Figure 9 — shmoo plot (o = pass, . = fail)";
  Printf.printf "        post-layout critical path: %.0f ps at nominal VDD\n"
    t.crit_ps;
  Printf.printf "%8s" "V \\ MHz";
  Array.iter (fun f -> Printf.printf "%5.0f" f) t.freqs_mhz;
  print_newline ();
  let n = Array.length t.vdds in
  for vi = n - 1 downto 0 do
    Printf.printf "%7.2fV" t.vdds.(vi);
    Array.iter
      (fun ok -> Printf.printf "%5s" (if ok then "o" else "."))
      t.pass.(vi);
    print_newline ()
  done;
  (match fmax_mhz t ~vdd:1.2 with
  | Some f -> Printf.printf "max frequency @ 1.2 V: %.0f MHz\n" f
  | None -> ());
  match fmax_mhz t ~vdd:0.7 with
  | Some f -> Printf.printf "max frequency @ 0.7 V: %.0f MHz\n" f
  | None -> ()
