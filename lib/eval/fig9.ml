(** Paper Figure 9: shmoo plot of the test macro — pass/fail over a
    (supply voltage x clock frequency) grid, derived from the signed-off
    post-layout critical path and the alpha-power-law voltage model (the
    fabricated-chip substitution documented in DESIGN.md).

    The paper's chip passes at 1.1 GHz / 1.2 V and reaches 300 MHz at
    0.7 V; the reproduced plot shows the same monotone frontier with
    GHz-class speed at 1.2 V and a few hundred MHz at 0.7 V. *)

type t = {
  crit_ps : float;  (** nominal-voltage post-layout critical path *)
  vdds : float array;
  freqs_mhz : float array;
  pass : bool array array;  (** [pass.(vi).(fi)] *)
}

let default_vdds = [| 0.6; 0.7; 0.8; 0.9; 1.0; 1.1; 1.2; 1.3 |]

let default_freqs_mhz =
  [| 100.; 200.; 300.; 400.; 500.; 600.; 700.; 800.; 900.; 1000.; 1100.; 1200.; 1300. |]

(** [shmoo node ~crit_ps] computes the grid; each supply-voltage row is
    independent and fans out over the domain pool. *)
let shmoo ?(vdds = default_vdds) ?(freqs_mhz = default_freqs_mhz) ?jobs node
    ~crit_ps =
  let pass =
    Pool.parallel_map ?jobs
      (fun vdd ->
        Array.map
          (fun f_mhz ->
            Voltage.passes node ~crit_path_ps:crit_ps ~vdd
              ~freq_hz:(f_mhz *. 1e6))
          freqs_mhz)
      (Array.to_list vdds)
    |> Array.of_list
  in
  { crit_ps; vdds; freqs_mhz; pass }

(** [run ctx artifact] derives the shmoo of a compiled macro — any
    pipeline artifact works, so an experiment can reuse the compile
    another harness already ran. *)
let run ?jobs (ctx : Ctx.t) (a : Pipeline.artifact) =
  let jobs = match jobs with Some j -> Some j | None -> Ctx.jobs ctx in
  shmoo ?jobs (Ctx.lib ctx).Library.node
    ~crit_ps:a.Pipeline.metrics.Pipeline.crit_ps

(** [vdd_index t ~vdd] — grid row of supply [vdd], [None] when the grid
    has no such row (within 1 µV). *)
let vdd_index (t : t) ~vdd =
  let n = Array.length t.vdds in
  let rec go i =
    if i >= n then None
    else if Float.abs (t.vdds.(i) -. vdd) < 1e-6 then Some i
    else go (i + 1)
  in
  go 0

(** [fmax_mhz t ~vdd] — highest passing grid frequency at [vdd], [None]
    when no frequency passes there or when [vdd] is not a row of the
    grid (absent supplies do not alias into a neighbouring row). *)
let fmax_mhz (t : t) ~vdd =
  match vdd_index t ~vdd with
  | None -> None
  | Some vi ->
      let row = t.pass.(vi) in
      let rec last_pass best fi =
        if fi >= Array.length row then best
        else
          last_pass (if row.(fi) then Some t.freqs_mhz.(fi) else best) (fi + 1)
      in
      last_pass None 0

(** [render t] — the plot as a string, so the test suite can snapshot
    it and regressions show as a readable diff. [print] writes exactly
    this text. *)
let render (t : t) =
  let b = Buffer.create 1024 in
  Buffer.add_string b "Figure 9 — shmoo plot (o = pass, . = fail)\n";
  Printf.bprintf b "        post-layout critical path: %.0f ps at nominal VDD\n"
    t.crit_ps;
  Printf.bprintf b "%8s" "V \\ MHz";
  Array.iter (fun f -> Printf.bprintf b "%5.0f" f) t.freqs_mhz;
  Buffer.add_char b '\n';
  let n = Array.length t.vdds in
  for vi = n - 1 downto 0 do
    Printf.bprintf b "%7.2fV" t.vdds.(vi);
    Array.iter
      (fun ok -> Printf.bprintf b "%5s" (if ok then "o" else "."))
      t.pass.(vi);
    Buffer.add_char b '\n'
  done;
  (match fmax_mhz t ~vdd:1.2 with
  | Some f -> Printf.bprintf b "max frequency @ 1.2 V: %.0f MHz\n" f
  | None -> ());
  (match fmax_mhz t ~vdd:0.7 with
  | Some f -> Printf.bprintf b "max frequency @ 0.7 V: %.0f MHz\n" f
  | None -> ());
  Buffer.contents b

let print (t : t) = print_string (render t)

(* ---------------- energy-annotated (measured) shmoo ---------------- *)

type measured = {
  grid : t;
  energy_fj : float array array;
      (** [energy_fj.(vi).(fi)] — average switching + clock + write
          energy per cycle (fJ) of one macro replica at the operating
          point, from simulated toggle counts *)
}

(** [measure lib m ~crit_ps] — the shmoo grid annotated with simulated
    energy per cycle at every operating point.

    The voltage axis of the grid costs no extra simulation: toggle
    counters depend only on the stimulus, and supply voltage only
    rescales each toggle's energy, so *one* toggle-accounting run per
    frequency serves the entire VDD column
    ({!Power.estimate_at_vdds}). Each frequency column streams [macs]
    MACs in [n_lanes] Monte Carlo replicas with its own deterministic
    stimulus (seeded from [seed] and the column index), pre-drawn so
    both engines replay identical streams:

    - [`Packed] (default) — one bit-sliced {!Sim_packed} run per
      column, replicas as lanes;
    - [`Multiword w] — the same through a [w]-lane {!Sim_multiword}
      (pass [~n_lanes] up to [w] to widen the ensemble);
    - [`Scalar] — the reference: [n_lanes] scalar runs per column with
      element-wise-summed counters, bit-identical to the sliced
      counters by the lane-equivalence property, hence bit-identical
      energies.

    The stimulus is indexed by [n_lanes], never by the engine, so any
    two engines at the same [n_lanes] replay identical streams.

    Columns fan out over the pool; the fanout-load map is built once
    and shared by every column and engine. *)
let measure ?(vdds = default_vdds) ?(freqs_mhz = default_freqs_mhz)
    ?engine ?(n_lanes = Sim_packed.lanes) ?(seed = 0xF19) ?(macs = 4) ?jobs
    (ctx : Ctx.t) (m : Macro_rtl.t) ~crit_ps =
  let lib = Ctx.lib ctx in
  let engine =
    match engine with Some e -> e | None -> Ctx.engine ctx
  in
  let jobs = match jobs with Some j -> Some j | None -> Ctx.jobs ctx in
  let grid = shmoo ~vdds ~freqs_mhz ?jobs lib.Library.node ~crit_ps in
  let d = m.Macro_rtl.design in
  let loads = Ir.fanout_loads d lib () in
  let columns =
    Pool.parallel_map ?jobs
      (fun fi ->
        let rng = Rng.create (seed + (fi * 7919)) in
        let weights =
          Array.init n_lanes (fun _ ->
              Testbench.random_weights rng m ~density:0.5)
        in
        let inputs =
          Array.init macs (fun _ ->
              Array.init n_lanes (fun _ ->
                  Array.init m.Macro_rtl.cfg.Macro_rtl.rows (fun _ ->
                      Testbench.random_input ~realistic:true rng m
                        ~density:0.5)))
        in
        let toggles, en_cycles, cycles, weight_flips =
          match engine with
          | #Engine.batch as e ->
              let module E = (val Engine.slice e) in
              let module B = Testbench.Sliced (E) in
              let sim = E.create ~n_lanes d in
              if m.Macro_rtl.cfg.Macro_rtl.mcr > 1 then
                E.set_bus sim "copy_sel" 0;
              B.load_weights_lanes m sim ~copy:0 weights;
              E.reset_stats sim;
              B.run_stream_with m sim ~macs
                ~next_inputs:(fun k -> inputs.(k));
              ( E.toggles sim,
                E.en_cycles sim,
                E.cycles sim * n_lanes,
                E.weight_flips sim )
          | `Scalar ->
              (* the ensemble as [n_lanes] scalar runs, counters summed
                 element-wise — the reference the packed counters are
                 property-tested against *)
              let toggles = ref [||]
              and en_cycles = ref [||]
              and cycles = ref 0
              and weight_flips = ref 0 in
              for l = 0 to n_lanes - 1 do
                let sim = Sim.create d in
                if m.Macro_rtl.cfg.Macro_rtl.mcr > 1 then
                  Sim.set_bus sim "copy_sel" 0;
                Testbench.load_weights m sim ~copy:0 weights.(l);
                Sim.reset_stats sim;
                Testbench.run_stream_with m sim ~macs
                  ~next_inputs:(fun k -> inputs.(k).(l));
                let add dst src =
                  if Array.length !dst = 0 then dst := Array.copy src
                  else Array.iteri (fun i v -> !dst.(i) <- !dst.(i) + v) src
                in
                add toggles sim.Sim.toggles;
                add en_cycles sim.Sim.en_cycles;
                cycles := !cycles + sim.Sim.cycles;
                weight_flips := !weight_flips + sim.Sim.weight_flips
              done;
              (!toggles, !en_cycles, !cycles, !weight_flips)
        in
        let freq_hz = freqs_mhz.(fi) *. 1e6 in
        Power.estimate_at_vdds d lib ~toggles ~en_cycles ~cycles
          ~weight_flips ~freq_hz ~vdds ~loads ()
        |> Array.map (fun (r : Power.report) -> r.Power.energy_per_cycle_fj))
      (List.init (Array.length freqs_mhz) Fun.id)
    |> Array.of_list
  in
  let energy_fj =
    Array.init (Array.length vdds) (fun vi ->
        Array.init (Array.length freqs_mhz) (fun fi -> columns.(fi).(vi)))
  in
  { grid; energy_fj }

(** [run_measured ctx artifact] — {!measure} on a compiled artifact's
    macro and signed-off critical path. *)
let run_measured ?engine ?n_lanes ?jobs (ctx : Ctx.t)
    (a : Pipeline.artifact) =
  measure ?engine ?n_lanes ?jobs ctx a.Pipeline.macro
    ~crit_ps:a.Pipeline.metrics.Pipeline.crit_ps
