(* SynDCIM benchmark harness.

   Regenerates every table and figure of the paper's evaluation section
   (printed as text tables/plots on stdout), followed by a wall-clock
   comparison of the parallel candidate sweep against the sequential one
   and a Bechamel microbenchmark section timing the compiler kernels each
   experiment leans on. Section wall-clocks and Bechamel estimates are
   also emitted to BENCH_RESULTS.json in the invocation directory.

   Environment:
     SYNDCIM_BENCH_QUICK=1   smaller dimensions (CI-friendly)
     SYNDCIM_JOBS=N          worker domains for the parallel sections

   Run with: dune exec bench/main.exe *)

let quick =
  match Sys.getenv_opt "SYNDCIM_BENCH_QUICK" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let banner title =
  let bar = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n%!" bar title bar

(* (name, seconds) of every timed section, in run order *)
let section_times : (string * float) list ref = ref []

let time_section name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  section_times := (name, dt) :: !section_times;
  Printf.printf "[%s finished in %.1f s]\n%!" name dt;
  r

(* (name, ns/run) for every Bechamel kernel *)
let kernel_times : (string * float) list ref = ref []

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* the multiword default-flip gate: a wider engine must beat packed by
   at least this factor in lane-cycles/s before it may become the
   default (CI asserts the recorded default obeys this) *)
let multiword_min_gain = 1.5

(* the metrics-overhead gate: full instrumentation may cost at most this
   much over the registry-disabled run of the same search workload *)
let metrics_max_overhead_pct = 5.0

let write_results ~jobs ~seq_s ~par_s ~packed_scalar_cps ~packed_cps
    ~signoff_batches ~signoff_scalar_cps ~signoff_packed_cps ~shmoo_lanes
    ~shmoo_scalar_s ~shmoo_packed_s ~mw_packed_cps ~mw_candidates
    ~mw_default ~mw_autodetect ~service_cold_s ~service_warm_s
    ~metrics_on_s ~metrics_off_s =
  let b = Buffer.create 4096 in
  let entry (name, v) =
    Printf.sprintf "    {\"name\": \"%s\", \"value\": %.6g}" (json_escape name) v
  in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"quick\": %b,\n  \"jobs\": %d,\n" quick jobs);
  Buffer.add_string b "  \"sections_s\": [\n";
  Buffer.add_string b
    (String.concat ",\n" (List.map entry (List.rev !section_times)));
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"pareto_sweep\": {\"jobs1_s\": %.6g, \"jobsN_s\": %.6g, \
        \"speedup\": %.6g},\n"
       seq_s par_s
       (if par_s > 0.0 then seq_s /. par_s else 0.0));
  Buffer.add_string b
    (Printf.sprintf
       "  \"packed_sim\": {\"lanes\": %d, \"scalar_lane_cps\": %.6g, \
        \"packed_lane_cps\": %.6g, \"speedup\": %.6g},\n"
       Sim_packed.lanes packed_scalar_cps packed_cps
       (if packed_scalar_cps > 0.0 then packed_cps /. packed_scalar_cps
        else 0.0));
  Buffer.add_string b
    (Printf.sprintf
       "  \"packed_signoff\": {\"batches\": %d, \"scalar_checks_ps\": %.6g, \
        \"packed_checks_ps\": %.6g, \"speedup\": %.6g},\n"
       signoff_batches signoff_scalar_cps signoff_packed_cps
       (if signoff_scalar_cps > 0.0 then
          signoff_packed_cps /. signoff_scalar_cps
        else 0.0));
  Buffer.add_string b
    (Printf.sprintf
       "  \"packed_shmoo\": {\"lanes\": %d, \"scalar_s\": %.6g, \
        \"packed_s\": %.6g, \"speedup\": %.6g},\n"
       shmoo_lanes shmoo_scalar_s shmoo_packed_s
       (if shmoo_packed_s > 0.0 then shmoo_scalar_s /. shmoo_packed_s
        else 0.0));
  Buffer.add_string b
    (Printf.sprintf
       "  \"multiword_sim\": {\"packed_lane_cps\": %.6g, \"min_gain\": %.2f, \
        \"default_engine\": \"%s\", \"autodetect\": \"%s\", \
        \"candidates\": [%s]},\n"
       mw_packed_cps multiword_min_gain (json_escape mw_default)
       (json_escape mw_autodetect)
       (String.concat ", "
          (List.map
             (fun (lanes, cps) ->
               Printf.sprintf
                 "{\"lanes\": %d, \"lane_cps\": %.6g, \
                  \"speedup_vs_packed\": %.6g}"
                 lanes cps
                 (if mw_packed_cps > 0.0 then cps /. mw_packed_cps else 0.0))
             mw_candidates)));
  Buffer.add_string b
    (Printf.sprintf
       "  \"service_warm\": {\"cold_s\": %.6g, \"warm_s\": %.6g, \
        \"speedup\": %.6g},\n"
       service_cold_s service_warm_s
       (if service_warm_s > 0.0 then service_cold_s /. service_warm_s
        else 0.0));
  Buffer.add_string b
    (Printf.sprintf
       "  \"metrics_overhead\": {\"instrumented_s\": %.6g, \"baseline_s\": \
        %.6g, \"overhead_pct\": %.6g, \"max_pct\": %.1f},\n"
       metrics_on_s metrics_off_s
       (if metrics_off_s > 0.0 then
          (metrics_on_s -. metrics_off_s) /. metrics_off_s *. 100.0
        else 0.0)
       metrics_max_overhead_pct);
  Buffer.add_string b "  \"kernels_ns_per_run\": [\n";
  Buffer.add_string b
    (String.concat ",\n" (List.map entry (List.rev !kernel_times)));
  Buffer.add_string b "\n  ]\n}\n";
  let oc = open_out "BENCH_RESULTS.json" in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "\nwrote BENCH_RESULTS.json\n%!"

let () =
  let ctx = Ctx.default () in
  let lib = Ctx.lib ctx and scl = Ctx.scl ctx in

  banner "Table I — comparison with emerging CIM compilers";
  ignore (time_section "table1" (fun () -> Table1.run ctx));

  banner
    "Figure 7 — post-layout energy efficiency vs precision and dimension";
  let dims = if quick then [ 32; 64 ] else [ 32; 64; 128; 256 ] in
  time_section "fig7" (fun () -> Fig7.print (Fig7.run ~dims ctx));

  banner "Figure 8 — Pareto frontier of generated designs (H=W=64, MCR=2)";
  let fig8 = time_section "fig8" (fun () -> Fig8.run ctx) in
  Fig8.print fig8;

  banner "Figure 9 — shmoo plot of the compiled test macro";
  time_section "fig9" (fun () ->
      let a = Compiler.compile ctx Spec.fig8 in
      Fig9.print (Fig9.run ctx a));

  banner "Table II — comparison with state-of-the-art DCIM macros";
  time_section "table2" (fun () -> Table2.print (Table2.measure ctx));

  banner "Ablation A — adder-tree topologies";
  let heights = if quick then [ 16; 32; 64 ] else [ 16; 32; 64; 128 ] in
  time_section "ablation A" (fun () ->
      Ablation.print_adder_trees (Ablation.adder_trees ~heights ctx));

  banner "Ablation B — search techniques vs target frequency";
  time_section "ablation B" (fun () ->
      Ablation.print_search_ladder
        (Ablation.search_ladder
           ~freqs_mhz:
             (if quick then [ 500.; 800. ] else [ 300.; 500.; 800.; 1100. ])
           ctx Spec.fig8));

  banner "Ablation C — SDP vs scattered placement";
  time_section "ablation C" (fun () ->
      Ablation.print_placements
        (Ablation.placements
           ~dims:(if quick then [ 32; 64 ] else [ 32; 64; 128 ])
           ctx));

  banner "Ablation D — memory-compute ratio";
  time_section "ablation D" (fun () ->
      Ablation.print_mcr_sweep (Ablation.mcr_sweep ctx));

  (* ---------------- parallel sweep comparison ---------------- *)
  banner "Parallel sweep — pareto_sweep wall-clock, jobs=1 vs jobs=N";
  let jobs = Pool.default_jobs () in
  let sweep_spec =
    if quick then { Spec.fig8 with Spec.rows = 32; cols = 32; mcr = 1 }
    else Spec.fig8
  in
  (* sequential run first also warms the SCL memo, so the parallel run
     measures the domain pool rather than first-touch characterization *)
  let time_sweep j =
    let t0 = Unix.gettimeofday () in
    let front, cloud = Searcher.pareto_sweep ~jobs:j lib scl sweep_spec in
    (Unix.gettimeofday () -. t0, List.length front, List.length cloud)
  in
  let seq_s, f1, c1 = time_sweep 1 in
  let par_s, fn, cn = time_sweep jobs in
  Printf.printf
    "jobs=1: %.2f s (%d frontier / %d cloud)\njobs=%d: %.2f s (%d frontier \
     / %d cloud)\nspeedup: %.2fx\n%!"
    seq_s f1 c1 jobs par_s fn cn
    (if par_s > 0.0 then seq_s /. par_s else 0.0);
  if (f1, c1) <> (fn, cn) then
    failwith "parallel sweep disagrees with sequential sweep";

  (* ---------------- packed simulation throughput ---------------- *)
  banner
    (Printf.sprintf
       "Packed simulation — scalar vs %d-lane bit-sliced MAC streaming"
       Sim_packed.lanes);
  (* throughput unit: simulated lane-cycles per second — the scalar
     engine advances 1 lane per cycle, the packed engine 63. Best of
     three runs on the smallest canonical macro, so the CI bound stays
     meaningful on a noisy shared runner. *)
  let packed_scalar_cps, packed_cps =
    let m =
      Macro_rtl.build lib
        (Macro_rtl.default ~rows:16 ~cols:16 ~mcr:1
           ~input_prec:Precision.int8 ~weight_prec:Precision.int8)
    in
    let macs = if quick then 200 else 500 in
    let best_of n f =
      let best = ref infinity and cycles = ref 0 in
      for _ = 1 to n do
        let t0 = Unix.gettimeofday () in
        cycles := f ();
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !best then best := dt
      done;
      (float_of_int !cycles, !best)
    in
    let rng = Rng.create 0xB175 in
    let scalar_sim = Sim.create m.Macro_rtl.design in
    Testbench.load_weights m scalar_sim ~copy:0
      (Testbench.random_weights rng m ~density:0.5);
    let scalar_cycles, scalar_s =
      best_of 3 (fun () ->
          Sim.reset_stats scalar_sim;
          Testbench.run_stream m scalar_sim ~rng ~macs ~input_density:0.5;
          scalar_sim.Sim.cycles)
    in
    let psim = Sim_packed.create m.Macro_rtl.design in
    Testbench.load_weights_lanes m psim ~copy:0
      (Array.init Sim_packed.lanes (fun _ ->
           Testbench.random_weights rng m ~density:0.5));
    let packed_cycles, packed_s =
      best_of 3 (fun () ->
          Sim_packed.reset_stats psim;
          Testbench.run_stream_packed m psim ~rng ~macs ~input_density:0.5;
          psim.Sim_packed.cycles)
    in
    let scalar_cps = scalar_cycles /. scalar_s in
    let packed_cps =
      packed_cycles *. float_of_int Sim_packed.lanes /. packed_s
    in
    Printf.printf
      "16x16 INT8, %d MACs/run, best of 3:\n\
      \  scalar: %.0f cycles in %.3f s  = %.3g lane-cycles/s\n\
      \  packed: %.0f cycles x %d lanes in %.3f s = %.3g lane-cycles/s\n\
       speedup: %.1fx\n\
       %!"
      macs scalar_cycles scalar_s scalar_cps packed_cycles Sim_packed.lanes
      packed_s packed_cps
      (packed_cps /. scalar_cps);
    (scalar_cps, packed_cps)
  in

  (* ---------------- multi-word simulation throughput ---------------- *)
  banner
    (Printf.sprintf
       "Multi-word simulation — %d-lane packed vs 126/252-lane streaming"
       Sim_packed.lanes);
  (* same unit as the packed section: simulated lane-cycles per second,
     best of three MAC-streaming runs on the 16x16 INT8 macro. The
     recorded default engine only flips away from packed when a wider
     engine clears the multiword_min_gain bar — the same rule
     Engine.autodetect applies behind --engine auto, and the rule CI
     asserts against this JSON. *)
  let mw_packed_cps, mw_candidates, mw_default, mw_autodetect =
    let m =
      Macro_rtl.build lib
        (Macro_rtl.default ~rows:16 ~cols:16 ~mcr:1
           ~input_prec:Precision.int8 ~weight_prec:Precision.int8)
    in
    let macs = if quick then 100 else 300 in
    let best_of n f =
      let best = ref infinity and cycles = ref 0 in
      for _ = 1 to n do
        let t0 = Unix.gettimeofday () in
        cycles := f ();
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !best then best := dt
      done;
      (float_of_int !cycles, !best)
    in
    let rate (module E : Slice.S) =
      let module B = Testbench.Sliced (E) in
      let rng = Rng.create 0xB175 in
      let sim = E.create m.Macro_rtl.design in
      B.load_weights_lanes m sim ~copy:0
        (Array.init (E.lanes_of sim) (fun _ ->
             Testbench.random_weights rng m ~density:0.5));
      let cycles, s =
        best_of 3 (fun () ->
            E.reset_stats sim;
            B.run_stream m sim ~rng ~macs ~input_density:0.5;
            E.cycles sim)
      in
      cycles *. float_of_int (E.lanes_of sim) /. s
    in
    let packed_cps = rate (module Slice.Packed) in
    let candidates =
      List.map
        (fun w -> (w, rate (Engine.slice (`Multiword w))))
        [ 2 * Sim_packed.lanes; 4 * Sim_packed.lanes ]
    in
    let default =
      List.fold_left
        (fun acc (w, cps) ->
          if cps >= multiword_min_gain *. packed_cps then
            Engine.name (`Multiword w)
          else acc)
        (Engine.name `Packed) candidates
    in
    let autodetect = Engine.name (Engine.autodetect () :> Engine.t) in
    Printf.printf "16x16 INT8, %d MACs/run, best of 3:\n" macs;
    Printf.printf "  packed (63 lanes): %.3g lane-cycles/s\n" packed_cps;
    List.iter
      (fun (w, cps) ->
        Printf.printf "  multiword:%-3d      %.3g lane-cycles/s (%.2fx)\n" w
          cps
          (if packed_cps > 0.0 then cps /. packed_cps else 0.0))
      candidates;
    Printf.printf
      "default engine: %s (gate: >= %.1fx over packed)\n\
       autodetect (probe netlist): %s\n\
       %!"
      default multiword_min_gain autodetect;
    (packed_cps, candidates, default, autodetect)
  in

  (* ---------------- packed signoff throughput ---------------- *)
  banner "Packed signoff — Testbench.verify, scalar vs packed engine";
  let signoff_batches = if quick then 63 else 252 in
  let signoff_scalar_cps, signoff_packed_cps =
    let m =
      Macro_rtl.build lib
        (Macro_rtl.default ~rows:16 ~cols:16 ~mcr:1
           ~input_prec:Precision.int8 ~weight_prec:Precision.int8)
    in
    let best_of n f =
      let best = ref infinity in
      for _ = 1 to n do
        let t0 = Unix.gettimeofday () in
        f ();
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !best then best := dt
      done;
      !best
    in
    let scalar_s =
      best_of 3 (fun () ->
          Testbench.verify ~engine:`Scalar m ~seed:0xACC
            ~batches:signoff_batches)
    in
    let packed_s =
      best_of 3 (fun () ->
          Testbench.verify ~engine:`Packed m ~seed:0xACC
            ~batches:signoff_batches)
    in
    let sc = float_of_int signoff_batches /. scalar_s in
    let pc = float_of_int signoff_batches /. packed_s in
    Printf.printf
      "16x16 INT8, %d MAC checks vs golden, best of 3:\n\
      \  scalar: %.3f s = %.3g checks/s\n\
      \  packed: %.3f s = %.3g checks/s\n\
       speedup: %.1fx\n\
       %!"
      signoff_batches scalar_s sc packed_s pc (pc /. sc);
    (sc, pc)
  in

  (* ---------------- packed shmoo column batching ---------------- *)
  banner "Packed shmoo — Fig. 9 energy grid, scalar vs column batching";
  let shmoo_lanes = if quick then 8 else 32 in
  let shmoo_scalar_s, shmoo_packed_s =
    let m =
      Macro_rtl.build lib
        (Macro_rtl.default ~rows:16 ~cols:16 ~mcr:1
           ~input_prec:Precision.int8 ~weight_prec:Precision.int8)
    in
    let time engine =
      let t0 = Unix.gettimeofday () in
      ignore
        (Fig9.measure ~engine ~n_lanes:shmoo_lanes ~macs:2 ~jobs:1 ctx m
           ~crit_ps:950.0);
      Unix.gettimeofday () -. t0
    in
    let scalar_s = time `Scalar in
    let packed_s = time `Packed in
    Printf.printf
      "16x16 INT8, %d VDDs x %d freqs, %d-replica ensemble per column, \
       jobs=1:\n\
      \  scalar: %.3f s (one run per replica)\n\
      \  packed: %.3f s (one bit-sliced run per column)\n\
       speedup: %.1fx\n\
       %!"
      (Array.length Fig9.default_vdds)
      (Array.length Fig9.default_freqs_mhz)
      shmoo_lanes scalar_s packed_s
      (if packed_s > 0.0 then scalar_s /. packed_s else 0.0);
    (scalar_s, packed_s)
  in

  (* ---------------- warm service vs cold context ---------------- *)
  banner "Service — cold-context compile vs warm-service repeat compile";
  let svc_spec = { Spec.fig8 with Spec.rows = 16; cols = 16; mcr = 1 } in
  let service_cold_s =
    (* the one-shot cost: a fresh library + empty SCL memo, no compile
       cache — what a cold CLI invocation pays for the same spec *)
    let t0 = Unix.gettimeofday () in
    (match Pipeline.run_cached (Ctx.fresh ()) svc_spec with
    | Ok _ -> ()
    | Error d -> raise (Diag.Failed d));
    Unix.gettimeofday () -. t0
  in
  let service_warm_s =
    let cache_root =
      Filename.concat (Filename.get_temp_dir_name ())
        "syndcim-bench-svc-cache"
    in
    let svc_ctx =
      match Ctx.with_cache_dir cache_root (Ctx.fresh ()) with
      | Ok c -> c
      | Error d -> raise (Diag.Failed d)
    in
    let svc = Service.create svc_ctx in
    (* request 1 warms the world (characterizes the SCL, fills the
       compile cache); request 2 is the steady-state service latency *)
    ignore (Service.compile svc svc_spec);
    let warm = Service.compile svc svc_spec in
    (match warm.Service.outcome with
    | Ok _ -> ()
    | Error d -> raise (Diag.Failed d));
    Printf.printf "%s\n" (Service.describe svc);
    warm.Service.wall_s
  in
  Printf.printf
    "16x16 INT8 spec:\n\
    \  cold context (fresh library, no cache): %.3f s\n\
    \  warm service (repeat request):          %.4f s\n\
     speedup: %.1fx\n\
     %!"
    service_cold_s service_warm_s
    (if service_warm_s > 0.0 then service_cold_s /. service_warm_s else 0.0);

  (* ---------------- metrics instrumentation overhead ---------------- *)
  banner "Metrics overhead — full MSO search, registry on vs off";
  let metrics_on_s, metrics_off_s =
    let spec = { Spec.fig8 with Spec.rows = 16; cols = 16; mcr = 1 } in
    (* one throwaway run warms the SCL memo so both arms measure search
       evaluation, not first-touch characterization *)
    ignore (Searcher.search ~cache:(Eval_cache.create ()) lib scl spec);
    let best_of n f =
      let best = ref infinity in
      for _ = 1 to n do
        let t0 = Unix.gettimeofday () in
        f ();
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !best then best := dt
      done;
      !best
    in
    let run () =
      ignore (Searcher.search ~cache:(Eval_cache.create ()) lib scl spec)
    in
    let reps = if quick then 3 else 5 in
    let on_s = best_of reps run in
    Metrics.set_enabled false;
    let off_s = best_of reps run in
    Metrics.set_enabled true;
    Printf.printf
      "16x16 INT8 search, best of %d:\n\
      \  instrumented: %.4f s\n\
      \  disabled:     %.4f s\n\
       overhead: %.2f %% (gate: <= %.1f %%)\n\
       %!"
      reps on_s off_s
      (if off_s > 0.0 then (on_s -. off_s) /. off_s *. 100.0 else 0.0)
      metrics_max_overhead_pct;
    (on_s, off_s)
  in

  (* ---------------- Bechamel kernels ---------------- *)
  banner "Bechamel — compiler kernel microbenchmarks";
  let open Bechamel in
  let macro16 =
    Macro_rtl.build lib
      (Macro_rtl.default ~rows:16 ~cols:16 ~mcr:1 ~input_prec:Precision.int8
         ~weight_prec:Precision.int8)
  in
  let spec16 = { Spec.fig8 with Spec.rows = 16; cols = 16; mcr = 1 } in
  let tests =
    [
      (* Table I leans on end-to-end netlist construction *)
      Test.make ~name:"table1:build-macro-16x16"
        (Staged.stage (fun () ->
             ignore
               (Macro_rtl.build lib
                  (Macro_rtl.default ~rows:16 ~cols:16 ~mcr:1
                     ~input_prec:Precision.int8
                     ~weight_prec:Precision.int8))));
      (* Fig 7 leans on streamed power simulation *)
      Test.make ~name:"fig7:power-sim-16x16"
        (Staged.stage (fun () ->
             ignore
               (Design_point.measure_power lib macro16 ~freq_hz:5e8 ~vdd:0.9
                  ~input_density:0.125 ~weight_density:0.5 ~macs:2)));
      (* Fig 8 leans on candidate evaluation (build + STA + sizing) *)
      Test.make ~name:"fig8:design-point-eval-16x16"
        (Staged.stage (fun () ->
             ignore
               (Design_point.evaluate lib spec16 (Spec.initial_config spec16))));
      (* Fig 9 leans on the voltage-frequency grid *)
      Test.make ~name:"fig9:shmoo-grid"
        (Staged.stage (fun () ->
             ignore (Fig9.shmoo lib.Library.node ~crit_ps:950.0)));
      (* Table II leans on static timing of a signed-off macro *)
      Test.make ~name:"table2:sta-16x16"
        (Staged.stage (fun () ->
             ignore (Sta.analyze macro16.Macro_rtl.design lib)));
      (* the ablations lean on placement + routing *)
      Test.make ~name:"ablation:sdp-place-route-16x16"
        (Staged.stage (fun () ->
             ignore (Route.build (Floorplan.sdp lib macro16))));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              kernel_times := (name, est) :: !kernel_times;
              Printf.printf "  %-36s %12.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "  %-36s (no estimate)\n%!" name)
        results)
    tests;
  write_results ~jobs ~seq_s ~par_s ~packed_scalar_cps ~packed_cps
    ~signoff_batches ~signoff_scalar_cps ~signoff_packed_cps ~shmoo_lanes
    ~shmoo_scalar_s ~shmoo_packed_s ~mw_packed_cps ~mw_candidates
    ~mw_default ~mw_autodetect ~service_cold_s ~service_warm_s ~metrics_on_s
    ~metrics_off_s;
  Printf.printf "\nbench: all experiments regenerated.\n"
