(* Edge / wearable scenario (the paper's intro motivates wearables as the
   energy-first corner): a small always-on keyword-spotting layer needs a
   64x64 INT4 macro at a modest clock, and every microwatt counts.

   The example compiles the macro with the power preference, runs the
   post-layout power analysis at a realistic activation sparsity sweep,
   and reports energy per inference for a small depthwise-ish layer.

   Run with: dune exec examples/edge_tinyml.exe *)

let () =
  let ctx = Ctx.default () in
  let lib = Ctx.lib ctx in
  let spec =
    {
      Spec.rows = 64;
      cols = 64;
      mcr = 2;
      (* double-buffered weights: stream next layer while computing *)
      input_prec = Precision.int4;
      weight_prec = Precision.int4;
      mac_freq_hz = 200e6;
      weight_update_freq_hz = 200e6;
      vdd = 0.7;
      (* low-voltage operation for efficiency *)
      preference = Spec.Prefer_power;
    }
  in
  let a = Compiler.compile ctx spec in
  print_string (Report.to_string lib a);
  let m = a.Compiler.macro in
  (* sparsity sweep: ReLU networks rarely exceed ~50 % active inputs *)
  print_endline "activation-density sweep (post-layout, 200 MHz @ 0.7 V):";
  List.iter
    (fun density ->
      let p =
        Post_layout.power lib m a.Compiler.signoff
          ~freq_hz:spec.Spec.mac_freq_hz ~vdd:spec.Spec.vdd
          ~input_density:density ~weight_density:0.5 ~macs:8
      in
      let macs_per_s =
        float_of_int (spec.Spec.rows * m.Macro_rtl.words)
        *. spec.Spec.mac_freq_hz
        /. float_of_int m.Macro_rtl.db
      in
      let pj_per_mac = p.Power.total_w /. macs_per_s *. 1e12 in
      Printf.printf
        "  density %.2f: %.3f mW  (%.3f pJ/MAC)\n" density
        (p.Power.total_w *. 1e3) pj_per_mac)
    [ 0.125; 0.25; 0.5; 0.75 ];
  (* energy for one 64x64x64 layer: 64 output words x 64 MACs *)
  let p =
    Post_layout.power lib m a.Compiler.signoff ~freq_hz:spec.Spec.mac_freq_hz
      ~vdd:spec.Spec.vdd ~input_density:0.25 ~weight_density:0.5 ~macs:8
  in
  let mac_rate =
    float_of_int (spec.Spec.rows * m.Macro_rtl.words)
    *. spec.Spec.mac_freq_hz
    /. float_of_int m.Macro_rtl.db
  in
  let layer_macs = 64.0 *. 64.0 in
  let layer_s = layer_macs /. mac_rate in
  Printf.printf
    "one 64x64 FC layer: %.2f us, %.2f nJ at 25%% activation density\n"
    (layer_s *. 1e6)
    (p.Power.total_w *. layer_s *. 1e9)
