(* Quickstart: compile a small DCIM macro from a spec, check it computes
   real dot products, and look at its post-layout numbers.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. The execution context: the synthetic 40nm cell library plus the
     shared subcircuit-library memo (the PPA look-up tables the searcher
     consults), with engine/jobs/seed defaults. [Ctx.default] reuses one
     process-wide world, so repeated compiles share characterization. *)
  let ctx = Ctx.default () in
  let lib = Ctx.lib ctx in
  (* 2. A specification: a 32x32 array, one stored weight copy, INT8
     inputs and weights, 700 MHz MAC clock at 0.9 V, balanced PPA. *)
  let spec =
    {
      Spec.rows = 32;
      cols = 32;
      mcr = 1;
      input_prec = Precision.int8;
      weight_prec = Precision.int8;
      mac_freq_hz = 700e6;
      weight_update_freq_hz = 700e6;
      vdd = 0.9;
      preference = Spec.Balanced;
    }
  in
  (* 3. Compile: search -> verified netlist -> placed + routed macro. *)
  let a = Compiler.compile ctx spec in
  print_string (Report.to_string lib a);
  (* 4. Use the macro: load a weight matrix, run a MAC, compare with the
     plain dot product computed in software. *)
  let m = a.Compiler.macro in
  let sim = Sim.create m.Macro_rtl.design in
  let weights =
    Array.init m.Macro_rtl.words (fun g ->
        Array.init spec.Spec.rows (fun r -> ((g + 3) * (r + 7) mod 23) - 11))
  in
  Testbench.load_weights m sim ~copy:0 weights;
  let inputs = Array.init spec.Spec.rows (fun r -> (r * 5 mod 19) - 9) in
  let results = Testbench.run_mac m sim ~inputs in
  Array.iteri
    (fun g got ->
      let expected = Golden.dot ~weights:weights.(g) ~inputs in
      Printf.printf "word %d: macro=%d golden=%d %s\n" g got expected
        (if got = expected then "OK" else "MISMATCH");
      assert (got = expected))
    results;
  print_endline "quickstart: the generated hardware computes. done."
