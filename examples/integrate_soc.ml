(* SoC-integration flow: compile a macro with the embedded sequencer
   (two-wire start/done interface), exercise runtime bit-width
   flexibility (INT8 / INT4 / INT2 on the same silicon), and export the
   hand-off artifacts an SoC team consumes (structural Verilog, placement
   DEF, Liberty and LEF views, the characterized subcircuit-library CSV).

   Run with: dune exec examples/integrate_soc.exe *)

let () =
  let ctx = Ctx.default () in
  let lib = Ctx.lib ctx in
  let spec =
    {
      Spec.rows = 32;
      cols = 32;
      mcr = 2;
      input_prec = Precision.int8;
      weight_prec = Precision.int8;
      mac_freq_hz = 600e6;
      weight_update_freq_hz = 600e6;
      vdd = 0.9;
      preference = Spec.Balanced;
    }
  in
  (* the searcher decides the architecture; then rebuild the winning
     configuration with the sequencer FSM embedded *)
  let a = Compiler.compile ctx spec in
  let cfg =
    { a.Compiler.search.Searcher.final.Design_point.cfg with
      Macro_rtl.with_controller = true }
  in
  let m = Macro_rtl.build lib cfg in
  Printf.printf "macro with sequencer: %d instances, start/done interface\n"
    (Ir.n_insts m.Macro_rtl.design);

  (* drive it the way an SoC would: start pulse, wait for done *)
  let sim = Sim.create m.Macro_rtl.design in
  Sim.set_bus sim "copy_sel" 0;
  let weights =
    Array.init m.Macro_rtl.words (fun g ->
        Array.init spec.Spec.rows (fun r -> ((g * 13) + (r * 7) mod 31) - 15))
  in
  Testbench.load_weights m sim ~copy:0 weights;
  let inputs = Array.init spec.Spec.rows (fun r -> (r mod 17) - 8) in
  let results = Testbench.run_mac_auto m sim ~inputs in
  Array.iteri
    (fun g got ->
      assert (got = Golden.dot ~weights:weights.(g) ~inputs))
    results;
  Printf.printf "sequencer-driven MAC verified (%d words)\n"
    (Array.length results);

  (* runtime bit-width flexibility on a plain (externally controlled)
     build of the same configuration *)
  let m2 =
    Macro_rtl.build lib { cfg with Macro_rtl.with_controller = false }
  in
  let sim2 = Sim.create m2.Macro_rtl.design in
  Sim.set_bus sim2 "copy_sel" 0;
  Testbench.load_weights m2 sim2 ~copy:0 weights;
  List.iter
    (fun bits ->
      let narrow =
        Array.init spec.Spec.rows (fun r ->
            let m = Intmath.pow2 (bits - 1) in
            (r mod (2 * m)) - m)
      in
      let r = Testbench.run_mac ~active_bits:bits m2 sim2 ~inputs:narrow in
      assert (r.(0) = Golden.dot ~weights:weights.(0) ~inputs:narrow);
      Printf.printf
        "INT%d mode: %d serial cycles per MAC, result verified\n" bits bits)
    [ 8; 4; 2 ];

  (* artifact export *)
  let dir = "soc_handoff" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Verilog.write_file (Filename.concat dir "dcim_macro.v") m.Macro_rtl.design;
  Def_writer.write_file lib
    (Filename.concat dir "dcim_macro.def")
    a.Compiler.signoff.Post_layout.placement;
  let dump name text =
    let oc = open_out (Filename.concat dir name) in
    output_string oc text;
    close_out oc
  in
  dump "cells.lib" (Liberty.lib_text lib);
  dump "cells.lef" (Liberty.lef_text lib);
  Persist.save (Ctx.scl ctx) (Filename.concat dir "scl_lut.csv");
  Printf.printf "hand-off written to %s/: %s\n" dir
    (String.concat ", " (Array.to_list (Sys.readdir dir)))
