(* Cloud scenario (the paper's intro: cloud acceleration wants throughput
   and FP support): a BF16-input macro tile for a cloud NPU, compiled with
   the performance preference, then pushed through a frequency ladder to
   find the fastest spec the compiler can close — the "how fast can this
   array go" question an integrator asks first.

   Run with: dune exec examples/cloud_npu.exe *)

let () =
  (* the ladder is a repeat-compile workload, so serve it through a warm
     [Service]: the library and SCL memo are characterized once and every
     rung after the first pays only its own search *)
  let ctx = Ctx.default () in
  let lib = Ctx.lib ctx in
  let svc = Service.create ctx in
  let base =
    {
      Spec.rows = 64;
      cols = 64;
      mcr = 1;
      input_prec = Precision.bf16;
      weight_prec = Precision.int8;
      (* BF16 weights pre-aligned into 8b mantissas *)
      mac_freq_hz = 400e6;
      weight_update_freq_hz = 400e6;
      vdd = 1.1;
      preference = Spec.Prefer_performance;
    }
  in
  print_endline "frequency ladder (BF16 inputs, 1.1 V, performance-first):";
  let best = ref None in
  List.iter
    (fun f_mhz ->
      let spec = { base with Spec.mac_freq_hz = f_mhz *. 1e6 } in
      let req = Service.compile_artifact svc spec in
      match req.Service.art_outcome with
      | Error d -> Printf.printf "  %4.0f MHz: %s\n%!" f_mhz (Diag.to_string d)
      | Ok r ->
          let a = r.Pipeline.artifact in
          Printf.printf
            "  %4.0f MHz: %s  (post-layout fmax %.2f GHz, %.2f mW, %d \
             techniques)\n%!"
            f_mhz
            (if a.Pipeline.timing_closed then "closed" else "missed")
            a.Pipeline.metrics.Pipeline.fmax_ghz
            (a.Pipeline.metrics.Pipeline.power_w *. 1e3)
            (List.length a.Pipeline.search.Searcher.applied);
          if a.Pipeline.timing_closed then best := Some (f_mhz, a))
    [ 400.; 600.; 800. ];
  print_endline (Service.describe svc);
  match !best with
  | None -> print_endline "no frequency closed — lower the ladder"
  | Some (f, a) ->
      Printf.printf "fastest closed spec: %.0f MHz\n" f;
      print_string (Report.to_string lib a);
      (* verify a BF16 MAC end to end, exponent handling included *)
      let m = a.Pipeline.macro in
      let sim = Sim.create m.Macro_rtl.design in
      let rng = Rng.create 2024 in
      let weights = Testbench.random_weights rng m ~density:1.0 in
      Testbench.load_weights m sim ~copy:0 weights;
      let inputs =
        Array.init base.Spec.rows (fun _ -> Fpfmt.random rng Fpfmt.bf16)
      in
      let results = Testbench.check_mac m sim ~weights ~inputs in
      let exp = Sim.read_bus sim "group_exp" in
      Printf.printf
        "BF16 MAC verified: %d words, shared exponent field %d\n"
        (Array.length results) exp
