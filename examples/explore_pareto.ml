(* Design-space exploration tour: run the multi-spec-oriented searcher
   under every PPA preference on the paper's Fig. 8 specification, print
   the visited cloud and the Pareto frontier, and show where the baseline
   compilers land relative to it.

   Run with: dune exec examples/explore_pareto.exe *)

let () =
  let ctx = Ctx.default () in
  let spec = Spec.fig8 in
  Printf.printf "spec: %s\n\n" (Spec.describe spec);
  let frontier, cloud =
    Searcher.pareto_sweep (Ctx.lib ctx) (Ctx.scl ctx) spec
  in
  Printf.printf "visited %d timing-meeting design points; frontier:\n"
    (List.length cloud);
  List.iter
    (fun (p : Design_point.t) ->
      Printf.printf "  %s\n" (Design_point.summary p))
    frontier;
  print_newline ();
  print_endline "baselines at the same spec:";
  List.iter
    (fun (name, (p : Design_point.t)) ->
      let dominated =
        List.exists
          (fun (f : Design_point.t) ->
            f.Design_point.power_w <= p.Design_point.power_w
            && f.Design_point.area_um2 <= p.Design_point.area_um2)
          frontier
      in
      Printf.printf "  %-28s %s%s\n" name (Design_point.summary p)
        (if dominated then "  << dominated by the frontier" else ""))
    (Baselines.all ctx spec);
  print_newline ();
  (* a simple text scatter of the cloud: power (x) vs area (y) *)
  print_endline "cloud scatter (x = power, y = area; F = frontier, . = other):";
  let all = cloud in
  let min_max f =
    List.fold_left
      (fun (lo, hi) p -> (Float.min lo (f p), Float.max hi (f p)))
      (infinity, neg_infinity) all
  in
  let pw (p : Design_point.t) = p.Design_point.power_w in
  let ar (p : Design_point.t) = p.Design_point.area_um2 in
  let p0, p1 = min_max pw and a0, a1 = min_max ar in
  let cols = 48 and rows_ = 14 in
  let grid = Array.make_matrix rows_ cols ' ' in
  let place ch p =
    let xi =
      int_of_float ((pw p -. p0) /. (p1 -. p0 +. 1e-12) *. float_of_int (cols - 1))
    in
    let yi =
      int_of_float ((ar p -. a0) /. (a1 -. a0 +. 1e-12) *. float_of_int (rows_ - 1))
    in
    grid.(rows_ - 1 - yi).(xi) <- ch
  in
  List.iter (place '.') all;
  List.iter (place 'F') frontier;
  Array.iter (fun row -> print_endline (String.init cols (Array.get row))) grid;
  Printf.printf "power %.1f..%.1f mW, area %.3f..%.3f mm2\n" (p0 *. 1e3)
    (p1 *. 1e3) (a0 /. 1e6) (a1 /. 1e6)
