(* SynDCIM command-line driver.

   syndcim compile  — spec to signed-off macro, with artifact export
   syndcim batch    — manifest of specs through the persistent cache
   syndcim exp      — reproduce the paper's tables and figures
   syndcim verify   — differential fuzz campaign, metamorphic properties,
                      PPA snapshot regression
   syndcim library  — dump the synthetic cell library views (LIB / LEF)

   Every compiling subcommand shares one execution-context term
   ([ctx_term]: --jobs and --scl-cache) and runs through [with_ctx],
   which validates the job count, builds a [Ctx.t] over the process-wide
   shared library + SCL memo, merges a persisted SCL LUT in, and saves
   the warmed LUT back out after the run. *)

open Cmdliner

let precision_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "int1" -> Ok Precision.int1
    | "int2" -> Ok Precision.int2
    | "int4" -> Ok Precision.int4
    | "int8" -> Ok Precision.int8
    | "fp4" -> Ok Precision.fp4
    | "fp8" -> Ok Precision.fp8
    | "bf16" -> Ok Precision.bf16
    | other -> Error (`Msg (Printf.sprintf "unknown precision %S" other))
  in
  let print fmt p = Format.pp_print_string fmt (Precision.name p) in
  Arg.conv (parse, print)

let preference_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "power" -> Ok Spec.Prefer_power
    | "area" -> Ok Spec.Prefer_area
    | "performance" | "perf" -> Ok Spec.Prefer_performance
    | "balanced" -> Ok Spec.Balanced
    | other -> Error (`Msg (Printf.sprintf "unknown preference %S" other))
  in
  let print fmt p = Format.pp_print_string fmt (Spec.preference_name p) in
  Arg.conv (parse, print)

(* ---------------- shared execution context ---------------- *)

type ctx_args = {
  cli_jobs : int option;
  cli_scl_cache : string option;
  cli_engine : string option;
  cli_metrics : bool;
  cli_metrics_out : string option;
}

(** The one --jobs / --scl-cache / --engine / --metrics[-out] bundle
    every compiling subcommand reuses; the doc strings live here once
    instead of per subcommand. *)
let ctx_term =
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ]
          ~doc:
            "Worker domains (default: the SYNDCIM_JOBS environment \
             variable, then the number of cores). Must be >= 1.")
  in
  let scl_cache =
    Arg.(
      value
      & opt (some string) None
      & info [ "scl-cache" ] ~docv:"FILE"
          ~doc:
            "CSV file for the characterized subcircuit-library LUT; \
             loaded if present, saved after the run.")
  in
  let engine =
    Arg.(
      value
      & opt (some string) None
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Batch simulation engine: scalar, packed (63 lanes, the \
             default), multiword:N (N = 126 or 252 lanes), or auto \
             (bench-probe the host and keep packed unless a wider \
             engine wins). All engines are bit-identical; this is a \
             throughput knob.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the process metrics registry (counters, cache \
             hit/miss totals, per-stage latency histograms) as a table \
             after the run.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the full metrics registry as JSON to $(docv) after \
             the run (schema syndcim-metrics/1).")
  in
  let make cli_jobs cli_scl_cache cli_engine cli_metrics cli_metrics_out =
    { cli_jobs; cli_scl_cache; cli_engine; cli_metrics; cli_metrics_out }
  in
  Term.(const make $ jobs $ scl_cache $ engine $ metrics $ metrics_out)

(** [with_ctx a f] — validate the parsed context arguments, build the
    context over the shared world, merge the persisted SCL LUT, run
    [f ctx], then persist the warmed LUT (even when [f] fails: the
    characterization work is valid regardless of the run's verdict). *)
let with_ctx (a : ctx_args) (f : Ctx.t -> int) : int =
  let checked =
    let ( let* ) = Result.bind in
    let* jobs =
      match a.cli_jobs with
      | None -> Ok None
      | Some j -> Result.map Option.some (Ctx.validate_jobs j)
    in
    let* engine =
      match a.cli_engine with
      | None -> Ok None
      | Some s -> Result.map Option.some (Ctx.validate_engine s)
    in
    Ok (jobs, engine)
  in
  match checked with
  | Error d ->
      (* one-line diagnostic, non-zero exit, never a backtrace *)
      print_endline (Diag.to_string d);
      1
  | Ok (jobs, engine) ->
      let ctx = Ctx.default () in
      let ctx =
        match jobs with Some j -> Ctx.with_jobs j ctx | None -> ctx
      in
      let ctx =
        match engine with Some e -> Ctx.with_engines e ctx | None -> ctx
      in
      let ctx =
        match a.cli_scl_cache with
        | Some p -> Ctx.with_scl_cache p ctx
        | None -> ctx
      in
      (match (a.cli_scl_cache, Ctx.load_scl ctx) with
      | Some p, n when Sys.file_exists p ->
          Printf.printf "loaded %d characterized subcircuits from %s\n" n p
      | _ -> ());
      let code = f ctx in
      (match (Ctx.save_scl ctx, a.cli_scl_cache) with
      | Some n, Some p ->
          Printf.printf "subcircuit LUT (%d entries) saved to %s\n" n p
      | _ -> ());
      (* metrics reporting runs whatever f's verdict was: a failed run
         is exactly when "where did the time go" matters *)
      if a.cli_metrics then begin
        print_endline "metrics:";
        print_string (Metrics.render ())
      end;
      (match a.cli_metrics_out with
      | None -> ()
      | Some path -> (
          match
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> output_string oc (Metrics.to_json ()))
          with
          | () -> Printf.printf "metrics written to %s\n" path
          | exception Sys_error msg ->
              Printf.eprintf "error: cannot write metrics to %s: %s\n" path
                msg));
      code

(* ---------------- compile ---------------- *)

let compile_cmd =
  let rows = Arg.(value & opt int 64 & info [ "rows"; "H" ] ~doc:"Array height H.") in
  let cols = Arg.(value & opt int 64 & info [ "cols"; "W" ] ~doc:"Array width W.") in
  let mcr = Arg.(value & opt int 2 & info [ "mcr" ] ~doc:"Memory-compute ratio.") in
  let iprec =
    Arg.(value & opt precision_conv Precision.int8
         & info [ "input-precision" ] ~doc:"Input format (int1..8, fp4, fp8, bf16).")
  in
  let wprec =
    Arg.(value & opt precision_conv Precision.int8
         & info [ "weight-precision" ] ~doc:"Weight format.")
  in
  let freq = Arg.(value & opt float 800.0 & info [ "freq-mhz" ] ~doc:"MAC clock target (MHz).") in
  let wupd = Arg.(value & opt float 800.0 & info [ "wupd-mhz" ] ~doc:"Weight-update clock target (MHz).") in
  let vdd = Arg.(value & opt float 0.9 & info [ "vdd" ] ~doc:"Operating supply (V).") in
  let prefer =
    Arg.(value & opt preference_conv Spec.Balanced
         & info [ "prefer" ] ~doc:"PPA preference: power, area, performance, balanced.")
  in
  let out = Arg.(value & opt (some string) None & info [ "o"; "out-dir" ] ~doc:"Write netlist.v, placement.def, macro.lib, macro.lef and report.txt here.") in
  let trace_flag =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Print the per-stage instrumentation table: wall-clock,                    cells touched, critical path in/out, evaluation-cache                    hits/misses, ECO iterations and retry boosts.")
  in
  let dump_stage =
    Arg.(value & opt (some (pair ~sep:':' string string)) None
         & info [ "dump-stage" ] ~docv:"STAGE:DIR"
             ~doc:"Serialize a stage artifact into DIR: netlist + search                    summary (search), verification summary (signoff_verify),                    floorplan DEF + STA/ECO summary (backend), power                    breakdown (power), or the metric record (metrics).")
  in
  let inject =
    Arg.(value & opt (some string) None
         & info [ "inject-fail" ] ~docv:"STAGE"
             ~doc:"Force the named pipeline stage to fail with a                    diagnostic (failure-path test hook).")
  in
  let run ctx_a rows cols mcr iprec wprec freq wupd vdd prefer out
      trace_on dump inject =
    with_ctx ctx_a @@ fun ctx ->
    let spec =
      {
        Spec.rows; cols; mcr;
        input_prec = iprec;
        weight_prec = wprec;
        mac_freq_hz = freq *. 1e6;
        weight_update_freq_hz = wupd *. 1e6;
        vdd;
        preference = prefer;
      }
    in
    let svc = Service.create ctx in
    let req = Service.compile_artifact ?inject svc spec in
    let lib = Ctx.lib ctx in
    let print_trace () =
      if trace_on then begin
        print_endline "pipeline trace:";
        print_string (Trace.render req.Service.art_trace)
      end
    in
    match req.Service.art_outcome with
    | Error d ->
        (* the structured diagnostic is the report: stage, spec context,
           message, payload — and a non-zero exit, never a backtrace *)
        print_endline (Diag.to_string d);
        print_trace ();
        1
    | Ok r ->
        let a = r.Pipeline.artifact in
        print_string (Report.to_string lib a);
        print_trace ();
        (match out with
        | None -> ()
        | Some dir ->
            (try Unix.mkdir dir 0o755
             with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
            Verilog.write_file (Filename.concat dir "netlist.v")
              a.Pipeline.macro.Macro_rtl.design;
            Def_writer.write_file lib (Filename.concat dir "placement.def")
              a.Pipeline.signoff.Post_layout.placement;
            let dump_file name text =
              let oc = open_out (Filename.concat dir name) in
              output_string oc text;
              close_out oc
            in
            dump_file "macro.lib" (Liberty.lib_text lib);
            dump_file "macro.lef" (Liberty.lef_text lib);
            dump_file "report.txt" (Report.to_string lib a);
            Printf.printf "artifacts written to %s/\n" dir);
        let dump_ok =
          match dump with
          | None -> true
          | Some (name, dir) -> (
              match Pipeline.dump_stage ctx r ~name ~dir with
              | Ok files ->
                  Printf.printf "stage %s dumped to %s/ (%s)\n" name dir
                    (String.concat ", " files);
                  true
              | Error d ->
                  print_endline (Diag.to_string d);
                  false)
        in
        if a.Pipeline.timing_closed && dump_ok then 0 else 1
  in
  let term =
    Term.(const run $ ctx_term $ rows $ cols $ mcr $ iprec $ wprec $ freq
          $ wupd $ vdd $ prefer $ out $ trace_flag $ dump_stage $ inject)
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a DCIM macro from a specification")
    term

(* ---------------- batch ---------------- *)

let batch_cmd =
  let manifest =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"MANIFEST"
             ~doc:"Manifest file: one spec per line as whitespace-separated                    key=value fields (rows, cols, mcr, iprec, wprec, freq_mhz,                    wupd_mhz, vdd, prefer), # comments allowed.")
  in
  let gen =
    Arg.(value & opt (some (pair ~sep:':' int int)) None
         & info [ "gen" ] ~docv:"SEED:COUNT"
             ~doc:"Generate the batch instead of reading a manifest: COUNT                    stratified specs from the verification fuzzer, deterministic                    in SEED.")
  in
  let cache_dir =
    Arg.(value & opt string ".syndcim-cache"
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Persistent compile-cache directory (created if missing;                    its parent must exist).")
  in
  let no_cache =
    Arg.(value & flag
         & info [ "no-cache" ] ~doc:"Compile everything; neither read nor                    write the persistent cache.")
  in
  let warm =
    Arg.(value & flag
         & info [ "warm" ]
             ~doc:"Populate-only mode: compile misses into the cache and                    print just the summary line, no per-spec report.")
  in
  let manifest_out =
    Arg.(value & opt (some string) None
         & info [ "manifest-out" ] ~docv:"FILE"
             ~doc:"Write the machine-readable batch manifest (JSON:                    per-spec status, PPA, cache hit/miss, wall time) here.")
  in
  let ppa_out =
    Arg.(value & opt (some string) None
         & info [ "ppa-out" ] ~docv:"FILE"
             ~doc:"Write the deterministic full-precision PPA record here                    (byte-identical across cache states and job counts).")
  in
  let trace_flag =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Print the merged per-stage instrumentation table,                    including one cache row per spec.")
  in
  let run ctx_a manifest gen cache_dir no_cache warm manifest_out ppa_out
      trace_on =
    with_ctx ctx_a @@ fun ctx ->
    let ( let* ) = Result.bind in
    let outcome =
      let* specs =
        match (manifest, gen) with
        | Some path, None -> Batch.load_manifest path
        | None, Some (seed, count) ->
            if count < 1 then
              Error
                (Diag.error ~stage:"batch"
                   ~payload:[ ("count", string_of_int count) ]
                   "--gen needs a positive spec count")
            else Ok (Specgen.generate ~seed ~count)
        | Some _, Some _ ->
            Error
              (Diag.error ~stage:"batch"
                 "give a manifest file or --gen, not both")
        | None, None ->
            Error
              (Diag.error ~stage:"batch"
                 "no input: give a manifest file or --gen SEED:COUNT")
      in
      let* ctx =
        if no_cache then Ok (Ctx.without_cache ctx)
        else Ctx.with_cache_dir cache_dir ctx
      in
      Ok (specs, ctx)
    in
    match outcome with
    | Error d ->
        print_endline (Diag.to_string d);
        1
    | Ok (specs, ctx) ->
        let trace = if trace_on then Some (Trace.create ()) else None in
        let svc = Service.create ctx in
        let r = Service.batch ?trace svc specs in
        List.iter (fun d -> print_endline (Diag.to_string d)) r.Batch.warnings;
        if not warm then print_string (Batch.render_table r);
        print_endline (Batch.describe r);
        (match Ctx.cache ctx with
        | Some c ->
            Printf.printf "cache: %s (%d entries in %s)\n"
              (Disk_cache.describe (Disk_cache.stats c))
              (Disk_cache.entry_count c) (Disk_cache.root c)
        | None -> ());
        (match trace with
        | Some t ->
            print_endline "batch trace:";
            print_string (Trace.render t)
        | None -> ());
        let write path text =
          let oc = open_out path in
          output_string oc text;
          close_out oc;
          Printf.printf "wrote %s\n" path
        in
        Option.iter (fun p -> write p (Batch.manifest_json r)) manifest_out;
        Option.iter (fun p -> write p (Batch.render_ppa r)) ppa_out;
        if r.Batch.failed = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Compile a manifest of specifications through the persistent \
             compile cache")
    Term.(const run $ ctx_term $ manifest $ gen $ cache_dir $ no_cache
          $ warm $ manifest_out $ ppa_out $ trace_flag)

(* ---------------- experiments ---------------- *)

let exp_cmd =
  let which =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"EXPERIMENT"
             ~doc:"table1, fig7, fig8, fig9, table2, ablations (default: all)")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller dimensions, faster run.")
  in
  let exp_cache =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Reuse the persistent compile cache for the harness                    compiles that support it (fig8's implemented designs).")
  in
  let run ctx_a which quick cache_dir =
    with_ctx ctx_a @@ fun ctx ->
    let ctx =
      match cache_dir with
      | None -> ctx
      | Some dir -> (
          match Ctx.with_cache_dir dir ctx with
          | Ok ctx -> ctx
          | Error d ->
              Printf.printf "warning: %s — running uncached\n"
                (Diag.to_string d);
              ctx)
    in
    let want name = match which with None -> true | Some w -> w = name in
    if want "table1" then ignore (Table1.run ctx);
    if want "fig7" then begin
      let dims = if quick then [ 32; 64 ] else [ 32; 64; 128; 256 ] in
      Fig7.print (Fig7.run ~dims ctx)
    end;
    if want "fig8" then Fig8.print (Fig8.run ctx);
    if want "fig9" then begin
      let a = Pipeline.artifact_exn (Pipeline.run ctx Spec.fig8) in
      Fig9.print (Fig9.run ctx a)
    end;
    if want "table2" then
      Table2.print ?jobs:(Ctx.jobs ctx) (Table2.measure ctx);
    if want "ablations" then begin
      let heights = if quick then [ 16; 32 ] else [ 16; 32; 64; 128 ] in
      Ablation.print_adder_trees (Ablation.adder_trees ~heights ctx);
      Ablation.print_search_ladder (Ablation.search_ladder ctx Spec.fig8);
      let dims = if quick then [ 32 ] else [ 32; 64; 128 ] in
      Ablation.print_placements (Ablation.placements ~dims ctx)
    end;
    0
  in
  Cmd.v (Cmd.info "exp" ~doc:"Reproduce the paper's tables and figures")
    Term.(const run $ ctx_term $ which $ quick $ exp_cache)

(* ---------------- verify ---------------- *)

let verify_cmd =
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Bounded CI smoke run: fixed seed, 200 fuzzed specs,                    injected-bug canary and snapshot diff. Overrides --seed.")
  in
  let seed =
    Arg.(value & opt int Ctx.default_seed
         & info [ "seed" ] ~doc:"Campaign seed.")
  in
  let specs =
    Arg.(value & opt int 200
         & info [ "specs" ] ~doc:"Number of fuzzed specifications.")
  in
  let update =
    Arg.(value & flag
         & info [ "update-snapshots" ]
             ~doc:"Re-record the golden PPA snapshot instead of diffing                    against it.")
  in
  let snapdir =
    Arg.(value & opt string (Filename.concat "test" "snapshots")
         & info [ "snapshot-dir" ] ~doc:"Directory holding the PPA snapshot.")
  in
  let run ctx_a smoke seed specs update snapdir =
    with_ctx ctx_a @@ fun ctx ->
    let seed, specs =
      if smoke then (Ctx.default_seed, max 200 specs) else (seed, specs)
    in
    let ctx = Ctx.with_seed seed ctx in
    (* stage 1: differential fuzz campaign + metamorphic properties *)
    let r = Campaign.run ~count:specs ctx in
    print_string (Campaign.describe r);
    List.iter
      (fun d -> print_endline (Diag.to_string d))
      (Campaign.diagnostics r);
    let campaign_ok = Campaign.clean r in
    (* stage 2: canary — an injected retiming bug must be caught and
       shrunk, proving the checker has teeth on this very build *)
    let bug = Diffcheck.Retime_early_sample in
    let canary = Campaign.run ~bug ~count:8 ctx in
    let canary_ok = canary.Campaign.failures <> [] in
    (match canary.Campaign.failures with
    | f :: _ ->
        Printf.printf "canary: injected %s caught and shrunk to [%s] in %d step(s)\n"
          (Diffcheck.bug_name bug)
          (Spec.describe f.Campaign.shrunk)
          f.Campaign.shrink_steps
    | [] ->
        print_string
          "canary: FAIL — injected retiming bug escaped the differential checker\n");
    (* stage 3: golden PPA snapshot *)
    let snap_ok =
      if update then begin
        Printf.printf "snapshot: recorded %s\n"
          (Snapshot.update ~dir:snapdir ctx);
        true
      end
      else
        match Snapshot.check_diag ~dir:snapdir ctx with
        | Ok n ->
            Printf.printf "snapshot: %d fingerprints match\n" n;
            true
        | Error d ->
            Printf.printf "snapshot: FAIL\n%s\n" (Diag.to_string d);
            false
    in
    if campaign_ok && canary_ok && snap_ok then begin
      print_string "verify: PASS\n";
      0
    end
    else begin
      print_string "verify: FAIL\n";
      1
    end
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Differential fuzz campaign, metamorphic properties and golden \
             PPA snapshot regression")
    Term.(const run $ ctx_term $ smoke $ seed $ specs $ update $ snapdir)

(* ---------------- library ---------------- *)

let library_cmd =
  let view =
    Arg.(value & pos 0 string "lib"
         & info [] ~docv:"VIEW" ~doc:"lib (Liberty timing/power) or lef (geometry)")
  in
  let run view =
    let lib = Ctx.lib (Ctx.default ()) in
    (match view with
    | "lef" -> print_string (Liberty.lef_text lib)
    | _ -> print_string (Liberty.lib_text lib));
    0
  in
  Cmd.v
    (Cmd.info "library" ~doc:"Dump the synthetic 40nm cell library views")
    Term.(const run $ view)

let () =
  let doc = "SynDCIM: performance-aware digital computing-in-memory compiler" in
  let info = Cmd.info "syndcim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ compile_cmd; batch_cmd; exp_cmd; verify_cmd; library_cmd ]))
