(* Integration tests of the end-to-end compiler. *)

let lib = Library.n40 ()
let scl = Scl.create lib
let ctx = Ctx.of_parts lib scl
let check_bool = Alcotest.(check bool)

let spec ?(rows = 16) ?(cols = 16) ?(freq = 700e6)
    ?(ip = Precision.int8) () =
  {
    Spec.rows;
    cols;
    mcr = 2;
    input_prec = ip;
    weight_prec = Precision.int8;
    mac_freq_hz = freq;
    weight_update_freq_hz = freq;
    vdd = 0.9;
    preference = Spec.Balanced;
  }

let test_compile_int () =
  let a = Compiler.compile ctx (spec ()) in
  check_bool "timing closed" true a.Compiler.timing_closed;
  check_bool "signoff clean" true
    (a.Compiler.signoff.Post_layout.lvs.Lvs.clean
    && a.Compiler.signoff.Post_layout.drc_violations = []);
  check_bool "power sensible" true
    (a.Compiler.metrics.Compiler.power_w > 1e-5
    && a.Compiler.metrics.Compiler.power_w < 1.0);
  check_bool "area sensible" true
    (a.Compiler.metrics.Compiler.area_mm2 > 1e-4
    && a.Compiler.metrics.Compiler.area_mm2 < 10.0);
  check_bool "fmax covers spec" true
    (a.Compiler.metrics.Compiler.fmax_ghz >= 0.7)

let test_compile_fp () =
  let a = Compiler.compile ctx (spec ~ip:Precision.fp8 ~freq:500e6 ()) in
  check_bool "fp closes" true a.Compiler.timing_closed;
  (* FP macro has the aligner in its breakdown *)
  check_bool "aligner in power breakdown" true
    (List.mem_assoc "fp_align" a.Compiler.power.Power.by_subcircuit)

let test_compiled_macro_computes () =
  let a = Compiler.compile ctx (spec ()) in
  let m = a.Compiler.macro in
  let sim = Sim.create m.Macro_rtl.design in
  Sim.set_bus sim "copy_sel" 0;
  let rng = Rng.create 42 in
  let weights = Testbench.random_weights rng m ~density:1.0 in
  Testbench.load_weights m sim ~copy:0 weights;
  for _ = 1 to 3 do
    let inputs =
      Array.init 16 (fun _ -> Testbench.random_input rng m ~density:1.0)
    in
    ignore (Testbench.check_mac m sim ~weights ~inputs)
  done

let test_verification_gate () =
  (* the compiler refuses nothing when verify is off, and verification is
     actually exercised when on (smoke: both paths return) *)
  let a = Compiler.compile ~verify:false ctx (spec ~freq:300e6 ()) in
  check_bool "unverified compile still signs off" true
    a.Compiler.signoff.Post_layout.lvs.Lvs.clean

let test_scattered_style () =
  let a =
    Compiler.compile ~style:Floorplan.Scattered ctx (spec ~freq:300e6 ())
  in
  check_bool "scattered signs off" true
    a.Compiler.signoff.Post_layout.lvs.Lvs.clean

let test_metrics_consistency () =
  let s = spec () in
  let a = Compiler.compile ctx s in
  let m = a.Compiler.metrics in
  check_bool "tops/w = tops / power" true
    (Float.abs (m.Compiler.tops_per_w -. (m.Compiler.tops /. m.Compiler.power_w))
     /. m.Compiler.tops_per_w
    < 1e-9);
  check_bool "tops/mm2 = tops / area" true
    (Float.abs
       (m.Compiler.tops_per_mm2 -. (m.Compiler.tops /. m.Compiler.area_mm2))
     /. m.Compiler.tops_per_mm2
    < 1e-9);
  Alcotest.(check (float 1e-9)) "ops norm for int8xint8" 64.0 m.Compiler.ops_norm

let test_report_renders () =
  let a = Compiler.compile ctx (spec ~freq:300e6 ()) in
  let s = Report.to_string lib a in
  check_bool "report non-trivial" true (String.length s > 300);
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "mentions post-layout" true (contains "post-layout");
  check_bool "subcircuit table" true (contains "shift_adder")

let test_fig8_spec_closes () =
  (* the paper's headline spec must close end to end *)
  let a = Compiler.compile ctx Spec.fig8 in
  check_bool "800MHz@0.9V closes post-layout" true a.Compiler.timing_closed;
  (* and the silicon-validation points hold: >= 1 GHz at 1.2 V *)
  let fmax12 =
    Voltage.fmax lib.Library.node
      ~crit_path_ps:a.Compiler.metrics.Compiler.crit_ps ~vdd:1.2
  in
  check_bool "GHz-class at 1.2V" true (fmax12 >= 0.95e9)

let () =
  Alcotest.run "core"
    [
      ( "compile",
        [
          Alcotest.test_case "INT end-to-end" `Quick test_compile_int;
          Alcotest.test_case "FP end-to-end" `Quick test_compile_fp;
          Alcotest.test_case "compiled macro computes" `Quick
            test_compiled_macro_computes;
          Alcotest.test_case "verification gate" `Quick
            test_verification_gate;
          Alcotest.test_case "scattered style" `Quick test_scattered_style;
          Alcotest.test_case "metrics consistency" `Quick
            test_metrics_consistency;
          Alcotest.test_case "report" `Quick test_report_renders;
          Alcotest.test_case "fig8 spec closes" `Slow test_fig8_spec_closes;
        ] );
    ]
