(* Tests for number formats, the behavioural aligner and the golden MAC
   models — the reference semantics everything else is checked against. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- Fpfmt ---------------- *)

let test_format_geometry () =
  check_int "fp8 storage" 8 (Fpfmt.storage_bits Fpfmt.fp8);
  check_int "fp4 storage" 4 (Fpfmt.storage_bits Fpfmt.fp4);
  check_int "bf16 storage" 16 (Fpfmt.storage_bits Fpfmt.bf16);
  check_int "fp8 bias" 7 (Fpfmt.bias Fpfmt.fp8);
  check_int "bf16 bias" 127 (Fpfmt.bias Fpfmt.bf16);
  check_int "fp8 aligned width" 8 (Fpfmt.aligned_bits Fpfmt.fp8);
  check_int "bf16 aligned width" 9 (Fpfmt.aligned_bits Fpfmt.bf16)

let test_pack_decode_roundtrip () =
  let f = Fpfmt.fp8 in
  for exp = 0 to 15 do
    for man = 0 to 7 do
      List.iter
        (fun sign ->
          let bits = Fpfmt.pack f ~sign ~exp ~man in
          let d = Fpfmt.decode f bits in
          check_bool "sign" true (d.Fpfmt.sign = sign);
          if exp = 0 then begin
            check_int "subnormal exponent" 1 d.Fpfmt.eff_exp;
            check_int "subnormal mantissa" man d.Fpfmt.mant
          end
          else begin
            check_int "normal exponent" exp d.Fpfmt.eff_exp;
            check_int "implicit bit" (8 lor man) d.Fpfmt.mant
          end)
        [ false; true ]
    done
  done

let test_to_real () =
  let f = Fpfmt.fp8 in
  let v = Fpfmt.pack f ~sign:false ~exp:7 ~man:0 in
  Alcotest.(check (float 1e-9)) "1.0" 1.0 (Fpfmt.to_real f v);
  let v = Fpfmt.pack f ~sign:true ~exp:8 ~man:4 in
  Alcotest.(check (float 1e-9)) "-3.0" (-3.0) (Fpfmt.to_real f v);
  let v = Fpfmt.pack f ~sign:false ~exp:0 ~man:0 in
  Alcotest.(check (float 1e-9)) "zero" 0.0 (Fpfmt.to_real f v)

(* ---------------- Align ---------------- *)

let test_max_exponent () =
  let f = Fpfmt.fp8 in
  let xs =
    [|
      Fpfmt.pack f ~sign:false ~exp:3 ~man:1;
      Fpfmt.pack f ~sign:true ~exp:9 ~man:0;
      Fpfmt.pack f ~sign:false ~exp:0 ~man:5;
    |]
  in
  check_int "max" 9 (Align.max_exponent f xs);
  check_int "all-zero group" 1 (Align.max_exponent f [| 0 |])

let test_align_values () =
  let f = Fpfmt.fp8 in
  (* 1.0 and 0.5: after alignment to exponent of 1.0, 0.5's mantissa is
     shifted right by one *)
  let one = Fpfmt.pack f ~sign:false ~exp:7 ~man:0 in
  let half = Fpfmt.pack f ~sign:false ~exp:6 ~man:0 in
  let a = Align.align f [| one; half |] in
  check_int "group exp" 7 a.Align.group_exp;
  check_int "1.0 aligned" (8 lsl 3) a.Align.values.(0);
  check_int "0.5 aligned" (8 lsl 2) a.Align.values.(1)

let test_align_signs () =
  let f = Fpfmt.fp8 in
  let pos = Fpfmt.pack f ~sign:false ~exp:7 ~man:3 in
  let neg = Fpfmt.pack f ~sign:true ~exp:7 ~man:3 in
  let a = Align.align f [| pos; neg |] in
  check_int "negation symmetric" 0 (a.Align.values.(0) + a.Align.values.(1))

let test_align_flush_to_zero () =
  let f = Fpfmt.fp8 in
  let big = Fpfmt.pack f ~sign:false ~exp:15 ~man:0 in
  let tiny = Fpfmt.pack f ~sign:false ~exp:1 ~man:7 in
  let a = Align.align f [| big; tiny |] in
  check_int "tiny flushes to zero" 0 a.Align.values.(1)

let test_alignment_error_bound () =
  (* truncation error is below one unit of the aligned grid *)
  let f = Fpfmt.fp8 in
  let rng = Rng.create 99 in
  for _ = 1 to 200 do
    let xs = Array.init 8 (fun _ -> Fpfmt.random rng f) in
    let a = Align.align f xs in
    let err, ulp = Align.max_alignment_error f a xs in
    check_bool "error < 1 ulp" true (err < ulp +. 1e-12)
  done

let test_align_equal_exponents () =
  (* a group with one shared exponent aligns exactly (shift = 0) *)
  let f = Fpfmt.fp8 in
  let xs =
    Array.init 8 (fun man -> Fpfmt.pack f ~sign:(man mod 2 = 0) ~exp:9 ~man)
  in
  let a = Align.align f xs in
  check_int "group exponent" 9 a.Align.group_exp;
  Array.iteri
    (fun i bits ->
      let exact = Fpfmt.to_real f bits in
      let approx = Align.real_of_aligned f a i in
      check_bool "exact at zero shift" true
        (Float.abs (exact -. approx) < 1e-12))
    xs

let test_subnormal_values () =
  let f = Fpfmt.fp8 in
  (* smallest subnormal: man = 1, exp = 0 -> 2^-9 for E4M3 *)
  let v = Fpfmt.pack f ~sign:false ~exp:0 ~man:1 in
  Alcotest.(check (float 1e-12))
    "subnormal magnitude"
    (1.0 /. 8.0 *. (2.0 ** float_of_int (1 - Fpfmt.bias f)))
    (Fpfmt.to_real f v);
  (* subnormals participate in alignment without the implicit bit: at a
     group exponent of 1 the shift is zero, so the bare mantissa lands on
     the guard-shifted grid *)
  let a = Align.align f [| v; Fpfmt.pack f ~sign:false ~exp:1 ~man:0 |] in
  check_int "subnormal aligned" (1 lsl f.Fpfmt.guard) a.Align.values.(0)

(* ---------------- Golden ---------------- *)

let test_dot () =
  check_int "dot" 4
    (Golden.dot ~weights:[| 1; -2; 3 |] ~inputs:[| 2; 5; 4 |])

let test_bit_serial_equals_dot_int8 () =
  let rng = Rng.create 5 in
  for _ = 1 to 300 do
    let n = 1 + Rng.int rng 32 in
    let weights = Array.init n (fun _ -> Rng.signed rng ~width:8) in
    let inputs = Array.init n (fun _ -> Rng.signed rng ~width:8) in
    check_int "schedule = dot"
      (Golden.dot ~weights ~inputs)
      (Golden.bit_serial_mac ~input_bits:8 ~weight_bits:8 ~weights ~inputs)
  done

let test_bit_serial_one_bit_unsigned () =
  (* INT1 is unsigned: no cycle and no column is negated *)
  let weights = [| 1; 0; 1; 1 |] and inputs = [| 1; 1; 0; 1 |] in
  check_int "binary dot" 2
    (Golden.bit_serial_mac ~input_bits:1 ~weight_bits:1 ~weights ~inputs)

let test_bit_serial_mixed_widths () =
  let rng = Rng.create 8 in
  List.iter
    (fun (ib, wb) ->
      for _ = 1 to 50 do
        let n = 1 + Rng.int rng 16 in
        let w1 w = if w = 1 then Rng.int rng 2 else Rng.signed rng ~width:w in
        let weights = Array.init n (fun _ -> w1 wb) in
        let inputs = Array.init n (fun _ -> w1 ib) in
        check_int "mixed widths"
          (Golden.dot ~weights ~inputs)
          (Golden.bit_serial_mac ~input_bits:ib ~weight_bits:wb ~weights
             ~inputs)
      done)
    [ (1, 8); (8, 1); (2, 4); (4, 2); (4, 8); (1, 1); (2, 2) ]

let test_column_popcount () =
  check_int "popcount" 2
    (Golden.column_popcount
       ~weight_bits:[| true; true; false |]
       ~input_bits_t:[| true; true; true |])

let test_shift_accumulate_extremes () =
  (* all partial sums maximal for 4-bit signed inputs of value -8 *)
  let sums = Array.make 4 5 in
  check_int "msb negated" ((5 * (1 + 2 + 4)) - (5 * 8))
    (Golden.shift_accumulate ~input_bits:4 sums)

let test_fuse_columns () =
  check_int "unsigned single column" 7
    (Golden.fuse_columns ~weight_bits:1 [| 7 |]);
  (* column 1 carries weight -2 (two's complement MSB) *)
  check_int "two's complement columns" (1 - 12)
    (Golden.fuse_columns ~weight_bits:2 [| 1; 6 |]);
  check_int "four columns" (3 + (2 * 1) + (4 * 4) - (8 * 2))
    (Golden.fuse_columns ~weight_bits:4 [| 3; 1; 4; 2 |])

let test_fp_mac_matches_reference () =
  let f = Fpfmt.fp8 in
  let rng = Rng.create 21 in
  for _ = 1 to 100 do
    let n = 8 in
    let fp_inputs = Array.init n (fun _ -> Fpfmt.random rng f) in
    let weights = Array.init n (fun _ -> Rng.signed rng ~width:8) in
    let got, gexp = Golden.fp_mac f ~weight_bits:8 ~weights ~fp_inputs in
    let a = Align.align f fp_inputs in
    check_int "exponent" a.Align.group_exp gexp;
    check_int "value" (Golden.dot ~weights ~inputs:a.Align.values) got
  done

let test_result_width () =
  (* widths must hold the extreme dot product *)
  let w = Golden.result_width ~rows:64 ~input_bits:8 ~weight_bits:8 in
  let extreme = 64 * 128 * 128 in
  check_bool "fits" true (extreme < Intmath.pow2 (w - 1))

let prop_bit_serial =
  QCheck.Test.make ~name:"bit-serial schedule = dot product" ~count:300
    QCheck.(
      pair (int_range 1 24)
        (pair (int_range 2 8) (int_range 2 8)))
    (fun (n, (ib, wb)) ->
      let rng = Rng.create (n + (ib * 100) + (wb * 7)) in
      let weights = Array.init n (fun _ -> Rng.signed rng ~width:wb) in
      let inputs = Array.init n (fun _ -> Rng.signed rng ~width:ib) in
      Golden.bit_serial_mac ~input_bits:ib ~weight_bits:wb ~weights ~inputs
      = Golden.dot ~weights ~inputs)

(* ---------------- directed corners ---------------- *)

let test_int_min_negation () =
  (* INT_MIN has no positive counterpart: the sign cycle subtracts the
     largest partial sum and the sign column subtracts the largest column
     accumulation, so an all-INT_MIN array exercises both negations at
     their extreme simultaneously *)
  let rows = 16 in
  List.iter
    (fun w ->
      let m = -Intmath.pow2 (w - 1) in
      let weights = Array.make rows m and inputs = Array.make rows m in
      check_int
        (Printf.sprintf "all-INT_MIN %d-bit" w)
        (rows * m * m)
        (Golden.bit_serial_mac ~input_bits:w ~weight_bits:w ~weights ~inputs))
    [ 2; 4; 8 ];
  (* maximal popcount on every serial cycle: the sign cycle dominates the
     positive cycles by exactly one grid unit per row *)
  let sums = Array.make 8 rows in
  check_int "saturated sign cycle" (-rows)
    (Golden.shift_accumulate ~input_bits:8 sums)

let test_asr_sign_extension_at_max_width () =
  (* input_bit relies on asr replicating the sign all the way up the
     native word; check at the top of the 63-bit range *)
  check_bool "-1 bit 62" true (Golden.input_bit (-1) 62);
  check_bool "min_int bit 62" true (Golden.input_bit min_int 62);
  check_bool "min_int bit 61" false (Golden.input_bit min_int 61);
  check_bool "0 bit 62" false (Golden.input_bit 0 62);
  (* sign_extend at the widest supported width *)
  check_int "most negative 61-bit value"
    (-Intmath.pow2 60)
    (Intmath.sign_extend ~width:61 (Intmath.pow2 60));
  check_int "largest positive 61-bit value"
    (Intmath.pow2 60 - 1)
    (Intmath.sign_extend ~width:61 (Intmath.pow2 60 - 1));
  check_int "all-ones is -1" (-1)
    (Intmath.sign_extend ~width:61 (Intmath.pow2 61 - 1))

let test_fp_overflow_alignment () =
  (* every row at the format's largest finite value: the aligner's
     zero-shift, maximal-mantissa case feeding a full-carry dot product *)
  let f = Fpfmt.fp8 in
  let emax = Intmath.pow2 f.Fpfmt.exp_bits - 1 in
  let max_v =
    Fpfmt.pack f ~sign:false ~exp:emax ~man:(Intmath.pow2 f.Fpfmt.man_bits - 1)
  in
  let xs = Array.make 8 max_v in
  let a = Align.align f xs in
  check_int "group exponent saturates" emax a.Align.group_exp;
  Array.iter
    (fun v -> check_int "max mantissa on the guard grid" (15 lsl f.Fpfmt.guard) v)
    a.Align.values;
  let weights = Array.make 8 127 in
  let got, gexp = Golden.fp_mac f ~weight_bits:8 ~weights ~fp_inputs:xs in
  check_int "fp_mac exponent" a.Align.group_exp gexp;
  check_int "fp_mac value" (Golden.dot ~weights ~inputs:a.Align.values) got

let test_fp_denormal_and_signed_zero () =
  let f = Fpfmt.fp8 in
  (* a subnormal-only group sits at the minimum exponent, unflushed, with
     its sign intact *)
  let denorm = Fpfmt.pack f ~sign:true ~exp:0 ~man:7 in
  let a = Align.align f [| denorm |] in
  check_int "denorm-only group exponent" 1 a.Align.group_exp;
  check_int "negative subnormal survives"
    (-(7 lsl f.Fpfmt.guard))
    a.Align.values.(0);
  (* signed zero: -0 must align to exactly 0 and contribute nothing *)
  let nz = Fpfmt.pack f ~sign:true ~exp:0 ~man:0 in
  let one = Fpfmt.pack f ~sign:false ~exp:(Fpfmt.bias f) ~man:0 in
  let a = Align.align f [| nz; one |] in
  check_int "-0 aligns to 0" 0 a.Align.values.(0);
  check_int "dot ignores -0" a.Align.values.(1)
    (Golden.dot ~weights:[| 127; 1 |] ~inputs:a.Align.values)

(* ---------------- Precision ---------------- *)

let test_precision_descriptors () =
  check_int "int8 datapath" 8 (Precision.datapath_bits Precision.int8);
  check_int "fp8 datapath" 8 (Precision.datapath_bits Precision.fp8);
  check_int "bf16 datapath" 9 (Precision.datapath_bits Precision.bf16);
  check_int "fp8 storage" 8 (Precision.storage_bits Precision.fp8);
  check_bool "fp flag" true (Precision.is_fp Precision.fp8);
  check_bool "int flag" false (Precision.is_fp Precision.int4);
  check_int "ops norm" 64
    (Precision.ops_per_mac Precision.int8 Precision.int8);
  Alcotest.(check string) "names" "INT4" (Precision.name Precision.int4)

let () =
  Alcotest.run "arith"
    [
      ( "fpfmt",
        [
          Alcotest.test_case "geometry" `Quick test_format_geometry;
          Alcotest.test_case "pack/decode" `Quick test_pack_decode_roundtrip;
          Alcotest.test_case "to_real" `Quick test_to_real;
        ] );
      ( "align",
        [
          Alcotest.test_case "max exponent" `Quick test_max_exponent;
          Alcotest.test_case "values" `Quick test_align_values;
          Alcotest.test_case "signs" `Quick test_align_signs;
          Alcotest.test_case "flush to zero" `Quick test_align_flush_to_zero;
          Alcotest.test_case "error bound" `Quick test_alignment_error_bound;
          Alcotest.test_case "equal exponents exact" `Quick
            test_align_equal_exponents;
          Alcotest.test_case "subnormals" `Quick test_subnormal_values;
        ] );
      ( "golden",
        [
          Alcotest.test_case "dot" `Quick test_dot;
          Alcotest.test_case "bit-serial INT8" `Quick
            test_bit_serial_equals_dot_int8;
          Alcotest.test_case "INT1 unsigned" `Quick
            test_bit_serial_one_bit_unsigned;
          Alcotest.test_case "mixed widths" `Quick
            test_bit_serial_mixed_widths;
          Alcotest.test_case "popcount" `Quick test_column_popcount;
          Alcotest.test_case "shift-accumulate" `Quick
            test_shift_accumulate_extremes;
          Alcotest.test_case "fuse columns" `Quick test_fuse_columns;
          Alcotest.test_case "FP MAC" `Quick test_fp_mac_matches_reference;
          Alcotest.test_case "result width" `Quick test_result_width;
        ] );
      ( "corners",
        [
          Alcotest.test_case "INT_MIN negation" `Quick test_int_min_negation;
          Alcotest.test_case "asr sign extension" `Quick
            test_asr_sign_extension_at_max_width;
          Alcotest.test_case "FP overflow alignment" `Quick
            test_fp_overflow_alignment;
          Alcotest.test_case "FP denormal + signed zero" `Quick
            test_fp_denormal_and_signed_zero;
        ] );
      ( "precision",
        [ Alcotest.test_case "descriptors" `Quick test_precision_descriptors ]
      );
      ("properties", [ QCheck_alcotest.to_alcotest prop_bit_serial ]);
    ]
