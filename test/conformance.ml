(* Cross-engine conformance suite: one parameterized battery proving two
   simulation engines bit-identical on everything they expose — per-lane
   net values, sequential and storage state, bus reads, lane-summed
   toggle/enable/weight counters, sign-off verdicts with their Mismatch
   payloads, differential-check outcomes (clean and with injected
   faults, reproducer parity included), equivalence-check verdicts and
   measured shmoo energy floats.

   [Make] is instantiated per engine pair in test_conformance.ml:
   (scalar, packed), (scalar, multiword:126), (scalar, multiword:252),
   (packed, multiword:126). The same checks that once lived ad hoc in
   test_sim_packed.ml and test_lane_parallel.ml run here for every
   pair, so a new engine earns its place by passing the identical
   battery the packed engine passed. *)

let lib = lazy (Library.n40 ())

let ctx =
  lazy
    (let l = Lazy.force lib in
     Ctx.of_parts l (Scl.create l))

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let gen_spec seed = List.hd (Specgen.generate ~seed ~count:1)
let macro_of spec = Macro_rtl.build (Lazy.force lib) (Spec.initial_config spec)

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let slice_of : Engine.t -> (module Slice.S) = function
  | `Scalar -> (module Slice.Scalar)
  | #Engine.batch as e -> Engine.slice e

(* Lane widths every wide engine must survive: both ends of each native
   word plus the full configured width, clamped to what the engine
   accepts. *)
let lane_edges max_lanes =
  List.filter
    (fun n -> n >= 1 && n <= max_lanes)
    [ 1; 2; 63; 64; 126; 127; 252 ]
  |> List.sort_uniq compare
  |> fun l -> List.sort_uniq compare (max_lanes :: l)

module type PAIR = sig
  val reference : Engine.t
  val candidate : Engine.t

  val fuzz_count : int
  (** QCheck iteration budget for the fuzzed-spec properties; the wide
      engines pay [n_lanes] scalar replicas per iteration, so the
      instantiation picks the budget per pair *)
end

module Make (P : PAIR) = struct
  let label =
    Printf.sprintf "%s-vs-%s" (Engine.name P.reference)
      (Engine.name P.candidate)

  let named s = Printf.sprintf "%s: %s" label s

  (* ---------------- per-lane state equivalence ---------------- *)

  (* Drive the candidate engine and [n_lanes] scalar replicas with
     identical per-lane stimulus — random values on every input bus,
     every cycle, plus a mid-run weight write — then require bit-exact
     agreement on everything the engines expose. The scalar replicas
     are the ground truth both pair members are pinned to. *)
  let run_equivalence ~seed ~cycles ~n_lanes =
    let module E = (val slice_of P.candidate) in
    let n_lanes = min n_lanes E.max_lanes in
    let spec = gen_spec seed in
    let m = Macro_rtl.build (Lazy.force lib) (Spec.initial_config spec) in
    let d = m.Macro_rtl.design in
    let rng = Rng.create (seed lxor 0x5EED) in
    let psim = E.create ~n_lanes d in
    check_int (named "lanes_of") n_lanes (E.lanes_of psim);
    let sims = Array.init n_lanes (fun _ -> Sim.create d) in
    (* per-lane random weights into every copy, same write order *)
    for copy = 0 to m.Macro_rtl.cfg.Macro_rtl.mcr - 1 do
      let weights =
        Array.init n_lanes (fun _ ->
            Testbench.random_weights rng m ~density:0.7)
      in
      Array.iteri
        (fun l sim -> Testbench.load_weights m sim ~copy weights.(l))
        sims;
      let module B = Testbench.Sliced (E) in
      B.load_weights_lanes m psim ~copy weights
    done;
    let inputs = d.Ir.src.Ir.inputs in
    let vs = Array.make n_lanes 0 in
    for cyc = 1 to cycles do
      List.iter
        (fun (name, bus) ->
          let bound = 1 lsl min (Array.length bus) 30 in
          for l = 0 to n_lanes - 1 do
            vs.(l) <- Rng.int rng bound
          done;
          E.set_bus_lanes psim name vs;
          Array.iteri (fun l sim -> Sim.set_bus sim name vs.(l)) sims)
        inputs;
      (* a weight write mid-stream exercises the flip/write counters *)
      if cyc = cycles / 2 then begin
        let bits = Array.init n_lanes (fun _ -> Rng.int rng 2 = 1) in
        E.set_weight_lanes psim ~row:0 ~col:0 ~copy:0 bits;
        Array.iteri
          (fun l sim -> Sim.set_weight sim ~row:0 ~col:0 ~copy:0 bits.(l))
          sims
      end;
      E.step psim;
      Array.iter Sim.step sims
    done;
    (* per-lane state must be bit-exact *)
    for l = 0 to n_lanes - 1 do
      if E.extract_lane psim l <> sims.(l).Sim.values then
        QCheck.Test.fail_reportf "%s seed %d: lane %d net values diverge"
          label seed l;
      if E.seq_state_lane psim l <> sims.(l).Sim.seq_state then
        QCheck.Test.fail_reportf "%s seed %d: lane %d seq state diverges"
          label seed l;
      if E.storage_state_lane psim l <> sims.(l).Sim.storage_state then
        QCheck.Test.fail_reportf "%s seed %d: lane %d storage diverges" label
          seed l;
      List.iter
        (fun (name, _) ->
          if
            E.read_bus_lane psim name l <> Sim.read_bus sims.(l) name
            || E.read_bus_signed_lane psim name l
               <> Sim.read_bus_signed sims.(l) name
          then
            QCheck.Test.fail_reportf "%s seed %d: lane %d bus %s diverges"
              label seed l name)
        d.Ir.src.Ir.outputs
    done;
    (* lane-summed counters must equal the sums of the scalar counters *)
    let sum f = Array.fold_left (fun acc sim -> acc + f sim) 0 sims in
    let toggles = E.toggles psim and en_cycles = E.en_cycles psim in
    for net = 0 to d.Ir.n_nets - 1 do
      let scalar = sum (fun sim -> sim.Sim.toggles.(net)) in
      if scalar <> toggles.(net) then
        QCheck.Test.fail_reportf
          "%s seed %d: net %d toggles: %s %d, scalar lanes sum %d" label seed
          net E.name toggles.(net) scalar
    done;
    for i = 0 to Array.length en_cycles - 1 do
      let scalar = sum (fun sim -> sim.Sim.en_cycles.(i)) in
      if scalar <> en_cycles.(i) then
        QCheck.Test.fail_reportf "%s seed %d: inst %d en_cycles diverge" label
          seed i
    done;
    check_int (named "weight_flips lane sum")
      (sum (fun sim -> sim.Sim.weight_flips))
      (E.weight_flips psim);
    check_int (named "weight_writes lane sum")
      (sum (fun sim -> sim.Sim.weight_writes))
      (E.weight_writes psim);
    check_int (named "cycles") sims.(0).Sim.cycles (E.cycles psim);
    true

  let test_lane_edges_directed () =
    let module E = (val slice_of P.candidate) in
    List.iter
      (fun n_lanes ->
        ignore (run_equivalence ~seed:11 ~cycles:6 ~n_lanes))
      (lane_edges E.max_lanes)

  let lane_equivalence_prop =
    QCheck.Test.make ~count:P.fuzz_count
      ~name:
        (named "every lane is bit-exact with a scalar replica (full width)")
      QCheck.small_nat
      (fun seed -> run_equivalence ~seed ~cycles:10 ~n_lanes:max_int)

  (* ---------------- sign-off verification parity ---------------- *)

  (* A verify run's observable outcome: None for a pass, the full
     Mismatch payload for a failure. Engine equivalence = equal
     outcomes — verdict, word index, expected/got values and the
     shrunk reproducer detail string. *)
  let verify_outcome engine (m : Macro_rtl.t) ~seed ~batches =
    match Testbench.verify ~engine m ~seed ~batches with
    | () -> None
    | exception Testbench.Mismatch { word; expected; got; detail } ->
        Some (word, expected, got, detail)

  let test_verify_canonical () =
    List.iter
      (fun (name, spec) ->
        let m = macro_of spec in
        let r = verify_outcome P.reference m ~seed:0xACC ~batches:2 in
        let c = verify_outcome P.candidate m ~seed:0xACC ~batches:2 in
        check_bool (named (name ^ ": reference passes")) true (r = None);
        check_bool (named (name ^ ": verdicts identical")) true (r = c))
      Snapshot.canonical_specs

  let verify_agree_prop =
    QCheck.Test.make ~count:P.fuzz_count
      ~name:(named "verify verdict engine-invariant on fuzzed specs")
      QCheck.small_nat
      (fun seed ->
        let m = macro_of (gen_spec seed) in
        verify_outcome P.reference m ~seed:(seed + 3) ~batches:2
        = verify_outcome P.candidate m ~seed:(seed + 3) ~batches:2)

  (* An early-sampled post pipeline (the Retime_early_sample fault
     class) must be caught by both engines with the exact same
     Mismatch — the scalar-minimal reproducer, never an engine-internal
     "packed-only" marker. *)
  let test_injected_fault_reproducer_parity () =
    let spec = snd (List.hd Snapshot.canonical_specs) in
    let cfg =
      { (Spec.initial_config spec) with Macro_rtl.ofu_extra_pipe = true }
    in
    let m = Macro_rtl.build (Lazy.force lib) cfg in
    check_bool (named "macro has a post pipeline stage") true
      (m.Macro_rtl.post_lat >= 1);
    let buggy = { m with Macro_rtl.post_lat = m.Macro_rtl.post_lat - 1 } in
    let r = verify_outcome P.reference buggy ~seed:7 ~batches:2 in
    let c = verify_outcome P.candidate buggy ~seed:7 ~batches:2 in
    check_bool (named "reference engine catches the fault") true (r <> None);
    check_bool (named "reproducers identical") true (r = c);
    match c with
    | Some (_, _, _, detail) ->
        check_bool (named "reproducer is scalar-minimal") true
          (not (contains detail "packed-only"))
    | None -> Alcotest.fail (named "candidate engine missed the fault")

  (* One sign-off batch through the candidate engine against per-lane
     scalar replicas: MAC results and the summed activity counters must
     both match. *)
  let signoff_counters_agree ~seed (m : Macro_rtl.t) =
    let module E = (val slice_of P.candidate) in
    let module B = Testbench.Sliced (E) in
    let d = m.Macro_rtl.design in
    let n = min 5 E.max_lanes in
    let rng = Rng.create (seed lxor 0xBEEF) in
    let weights =
      Array.init n (fun _ -> Testbench.random_weights rng m ~density:1.0)
    in
    let inputs =
      Array.init n (fun _ ->
          Array.init m.Macro_rtl.cfg.Macro_rtl.rows (fun _ ->
              Testbench.random_input rng m ~density:1.0))
    in
    let psim = E.create ~n_lanes:n d in
    if m.Macro_rtl.cfg.Macro_rtl.mcr > 1 then E.set_bus psim "copy_sel" 0;
    B.load_weights_lanes m psim ~copy:0 weights;
    let sliced_results = B.check_mac m psim ~weights ~inputs in
    let sims = Array.init n (fun _ -> Sim.create d) in
    let scalar_results =
      Array.mapi
        (fun l sim ->
          if m.Macro_rtl.cfg.Macro_rtl.mcr > 1 then
            Sim.set_bus sim "copy_sel" 0;
          Testbench.load_weights m sim ~copy:0 weights.(l);
          Testbench.check_mac m sim ~weights:weights.(l) ~inputs:inputs.(l))
        sims
    in
    if sliced_results <> scalar_results then
      QCheck.Test.fail_reportf "%s seed %d: MAC results diverge" label seed;
    let sum f = Array.fold_left (fun acc sim -> acc + f sim) 0 sims in
    let toggles = E.toggles psim and en_cycles = E.en_cycles psim in
    for net = 0 to d.Ir.n_nets - 1 do
      if toggles.(net) <> sum (fun sim -> sim.Sim.toggles.(net)) then
        QCheck.Test.fail_reportf "%s seed %d: net %d toggle counters diverge"
          label seed net
    done;
    for i = 0 to Array.length en_cycles - 1 do
      if en_cycles.(i) <> sum (fun sim -> sim.Sim.en_cycles.(i)) then
        QCheck.Test.fail_reportf "%s seed %d: inst %d en_cycles diverge" label
          seed i
    done;
    if E.cycles psim <> sims.(0).Sim.cycles then
      QCheck.Test.fail_reportf "%s seed %d: cycle counts diverge" label seed;
    true

  let test_signoff_counters_canonical () =
    List.iteri
      (fun i (_, spec) ->
        ignore (signoff_counters_agree ~seed:(100 + i) (macro_of spec)))
      Snapshot.canonical_specs

  (* ---------------- differential checking parity ---------------- *)

  let test_diffcheck_clean_agree () =
    List.iter
      (fun seed ->
        let spec = gen_spec seed in
        let r =
          Diffcheck.check_spec ~engine:P.reference ~seed:(seed + 100)
            (Lazy.force ctx) spec
        in
        let c =
          Diffcheck.check_spec ~engine:P.candidate ~seed:(seed + 100)
            (Lazy.force ctx) spec
        in
        check_bool
          (named (Printf.sprintf "seed %d: both engines pass" seed))
          true
          (r.Diffcheck.failure = None && c.Diffcheck.failure = None);
        check_int
          (named (Printf.sprintf "seed %d: check counts equal" seed))
          r.Diffcheck.checks c.Diffcheck.checks)
      [ 1; 2; 3 ]

  let test_diffcheck_bugs_agree () =
    (* both engines must catch each injected fault on the same specs *)
    List.iter
      (fun bug ->
        List.iter
          (fun seed ->
            let spec = gen_spec seed in
            let fails engine =
              (Diffcheck.check_spec ~engine ~bug ~seed:(seed + 7)
                 (Lazy.force ctx) spec)
                .Diffcheck.failure
              <> None
            in
            check_bool
              (named
                 (Printf.sprintf "%s seed %d: engines agree"
                    (Diffcheck.bug_name bug) seed))
              (fails P.reference) (fails P.candidate))
          [ 1; 2; 3; 4 ])
      [ Diffcheck.Retime_early_sample; Diffcheck.Skip_sign_cycle ]

  (* ---------------- equivalence checking parity ---------------- *)

  let harness kind =
    let ir = Ir.create () in
    let a = Ir.new_bus ir 3 in
    Ir.add_input ir "a" a;
    let out =
      Array.map
        (fun net ->
          let o = Ir.new_net ir in
          ignore (Ir.add ir kind ~ins:[| net |] ~outs:[| o |]);
          o)
        a
    in
    Ir.add_output ir "out" out;
    Ir.freeze ir

  (* vector batches that are not a multiple of the engine's slice width
     exercise the partial trailing chunk *)
  let test_equiv_vector_count_edges () =
    let d = harness Cell.Inv in
    List.iter
      (fun vectors ->
        check_bool
          (named (Printf.sprintf "%d vectors equivalent" vectors))
          true
          (Equiv.check ~engine:P.candidate ~vectors ~settle:2 ~hold:2 d d
          = Equiv.Equivalent vectors))
      [ 1; 62; 63; 64; 65; 126; 127; 252; 253 ]

  let test_equiv_mismatch_agreement () =
    let a = harness Cell.Inv and b = harness Cell.Buf in
    let r = Equiv.check ~engine:P.reference ~vectors:5 ~settle:2 ~hold:2 a b in
    let c = Equiv.check ~engine:P.candidate ~vectors:5 ~settle:2 ~hold:2 a b in
    (match r with
    | Equiv.Mismatch { vector; _ } -> check_int (named "first vector") 0 vector
    | Equiv.Equivalent _ -> Alcotest.fail (named "inverter equals buffer?"));
    check_bool (named "identical mismatch payload") true (r = c)

  let equiv_agree_prop =
    QCheck.Test.make ~count:(max 3 (P.fuzz_count / 2))
      ~name:(named "Equiv verdict engine-invariant on generated macro pairs")
      QCheck.small_nat
      (fun seed ->
        let spec = gen_spec seed in
        let base = Spec.initial_config spec in
        let sub =
          {
            base with
            Macro_rtl.tree = Adder_tree.Csa { fa_ratio = 1.0; reorder = true };
          }
        in
        let l = Lazy.force lib in
        let a = (Macro_rtl.build l base).Macro_rtl.design in
        let b = (Macro_rtl.build l sub).Macro_rtl.design in
        Equiv.check ~engine:P.reference ~seed ~vectors:8 ~settle:12 ~hold:3 a
          b
        = Equiv.check ~engine:P.candidate ~seed ~vectors:8 ~settle:12 ~hold:3
            a b)

  (* ---------------- measured shmoo energy parity ---------------- *)

  (* The stimulus is indexed by n_lanes, never by the engine, so the
     two engines must produce byte-identical energy floats at any
     common ensemble width. Scalar pairs pay one scalar run per lane,
     so they use a small ensemble; sliced pairs run the full common
     width. *)
  let fig9_lanes =
    let cap : Engine.t -> int = function
      | `Scalar -> max_int
      | #Engine.batch as e ->
          let module E = (val Engine.slice e) in
          E.max_lanes
    in
    let c = min (cap P.reference) (cap P.candidate) in
    if P.reference = `Scalar || P.candidate = `Scalar then min c 4 else c

  let test_fig9_bit_identical () =
    let m =
      Macro_rtl.build (Lazy.force lib)
        (Macro_rtl.default ~rows:8 ~cols:16 ~mcr:1 ~input_prec:Precision.int4
           ~weight_prec:Precision.int4)
    in
    let vdds = [| 0.7; 0.9; 1.1 |] and freqs_mhz = [| 300.; 600.; 900. |] in
    let a =
      Fig9.measure ~vdds ~freqs_mhz ~engine:P.reference ~n_lanes:fig9_lanes
        ~macs:2 ~jobs:1 (Lazy.force ctx) m ~crit_ps:950.0
    in
    let b =
      Fig9.measure ~vdds ~freqs_mhz ~engine:P.candidate ~n_lanes:fig9_lanes
        ~macs:2 ~jobs:1 (Lazy.force ctx) m ~crit_ps:950.0
    in
    check_bool (named "pass grids identical") true (a.Fig9.grid = b.Fig9.grid);
    Array.iteri
      (fun vi row ->
        Array.iteri
          (fun fi e ->
            let e' = b.Fig9.energy_fj.(vi).(fi) in
            (* byte-identical, not approximately equal *)
            if Int64.bits_of_float e <> Int64.bits_of_float e' then
              Alcotest.failf "%s: energy (%d,%d) diverges: %.17g vs %.17g"
                label vi fi e e')
          row)
      a.Fig9.energy_fj;
    (* energies are real measurements, not zeros *)
    check_bool (named "positive energies") true
      (Array.for_all (Array.for_all (fun e -> e > 0.0)) a.Fig9.energy_fj)

  (* ---------------- the suite ---------------- *)

  let suite =
    [
      ( label ^ ":lanes",
        [
          Alcotest.test_case "lane-width edges, directed" `Quick
            test_lane_edges_directed;
          QCheck_alcotest.to_alcotest lane_equivalence_prop;
        ] );
      ( label ^ ":signoff",
        [
          Alcotest.test_case "verdicts on canonical specs" `Quick
            test_verify_canonical;
          QCheck_alcotest.to_alcotest verify_agree_prop;
          Alcotest.test_case "injected fault: reproducer parity" `Quick
            test_injected_fault_reproducer_parity;
          Alcotest.test_case "toggle counters on canonical specs" `Quick
            test_signoff_counters_canonical;
        ] );
      ( label ^ ":diffcheck",
        [
          Alcotest.test_case "clean specs agree" `Quick
            test_diffcheck_clean_agree;
          Alcotest.test_case "injected bugs agree" `Slow
            test_diffcheck_bugs_agree;
        ] );
      ( label ^ ":equiv",
        [
          Alcotest.test_case "partial trailing chunk edges" `Quick
            test_equiv_vector_count_edges;
          Alcotest.test_case "mismatch payload agreement" `Quick
            test_equiv_mismatch_agreement;
          QCheck_alcotest.to_alcotest equiv_agree_prop;
        ] );
      ( label ^ ":power",
        [
          Alcotest.test_case "measured shmoo grid bit-identical" `Quick
            test_fig9_bit_identical;
        ] );
    ]
end
