(* Unit and property tests for the util library. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- Intmath ---------------- *)

let test_ceil_log2 () =
  check_int "log2 1" 0 (Intmath.ceil_log2 1);
  check_int "log2 2" 1 (Intmath.ceil_log2 2);
  check_int "log2 3" 2 (Intmath.ceil_log2 3);
  check_int "log2 64" 6 (Intmath.ceil_log2 64);
  check_int "log2 65" 7 (Intmath.ceil_log2 65)

let test_floor_log2 () =
  check_int "floor 1" 0 (Intmath.floor_log2 1);
  check_int "floor 3" 1 (Intmath.floor_log2 3);
  check_int "floor 64" 6 (Intmath.floor_log2 64);
  check_int "floor 127" 6 (Intmath.floor_log2 127)

let test_pow2 () =
  check_int "2^0" 1 (Intmath.pow2 0);
  check_int "2^10" 1024 (Intmath.pow2 10)

let test_is_pow2 () =
  check_bool "1" true (Intmath.is_pow2 1);
  check_bool "2" true (Intmath.is_pow2 2);
  check_bool "3" false (Intmath.is_pow2 3);
  check_bool "0" false (Intmath.is_pow2 0);
  check_bool "-4" false (Intmath.is_pow2 (-4))

let test_ceil_div () =
  check_int "7/2" 4 (Intmath.ceil_div 7 2);
  check_int "8/2" 4 (Intmath.ceil_div 8 2);
  check_int "0/5" 0 (Intmath.ceil_div 0 5)

let test_clamp () =
  check_int "below" 2 (Intmath.clamp ~lo:2 ~hi:8 0);
  check_int "above" 8 (Intmath.clamp ~lo:2 ~hi:8 99);
  check_int "inside" 5 (Intmath.clamp ~lo:2 ~hi:8 5)

let test_sign_extend () =
  check_int "positive" 3 (Intmath.sign_extend ~width:4 3);
  check_int "negative" (-1) (Intmath.sign_extend ~width:4 0xF);
  check_int "min" (-8) (Intmath.sign_extend ~width:4 8);
  check_int "wraps high bits" (-1) (Intmath.sign_extend ~width:4 0xFF)

let test_bits_for_unsigned () =
  check_int "0" 1 (Intmath.bits_for_unsigned 0);
  check_int "1" 1 (Intmath.bits_for_unsigned 1);
  check_int "255" 8 (Intmath.bits_for_unsigned 255);
  check_int "256" 9 (Intmath.bits_for_unsigned 256)

let prop_sign_extend_roundtrip =
  QCheck.Test.make ~name:"sign_extend inverts truncate_bits"
    QCheck.(pair (int_range 1 20) (int_range (-100000) 100000))
    (fun (w, v) ->
      QCheck.assume (v >= -Intmath.pow2 (w - 1) && v < Intmath.pow2 (w - 1));
      Intmath.sign_extend ~width:w (Intmath.truncate_bits ~width:w v) = v)

let prop_ceil_log2_bound =
  QCheck.Test.make ~name:"ceil_log2 bounds" QCheck.(int_range 1 1000000)
    (fun n ->
      let k = Intmath.ceil_log2 n in
      Intmath.pow2 k >= n && (k = 0 || Intmath.pow2 (k - 1) < n))

(* ---------------- Pareto ---------------- *)

let test_dominates () =
  check_bool "strict" true (Pareto.dominates [| 1.; 1. |] [| 2.; 2. |]);
  check_bool "partial" false (Pareto.dominates [| 1.; 3. |] [| 2.; 2. |]);
  check_bool "equal" false (Pareto.dominates [| 1.; 1. |] [| 1.; 1. |]);
  check_bool "one-better" true (Pareto.dominates [| 1.; 2. |] [| 1.; 3. |])

let test_frontier () =
  let pts = [ (1., 5.); (2., 2.); (5., 1.); (3., 3.); (6., 6.) ] in
  let objectives (a, b) = [| a; b |] in
  let f = Pareto.frontier ~objectives pts in
  check_int "frontier size" 3 (List.length f);
  check_bool "dominated point removed" false (List.mem (3., 3.) f);
  check_bool "corner kept" true (List.mem (1., 5.) f)

let prop_frontier_sound =
  (* no frontier member is dominated by any input point *)
  QCheck.Test.make ~name:"frontier members undominated"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30)
              (pair (float_range 0. 10.) (float_range 0. 10.)))
    (fun pts ->
      let objectives (a, b) = [| a; b |] in
      let f = Pareto.frontier ~objectives pts in
      List.for_all
        (fun m ->
          not
            (List.exists
               (fun p -> Pareto.dominates (objectives p) (objectives m))
               pts))
        f)

(* ---------------- Vec ---------------- *)

let test_vec_push_get () =
  let v = Vec.create 0 in
  for i = 0 to 999 do
    Alcotest.(check int) "push index" i (Vec.push v (i * 2))
  done;
  check_int "length" 1000 (Vec.length v);
  check_int "get" 84 (Vec.get v 42);
  Vec.set v 42 7;
  check_int "set" 7 (Vec.get v 42);
  let arr = Vec.to_array v in
  check_int "to_array length" 1000 (Array.length arr);
  check_int "to_array content" 7 arr.(42)

let test_vec_iter () =
  let v = Vec.create 0 in
  List.iter (fun x -> ignore (Vec.push v x)) [ 1; 2; 3 ];
  let sum = ref 0 in
  Vec.iter (fun x -> sum := !sum + x) v;
  check_int "iter sum" 6 !sum;
  let isum = ref 0 in
  Vec.iteri (fun i x -> isum := !isum + (i * x)) v;
  check_int "iteri weighted" 8 !isum

(* ---------------- Rng ---------------- *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 50 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_signed_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 200 do
    let v = Rng.signed rng ~width:4 in
    check_bool "in range" true (v >= -8 && v < 8)
  done

let test_rng_sparse () =
  let rng = Rng.create 11 in
  let zeros = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    if Rng.sparse_signed rng ~width:8 ~density:0.125 = 0 then incr zeros
  done;
  let frac = float_of_int !zeros /. float_of_int n in
  check_bool "sparsity near 87.5%" true (frac > 0.82 && frac < 0.92)

(* ---------------- Pool ---------------- *)

let test_pool_ordering () =
  let xs = List.init 100 (fun i -> i) in
  let expected = List.map (fun i -> i * i) xs in
  Alcotest.(check (list int))
    "jobs=4 preserves input order" expected
    (Pool.parallel_map ~jobs:4 (fun i -> i * i) xs);
  Alcotest.(check (list int))
    "jobs=1 sequential fallback" expected
    (Pool.parallel_map ~jobs:1 (fun i -> i * i) xs)

let test_pool_exception () =
  Alcotest.check_raises "worker exception propagates" (Failure "boom")
    (fun () ->
      ignore
        (Pool.parallel_map ~jobs:4
           (fun i -> if i = 13 then failwith "boom" else i)
           (List.init 50 (fun i -> i))))

let test_pool_nested () =
  (* a parallel_map inside a worker degrades to sequential, not deadlock *)
  let outer =
    Pool.parallel_map ~jobs:2
      (fun i ->
        Pool.parallel_map ~jobs:4 (fun j -> (i * 10) + j) [ 0; 1; 2 ])
      [ 1; 2 ]
  in
  Alcotest.(check (list (list int)))
    "nested result" [ [ 10; 11; 12 ]; [ 20; 21; 22 ] ] outer

let test_pool_empty_and_single () =
  Alcotest.(check (list int)) "empty" []
    (Pool.parallel_map ~jobs:4 (fun i -> i) []);
  Alcotest.(check (list int)) "singleton" [ 42 ]
    (Pool.parallel_map ~jobs:4 (fun i -> i) [ 42 ])

(* ---------------- Table ---------------- *)

let test_table_render () =
  let t = Table.make ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  let s = Table.render t in
  check_bool "has header" true (String.length s > 0);
  (* all lines equal length *)
  let lines = String.split_on_char '\n' s in
  let lens = List.map String.length lines in
  check_bool "aligned" true
    (List.for_all (fun l -> l = List.hd lens) lens)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_sign_extend_roundtrip; prop_ceil_log2_bound; prop_frontier_sound ]

let () =
  Alcotest.run "util"
    [
      ( "intmath",
        [
          Alcotest.test_case "ceil_log2" `Quick test_ceil_log2;
          Alcotest.test_case "floor_log2" `Quick test_floor_log2;
          Alcotest.test_case "pow2" `Quick test_pow2;
          Alcotest.test_case "is_pow2" `Quick test_is_pow2;
          Alcotest.test_case "ceil_div" `Quick test_ceil_div;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "sign_extend" `Quick test_sign_extend;
          Alcotest.test_case "bits_for_unsigned" `Quick test_bits_for_unsigned;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "dominates" `Quick test_dominates;
          Alcotest.test_case "frontier" `Quick test_frontier;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get/set" `Quick test_vec_push_get;
          Alcotest.test_case "iter" `Quick test_vec_iter;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "signed range" `Quick test_rng_signed_range;
          Alcotest.test_case "sparsity" `Quick test_rng_sparse;
        ] );
      ( "pool",
        [
          Alcotest.test_case "ordering" `Quick test_pool_ordering;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception;
          Alcotest.test_case "nested sequentializes" `Quick test_pool_nested;
          Alcotest.test_case "empty/singleton" `Quick
            test_pool_empty_and_single;
        ] );
      ("table", [ Alcotest.test_case "render" `Quick test_table_render ]);
      ("properties", qtests);
    ]
