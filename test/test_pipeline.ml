(* Staged-pipeline tests: stage-order invariance against the monolithic
   entry point, diagnostic (not exception) failure paths, and trace
   determinism across job counts. *)

let lib = Library.n40 ()
let scl = Scl.create lib
let ctx = Ctx.of_parts lib scl
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let small_spec =
  {
    Spec.rows = 16;
    cols = 16;
    mcr = 1;
    input_prec = Precision.int8;
    weight_prec = Precision.int8;
    mac_freq_hz = 300e6;
    weight_update_freq_hz = 300e6;
    vdd = 0.9;
    preference = Spec.Balanced;
  }

(* ---------------- stage-order invariance ---------------- *)

(* Hand-threaded pipeline with the two independent stages swapped:
   backend before signoff_verify. Verification only reads the netlist's
   function and the ECO loop only resizes cells, so the swap must not
   change any reported metric. *)
let swapped_compile (spec : Spec.t) =
  let p = Pipeline.default_policy in
  let budget_ps = Spec.nominal_budget_ps spec lib.Library.node in
  let ( let* ) = Stdlib.Result.bind in
  let rec go boost =
    let* sa = Stage.execute (Pipeline.search_stage lib scl ~boost) spec in
    let* ba =
      Stage.execute
        (Pipeline.backend_stage lib ~style:Floorplan.Sdp ~spec ~budget_ps
           ~max_eco_iters:p.Pipeline.max_eco_iters)
        sa.Pipeline.macro
    in
    let* sa = Stage.execute (Pipeline.verify_stage ~enabled:true ()) sa in
    let* power =
      Stage.execute (Pipeline.power_stage lib ~spec)
        (sa.Pipeline.macro, ba.Pipeline.signoff)
    in
    let* v = Stage.execute (Pipeline.metrics_stage lib ~policy:p) (sa, ba, power) in
    match v.Pipeline.retry_boost with
    | Some b -> go b
    | None -> Ok (v.Pipeline.metrics, v.Pipeline.timing_closed)
  in
  go 1.0

let test_stage_order_invariance () =
  List.iter
    (fun (name, spec) ->
      let a = Compiler.compile ctx spec in
      match swapped_compile spec with
      | Error d -> Alcotest.failf "%s: swapped pipeline failed: %s" name (Diag.to_string d)
      | Ok (m, closed) ->
          check_bool (name ^ " metrics identical") true
            (m = a.Compiler.metrics);
          check_bool (name ^ " verdict identical") true
            (closed = a.Compiler.timing_closed))
    Snapshot.canonical_specs

(* ---------------- diagnostics instead of exceptions ---------------- *)

let test_injected_failure_is_diag () =
  match Pipeline.run ~inject:Pipeline.stage_verify ctx small_spec with
  | Ok _ -> Alcotest.fail "injected failure produced a clean run"
  | Error d ->
      check_string "failing stage" Pipeline.stage_verify (Diag.stage d);
      check_bool "marked injected" true
        (List.mem_assoc "injected" d.Diag.payload);
      check_bool "is an error" true (Diag.is_error d)

let test_bad_spec_is_diag () =
  match Pipeline.run ctx { small_spec with Spec.mcr = 3 } with
  | Ok _ -> Alcotest.fail "mcr=3 compiled"
  | Error d ->
      check_string "rejected by search" Pipeline.stage_search (Diag.stage d);
      check_bool "spec context attached" true (d.Diag.context <> None)

let test_guard_converts_bench_error () =
  let r =
    Diag.guard ~stage:"bench" ~spec:small_spec (fun () ->
        raise
          (Testbench.Bench_error
             { op = "run_mac_auto"; detail = "done never asserted" }))
  in
  match r with
  | Ok () -> Alcotest.fail "guard swallowed nothing"
  | Error d ->
      check_string "stage" "bench" (Diag.stage d);
      check_bool "op in payload" true
        (List.assoc_opt "op" d.Diag.payload = Some "run_mac_auto");
      check_bool "detail in message" true
        (Diag.message d = "run_mac_auto: done never asserted")

let test_failing_verify_raises_wrapper_exn () =
  (* the Compiler wrapper still surfaces verify failures as the legacy
     Verification_failed, but the pipeline itself returns a Diag *)
  match Pipeline.run ~inject:Pipeline.stage_backend ctx small_spec with
  | Ok _ -> Alcotest.fail "injected backend failure produced a clean run"
  | Error d -> check_string "stage" Pipeline.stage_backend (Diag.stage d)

(* ---------------- trace shape and determinism ---------------- *)

let test_trace_has_all_stages () =
  let trace = Trace.create () in
  match Pipeline.run ~trace ctx small_spec with
  | Error d -> Alcotest.failf "compile failed: %s" (Diag.to_string d)
  | Ok r ->
      let rows = Trace.rows trace in
      check_int "one attempt, five rows"
        (5 * List.length r.Pipeline.attempts)
        (List.length rows);
      let stages = List.map (fun (row : Trace.row) -> row.Trace.stage) rows in
      List.iteri
        (fun i s ->
          check_string
            (Printf.sprintf "row %d stage" i)
            (List.nth Pipeline.stage_names (i mod 5))
            s)
        stages;
      List.iter
        (fun (row : Trace.row) ->
          check_bool (row.Trace.stage ^ " ok") true row.Trace.ok;
          match row.Trace.eco_iters with
          | Some n -> check_bool "eco within cap" true (n <= 3)
          | None -> ())
        rows

let trace_fingerprints ~jobs =
  Pool.parallel_map ~jobs
    (fun (_, spec) ->
      let trace = Trace.create () in
      ignore (Pipeline.run ~trace ctx spec);
      Trace.fingerprint trace)
    Snapshot.canonical_specs

let test_trace_determinism_across_jobs () =
  let serial = trace_fingerprints ~jobs:1 in
  let parallel = trace_fingerprints ~jobs:4 in
  List.iteri
    (fun i (s, p) ->
      check_string (Printf.sprintf "fingerprint %d" i) s p)
    (List.combine serial parallel)

let () =
  Alcotest.run "pipeline"
    [
      ( "order",
        [
          Alcotest.test_case "stage-order invariance" `Slow
            test_stage_order_invariance;
        ] );
      ( "diag",
        [
          Alcotest.test_case "injected failure is a diagnostic" `Quick
            test_injected_failure_is_diag;
          Alcotest.test_case "bad spec is a diagnostic" `Quick
            test_bad_spec_is_diag;
          Alcotest.test_case "guard converts Bench_error" `Quick
            test_guard_converts_bench_error;
          Alcotest.test_case "backend injection is a diagnostic" `Quick
            test_failing_verify_raises_wrapper_exn;
        ] );
      ( "trace",
        [
          Alcotest.test_case "all five stage rows, in order" `Quick
            test_trace_has_all_stages;
          Alcotest.test_case "fingerprints stable for any job count" `Slow
            test_trace_determinism_across_jobs;
        ] );
    ]
