(* Tests for the unified metrics registry: instrument semantics
   (counters, gauges, histogram quantiles, kind clashes, reset, the
   enabled switch), concurrent recording through the domain pool, the
   pool helper-domain cap regression (3 items at jobs=16 must spawn 2
   helpers, not 15), and the determinism contract — jobs=1 vs jobs=4
   and scalar vs packed vs multiword:126 runs of the canonical snapshot
   specs must produce byte-identical deterministic-subset fingerprints,
   mirroring the Trace.fingerprint discipline. *)

let lib = Library.n40 ()
let scl = Scl.create lib
let base_ctx = Ctx.of_parts lib scl
let canonical_specs = List.map snd Snapshot.canonical_specs
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let check_float name expected actual =
  Alcotest.(check (float 1e-9)) name expected actual

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ---------------- instrument semantics (private registry) ------------- *)

let test_counter_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "t.counter" in
  check_int "fresh counter is zero" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.add c 41;
  check_int "incr + add accumulate" 42 (Metrics.counter_value c);
  let c' = Metrics.counter ~registry:r "t.counter" in
  Metrics.incr c';
  check_int "re-registration returns the same instrument" 43
    (Metrics.counter_value c)

let test_gauge_basics () =
  let r = Metrics.create () in
  let g = Metrics.gauge ~registry:r "t.gauge" in
  check_float "fresh gauge is zero" 0.0 (Metrics.gauge_value g);
  Metrics.set_gauge g 2.5;
  Metrics.set_gauge g 7.25;
  check_float "last write wins" 7.25 (Metrics.gauge_value g)

let test_kind_clash () =
  let r = Metrics.create () in
  ignore (Metrics.counter ~registry:r "t.clash");
  (match Metrics.gauge ~registry:r "t.clash" with
  | _ -> Alcotest.fail "kind clash accepted"
  | exception Invalid_argument _ -> ());
  match Metrics.histogram ~registry:r "t.clash" with
  | _ -> Alcotest.fail "kind clash accepted"
  | exception Invalid_argument _ -> ()

let test_histogram_quantiles () =
  let r = Metrics.create () in
  let h =
    Metrics.histogram ~registry:r ~buckets:[| 1.0; 2.0; 4.0; 8.0 |] "t.hist"
  in
  check_float "empty histogram p50" 0.0 (Metrics.quantile h 0.5);
  for v = 1 to 8 do
    Metrics.observe h (float_of_int v)
  done;
  check_int "count" 8 (Metrics.histogram_count h);
  check_float "sum" 36.0 (Metrics.histogram_sum h);
  (* counts per bucket: (<=1)=1, (<=2)=1, (<=4)=2, (<=8)=4; linear
     interpolation puts p50 at the top of the (2,4] bucket and p90 at
     rank 7.2 inside (4,8] *)
  check_float "p50" 4.0 (Metrics.quantile h 0.5);
  check_float "p90" 7.2 (Metrics.quantile h 0.9);
  Metrics.observe h 1e9;
  (* the overflow bucket has no upper bound: quantiles report the last
     finite bound as a floor rather than inventing a value *)
  check_float "overflow quantile floors at the last bound" 8.0
    (Metrics.quantile h 0.999);
  match Metrics.histogram ~registry:r ~buckets:[| 2.0; 1.0 |] "t.bad" with
  | _ -> Alcotest.fail "non-increasing bounds accepted"
  | exception Invalid_argument _ -> ()

let test_reset_and_enabled () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "t.c" in
  let h = Metrics.histogram ~registry:r "t.h" in
  Metrics.incr c;
  Metrics.observe h 1.0;
  Metrics.reset ~registry:r ();
  check_int "reset zeroes counters" 0 (Metrics.counter_value c);
  check_int "reset zeroes histograms" 0 (Metrics.histogram_count h);
  Metrics.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled true)
    (fun () ->
      Metrics.incr c;
      Metrics.observe h 1.0);
  check_int "disabled registry ignores incr" 0 (Metrics.counter_value c);
  check_int "disabled registry ignores observe" 0 (Metrics.histogram_count h)

let test_fingerprint_subset () =
  let r = Metrics.create () in
  let det = Metrics.counter ~registry:r "t.det" in
  let nondet = Metrics.counter ~registry:r ~det:false "t.nondet" in
  let g = Metrics.gauge ~registry:r "t.g" in
  let h = Metrics.histogram ~registry:r "t.h" in
  Metrics.add det 3;
  Metrics.add nondet 99;
  Metrics.set_gauge g 1.5;
  Metrics.observe h 123.456;
  Metrics.observe h 7.89;
  let fp = Metrics.fingerprint ~registry:r () in
  check_bool "det counter value present" true
    (contains ~sub:"counter t.det = 3" fp);
  check_bool "nondet counter excluded" false (contains ~sub:"t.nondet" fp);
  check_bool "det gauge present" true (contains ~sub:"gauge t.g" fp);
  check_bool "det histogram reduced to its count" true
    (contains ~sub:"hist t.h count = 2" fp);
  check_bool "histogram sum never leaks wall clock" false
    (contains ~sub:"123" fp)

let test_json_export () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter ~registry:r "t.c") 7;
  Metrics.set_gauge (Metrics.gauge ~registry:r "t.g") 0.5;
  Metrics.observe (Metrics.histogram ~registry:r "t.h") 3.0;
  let j = Metrics.to_json ~registry:r () in
  check_bool "schema tagged" true (contains ~sub:"syndcim-metrics/1" j);
  check_bool "counter exported" true
    (contains ~sub:"{\"name\": \"t.c\", \"value\": 7, \"det\": true}" j);
  check_bool "histogram count exported" true (contains ~sub:"\"count\": 1" j);
  check_bool "overflow bucket tagged" true (contains ~sub:"\"+inf\"" j);
  let rendered = Metrics.render ~registry:r () in
  check_bool "render shows the counter" true (contains ~sub:"t.c" rendered);
  check_bool "render shows quantile columns" true
    (contains ~sub:"p99" rendered)

let test_concurrent_recording () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "t.par" in
  let h = Metrics.histogram ~registry:r ~buckets:[| 500.0; 1000.0 |] "t.parh" in
  Pool.parallel_iter ~jobs:4
    (fun i ->
      Metrics.incr c;
      Metrics.observe h (float_of_int i))
    (List.init 1000 Fun.id);
  check_int "1000 concurrent incrs" 1000 (Metrics.counter_value c);
  check_int "1000 concurrent observes" 1000 (Metrics.histogram_count h);
  check_float "no observation lost from the sum" 499500.0
    (Metrics.histogram_sum h)

(* ---------------- pool helper-domain cap (regression) ----------------- *)

let spawned () =
  Metrics.counter_value (Metrics.counter ~det:false "pool.domains_spawned")

let test_pool_spawn_cap () =
  (* 3 items at jobs=16: the caller is one worker, so exactly 2 helper
     domains — the oversubscription bug spawned 15 *)
  Metrics.reset ();
  ignore (Pool.run_parallel ~jobs:16 (fun x -> x + 1) [| 1; 2; 3 |]);
  check_int "3 items at jobs=16 spawn 2 helpers" 2 (spawned ());
  (* a single item needs no helpers at all *)
  Metrics.reset ();
  ignore (Pool.run_parallel ~jobs:16 (fun x -> x + 1) [| 1 |]);
  check_int "1 item spawns no helpers" 0 (spawned ());
  (* the empty sweep neither spawns nor crashes *)
  Metrics.reset ();
  ignore (Pool.run_parallel ~jobs:16 (fun (x : int) -> x) [||]);
  check_int "0 items spawn no helpers" 0 (spawned ());
  (* more items than jobs: the cap is jobs - 1, unchanged *)
  Metrics.reset ();
  ignore (Pool.run_parallel ~jobs:4 (fun x -> x * 2) (Array.init 64 Fun.id));
  check_int "64 items at jobs=4 spawn 3 helpers" 3 (spawned ());
  (* parallel_map still clamps and runs sequentially under jobs=1 *)
  Metrics.reset ();
  let ys = Pool.parallel_map ~jobs:16 (fun x -> x + 1) [ 10; 20; 30 ] in
  check_bool "parallel_map result order" true (ys = [ 11; 21; 31 ]);
  check_int "parallel_map inherits the cap" 2 (spawned ())

(* ---------------- determinism across jobs and engines ----------------- *)

(* Run the canonical snapshot specs through an uncached batch and return
   the deterministic-subset fingerprint. Uncached, so the disk-cache
   counters read zero in every configuration instead of varying with
   cold/warm state; the registry is process-wide, so reset scopes it to
   this run. *)
let fingerprint_of ~jobs ~engine () =
  Metrics.reset ();
  let ctx = Ctx.with_engines engine (Ctx.with_jobs jobs base_ctx) in
  let r = Batch.run ctx canonical_specs in
  check_int "no failures" 0 r.Batch.failed;
  Metrics.fingerprint ()

let test_determinism_jobs_and_engines () =
  let reference = fingerprint_of ~jobs:1 ~engine:`Packed () in
  (* the deterministic subset must actually carry the workload: stage
     counts, signoff MACs, batch outcomes, pipeline attempts *)
  check_bool "stage counts present" true
    (contains ~sub:"counter stage.search.runs = " reference);
  check_bool "signoff counts present" true
    (contains ~sub:"signoff.macs_checked" reference);
  check_bool "batch outcomes present" true
    (contains ~sub:"counter batch.items = 4" reference);
  check_bool "pipeline attempts present" true
    (contains ~sub:"pipeline.attempts" reference);
  check_bool "pool counters excluded" false (contains ~sub:"pool." reference);
  check_str "jobs=4 fingerprint matches jobs=1" reference
    (fingerprint_of ~jobs:4 ~engine:`Packed ());
  check_str "scalar engine fingerprint matches packed" reference
    (fingerprint_of ~jobs:4 ~engine:`Scalar ());
  check_str "multiword:126 fingerprint matches packed" reference
    (fingerprint_of ~jobs:4 ~engine:(`Multiword 126) ())

(* ---------------- service surface ------------------------------------ *)

let test_service_metrics () =
  Metrics.reset ();
  let svc = Service.create base_ctx in
  let req = Service.compile svc (List.hd canonical_specs) in
  (match req.Service.outcome with
  | Ok _ -> ()
  | Error d -> Alcotest.fail (Diag.to_string d));
  check_int "request counted" 1
    (Metrics.counter_value (Metrics.counter "service.requests"));
  check_int "request latency observed" 1
    (Metrics.histogram_count (Metrics.histogram "service.request_ms"));
  let j = Service.metrics_json svc in
  check_bool "service family exported" true (contains ~sub:"service." j);
  check_bool "describe reports request latency" true
    (contains ~sub:"req p50" (Service.describe svc));
  check_bool "metrics table renders" true
    (contains ~sub:"service.requests" (Service.metrics svc))

let () =
  Alcotest.run "metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "gauge basics" `Quick test_gauge_basics;
          Alcotest.test_case "kind clash" `Quick test_kind_clash;
          Alcotest.test_case "histogram quantiles" `Quick
            test_histogram_quantiles;
          Alcotest.test_case "reset + enabled switch" `Quick
            test_reset_and_enabled;
          Alcotest.test_case "fingerprint subset" `Quick
            test_fingerprint_subset;
          Alcotest.test_case "json + render" `Quick test_json_export;
          Alcotest.test_case "concurrent recording" `Quick
            test_concurrent_recording;
        ] );
      ( "pool",
        [
          Alcotest.test_case "helper-domain cap" `Quick test_pool_spawn_cap;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs- and engine-invariant fingerprints" `Slow
            test_determinism_jobs_and_engines;
        ] );
      ( "service",
        [ Alcotest.test_case "service metrics" `Quick test_service_metrics ] );
    ]
