(* Tests for the batch compilation driver and the persistent
   content-addressed compile cache: cache-key soundness (canonicalization
   and perturbation sensitivity, fuzzed over Specgen seeds), entry
   round-trip and corruption tolerance, concurrent writers, manifest
   parsing/validation diagnostics, and batch determinism across cache
   states and job counts. *)

let lib = Library.n40 ()
let scl = Scl.create lib
let ctx = Ctx.of_parts lib scl
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let lib_fp = Disk_cache.library_fingerprint lib
let key s = Disk_cache.key ~lib_fp ~algo:Searcher.algorithm_version s
let gen_spec seed = List.hd (Specgen.generate ~seed ~count:1)

(* scratch stores live under the test sandbox cwd; the name matches the
   repo's runtest-artifact gitignore pattern in case one leaks *)
let scratch_n = ref 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let scratch () =
  incr scratch_n;
  let d = Printf.sprintf "runtest-test_batch-cache-%d" !scratch_n in
  rm_rf d;
  d

let open_cache dir =
  match Disk_cache.open_root dir with
  | Ok c -> c
  | Error e -> Alcotest.fail e

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let small_spec =
  {
    Spec.rows = 8;
    cols = 8;
    mcr = 1;
    input_prec = Precision.int8;
    weight_prec = Precision.int8;
    mac_freq_hz = 400e6;
    weight_update_freq_hz = 400e6;
    vdd = 0.9;
    preference = Spec.Balanced;
  }

(* ---------------- cache-key soundness (property-based) ---------------- *)

(* Re-spell the canonical manifest line with rotated field order and
   messy separators; parsing must recover the identical spec and key. *)
let messy_line ~rot (s : Spec.t) =
  let arr = Array.of_list (String.split_on_char ' ' (Batch.render_spec_line s)) in
  let n = Array.length arr in
  let rot = ((rot mod n) + n) mod n in
  let sep i = match i mod 3 with 0 -> " " | 1 -> "  \t" | _ -> "\t " in
  String.concat ""
    (List.init n (fun i -> (if i = 0 then " " else sep i) ^ arr.((i + rot) mod n)))
  ^ "  "

let prop_key_field_order =
  QCheck.Test.make ~count:100
    ~name:"field order and whitespace never change the key"
    QCheck.(pair small_nat small_nat)
    (fun (seed, rot) ->
      let s = gen_spec seed in
      match Batch.parse_spec_line (messy_line ~rot s) with
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e
      | Ok s' ->
          s' = s
          && Disk_cache.canonical_spec s' = Disk_cache.canonical_spec s
          && key s' = key s)

(* Every single-field perturbation must change the canonical form and
   therefore the key: a false hit would silently serve the wrong macro. *)
let perturbations (s : Spec.t) : (string * Spec.t) list =
  let other_int p = if p = Precision.int8 then Precision.int4 else Precision.int8 in
  [
    ("rows", { s with Spec.rows = s.Spec.rows + 1 });
    ("cols", { s with Spec.cols = s.Spec.cols + 1 });
    ("mcr", { s with Spec.mcr = s.Spec.mcr * 2 });
    ("input_prec", { s with Spec.input_prec = other_int s.Spec.input_prec });
    ("weight_prec", { s with Spec.weight_prec = other_int s.Spec.weight_prec });
    ( "mac_freq",
      { s with Spec.mac_freq_hz = s.Spec.mac_freq_hz *. (1.0 +. 1e-12) } );
    ( "wupd_freq",
      { s with Spec.weight_update_freq_hz = s.Spec.weight_update_freq_hz +. 1.0 } );
    ("vdd", { s with Spec.vdd = s.Spec.vdd +. 1e-9 });
    ( "preference",
      {
        s with
        Spec.preference =
          (match s.Spec.preference with
          | Spec.Balanced -> Spec.Prefer_power
          | _ -> Spec.Balanced);
      } );
  ]

let prop_key_perturbation =
  QCheck.Test.make ~count:100
    ~name:"any spec-field perturbation changes the key" QCheck.small_nat
    (fun seed ->
      let s = gen_spec seed in
      let k = key s in
      List.for_all
        (fun (field, s') ->
          if key s' = k then
            QCheck.Test.fail_reportf "perturbing %s kept the key" field
          else true)
        (perturbations s))

let test_key_library_sensitivity () =
  (* recharacterizing one parameter must invalidate: the key changes
     through the library fingerprint *)
  let lib' =
    {
      lib with
      Library.get =
        (fun k d ->
          let p = lib.Library.get k d in
          { p with Library.area_um2 = p.Library.area_um2 *. (1.0 +. 1e-9) });
    }
  in
  let fp' = Disk_cache.library_fingerprint lib' in
  check_bool "library fingerprint moved" false (fp' = lib_fp);
  check_bool "key moved with the library" false
    (Disk_cache.key ~lib_fp:fp' ~algo:Searcher.algorithm_version small_spec
    = key small_spec)

let test_key_algorithm_sensitivity () =
  check_bool "algorithm tag versions the key" false
    (Disk_cache.key ~lib_fp ~algo:"mso-hhs-2" small_spec = key small_spec);
  (* the pipeline folds style and policy into the tag *)
  let t1 = Pipeline.cache_algo_tag ~style:Floorplan.Sdp Pipeline.default_policy in
  let t2 =
    Pipeline.cache_algo_tag ~style:Floorplan.Sdp
      { Pipeline.default_policy with Pipeline.max_eco_iters = 4 }
  in
  let t3 = Pipeline.cache_algo_tag ~style:Floorplan.Scattered Pipeline.default_policy in
  check_bool "policy in tag" false (t1 = t2);
  check_bool "style in tag" false (t1 = t3)

(* ---------------- entry round-trip and corruption ---------------- *)

let sample_value =
  {
    Disk_cache.spec_desc = Spec.describe small_spec;
    crit_ps = 1090.65432109876;
    fmax_ghz = 0.7244;
    power_w = 1.8e-4;
    area_mm2 = 3.6e-3;
    tops = 8.192e-4;
    tops_per_w = 4.55;
    tops_per_mm2 = 0.2275;
    ops_norm = 64.0;
    timing_closed = true;
    insts = 753;
    nets = 811;
    attempts = 2;
    boost = 1.12;
  }

let prop_value_roundtrip =
  QCheck.Test.make ~count:50 ~name:"stored entries round-trip bit-exactly"
    QCheck.(triple small_nat (float_range (-1e9) 1e9) bool)
    (fun (n, f, b) ->
      let dir = scratch () in
      let c = open_cache dir in
      let v =
        {
          sample_value with
          Disk_cache.crit_ps = f;
          power_w = f *. ldexp 1.0 (-40);
          tops = ldexp (float_of_int (n + 1)) (-n - 1000);
          (* subnormal territory *)
          insts = n;
          timing_closed = b;
        }
      in
      let k = key small_spec in
      Disk_cache.store c k v;
      let ok =
        match Disk_cache.lookup c k with
        | Disk_cache.Hit v' -> v' = v
        | _ -> false
      in
      rm_rf dir;
      ok)

let test_corruption_tolerated () =
  let dir = scratch () in
  let c = open_cache dir in
  let k = key small_spec in
  Disk_cache.store c k sample_value;
  let path = Disk_cache.path_of_key c k in
  let intact = read_file path in
  (* truncation: a partially written or torn entry is a miss, not a crash *)
  write_file path (String.sub intact 0 (String.length intact / 2));
  (match Disk_cache.lookup c k with
  | Disk_cache.Corrupt _ -> ()
  | Disk_cache.Hit _ -> Alcotest.fail "truncated entry served as a hit"
  | Disk_cache.Miss -> Alcotest.fail "truncated entry reported Miss, not Corrupt");
  (* bit flip in the middle of the body: caught by the checksum *)
  let flipped = Bytes.of_string intact in
  let mid = Bytes.length flipped / 2 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0x10));
  write_file path (Bytes.to_string flipped);
  (match Disk_cache.lookup c k with
  | Disk_cache.Corrupt reason ->
      check_bool "reason mentions the checksum" true
        (String.length reason > 0)
  | _ -> Alcotest.fail "bit-flipped entry not reported Corrupt");
  (* garbage that is not even line-structured *)
  write_file path "\x00\x01\x02nonsense";
  (match Disk_cache.lookup c k with
  | Disk_cache.Corrupt _ -> ()
  | _ -> Alcotest.fail "garbage entry not reported Corrupt");
  (* absent entry is a plain miss *)
  Sys.remove path;
  (match Disk_cache.lookup c k with
  | Disk_cache.Miss -> ()
  | _ -> Alcotest.fail "missing entry not reported Miss");
  let st = Disk_cache.stats c in
  check_int "hits" 0 st.Disk_cache.hits;
  check_int "misses" 1 st.Disk_cache.misses;
  check_int "corrupt" 3 st.Disk_cache.corrupt;
  rm_rf dir

let test_corrupt_entry_recompiled () =
  (* end-to-end: a corrupted entry must recompute (same numbers), emit a
     batch diagnostic, and leave a repaired entry behind *)
  let dir = scratch () in
  let c = open_cache dir in
  let s1 =
    match Pipeline.run_cached ~cache:c ctx small_spec with
    | Ok s -> s
    | Error d -> Alcotest.fail (Diag.to_string d)
  in
  check_bool "first run is a miss" true (s1.Pipeline.sum_cache = Pipeline.Cache_miss);
  let path =
    Disk_cache.path_of_key c
      (Disk_cache.key ~lib_fp
         ~algo:(Pipeline.cache_algo_tag ~style:Floorplan.Sdp Pipeline.default_policy)
         small_spec)
  in
  write_file path (String.sub (read_file path) 0 40);
  let r = Batch.run ~jobs:1 ~cache:c ctx [ small_spec ] in
  check_int "batch completed" 0 r.Batch.failed;
  check_int "corrupt entry recompiled" 1 r.Batch.corrupt;
  (match r.Batch.warnings with
  | [ d ] ->
      check_bool "warning mentions corruption" true
        (let s = Diag.to_string d in
         String.length s > 0 && not (String.contains s '\n'))
  | ws -> Alcotest.fail (Printf.sprintf "expected 1 warning, got %d" (List.length ws)));
  (match r.Batch.items with
  | [ { Batch.outcome = Ok s2; _ } ] ->
      check_bool "recompute reproduces the metrics" true
        (s2.Pipeline.sum_metrics = s1.Pipeline.sum_metrics)
  | _ -> Alcotest.fail "unexpected batch items");
  (* the store is repaired: next run hits *)
  (match Pipeline.run_cached ~cache:c ctx small_spec with
  | Ok s3 ->
      check_bool "repaired entry hits" true (s3.Pipeline.sum_cache = Pipeline.Cache_hit);
      check_bool "hit reproduces the metrics" true
        (s3.Pipeline.sum_metrics = s1.Pipeline.sum_metrics)
  | Error d -> Alcotest.fail (Diag.to_string d));
  rm_rf dir

let test_concurrent_writers () =
  (* domains racing on the same key must leave one complete entry: the
     atomic rename means a reader can never observe a torn write *)
  let dir = scratch () in
  let c = open_cache dir in
  let k = key small_spec in
  let values =
    List.init 16 (fun i ->
        { sample_value with Disk_cache.spec_desc = Printf.sprintf "writer-%d" (i mod 4) })
  in
  Pool.parallel_iter ~jobs:4 (fun v -> Disk_cache.store c k v) values;
  (match Disk_cache.lookup c k with
  | Disk_cache.Hit v ->
      check_bool "entry is one of the written values" true
        (List.exists (fun w -> w = v) values)
  | Disk_cache.Miss -> Alcotest.fail "no entry after 16 stores"
  | Disk_cache.Corrupt r -> Alcotest.fail ("store corrupted by races: " ^ r));
  check_int "exactly one entry" 1 (Disk_cache.entry_count c);
  rm_rf dir

let test_stale_temp_sweep () =
  (* a writer killed between open_out and rename leaves a .tmp-* orphan;
     reopening the store must reap old orphans, keep a fresh (possibly
     in-flight) temp, and never touch complete entries *)
  let dir = scratch () in
  let c = open_cache dir in
  let k = key small_spec in
  Disk_cache.store c k sample_value;
  let stale = Filename.concat dir ".tmp-deadbeef-999-0" in
  write_file stale "torn partial write";
  (* age it well past the sweep threshold *)
  Unix.utimes stale 1.0 1.0;
  let fresh = Filename.concat dir ".tmp-cafef00d-1000-0" in
  write_file fresh "in-flight write";
  let c2 = open_cache dir in
  check_bool "stale temp swept" false (Sys.file_exists stale);
  check_bool "in-flight temp kept" true (Sys.file_exists fresh);
  check_int "sweep counted in stats" 1 (Disk_cache.stats c2).Disk_cache.swept;
  (match Disk_cache.lookup c2 k with
  | Disk_cache.Hit _ -> ()
  | Disk_cache.Miss | Disk_cache.Corrupt _ ->
      Alcotest.fail "complete entry lost to the sweep");
  rm_rf dir

(* ---------------- manifest parsing and validation ---------------- *)

let one_line d =
  let s = Diag.to_string d in
  check_bool "diagnostic is one line" false (String.contains s '\n');
  s

let test_manifest_errors () =
  (match Batch.parse_manifest "" with
  | Error d ->
      check_bool "empty manifest named" true
        (let s = one_line d in
         String.length s >= 5 && Diag.is_error d)
  | Ok _ -> Alcotest.fail "empty manifest accepted");
  (match Batch.parse_manifest "# only comments\n\n   \n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "comment-only manifest accepted");
  (match Batch.parse_manifest "rows=8 cols=8\nrows=oops\n" with
  | Error d ->
      let s = one_line d in
      let contains sub =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      check_bool "line number reported" true (contains "line 2")
  | Ok _ -> Alcotest.fail "bad integer accepted")

let test_spec_line_errors () =
  let bad l =
    match Batch.parse_spec_line l with
    | Error e ->
        check_bool "reason non-empty" true (String.length e > 0)
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" l)
  in
  bad "rows=8 bogus=1";
  bad "rows=8 rows=16";
  bad "iprec=int3";
  bad "prefer=speed";
  bad "rows";
  bad "freq_mhz=fast"

let test_manifest_crlf () =
  (* a CRLF-edited manifest (comments, blanks, trailing \r on every
     line) must parse to exactly the specs of its LF twin, keys included *)
  let unix_text =
    "# CRLF round-trip\nrows=16 cols=16 freq_mhz=300\n\n"
    ^ "rows=8 cols=8 mcr=1 freq_mhz=400 prefer=power\n"
  in
  let crlf_text =
    String.concat "\r\n" (String.split_on_char '\n' unix_text)
  in
  match (Batch.parse_manifest unix_text, Batch.parse_manifest crlf_text) with
  | Ok a, Ok b ->
      check_int "same spec count" (List.length a) (List.length b);
      check_bool "CRLF parses to identical specs" true (a = b);
      List.iter2 (fun x y -> check_str "same cache key" (key x) (key y)) a b;
      (* render -> CRLF -> parse round-trips a canonical line exactly *)
      (match Batch.parse_manifest (Batch.render_spec_line small_spec ^ "\r\n") with
      | Ok [ s ] -> check_bool "rendered line survives CRLF" true (s = small_spec)
      | Ok _ -> Alcotest.fail "rendered line parsed to the wrong spec count"
      | Error d -> Alcotest.fail (Diag.to_string d))
  | Error d, _ | _, Error d -> Alcotest.fail (Diag.to_string d)

let test_jobs_validation () =
  (match Batch.validate_jobs 0 with
  | Error d -> ignore (one_line d)
  | Ok _ -> Alcotest.fail "jobs=0 accepted");
  (match Batch.validate_jobs (-4) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative jobs accepted");
  (match Batch.validate_jobs 1 with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "jobs=1 rejected")

let test_cache_dir_validation () =
  (match Disk_cache.open_root "runtest-test_batch-no-such-parent/sub/cache" with
  | Error msg -> check_bool "parent named" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "missing parent accepted");
  (* a file where the store should be is an error, not a clobber *)
  let f = "runtest-test_batch-cache-file" in
  write_file f "not a directory";
  (match Disk_cache.open_root f with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "plain file accepted as cache dir");
  Sys.remove f

(* ---------------- determinism across cache states and jobs ------------ *)

let canonical_specs = List.map snd Snapshot.canonical_specs

let test_batch_determinism () =
  let dir = scratch () in
  let c = open_cache dir in
  let n = List.length canonical_specs in
  (* cold: every spec compiles and is stored *)
  let r_cold = Batch.run ~jobs:2 ~cache:c ctx canonical_specs in
  check_int "cold: no failures" 0 r_cold.Batch.failed;
  check_int "cold: all misses" n r_cold.Batch.misses;
  let ppa_cold = Batch.render_ppa r_cold in
  (* warm, jobs=1 and jobs=4: all hits, identical PPA, identical traces *)
  let t1 = Trace.create () and t4 = Trace.create () in
  let r_w1 = Batch.run ~jobs:1 ~cache:c ~trace:t1 ctx canonical_specs in
  let r_w4 = Batch.run ~jobs:4 ~cache:c ~trace:t4 ctx canonical_specs in
  check_int "warm j1: all hits" n r_w1.Batch.hits;
  check_int "warm j4: all hits" n r_w4.Batch.hits;
  check_str "warm j1 PPA == cold PPA" ppa_cold (Batch.render_ppa r_w1);
  check_str "warm j4 PPA == cold PPA" ppa_cold (Batch.render_ppa r_w4);
  check_str "trace fingerprint jobs-invariant" (Trace.fingerprint t1)
    (Trace.fingerprint t4);
  check_int "warm trace: one cache row per spec" n (Trace.length t4);
  (* no cache at all: same numbers *)
  let r_nc = Batch.run ~jobs:4 ctx canonical_specs in
  check_int "no-cache: all uncached" n r_nc.Batch.uncached;
  check_str "no-cache PPA == cold PPA" ppa_cold (Batch.render_ppa r_nc);
  rm_rf dir

let test_failed_spec_is_an_item () =
  (* a malformed spec fails its own item with a diagnostic; the batch
     and the other items complete *)
  let bad = { small_spec with Spec.mcr = 3 } in
  let r = Batch.run ~jobs:2 ctx [ small_spec; bad ] in
  check_int "one failure" 1 r.Batch.failed;
  match List.rev r.Batch.items with
  | { Batch.outcome = Error d; _ } :: _ ->
      ignore (one_line d);
      check_bool "other item compiled" true
        (match r.Batch.items with
        | { Batch.outcome = Ok _; _ } :: _ -> true
        | _ -> false)
  | _ -> Alcotest.fail "bad spec did not fail its item"

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_key_field_order; prop_key_perturbation; prop_value_roundtrip ]

let () =
  Alcotest.run "batch"
    [
      ("key_soundness",
        qtests
        @ [
            Alcotest.test_case "library hash invalidates" `Quick
              test_key_library_sensitivity;
            Alcotest.test_case "algorithm tag invalidates" `Quick
              test_key_algorithm_sensitivity;
          ] );
      ( "robustness",
        [
          Alcotest.test_case "corrupt entries tolerated" `Quick
            test_corruption_tolerated;
          Alcotest.test_case "corrupt entry recompiled + diagnosed" `Quick
            test_corrupt_entry_recompiled;
          Alcotest.test_case "concurrent writers" `Quick
            test_concurrent_writers;
          Alcotest.test_case "stale temp sweep" `Quick test_stale_temp_sweep;
        ] );
      ( "validation",
        [
          Alcotest.test_case "manifest errors" `Quick test_manifest_errors;
          Alcotest.test_case "spec line errors" `Quick test_spec_line_errors;
          Alcotest.test_case "CRLF manifests" `Quick test_manifest_crlf;
          Alcotest.test_case "jobs" `Quick test_jobs_validation;
          Alcotest.test_case "cache dir" `Quick test_cache_dir_validation;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "cold/warm/no-cache/jobs" `Slow
            test_batch_determinism;
          Alcotest.test_case "per-spec failure isolation" `Quick
            test_failed_spec_is_an_item;
        ] );
    ]
