(* Execution-context tests: shared-vs-fresh world determinism, the SCL
   memo's hit accounting across repeat compiles, Service request
   isolation under a parallel client, and a source-level guard that no
   layer above the context constructs the world by hand. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let small_spec =
  {
    Spec.rows = 16;
    cols = 16;
    mcr = 1;
    input_prec = Precision.int8;
    weight_prec = Precision.int8;
    mac_freq_hz = 300e6;
    weight_update_freq_hz = 300e6;
    vdd = 0.9;
    preference = Spec.Balanced;
  }

(* compile [small_spec] under [ctx] with a private trace; return the
   deterministic view of the run *)
let compile_under (ctx : Ctx.t) : string * Pipeline.metrics =
  let tr = Trace.create () in
  match Pipeline.run ~trace:tr ctx small_spec with
  | Error d -> Alcotest.failf "pipeline failed: %s" (Diag.to_string d)
  | Ok r ->
      (Trace.fingerprint tr, r.Pipeline.artifact.Pipeline.metrics)

(* ---------------- shared vs fresh determinism ---------------- *)

(* Two compiles through one shared context must be bit-identical to each
   other and to a compile through a freshly built world, at any job
   count: the context only memoizes characterization, it never changes
   what the pipeline computes. *)
let test_shared_vs_fresh_determinism () =
  List.iter
    (fun jobs ->
      let tag s = Printf.sprintf "%s (jobs=%d)" s jobs in
      let shared = Ctx.with_jobs jobs (Ctx.default ()) in
      let fp1, m1 = compile_under shared in
      let fp2, m2 = compile_under shared in
      let fpf, mf = compile_under (Ctx.with_jobs jobs (Ctx.fresh ())) in
      check_string (tag "shared repeat fingerprint") fp1 fp2;
      check_bool (tag "shared repeat metrics") true (m1 = m2);
      check_string (tag "fresh fingerprint") fp1 fpf;
      check_bool (tag "fresh metrics") true (m1 = mf))
    [ 1; 4 ];
  (* and across job counts: the contract the whole repo leans on *)
  let fp1, m1 = compile_under (Ctx.with_jobs 1 (Ctx.fresh ())) in
  let fp4, m4 = compile_under (Ctx.with_jobs 4 (Ctx.fresh ())) in
  check_string "jobs=1 vs jobs=4 fingerprint" fp1 fp4;
  check_bool "jobs=1 vs jobs=4 metrics" true (m1 = m4)

(* ---------------- SCL memo accounting ---------------- *)

(* a target tight enough that the searcher consults the characterized
   LUTs (tt1 tree queries) instead of closing on the initial config *)
let tight_spec =
  {
    small_spec with
    Spec.mac_freq_hz = 1500e6;
    weight_update_freq_hz = 1500e6;
  }

let compile_tight (ctx : Ctx.t) =
  match Pipeline.run ctx tight_spec with
  | Error d -> Alcotest.failf "pipeline failed: %s" (Diag.to_string d)
  | Ok _ -> ()

let test_scl_memo_hits () =
  let ctx = Ctx.fresh () in
  compile_tight ctx;
  let s1 = Ctx.scl_stats ctx in
  check_bool "first compile characterizes" true (s1.Scl.misses > 0);
  check_bool "memo populated" true (s1.Scl.entries > 0);
  compile_tight ctx;
  let s2 = Ctx.scl_stats ctx in
  check_bool "second compile hits the memo" true (s2.Scl.hits > s1.Scl.hits);
  check_int "second compile adds no misses" s1.Scl.misses s2.Scl.misses;
  check_int "second compile adds no entries" s1.Scl.entries s2.Scl.entries

(* ---------------- Service request isolation ---------------- *)

(* Several clients hammer one warm service in parallel. Every request
   must carry its own trace (equal to a solo compile of the same spec
   in a private world), ids must be unique, and the shared counters
   must add up — nothing leaks between requests. *)
let test_service_isolation () =
  let specs =
    [
      small_spec;
      { small_spec with Spec.rows = 32 };
      { small_spec with Spec.preference = Spec.Prefer_power };
    ]
  in
  let svc = Service.create (Ctx.with_jobs 2 (Ctx.fresh ())) in
  let reqs =
    Pool.parallel_map ~jobs:3 (fun s -> (s, Service.compile svc s)) specs
  in
  let ids =
    List.map (fun (_, (r : Service.request)) -> r.Service.id) reqs
  in
  check_int "unique request ids" (List.length specs)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun (s, (r : Service.request)) ->
      match r.Service.outcome with
      | Error d -> Alcotest.failf "request failed: %s" (Diag.to_string d)
      | Ok sum ->
          (* replay the same spec solo, in a private fresh world *)
          let tr = Trace.create () in
          let solo_sum =
            match Pipeline.run_cached ~trace:tr (Ctx.fresh ()) s with
            | Ok sum -> sum
            | Error d ->
                Alcotest.failf "solo replay failed: %s" (Diag.to_string d)
          in
          check_bool "request metrics match solo compile" true
            (sum.Pipeline.sum_metrics = solo_sum.Pipeline.sum_metrics);
          check_string "request trace matches solo compile"
            (Trace.fingerprint tr)
            (Trace.fingerprint r.Service.trace))
    reqs;
  let st = Service.stats svc in
  check_int "requests counted" (List.length specs) st.Service.requests;
  check_int "no failures" 0 st.Service.failures;
  check_int "all compiled (no cache attached)" (List.length specs)
    st.Service.compiled;
  check_int "no cache hits without a cache" 0 st.Service.cache_hits

(* ---------------- Service engine overrides ---------------- *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* Repeated compiles through one warm service under per-request engine
   overrides: the cumulative counters must add up, the summaries must be
   engine-invariant (the conformance suite's bit-identity is what makes
   that sound), and each request's trace must equal a solo compile with
   the same engine. With a persistent cache attached, the first engine
   compiles and every other engine hits the same entry — the cache key
   deliberately excludes the engine, because engines never change the
   result. *)
let test_service_engine_overrides () =
  let engines : Ctx.engine list = [ `Scalar; `Packed; `Multiword 126 ] in
  (* uncached service: every engine compiles, summaries identical *)
  let svc = Service.create (Ctx.with_jobs 2 (Ctx.fresh ())) in
  let sums =
    List.map
      (fun e ->
        let r = Service.compile ~verify_engine:e svc small_spec in
        match r.Service.outcome with
        | Ok s -> (e, s, r.Service.trace)
        | Error d ->
            Alcotest.failf "engine %s failed: %s" (Ctx.engine_name e)
              (Diag.to_string d))
      engines
  in
  (match sums with
  | (_, first, _) :: rest ->
      List.iter
        (fun (e, s, _) ->
          check_bool
            (Printf.sprintf "metrics engine-invariant (%s)"
               (Ctx.engine_name e))
            true
            (s.Pipeline.sum_metrics = first.Pipeline.sum_metrics))
        rest
  | [] -> assert false);
  (* each request's trace equals a solo compile with the same engine *)
  List.iter
    (fun (e, _, trace) ->
      let tr = Trace.create () in
      (match
         Pipeline.run_cached ~verify_engine:e ~trace:tr (Ctx.with_jobs 2 (Ctx.fresh ()))
           small_spec
       with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "solo replay failed: %s" (Diag.to_string d));
      check_string
        (Printf.sprintf "trace matches solo compile (%s)" (Ctx.engine_name e))
        (Trace.fingerprint tr) (Trace.fingerprint trace))
    sums;
  let st = Service.stats svc in
  check_int "requests counted" 3 st.Service.requests;
  check_int "all compiled (no cache)" 3 st.Service.compiled;
  check_int "no cache hits without a cache" 0 st.Service.cache_hits;
  check_int "no failures" 0 st.Service.failures;
  (* cached service: one miss compiles, the other engines hit *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "syndcim-engine-cache-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let ctx =
    match Ctx.with_cache_dir dir (Ctx.with_jobs 2 (Ctx.fresh ())) with
    | Ok c -> c
    | Error d -> Alcotest.failf "cache dir: %s" (Diag.to_string d)
  in
  let svc = Service.create ctx in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      List.iter
        (fun e ->
          match (Service.compile ~verify_engine:e svc small_spec).Service.outcome with
          | Ok _ -> ()
          | Error d ->
              Alcotest.failf "cached request (%s) failed: %s"
                (Ctx.engine_name e) (Diag.to_string d))
        engines;
      let st = Service.stats svc in
      check_int "cached: requests counted" 3 st.Service.requests;
      check_int "cached: one compile" 1 st.Service.compiled;
      check_int "cached: two hits" 2 st.Service.cache_hits;
      check_int "cached: no failures" 0 st.Service.failures)

(* ---------------- source guard ---------------- *)

(* Nobody below the tests may construct the world by hand: every
   [Library.n40]/[Scl.create] call in lib/, bin/, bench/ and examples/
   must live inside ctx.ml. Tests run from _build/default/test, so walk
   up to the dune-project root (dune copies the sources there). *)
let rec find_root dir =
  if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_root parent

let allowlisted rel = rel = "lib/core/ctx.ml"

let offending_lines path =
  let ic = open_in path in
  let bad = ref [] in
  (try
     let line_no = ref 0 in
     while true do
       let line = input_line ic in
       incr line_no;
       let has needle =
         let nl = String.length needle and ll = String.length line in
         let rec at i = i + nl <= ll && (String.sub line i nl = needle || at (i + 1)) in
         at 0
       in
       if has "Library.n40" || has "Scl.create" then
         bad := Printf.sprintf "%s:%d: %s" path !line_no (String.trim line) :: !bad
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !bad

let test_no_bare_world_constructors () =
  match find_root (Sys.getcwd ()) with
  | None -> () (* not running from a checkout: nothing to scan *)
  | Some root ->
      let bad = ref [] in
      let rec walk rel =
        let abs = Filename.concat root rel in
        if Sys.is_directory abs then
          Array.iter
            (fun name -> walk (Filename.concat rel name))
            (Sys.readdir abs)
        else if Filename.check_suffix rel ".ml" && not (allowlisted rel) then
          bad := !bad @ offending_lines abs
      in
      List.iter
        (fun d ->
          if Sys.file_exists (Filename.concat root d) then walk d)
        [ "lib"; "bin"; "bench"; "examples" ];
      if !bad <> [] then
        Alcotest.failf
          "bare world constructors outside Ctx (route through Ctx.of_parts \
           or Ctx.default):\n%s"
          (String.concat "\n" !bad)

(* ---------------- context plumbing smoke ---------------- *)

let test_ctx_builders () =
  let ctx = Ctx.fresh () in
  check_int "default jobs unset" 0
    (match Ctx.jobs ctx with None -> 0 | Some j -> j);
  let ctx4 = Ctx.with_jobs 4 ctx in
  check_int "with_jobs" 4 (match Ctx.jobs ctx4 with Some j -> j | None -> -1);
  check_bool "with_jobs rejects zero" true
    (match Ctx.validate_jobs 0 with Error _ -> true | Ok _ -> false);
  check_bool "validate_jobs accepts positive" true
    (match Ctx.validate_jobs 2 with Ok 2 -> true | _ -> false);
  let e = Ctx.with_engines `Scalar ctx in
  check_string "engine builder" "scalar" (Ctx.engine_name (Ctx.engine e));
  check_string "verify engine follows" "scalar"
    (Ctx.engine_name (Ctx.verify_engine e));
  let mw = Ctx.with_engines (`Multiword 126) ctx in
  check_string "multiword engine name" "multiword:126"
    (Ctx.engine_name (Ctx.engine mw));
  check_bool "validate_engine parses packed" true
    (Ctx.validate_engine "packed" = Ok `Packed);
  check_bool "validate_engine parses multiword:252" true
    (Ctx.validate_engine "multiword:252" = Ok (`Multiword 252));
  check_bool "validate_engine rejects junk" true
    (match Ctx.validate_engine "vliw" with Error _ -> true | Ok _ -> false);
  check_bool "validate_engine rejects out-of-range width" true
    (match Ctx.validate_engine "multiword:0" with
    | Error _ -> true
    | Ok _ -> false);
  let s = Ctx.with_seed 42 ctx in
  check_int "seed builder" 42 (Ctx.seed s);
  check_bool "default shares the world" true
    (Ctx.lib (Ctx.default ()) == Ctx.lib (Ctx.default ()));
  check_bool "fresh isolates the world" true
    (Ctx.lib (Ctx.fresh ()) != Ctx.lib (Ctx.default ()))

let () =
  Alcotest.run "ctx"
    [
      ( "determinism",
        [
          Alcotest.test_case "shared vs fresh, jobs 1 and 4" `Slow
            test_shared_vs_fresh_determinism;
        ] );
      ( "scl-memo",
        [ Alcotest.test_case "repeat compile hits" `Quick test_scl_memo_hits ]
      );
      ( "service",
        [
          Alcotest.test_case "parallel request isolation" `Slow
            test_service_isolation;
          Alcotest.test_case "engine overrides: counters and cache hits"
            `Slow test_service_engine_overrides;
        ] );
      ( "guard",
        [
          Alcotest.test_case "no bare world constructors" `Quick
            test_no_bare_world_constructors;
        ] );
      ( "builders",
        [ Alcotest.test_case "ctx builders" `Quick test_ctx_builders ] );
    ]
