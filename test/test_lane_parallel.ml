(* Lane-parallel integration suite: the batch paths that sit above the
   slice engines — the signoff_verify pipeline stage, the metamorphic
   checker's engine/jobs invariance and the Fig. 9 shmoo rendering.

   The per-engine equivalence battery (lane state, counters, verify /
   diffcheck / equiv verdict parity, measured-energy bit-identity)
   lives in conformance.ml and runs from test_conformance.ml for every
   engine pair, multi-word engines included. *)

let lib = Library.n40 ()
let scl = Scl.create lib
let ctx = Ctx.of_parts lib scl
let check_bool = Alcotest.(check bool)

(* The signoff_verify stage itself: compiling with any engine must
   produce identical metrics and verdicts. *)
let test_pipeline_verify_engine_invariant () =
  let spec = snd (List.hd Snapshot.canonical_specs) in
  let a = Pipeline.artifact_exn (Pipeline.run ~verify_engine:`Scalar ctx spec) in
  let b = Pipeline.artifact_exn (Pipeline.run ~verify_engine:`Packed ctx spec) in
  let c =
    Pipeline.artifact_exn
      (Pipeline.run ~verify_engine:(`Multiword 126) ctx spec)
  in
  check_bool "packed metrics identical" true
    (a.Pipeline.metrics = b.Pipeline.metrics);
  check_bool "multiword metrics identical" true
    (a.Pipeline.metrics = c.Pipeline.metrics);
  check_bool "verdicts identical" true
    (a.Pipeline.timing_closed = b.Pipeline.timing_closed
    && a.Pipeline.timing_closed = c.Pipeline.timing_closed)

(* ---------------- metamorphic checking ---------------- *)

let test_check_moves_engine_and_jobs_invariant () =
  let spec = snd (List.hd Snapshot.canonical_specs) in
  let scalar = Metamorph.check_moves ~jobs:1 ~engine:`Scalar ~seed:13 ctx spec in
  let p1 = Metamorph.check_moves ~jobs:1 ~engine:`Packed ~seed:13 ctx spec in
  let p4 = Metamorph.check_moves ~jobs:4 ~engine:`Packed ~seed:13 ctx spec in
  let m1 =
    Metamorph.check_moves ~jobs:1 ~engine:(`Multiword 126) ~seed:13 ctx spec
  in
  check_bool "all variants pass" true
    (List.for_all (fun r -> r.Metamorph.ok) scalar);
  check_bool "engine-invariant (packed)" true (scalar = p1);
  check_bool "engine-invariant (multiword)" true (scalar = m1);
  check_bool "job-count-invariant" true (p1 = p4)

let test_check_equiv_pair_engine_invariant () =
  let spec = snd (List.hd Snapshot.canonical_specs) in
  let s = Metamorph.check_equiv_pair ~engine:`Scalar ~seed:5 ctx spec in
  let p = Metamorph.check_equiv_pair ~engine:`Packed ~seed:5 ctx spec in
  let m =
    Metamorph.check_equiv_pair ~engine:(`Multiword 252) ~seed:5 ctx spec
  in
  check_bool "pair equivalent" true p.Metamorph.ok;
  check_bool "engine-invariant (packed)" true (s = p);
  check_bool "engine-invariant (multiword)" true (s = m)

(* ---------------- Fig. 9 rendering ---------------- *)

let test_fmax_absent_vdd () =
  let t =
    {
      Fig9.crit_ps = 1000.0;
      vdds = [| 0.6; 0.9 |];
      freqs_mhz = [| 100.; 200. |];
      pass = [| [| false; false |]; [| true; true |] |];
    }
  in
  check_bool "absent vdd is None (no sentinel aliasing)" true
    (Fig9.fmax_mhz t ~vdd:0.75 = None);
  check_bool "no passing frequency is None" true
    (Fig9.fmax_mhz t ~vdd:0.6 = None);
  check_bool "highest passing frequency" true
    (Fig9.fmax_mhz t ~vdd:0.9 = Some 200.)

(* dune runtest runs with cwd = _build/default/test; a direct dune exec
   runs from the project root — accept either *)
let fig9_snap =
  let local = Filename.concat "snapshots" "fig9.snap" in
  if Sys.file_exists local then local else Filename.concat "test" local

let test_shmoo_render_snapshot () =
  let t = Fig9.shmoo lib.Library.node ~crit_ps:950.0 in
  let actual = Fig9.render t in
  let expected = Snapshot.load fig9_snap in
  if expected <> actual then
    Alcotest.failf
      "Fig. 9 rendered grid drifted from test/snapshots/fig9.snap:\n\
       --- recorded\n\
       %s--- rendered\n\
       %s" expected actual

(* ---------------- suite ---------------- *)

let () =
  Alcotest.run "lane_parallel"
    [
      ( "signoff",
        [
          Alcotest.test_case "pipeline metrics engine-invariant" `Slow
            test_pipeline_verify_engine_invariant;
        ] );
      ( "metamorph",
        [
          Alcotest.test_case "check_moves engine/jobs-invariant" `Slow
            test_check_moves_engine_and_jobs_invariant;
          Alcotest.test_case "check_equiv_pair engine-invariant" `Quick
            test_check_equiv_pair_engine_invariant;
        ] );
      ( "fig9",
        [
          Alcotest.test_case "fmax on absent VDD rows" `Quick
            test_fmax_absent_vdd;
          Alcotest.test_case "rendered grid snapshot" `Quick
            test_shmoo_render_snapshot;
        ] );
    ]
