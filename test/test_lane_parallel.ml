(* Lane-parallel equivalence suite: property tests pinning every packed
   batch path — signoff verification (Testbench.verify), metamorphic
   checking (Metamorph/Equiv) and the Fig. 9 shmoo column batching — to
   the scalar reference engine it replaced. Bit-exact agreement is the
   acceptance gate: verdicts, Mismatch payloads, toggle counters and
   energy floats must all be identical, not merely close. *)

let lib = Library.n40 ()
let scl = Scl.create lib
let ctx = Ctx.of_parts lib scl
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let gen_spec seed = List.hd (Specgen.generate ~seed ~count:1)
let macro_of spec = Macro_rtl.build lib (Spec.initial_config spec)

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ---------------- packed signoff verification ---------------- *)

(* A verify run's observable outcome: None for a pass, the full Mismatch
   payload for a failure. Engine equivalence = equal outcomes. *)
let verify_outcome engine (m : Macro_rtl.t) ~seed ~batches =
  match Testbench.verify ~engine m ~seed ~batches with
  | () -> None
  | exception Testbench.Mismatch { word; expected; got; detail } ->
      Some (word, expected, got, detail)

let test_verify_engines_agree_canonical () =
  List.iter
    (fun (name, spec) ->
      let m = macro_of spec in
      let s = verify_outcome `Scalar m ~seed:0xACC ~batches:3 in
      let p = verify_outcome `Packed m ~seed:0xACC ~batches:3 in
      check_bool (name ^ ": scalar passes") true (s = None);
      check_bool (name ^ ": verdicts identical") true (s = p))
    Snapshot.canonical_specs

let verify_engines_agree_prop =
  QCheck.Test.make ~count:20
    ~name:"verify verdict engine-invariant on fuzzed specs" QCheck.small_nat
    (fun seed ->
      let m = macro_of (gen_spec seed) in
      verify_outcome `Scalar m ~seed:(seed + 3) ~batches:2
      = verify_outcome `Packed m ~seed:(seed + 3) ~batches:2)

(* One signoff batch packed as lanes against per-lane scalar replicas:
   MAC results must match, and the packed toggle / enable counters must
   equal the element-wise sums of the scalar counters. *)
let signoff_counters_agree ~seed (m : Macro_rtl.t) =
  let d = m.Macro_rtl.design in
  let n = 5 in
  let rng = Rng.create (seed lxor 0xBEEF) in
  let weights =
    Array.init n (fun _ -> Testbench.random_weights rng m ~density:1.0)
  in
  let inputs =
    Array.init n (fun _ ->
        Array.init m.Macro_rtl.cfg.Macro_rtl.rows (fun _ ->
            Testbench.random_input rng m ~density:1.0))
  in
  let psim = Sim_packed.create ~n_lanes:n d in
  if m.Macro_rtl.cfg.Macro_rtl.mcr > 1 then
    Sim_packed.set_bus psim "copy_sel" 0;
  Testbench.load_weights_lanes m psim ~copy:0 weights;
  let packed_results = Testbench.check_mac_packed m psim ~weights ~inputs in
  let sims = Array.init n (fun _ -> Sim.create d) in
  let scalar_results =
    Array.mapi
      (fun l sim ->
        if m.Macro_rtl.cfg.Macro_rtl.mcr > 1 then
          Sim.set_bus sim "copy_sel" 0;
        Testbench.load_weights m sim ~copy:0 weights.(l);
        Testbench.check_mac m sim ~weights:weights.(l) ~inputs:inputs.(l))
      sims
  in
  if packed_results <> scalar_results then
    QCheck.Test.fail_reportf "seed %d: MAC results diverge" seed;
  let sum f = Array.fold_left (fun acc sim -> acc + f sim) 0 sims in
  for net = 0 to d.Ir.n_nets - 1 do
    if psim.Sim_packed.toggles.(net) <> sum (fun sim -> sim.Sim.toggles.(net))
    then
      QCheck.Test.fail_reportf "seed %d: net %d toggle counters diverge" seed
        net
  done;
  for i = 0 to Array.length psim.Sim_packed.en_cycles - 1 do
    if psim.Sim_packed.en_cycles.(i) <> sum (fun sim -> sim.Sim.en_cycles.(i))
    then
      QCheck.Test.fail_reportf "seed %d: inst %d en_cycles diverge" seed i
  done;
  if psim.Sim_packed.cycles <> sims.(0).Sim.cycles then
    QCheck.Test.fail_reportf "seed %d: cycle counts diverge" seed;
  true

let test_signoff_counters_canonical () =
  List.iteri
    (fun i (_, spec) ->
      ignore (signoff_counters_agree ~seed:(100 + i) (macro_of spec)))
    Snapshot.canonical_specs

let signoff_counters_prop =
  QCheck.Test.make ~count:20
    ~name:"packed signoff toggle counters = scalar lane sums"
    QCheck.small_nat
    (fun seed -> signoff_counters_agree ~seed (macro_of (gen_spec seed)))

(* An early-sampled post pipeline (the Retime_early_sample fault) must be
   caught by the packed signoff with the exact Mismatch the scalar bench
   raises — the scalar-minimal reproducer, not a packed-only marker. *)
let test_injected_bug_caught_with_scalar_reproducer () =
  let spec = snd (List.hd Snapshot.canonical_specs) in
  let cfg =
    { (Spec.initial_config spec) with Macro_rtl.ofu_extra_pipe = true }
  in
  let m = Macro_rtl.build lib cfg in
  check_bool "macro has a post pipeline stage" true (m.Macro_rtl.post_lat >= 1);
  let buggy = { m with Macro_rtl.post_lat = m.Macro_rtl.post_lat - 1 } in
  let s = verify_outcome `Scalar buggy ~seed:7 ~batches:2 in
  let p = verify_outcome `Packed buggy ~seed:7 ~batches:2 in
  check_bool "scalar engine catches the bug" true (s <> None);
  check_bool "packed reproducer identical to scalar" true (s = p);
  match p with
  | Some (_, _, _, detail) ->
      check_bool "reproducer is scalar-minimal" true
        (not (contains detail "packed-only"))
  | None -> Alcotest.fail "packed engine missed the injected bug"

(* The signoff_verify stage itself: compiling with either engine must
   produce identical metrics and verdicts. *)
let test_pipeline_verify_engine_invariant () =
  let spec = snd (List.hd Snapshot.canonical_specs) in
  let a = Pipeline.artifact_exn (Pipeline.run ~verify_engine:`Scalar ctx spec) in
  let b = Pipeline.artifact_exn (Pipeline.run ~verify_engine:`Packed ctx spec) in
  check_bool "metrics identical" true (a.Pipeline.metrics = b.Pipeline.metrics);
  check_bool "verdict identical" true
    (a.Pipeline.timing_closed = b.Pipeline.timing_closed)

(* ---------------- metamorphic checking ---------------- *)

let test_check_moves_engine_and_jobs_invariant () =
  let spec = snd (List.hd Snapshot.canonical_specs) in
  let scalar = Metamorph.check_moves ~jobs:1 ~engine:`Scalar ~seed:13 ctx spec in
  let p1 = Metamorph.check_moves ~jobs:1 ~engine:`Packed ~seed:13 ctx spec in
  let p4 = Metamorph.check_moves ~jobs:4 ~engine:`Packed ~seed:13 ctx spec in
  check_bool "all variants pass" true
    (List.for_all (fun r -> r.Metamorph.ok) scalar);
  check_bool "engine-invariant" true (scalar = p1);
  check_bool "job-count-invariant" true (p1 = p4)

let test_check_equiv_pair_engine_invariant () =
  let spec = snd (List.hd Snapshot.canonical_specs) in
  let s = Metamorph.check_equiv_pair ~engine:`Scalar ~seed:5 ctx spec in
  let p = Metamorph.check_equiv_pair ~engine:`Packed ~seed:5 ctx spec in
  check_bool "pair equivalent" true p.Metamorph.ok;
  check_bool "engine-invariant" true (s = p)

(* tiny fixed-interface designs for Equiv edge tests *)
let harness kind =
  let ir = Ir.create () in
  let a = Ir.new_bus ir 3 in
  Ir.add_input ir "a" a;
  let out =
    Array.map
      (fun net ->
        let o = Ir.new_net ir in
        ignore (Ir.add ir kind ~ins:[| net |] ~outs:[| o |]);
        o)
      a
  in
  Ir.add_output ir "out" out;
  Ir.freeze ir

(* vector batches that are not a multiple of the 63-lane word exercise
   the partial trailing chunk of the packed engine *)
let test_equiv_lane_count_edges () =
  let d = harness Cell.Inv in
  List.iter
    (fun vectors ->
      check_bool
        (Printf.sprintf "%d vectors equivalent" vectors)
        true
        (Equiv.check ~engine:`Packed ~vectors ~settle:2 ~hold:2 d d
        = Equiv.Equivalent vectors))
    [ 1; 62; 63; 64; 65; 126; 127 ]

let test_equiv_mismatch_engine_agreement () =
  let a = harness Cell.Inv and b = harness Cell.Buf in
  let s = Equiv.check ~engine:`Scalar ~vectors:5 ~settle:2 ~hold:2 a b in
  let p = Equiv.check ~engine:`Packed ~vectors:5 ~settle:2 ~hold:2 a b in
  (match s with
  | Equiv.Mismatch { vector; _ } -> check_int "first vector" 0 vector
  | Equiv.Equivalent _ -> Alcotest.fail "inverter equals buffer?");
  check_bool "identical mismatch payload" true (s = p)

let equiv_engines_agree_prop =
  QCheck.Test.make ~count:8
    ~name:"Equiv verdict engine-invariant on generated macro pairs"
    QCheck.small_nat
    (fun seed ->
      let spec = gen_spec seed in
      let base = Spec.initial_config spec in
      let sub =
        {
          base with
          Macro_rtl.tree = Adder_tree.Csa { fa_ratio = 1.0; reorder = true };
        }
      in
      let a = (Macro_rtl.build lib base).Macro_rtl.design in
      let b = (Macro_rtl.build lib sub).Macro_rtl.design in
      Equiv.check ~engine:`Scalar ~seed ~vectors:8 ~settle:12 ~hold:3 a b
      = Equiv.check ~engine:`Packed ~seed ~vectors:8 ~settle:12 ~hold:3 a b)

(* ---------------- Fig. 9 column batching ---------------- *)

let small_macro () =
  Macro_rtl.build lib
    (Macro_rtl.default ~rows:8 ~cols:16 ~mcr:1 ~input_prec:Precision.int4
       ~weight_prec:Precision.int4)

let test_measure_engines_bit_identical () =
  let m = small_macro () in
  let vdds = [| 0.7; 0.9; 1.1 |] and freqs_mhz = [| 300.; 600.; 900. |] in
  let a =
    Fig9.measure ~vdds ~freqs_mhz ~engine:`Scalar ~n_lanes:4 ~macs:2 ~jobs:1
      ctx m ~crit_ps:950.0
  in
  let b =
    Fig9.measure ~vdds ~freqs_mhz ~engine:`Packed ~n_lanes:4 ~macs:2 ~jobs:1
      ctx m ~crit_ps:950.0
  in
  check_bool "pass grids identical" true (a.Fig9.grid = b.Fig9.grid);
  Array.iteri
    (fun vi row ->
      Array.iteri
        (fun fi e ->
          let e' = b.Fig9.energy_fj.(vi).(fi) in
          (* byte-identical, not approximately equal *)
          if Int64.bits_of_float e <> Int64.bits_of_float e' then
            Alcotest.failf "energy (%d,%d) diverges: %.17g vs %.17g" vi fi e
              e')
        row)
    a.Fig9.energy_fj;
  Array.iter
    (fun vdd ->
      check_bool
        (Printf.sprintf "fmax at %.1f V identical" vdd)
        true
        (Fig9.fmax_mhz a.Fig9.grid ~vdd = Fig9.fmax_mhz b.Fig9.grid ~vdd))
    vdds;
  (* energies are real measurements, not zeros *)
  check_bool "positive energies" true
    (Array.for_all (Array.for_all (fun e -> e > 0.0)) a.Fig9.energy_fj)

let test_fmax_absent_vdd () =
  let t =
    {
      Fig9.crit_ps = 1000.0;
      vdds = [| 0.6; 0.9 |];
      freqs_mhz = [| 100.; 200. |];
      pass = [| [| false; false |]; [| true; true |] |];
    }
  in
  check_bool "absent vdd is None (no sentinel aliasing)" true
    (Fig9.fmax_mhz t ~vdd:0.75 = None);
  check_bool "no passing frequency is None" true
    (Fig9.fmax_mhz t ~vdd:0.6 = None);
  check_bool "highest passing frequency" true
    (Fig9.fmax_mhz t ~vdd:0.9 = Some 200.)

(* dune runtest runs with cwd = _build/default/test; a direct dune exec
   runs from the project root — accept either *)
let fig9_snap =
  let local = Filename.concat "snapshots" "fig9.snap" in
  if Sys.file_exists local then local else Filename.concat "test" local

let test_shmoo_render_snapshot () =
  let t = Fig9.shmoo lib.Library.node ~crit_ps:950.0 in
  let actual = Fig9.render t in
  let expected = Snapshot.load fig9_snap in
  if expected <> actual then
    Alcotest.failf
      "Fig. 9 rendered grid drifted from test/snapshots/fig9.snap:\n\
       --- recorded\n\
       %s--- rendered\n\
       %s" expected actual

(* ---------------- suite ---------------- *)

let () =
  Alcotest.run "lane_parallel"
    [
      ( "signoff",
        [
          Alcotest.test_case "engines agree on canonical specs" `Quick
            test_verify_engines_agree_canonical;
          QCheck_alcotest.to_alcotest verify_engines_agree_prop;
          Alcotest.test_case "toggle counters on canonical specs" `Quick
            test_signoff_counters_canonical;
          QCheck_alcotest.to_alcotest signoff_counters_prop;
          Alcotest.test_case "injected bug: scalar-minimal reproducer" `Quick
            test_injected_bug_caught_with_scalar_reproducer;
          Alcotest.test_case "pipeline metrics engine-invariant" `Slow
            test_pipeline_verify_engine_invariant;
        ] );
      ( "metamorph",
        [
          Alcotest.test_case "check_moves engine/jobs-invariant" `Slow
            test_check_moves_engine_and_jobs_invariant;
          Alcotest.test_case "check_equiv_pair engine-invariant" `Quick
            test_check_equiv_pair_engine_invariant;
          Alcotest.test_case "partial trailing lane chunk" `Quick
            test_equiv_lane_count_edges;
          Alcotest.test_case "mismatch payload engine agreement" `Quick
            test_equiv_mismatch_engine_agreement;
          QCheck_alcotest.to_alcotest equiv_engines_agree_prop;
        ] );
      ( "fig9",
        [
          Alcotest.test_case "measured grid bit-identical across engines"
            `Quick test_measure_engines_bit_identical;
          Alcotest.test_case "fmax on absent VDD rows" `Quick
            test_fmax_absent_vdd;
          Alcotest.test_case "rendered grid snapshot" `Quick
            test_shmoo_render_snapshot;
        ] );
    ]
