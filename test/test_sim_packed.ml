(* Tests for the bit-sliced 63-lane simulator: popcount, exhaustive
   word-level cell evaluation (all input combinations packed as lanes),
   a QCheck lane-equivalence property pinning every Sim_packed lane to a
   scalar Sim replica (net values, toggle counts, seq/storage state,
   weight counters, bus reads) across Specgen-generated macros and random
   vector streams, directed lane-0/lane-62 edge tests, and scalar-vs-
   packed agreement of the differential check engines. *)

let lib = Library.n40 ()
let ctx = Ctx.of_parts lib (Scl.create lib)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let gen_spec seed = List.hd (Specgen.generate ~seed ~count:1)

(* ---------------- popcount ---------------- *)

let naive_popcount w =
  let c = ref 0 in
  for i = 0 to Sys.int_size - 1 do
    if (w lsr i) land 1 = 1 then incr c
  done;
  !c

let test_popcount_directed () =
  check_int "0" 0 (Intmath.popcount 0);
  check_int "1" 1 (Intmath.popcount 1);
  check_int "-1 (all 63 bits)" Sys.int_size (Intmath.popcount (-1));
  check_int "max_int" (Sys.int_size - 1) (Intmath.popcount max_int);
  check_int "min_int (sign bit only)" 1 (Intmath.popcount min_int);
  check_int "0xF0F" 8 (Intmath.popcount 0xF0F)

let popcount_prop =
  QCheck.Test.make ~count:500 ~name:"popcount matches bit loop"
    QCheck.int (fun w -> Intmath.popcount w = naive_popcount w)

(* ---------------- word-level cell eval, exhaustive ---------------- *)

(* Every input combination of a cell packed as one lane each: lane [c]
   carries combination [c], so a single eval_word call checks the whole
   truth table against the scalar eval. *)
let test_eval_word_exhaustive () =
  List.iter
    (fun k ->
      if not (Cell.is_sequential k || Cell.is_storage k) then begin
        let n = Cell.n_inputs k in
        let combos = 1 lsl n in
        assert (combos <= Sim_packed.lanes);
        let ins_w =
          Array.init n (fun p ->
              let w = ref 0 in
              for c = 0 to combos - 1 do
                w := !w lor (((c lsr p) land 1) lsl c)
              done;
              !w)
        in
        let outs_w = Cell.eval_word k ins_w in
        for c = 0 to combos - 1 do
          let ins = Array.init n (fun p -> (c lsr p) land 1 = 1) in
          let outs = Cell.eval k ins in
          Array.iteri
            (fun o expected ->
              check_bool
                (Printf.sprintf "%s combo %d out %d" (Cell.kind_to_string k)
                   c o)
                expected
                ((outs_w.(o) lsr c) land 1 = 1))
            outs
        done
      end)
    Cell.all_kinds

(* ---------------- lane equivalence on generated macros -------------- *)

(* Drive one packed simulator and [lanes] scalar replicas with identical
   per-lane stimulus — random values on every input bus, every cycle,
   plus a mid-run weight write — then require bit-exact agreement on
   everything the two engines expose. *)
let run_equivalence ~seed ~cycles ~n_lanes =
  let spec = gen_spec seed in
  let m = Macro_rtl.build lib (Spec.initial_config spec) in
  let d = m.Macro_rtl.design in
  let rng = Rng.create (seed lxor 0x5EED) in
  let psim = Sim_packed.create ~n_lanes d in
  let sims = Array.init n_lanes (fun _ -> Sim.create d) in
  (* per-lane random weights into every copy, same write order *)
  for copy = 0 to m.Macro_rtl.cfg.Macro_rtl.mcr - 1 do
    let weights =
      Array.init n_lanes (fun _ ->
          Testbench.random_weights rng m ~density:0.7)
    in
    Array.iteri
      (fun l sim -> Testbench.load_weights m sim ~copy weights.(l))
      sims;
    Testbench.load_weights_lanes m psim ~copy weights
  done;
  let inputs = d.Ir.src.Ir.inputs in
  let vs = Array.make n_lanes 0 in
  for cyc = 1 to cycles do
    List.iter
      (fun (name, bus) ->
        let bound = 1 lsl min (Array.length bus) 30 in
        for l = 0 to n_lanes - 1 do
          vs.(l) <- Rng.int rng bound
        done;
        Sim_packed.set_bus_lanes psim name vs;
        Array.iteri (fun l sim -> Sim.set_bus sim name vs.(l)) sims)
      inputs;
    (* a weight write mid-stream exercises the flip/write counters *)
    if cyc = cycles / 2 then begin
      for l = 0 to n_lanes - 1 do
        vs.(l) <- Rng.int rng 2
      done;
      let w = ref 0 in
      Array.iteri (fun l v -> w := !w lor (v lsl l)) vs;
      Sim_packed.set_weight psim ~row:0 ~col:0 ~copy:0 !w;
      Array.iteri
        (fun l sim -> Sim.set_weight sim ~row:0 ~col:0 ~copy:0 (vs.(l) = 1))
        sims
    end;
    Sim_packed.step psim;
    Array.iter Sim.step sims
  done;
  (* per-lane state must be bit-exact *)
  for l = 0 to n_lanes - 1 do
    if Sim_packed.extract_lane psim l <> sims.(l).Sim.values then
      QCheck.Test.fail_reportf "seed %d: lane %d net values diverge" seed l;
    if Sim_packed.seq_state_lane psim l <> sims.(l).Sim.seq_state then
      QCheck.Test.fail_reportf "seed %d: lane %d seq state diverges" seed l;
    if Sim_packed.storage_state_lane psim l <> sims.(l).Sim.storage_state
    then
      QCheck.Test.fail_reportf "seed %d: lane %d storage diverges" seed l;
    List.iter
      (fun (name, _) ->
        if
          Sim_packed.read_bus_lane psim name l <> Sim.read_bus sims.(l) name
          || Sim_packed.read_bus_signed_lane psim name l
             <> Sim.read_bus_signed sims.(l) name
        then
          QCheck.Test.fail_reportf "seed %d: lane %d bus %s diverges" seed l
            name)
      d.Ir.src.Ir.outputs
  done;
  (* lane-summed counters must equal the sums of the scalar counters *)
  let sum f = Array.fold_left (fun acc sim -> acc + f sim) 0 sims in
  for net = 0 to d.Ir.n_nets - 1 do
    let scalar = sum (fun sim -> sim.Sim.toggles.(net)) in
    if scalar <> psim.Sim_packed.toggles.(net) then
      QCheck.Test.fail_reportf
        "seed %d: net %d toggles: packed %d, scalar lanes sum %d" seed net
        psim.Sim_packed.toggles.(net) scalar
  done;
  for i = 0 to Array.length psim.Sim_packed.en_cycles - 1 do
    let scalar = sum (fun sim -> sim.Sim.en_cycles.(i)) in
    if scalar <> psim.Sim_packed.en_cycles.(i) then
      QCheck.Test.fail_reportf "seed %d: inst %d en_cycles diverge" seed i
  done;
  check_int "weight_flips lane sum"
    (sum (fun sim -> sim.Sim.weight_flips))
    psim.Sim_packed.weight_flips;
  check_int "weight_writes lane sum"
    (sum (fun sim -> sim.Sim.weight_writes))
    psim.Sim_packed.weight_writes;
  check_int "cycles" sims.(0).Sim.cycles psim.Sim_packed.cycles;
  true

let lane_equivalence_prop =
  QCheck.Test.make ~count:6
    ~name:"every packed lane is bit-exact with a scalar replica"
    QCheck.small_nat
    (fun seed ->
      run_equivalence ~seed ~cycles:12 ~n_lanes:Sim_packed.lanes)

(* ---------------- directed lane edge tests ---------------- *)

(* A 3-bit inverter: lane 0 and lane 62 carry distinct payloads, every
   other lane idles at zero — the two ends of the word must not leak
   into each other or into the middle. *)
let inverter_harness () =
  let ir = Ir.create () in
  let a = Ir.new_bus ir 3 in
  Ir.add_input ir "a" a;
  let out =
    Array.map
      (fun net ->
        let o = Ir.new_net ir in
        ignore (Ir.add ir Cell.Inv ~ins:[| net |] ~outs:[| o |]);
        o)
      a
  in
  Ir.add_output ir "out" out;
  Ir.freeze ir

let test_lane_edges () =
  let d = inverter_harness () in
  let psim = Sim_packed.create d in
  check_int "full width" Sys.int_size (Sim_packed.lanes_of psim);
  let vs = Array.make Sim_packed.lanes 0 in
  vs.(0) <- 5;
  vs.(Sim_packed.lanes - 1) <- 2;
  Sim_packed.set_bus_lanes psim "a" vs;
  Sim_packed.eval psim;
  check_int "lane 0" (lnot 5 land 7) (Sim_packed.read_bus_lane psim "out" 0);
  check_int "lane 62"
    (lnot 2 land 7)
    (Sim_packed.read_bus_lane psim "out" (Sim_packed.lanes - 1));
  check_int "idle middle lane" 7 (Sim_packed.read_bus_lane psim "out" 31);
  (* toggle accounting is exact per lane: only the two driven lanes
     toggled bits 0 and 2 of the input bus *)
  let bus = Ir.input_bus d.Ir.src "a" in
  check_int "bit0 toggles (only lane 0's 0b101)" 1
    psim.Sim_packed.toggles.(bus.(0));
  check_int "bit1 toggles (only lane 62's 0b010)" 1
    psim.Sim_packed.toggles.(bus.(1));
  check_int "bit2 toggles (only lane 0's 0b101)" 1
    psim.Sim_packed.toggles.(bus.(2));
  (* re-driving the identical pattern adds no toggles *)
  Sim_packed.set_bus_lanes psim "a" vs;
  check_int "no toggle on identical drive" 1
    psim.Sim_packed.toggles.(bus.(0))

let test_lane_count_validation () =
  let d = inverter_harness () in
  check_bool "0 lanes rejected" true
    (try
       ignore (Sim_packed.create ~n_lanes:0 d);
       false
     with Invalid_argument _ -> true);
  check_bool "64 lanes rejected" true
    (try
       ignore (Sim_packed.create ~n_lanes:(Sim_packed.lanes + 1) d);
       false
     with Invalid_argument _ -> true);
  let one = Sim_packed.create ~n_lanes:1 d in
  check_int "single lane" 1 (Sim_packed.lanes_of one)

(* ---------------- packed power accounting ---------------- *)

(* With a single lane, the packed Monte Carlo path must reproduce the
   scalar power estimate to float tolerance: same counters, same
   effective cycles. *)
let test_packed_power_single_lane () =
  let m =
    Macro_rtl.build lib
      (Macro_rtl.default ~rows:8 ~cols:16 ~mcr:1
         ~input_prec:Precision.int4 ~weight_prec:Precision.int4)
  in
  let run estimate create load stream =
    let rng = Rng.create 0xACC in
    let sim = create m.Macro_rtl.design in
    load rng sim;
    stream rng sim;
    estimate sim
  in
  let scalar =
    run
      (fun sim -> Power.estimate m.Macro_rtl.design lib sim ~freq_hz:5e8 ~vdd:0.9 ())
      Sim.create
      (fun rng sim ->
        Testbench.load_weights m sim ~copy:0
          (Testbench.random_weights rng m ~density:0.5);
        Sim.reset_stats sim)
      (fun rng sim ->
        Testbench.run_stream m sim ~rng ~macs:3 ~input_density:0.5)
  in
  let packed =
    run
      (fun sim ->
        Power.estimate_packed m.Macro_rtl.design lib sim ~freq_hz:5e8
          ~vdd:0.9 ())
      (Sim_packed.create ~n_lanes:1)
      (fun rng sim ->
        Testbench.load_weights_lanes m sim ~copy:0
          [| Testbench.random_weights rng m ~density:0.5 |];
        Sim_packed.reset_stats sim)
      (fun rng sim ->
        Testbench.run_stream_packed m sim ~rng ~macs:3 ~input_density:0.5)
  in
  let close a b =
    abs_float (a -. b) <= 1e-9 *. (abs_float a +. abs_float b +. 1.0)
  in
  check_bool "total power" true (close scalar.Power.total_w packed.Power.total_w);
  check_bool "dynamic power" true
    (close scalar.Power.dynamic_w packed.Power.dynamic_w);
  check_bool "clock power" true (close scalar.Power.clock_w packed.Power.clock_w);
  check_bool "energy/cycle" true
    (close scalar.Power.energy_per_cycle_fj packed.Power.energy_per_cycle_fj)

(* full-width Monte Carlo run: sane report, lanes× sample mass *)
let test_packed_power_full_width () =
  let m =
    Macro_rtl.build lib
      (Macro_rtl.default ~rows:8 ~cols:16 ~mcr:1
         ~input_prec:Precision.int4 ~weight_prec:Precision.int4)
  in
  let p =
    Design_point.measure_power_packed lib m ~freq_hz:5e8 ~vdd:0.9
      ~input_density:0.5 ~weight_density:0.5 ~macs:3
  in
  check_bool "positive total" true (p.Power.total_w > 0.0);
  check_bool "dynamic dominated sanity" true
    (p.Power.dynamic_w > 0.0 && p.Power.clock_w > 0.0)

(* ---------------- differential engine agreement ---------------- *)

let test_diffcheck_engines_agree () =
  List.iter
    (fun seed ->
      let spec = gen_spec seed in
      let scalar =
        Diffcheck.check_spec ~engine:`Scalar ~seed:(seed + 100) ctx spec
      in
      let packed =
        Diffcheck.check_spec ~engine:`Packed ~seed:(seed + 100) ctx spec
      in
      check_bool
        (Printf.sprintf "seed %d: both engines pass" seed)
        true
        (scalar.Diffcheck.failure = None && packed.Diffcheck.failure = None);
      check_int
        (Printf.sprintf "seed %d: check counts equal" seed)
        scalar.Diffcheck.checks packed.Diffcheck.checks)
    [ 1; 2; 3; 4 ]

let test_diffcheck_engines_catch_bug () =
  (* both engines must catch each injected fault on the same specs the
     scalar-era suite used *)
  List.iter
    (fun bug ->
      List.iter
        (fun seed ->
          let spec = gen_spec seed in
          let fails engine =
            (Diffcheck.check_spec ~engine ~bug ~seed:(seed + 7) ctx spec)
              .Diffcheck.failure
            <> None
          in
          check_bool
            (Printf.sprintf "%s seed %d: engines agree"
               (Diffcheck.bug_name bug) seed)
            (fails `Scalar) (fails `Packed))
        [ 1; 2; 3; 4; 5; 6 ])
    [ Diffcheck.Retime_early_sample; Diffcheck.Skip_sign_cycle ]

(* ---------------- suite ---------------- *)

let () =
  Alcotest.run "sim_packed"
    [
      ( "popcount",
        [
          Alcotest.test_case "directed" `Quick test_popcount_directed;
          QCheck_alcotest.to_alcotest popcount_prop;
        ] );
      ( "eval_word",
        [
          Alcotest.test_case "exhaustive truth tables vs scalar eval" `Quick
            test_eval_word_exhaustive;
        ] );
      ( "lane_equivalence",
        [
          QCheck_alcotest.to_alcotest lane_equivalence_prop;
          Alcotest.test_case "lane 0 / lane 62 edges" `Quick test_lane_edges;
          Alcotest.test_case "lane count validation" `Quick
            test_lane_count_validation;
        ] );
      ( "power",
        [
          Alcotest.test_case "single-lane packed == scalar estimate" `Quick
            test_packed_power_single_lane;
          Alcotest.test_case "full-width Monte Carlo report" `Quick
            test_packed_power_full_width;
        ] );
      ( "diffcheck",
        [
          Alcotest.test_case "engines agree on clean specs" `Quick
            test_diffcheck_engines_agree;
          Alcotest.test_case "engines agree on injected bugs" `Slow
            test_diffcheck_engines_catch_bug;
        ] );
    ]
