(* Tests for the bit-sliced simulators: popcount (single- and
   multi-word), exhaustive word-level cell evaluation (all input
   combinations packed as lanes), directed lane edge tests at both ends
   of each native word (lanes 0/62 for Sim_packed, 62..126 for
   Sim_multiword), lane-count validation including the full-width
   mask = -1 edge, and packed power accounting.

   The cross-engine equivalence battery (per-lane state, counters,
   verify/diffcheck/equiv verdict parity) lives in conformance.ml and
   runs from test_conformance.ml for every engine pair. *)

let lib = Library.n40 ()
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- popcount ---------------- *)

let naive_popcount w =
  let c = ref 0 in
  for i = 0 to Sys.int_size - 1 do
    if (w lsr i) land 1 = 1 then incr c
  done;
  !c

let test_popcount_directed () =
  check_int "0" 0 (Intmath.popcount 0);
  check_int "1" 1 (Intmath.popcount 1);
  check_int "-1 (all 63 bits)" Sys.int_size (Intmath.popcount (-1));
  check_int "max_int" (Sys.int_size - 1) (Intmath.popcount max_int);
  check_int "min_int (sign bit only)" 1 (Intmath.popcount min_int);
  check_int "0xF0F" 8 (Intmath.popcount 0xF0F)

let popcount_prop =
  QCheck.Test.make ~count:500 ~name:"popcount matches bit loop"
    QCheck.int (fun w -> Intmath.popcount w = naive_popcount w)

(* Multi-word arrays, as Sim_multiword accounts toggles: the popcount
   of a k-word lane vector is the sum of the per-word popcounts, and it
   must match one naive bit loop over the whole array. *)
let popcount_multiword_prop =
  QCheck.Test.make ~count:300
    ~name:"multi-word popcount sum matches naive bit loop over the array"
    QCheck.(array_of_size (Gen.int_range 1 4) int)
    (fun ws ->
      Array.fold_left (fun acc w -> acc + Intmath.popcount w) 0 ws
      = Array.fold_left (fun acc w -> acc + naive_popcount w) 0 ws)

(* ---------------- word-level cell eval, exhaustive ---------------- *)

(* Every input combination of a cell packed as one lane each: lane [c]
   carries combination [c], so a single eval_word call checks the whole
   truth table against the scalar eval. *)
let test_eval_word_exhaustive () =
  List.iter
    (fun k ->
      if not (Cell.is_sequential k || Cell.is_storage k) then begin
        let n = Cell.n_inputs k in
        let combos = 1 lsl n in
        assert (combos <= Sim_packed.lanes);
        let ins_w =
          Array.init n (fun p ->
              let w = ref 0 in
              for c = 0 to combos - 1 do
                w := !w lor (((c lsr p) land 1) lsl c)
              done;
              !w)
        in
        let outs_w = Cell.eval_word k ins_w in
        for c = 0 to combos - 1 do
          let ins = Array.init n (fun p -> (c lsr p) land 1 = 1) in
          let outs = Cell.eval k ins in
          Array.iteri
            (fun o expected ->
              check_bool
                (Printf.sprintf "%s combo %d out %d" (Cell.kind_to_string k)
                   c o)
                expected
                ((outs_w.(o) lsr c) land 1 = 1))
            outs
        done
      end)
    Cell.all_kinds

(* ---------------- directed lane edge tests ---------------- *)

(* A 3-bit inverter: lane 0 and lane 62 carry distinct payloads, every
   other lane idles at zero — the two ends of the word must not leak
   into each other or into the middle. *)
let inverter_harness () =
  let ir = Ir.create () in
  let a = Ir.new_bus ir 3 in
  Ir.add_input ir "a" a;
  let out =
    Array.map
      (fun net ->
        let o = Ir.new_net ir in
        ignore (Ir.add ir Cell.Inv ~ins:[| net |] ~outs:[| o |]);
        o)
      a
  in
  Ir.add_output ir "out" out;
  Ir.freeze ir

let test_lane_edges () =
  let d = inverter_harness () in
  let psim = Sim_packed.create d in
  check_int "full width" Sys.int_size (Sim_packed.lanes_of psim);
  let vs = Array.make Sim_packed.lanes 0 in
  vs.(0) <- 5;
  vs.(Sim_packed.lanes - 1) <- 2;
  Sim_packed.set_bus_lanes psim "a" vs;
  Sim_packed.eval psim;
  check_int "lane 0" (lnot 5 land 7) (Sim_packed.read_bus_lane psim "out" 0);
  check_int "lane 62"
    (lnot 2 land 7)
    (Sim_packed.read_bus_lane psim "out" (Sim_packed.lanes - 1));
  check_int "idle middle lane" 7 (Sim_packed.read_bus_lane psim "out" 31);
  (* toggle accounting is exact per lane: only the two driven lanes
     toggled bits 0 and 2 of the input bus *)
  let bus = Ir.input_bus d.Ir.src "a" in
  check_int "bit0 toggles (only lane 0's 0b101)" 1
    psim.Sim_packed.toggles.(bus.(0));
  check_int "bit1 toggles (only lane 62's 0b010)" 1
    psim.Sim_packed.toggles.(bus.(1));
  check_int "bit2 toggles (only lane 0's 0b101)" 1
    psim.Sim_packed.toggles.(bus.(2));
  (* re-driving the identical pattern adds no toggles *)
  Sim_packed.set_bus_lanes psim "a" vs;
  check_int "no toggle on identical drive" 1
    psim.Sim_packed.toggles.(bus.(0))

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let rejects_with f expected =
  try
    f ();
    `Accepted
  with Invalid_argument msg ->
    if contains msg expected then `Rejected_as_expected
    else `Wrong_message msg

let check_rejects name f expected =
  match rejects_with f expected with
  | `Rejected_as_expected -> ()
  | `Accepted -> Alcotest.failf "%s: accepted" name
  | `Wrong_message msg ->
      Alcotest.failf "%s: message %S lacks %S" name msg expected

let test_lane_count_validation () =
  let d = inverter_harness () in
  (* the rejection message reports the caller's requested width and the
     engine's valid range *)
  check_rejects "0 lanes rejected"
    (fun () -> ignore (Sim_packed.create ~n_lanes:0 d))
    (Printf.sprintf "requested 0 lanes, valid range is 1..%d"
       Sim_packed.lanes);
  check_rejects "64 lanes rejected"
    (fun () -> ignore (Sim_packed.create ~n_lanes:(Sim_packed.lanes + 1) d))
    (Printf.sprintf "requested %d lanes, valid range is 1..%d"
       (Sim_packed.lanes + 1) Sim_packed.lanes);
  let one = Sim_packed.create ~n_lanes:1 d in
  check_int "single lane" 1 (Sim_packed.lanes_of one)

(* Explicitly requesting all [lanes] lanes takes the mask = -1 branch
   (all 63 bits set, which is the all-ones native int): every lane must
   drive, read back and account toggles independently — in particular
   lane 62, whose bit reaches the word's sign position. *)
let test_full_width_mask_edge () =
  let d = inverter_harness () in
  let psim = Sim_packed.create ~n_lanes:Sim_packed.lanes d in
  check_int "explicit full width" Sys.int_size (Sim_packed.lanes_of psim);
  let vs = Array.init Sim_packed.lanes (fun l -> l land 7) in
  Sim_packed.set_bus_lanes psim "a" vs;
  Sim_packed.eval psim;
  for l = 0 to Sim_packed.lanes - 1 do
    check_int
      (Printf.sprintf "lane %d inverted" l)
      (lnot vs.(l) land 7)
      (Sim_packed.read_bus_lane psim "out" l)
  done;
  (* per-bit toggles: bit [b] of the input bus toggled once in every
     lane whose payload has bit [b] set *)
  let bus = Ir.input_bus d.Ir.src "a" in
  Array.iteri
    (fun b net ->
      let expected =
        Array.fold_left
          (fun acc v -> acc + ((v lsr b) land 1))
          0 vs
      in
      check_int
        (Printf.sprintf "bit %d toggles" b)
        expected
        psim.Sim_packed.toggles.(net))
    bus

(* ---------------- multi-word lane boundaries ---------------- *)

(* Payloads pinned to both sides of every 63-lane word boundary of a
   252-lane Sim_multiword: lanes 62/63 straddle the first boundary,
   125/126 the second, 251 is the last lane of the last word. No lane
   may leak into a neighbour, and word-local toggle accounting must sum
   exactly. *)
let test_multiword_word_boundaries () =
  let d = inverter_harness () in
  let n = 4 * Sim_packed.lanes in
  let sim = Sim_multiword.create ~n_lanes:n d in
  check_int "252 lanes" n (Sim_multiword.lanes_of sim);
  check_int "4 words" 4 (Sim_multiword.words_of sim);
  let driven = [ 0; 62; 63; 64; 125; 126; 251 ] in
  let vs = Array.make n 0 in
  List.iteri (fun i l -> vs.(l) <- (i + 1) land 7) driven;
  Sim_multiword.set_bus_lanes sim "a" vs;
  Sim_multiword.eval sim;
  List.iter
    (fun l ->
      check_int
        (Printf.sprintf "lane %d inverted" l)
        (lnot vs.(l) land 7)
        (Sim_multiword.read_bus_lane sim "out" l))
    driven;
  (* neighbours of each boundary lane stay idle *)
  List.iter
    (fun l ->
      check_int
        (Printf.sprintf "idle lane %d" l)
        7
        (Sim_multiword.read_bus_lane sim "out" l))
    [ 1; 61; 65; 124; 127; 250 ];
  let bus = Ir.input_bus d.Ir.src "a" in
  Array.iteri
    (fun b net ->
      let expected =
        Array.fold_left (fun acc v -> acc + ((v lsr b) land 1)) 0 vs
      in
      check_int
        (Printf.sprintf "bit %d toggles across words" b)
        expected
        sim.Sim_multiword.toggles.(net))
    bus;
  (* re-driving the identical pattern adds no toggles *)
  let before = Array.copy sim.Sim_multiword.toggles in
  Sim_multiword.set_bus_lanes sim "a" vs;
  check_bool "no toggle on identical drive" true
    (before = sim.Sim_multiword.toggles)

(* extract_lane / per-lane reads at the word-boundary lanes of a
   partial last word (127 lanes = 2 words + 1 lane) *)
let test_multiword_partial_last_word () =
  let d = inverter_harness () in
  let sim = Sim_multiword.create ~n_lanes:127 d in
  check_int "3 words for 127 lanes" 3 (Sim_multiword.words_of sim);
  let vs = Array.make 127 0 in
  List.iter (fun l -> vs.(l) <- l land 7) [ 62; 63; 64; 125; 126 ];
  Sim_multiword.set_bus_lanes sim "a" vs;
  Sim_multiword.eval sim;
  List.iter
    (fun l ->
      check_int
        (Printf.sprintf "lane %d read" l)
        (lnot vs.(l) land 7)
        (Sim_multiword.read_bus_lane sim "out" l);
      let values = Sim_multiword.extract_lane sim l in
      let bus = Ir.input_bus d.Ir.src "a" in
      Array.iteri
        (fun b net ->
          check_bool
            (Printf.sprintf "lane %d extract bit %d" l b)
            ((vs.(l) lsr b) land 1 = 1)
            values.(net))
        bus)
    [ 62; 63; 64; 125; 126 ];
  check_rejects "128 lanes rejected at width 127"
    (fun () ->
      let module E = (val Slice.multiword 127) in
      ignore (E.create ~n_lanes:128 d))
    "requested 128 lanes, valid range is 1..127";
  check_rejects "beyond max_lanes rejected"
    (fun () -> ignore (Sim_multiword.create ~n_lanes:(Sim_multiword.max_lanes + 1) d))
    (Printf.sprintf "requested %d lanes, valid range is 1..%d"
       (Sim_multiword.max_lanes + 1) Sim_multiword.max_lanes)

(* ---------------- packed power accounting ---------------- *)

(* With a single lane, the packed Monte Carlo path must reproduce the
   scalar power estimate to float tolerance: same counters, same
   effective cycles. *)
let test_packed_power_single_lane () =
  let m =
    Macro_rtl.build lib
      (Macro_rtl.default ~rows:8 ~cols:16 ~mcr:1
         ~input_prec:Precision.int4 ~weight_prec:Precision.int4)
  in
  let run estimate create load stream =
    let rng = Rng.create 0xACC in
    let sim = create m.Macro_rtl.design in
    load rng sim;
    stream rng sim;
    estimate sim
  in
  let scalar =
    run
      (fun sim -> Power.estimate m.Macro_rtl.design lib sim ~freq_hz:5e8 ~vdd:0.9 ())
      Sim.create
      (fun rng sim ->
        Testbench.load_weights m sim ~copy:0
          (Testbench.random_weights rng m ~density:0.5);
        Sim.reset_stats sim)
      (fun rng sim ->
        Testbench.run_stream m sim ~rng ~macs:3 ~input_density:0.5)
  in
  let packed =
    run
      (fun sim ->
        Power.estimate_packed m.Macro_rtl.design lib sim ~freq_hz:5e8
          ~vdd:0.9 ())
      (Sim_packed.create ~n_lanes:1)
      (fun rng sim ->
        Testbench.load_weights_lanes m sim ~copy:0
          [| Testbench.random_weights rng m ~density:0.5 |];
        Sim_packed.reset_stats sim)
      (fun rng sim ->
        Testbench.run_stream_packed m sim ~rng ~macs:3 ~input_density:0.5)
  in
  let close a b =
    abs_float (a -. b) <= 1e-9 *. (abs_float a +. abs_float b +. 1.0)
  in
  check_bool "total power" true (close scalar.Power.total_w packed.Power.total_w);
  check_bool "dynamic power" true
    (close scalar.Power.dynamic_w packed.Power.dynamic_w);
  check_bool "clock power" true (close scalar.Power.clock_w packed.Power.clock_w);
  check_bool "energy/cycle" true
    (close scalar.Power.energy_per_cycle_fj packed.Power.energy_per_cycle_fj)

(* full-width Monte Carlo run: sane report, lanes× sample mass *)
let test_packed_power_full_width () =
  let m =
    Macro_rtl.build lib
      (Macro_rtl.default ~rows:8 ~cols:16 ~mcr:1
         ~input_prec:Precision.int4 ~weight_prec:Precision.int4)
  in
  let p =
    Design_point.measure_power_packed lib m ~freq_hz:5e8 ~vdd:0.9
      ~input_density:0.5 ~weight_density:0.5 ~macs:3
  in
  check_bool "positive total" true (p.Power.total_w > 0.0);
  check_bool "dynamic dominated sanity" true
    (p.Power.dynamic_w > 0.0 && p.Power.clock_w > 0.0)

(* ---------------- suite ---------------- *)

let () =
  Alcotest.run "sim_packed"
    [
      ( "popcount",
        [
          Alcotest.test_case "directed" `Quick test_popcount_directed;
          QCheck_alcotest.to_alcotest popcount_prop;
          QCheck_alcotest.to_alcotest popcount_multiword_prop;
        ] );
      ( "eval_word",
        [
          Alcotest.test_case "exhaustive truth tables vs scalar eval" `Quick
            test_eval_word_exhaustive;
        ] );
      ( "lane_edges",
        [
          Alcotest.test_case "lane 0 / lane 62 edges" `Quick test_lane_edges;
          Alcotest.test_case "lane count validation" `Quick
            test_lane_count_validation;
          Alcotest.test_case "full-width mask = -1 edge" `Quick
            test_full_width_mask_edge;
          Alcotest.test_case "multi-word 63-lane boundaries" `Quick
            test_multiword_word_boundaries;
          Alcotest.test_case "multi-word partial last word" `Quick
            test_multiword_partial_last_word;
        ] );
      ( "power",
        [
          Alcotest.test_case "single-lane packed == scalar estimate" `Quick
            test_packed_power_single_lane;
          Alcotest.test_case "full-width Monte Carlo report" `Quick
            test_packed_power_full_width;
        ] );
    ]
