(* Tests for the differential verification subsystem: the glitch-proof
   equivalence hold window, the spec fuzzer and shrinker, fault-injected
   differential checking, campaign determinism across job counts, the
   metamorphic properties and the PPA snapshot harness. *)

let lib = Library.n40 ()
let ctx = Ctx.of_parts lib (Scl.create lib)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---------------- Equiv: per-cycle hold window ---------------- *)

(* The classic broken-retime symptom: a register glitch that is only
   visible on some cycles. [with_toggle] XORs a free-running toggle flop
   into output bit 0 — the two designs agree on exactly half of all
   cycles, including every even-parity sample point. *)
let toggled_identity ~with_toggle =
  let ir = Ir.create () in
  let c = Builder.ctx_plain ir in
  let x = Ir.new_bus ir 4 in
  Ir.add_input ir "x" x;
  let out =
    if not with_toggle then Array.map (Builder.buf c) x
    else begin
      let q = Ir.new_net ir in
      Builder.dff_into c ~d:(Builder.inv c q) ~q;
      Array.mapi
        (fun i b -> if i = 0 then Builder.xor2 c b q else Builder.buf c b)
        x
    end
  in
  Ir.add_output ir "o" out;
  Ir.freeze ir

let test_broken_retime_caught () =
  let a = toggled_identity ~with_toggle:false in
  let b = toggled_identity ~with_toggle:true in
  match Equiv.check ~settle:8 ~hold:4 a b with
  | Equiv.Mismatch { cycle; bus; _ } ->
      (* both designs agree at the drain boundary itself (even parity);
         only the per-cycle watch inside the hold window sees the glitch *)
      check_bool "caught strictly inside the hold window" true
        (cycle > 8 && cycle <= 12);
      Alcotest.(check string) "on the output bus" "o" bus
  | Equiv.Equivalent _ ->
      Alcotest.fail "toggle glitch escaped the hold window"

let test_equiv_clean_pair_still_passes () =
  (* structurally different trees with identical function survive the
     stricter per-cycle comparison *)
  let cfg =
    Macro_rtl.default ~rows:8 ~cols:8 ~mcr:1 ~input_prec:Precision.int4
      ~weight_prec:Precision.int4
  in
  let a = (Macro_rtl.build lib cfg).Macro_rtl.design in
  let b =
    (Macro_rtl.build lib
       { cfg with
         Macro_rtl.tree = Adder_tree.Csa { fa_ratio = 1.0; reorder = true } })
      .Macro_rtl.design
  in
  match Equiv.check ~settle:12 ~hold:6 a b with
  | Equiv.Equivalent n -> check_bool "vectors" true (n > 0)
  | Equiv.Mismatch { bus; cycle; _ } ->
      Alcotest.fail
        (Printf.sprintf "clean pair diverged on %s at cycle %d" bus cycle)

(* ---------------- Specgen: fuzzer and shrinker ---------------- *)

let test_fuzzer_deterministic () =
  let a = Specgen.generate ~seed:42 ~count:64 in
  let b = Specgen.generate ~seed:42 ~count:64 in
  check_bool "same seed, same specs" true (a = b);
  let c = Specgen.generate ~seed:43 ~count:64 in
  check_bool "different seed, different campaign" true (a <> c)

let test_fuzzer_legal_and_stratified () =
  let specs = Specgen.generate ~seed:42 ~count:64 in
  let precs = Hashtbl.create 8 and rows = Hashtbl.create 8 in
  List.iter
    (fun (s : Spec.t) ->
      let wb = Precision.datapath_bits s.Spec.weight_prec in
      check_bool "rows floor" true (s.Spec.rows >= 2);
      check_bool "cols positive" true (s.Spec.cols >= wb);
      check_int "cols aligned to weight words" 0 (s.Spec.cols mod wb);
      check_bool "mcr positive" true (s.Spec.mcr >= 1);
      Hashtbl.replace precs (Precision.name s.Spec.input_prec) ();
      Hashtbl.replace rows s.Spec.rows ())
    specs;
  (* stratification: a 64-spec campaign touches every input precision and
     every row class, not just the bulk of a uniform draw *)
  check_int "all input precisions covered" 7 (Hashtbl.length precs);
  check_int "all row strata covered" 5 (Hashtbl.length rows)

let test_fuzzer_specs_compile () =
  List.iter
    (fun (s : Spec.t) ->
      ignore (Macro_rtl.build lib (Spec.initial_config s)))
    (List.filteri (fun i _ -> i < 12) (Specgen.generate ~seed:7 ~count:12))

(* every shrink candidate strictly decreases this measure — the
   termination argument for the greedy descent, checked on real specs *)
let measure (s : Spec.t) =
  s.Spec.rows + s.Spec.cols + (4 * s.Spec.mcr)
  + (2 * Precision.datapath_bits s.Spec.input_prec)
  + (2 * Precision.datapath_bits s.Spec.weight_prec)
  + (if s.Spec.preference <> Spec.Balanced then 1 else 0)
  + if s.Spec.weight_update_freq_hz <> s.Spec.mac_freq_hz then 1 else 0

let test_shrink_strictly_simpler () =
  List.iter
    (fun s ->
      List.iter
        (fun c ->
          let wb = Precision.datapath_bits c.Spec.weight_prec in
          check_bool "candidate legal" true (c.Spec.cols mod wb = 0);
          check_bool "candidate strictly simpler" true (measure c < measure s))
        (Specgen.shrink s))
    (Specgen.generate ~seed:3 ~count:24)

let test_shrink_reaches_minimal_reproducer () =
  let fails = Diffcheck.fails ~bug:Diffcheck.Retime_early_sample ~seed:3 ctx in
  let start =
    List.find fails (Specgen.generate ~seed:9 ~count:8)
  in
  let minimal, steps = Specgen.shrink_to_minimal ~fails start in
  check_bool "minimal still fails" true (fails minimal);
  check_bool "shrinking made progress" true (steps > 0);
  check_int "rows floor reached" 2 minimal.Spec.rows;
  (* fixpoint: no remaining candidate reproduces the failure *)
  check_bool "no candidate still fails" true
    (List.for_all (fun c -> not (fails c)) (Specgen.shrink minimal))

(* ---------------- Diffcheck: fault injection ---------------- *)

let spec ~rows ~cols ~prec =
  {
    Spec.rows;
    cols;
    mcr = 1;
    input_prec = prec;
    weight_prec = prec;
    mac_freq_hz = 800e6;
    weight_update_freq_hz = 800e6;
    vdd = 0.9;
    preference = Spec.Balanced;
  }

let test_diffcheck_clean () =
  List.iter
    (fun s ->
      let o = Diffcheck.check_spec ~seed:5 ctx s in
      check_bool "no failure" true (o.Diffcheck.failure = None);
      check_bool "checks performed" true (o.Diffcheck.checks > 0))
    [
      spec ~rows:8 ~cols:8 ~prec:Precision.int8;
      spec ~rows:4 ~cols:8 ~prec:Precision.int1;
      { (spec ~rows:8 ~cols:8 ~prec:Precision.int8) with
        Spec.input_prec = Precision.fp8 };
    ]

let test_diffcheck_catches_retime_bug () =
  check_bool "early sample caught" true
    (Diffcheck.fails ~bug:Diffcheck.Retime_early_sample ~seed:5 ctx
       (spec ~rows:8 ~cols:8 ~prec:Precision.int4))

let test_diffcheck_sign_bug_is_precision_dependent () =
  (* the dropped sign cycle only exists for multi-bit inputs: INT1 is
     unsigned, so the injected bug is a no-op there *)
  check_bool "caught at INT4" true
    (Diffcheck.fails ~bug:Diffcheck.Skip_sign_cycle ~seed:5 ctx
       (spec ~rows:8 ~cols:8 ~prec:Precision.int4));
  check_bool "invisible at INT1" false
    (Diffcheck.fails ~bug:Diffcheck.Skip_sign_cycle ~seed:5 ctx
       (spec ~rows:8 ~cols:8 ~prec:Precision.int1))

(* ---------------- Campaign: determinism across jobs ---------------- *)

let failure_key (f : Campaign.failure_report) =
  (f.Campaign.index, f.Campaign.original, f.Campaign.shrunk,
   f.Campaign.shrink_steps, f.Campaign.detail)

let test_campaign_jobs_invariant () =
  (* identical failure lists, shrunk reproducers and reports for any job
     count — per-spec seeds depend only on campaign seed and index *)
  let r1 =
    Campaign.run ~jobs:1 ~bug:Diffcheck.Retime_early_sample ~seed:11
      ~count:6 ctx
  in
  let r4 =
    Campaign.run ~jobs:4 ~bug:Diffcheck.Retime_early_sample ~seed:11
      ~count:6 ctx
  in
  check_bool "failures found" true (r1.Campaign.failures <> []);
  check_bool "failure lists identical" true
    (List.map failure_key r1.Campaign.failures
    = List.map failure_key r4.Campaign.failures);
  check_int "check counts identical" r1.Campaign.checks r4.Campaign.checks;
  Alcotest.(check string)
    "rendered reports identical"
    (Campaign.describe r1) (Campaign.describe r4)

let test_campaign_clean_pass () =
  let r = Campaign.run ~jobs:2 ~seed:5 ~count:10 ctx in
  check_bool "clean" true (Campaign.clean r);
  check_bool "properties ran" true (r.Campaign.properties <> []);
  check_bool "verdict rendered" true
    (contains (Campaign.describe r) "verdict: PASS")

let test_campaign_injected_bug_reported () =
  let r =
    Campaign.run ~jobs:2 ~bug:Diffcheck.Skip_sign_cycle ~seed:11 ~count:8
      ctx
  in
  check_bool "not clean" true (not (Campaign.clean r));
  List.iter
    (fun (f : Campaign.failure_report) ->
      let fails =
        Diffcheck.fails ~bug:Diffcheck.Skip_sign_cycle
          ~seed:(Campaign.spec_seed ~seed:11 f.Campaign.index) ctx
      in
      check_bool "shrunk reproducer still fails" true (fails f.Campaign.shrunk);
      check_bool "shrunk reproducer is a fixpoint" true
        (List.for_all (fun c -> not (fails c))
           (Specgen.shrink f.Campaign.shrunk)))
    r.Campaign.failures

(* ---------------- Metamorph ---------------- *)

let test_metamorphic_moves_preserve_function () =
  List.iter
    (fun (r : Metamorph.result) ->
      check_bool (r.Metamorph.name ^ ": " ^ r.Metamorph.detail) true
        r.Metamorph.ok)
    (Metamorph.check_moves ~jobs:2 ~seed:13 ctx
       (spec ~rows:8 ~cols:8 ~prec:Precision.int4))

let test_lut_monotonicity () =
  List.iter
    (fun (r : Metamorph.result) ->
      check_bool (r.Metamorph.name ^ ": " ^ r.Metamorph.detail) true
        r.Metamorph.ok)
    (Metamorph.lut_monotonicity ctx)

(* ---------------- Snapshot ---------------- *)

let test_snapshot_stable_across_jobs () =
  let a = Snapshot.render (Snapshot.fingerprint ~jobs:1 ctx Snapshot.canonical_specs) in
  let b = Snapshot.render (Snapshot.fingerprint ~jobs:4 ctx Snapshot.canonical_specs) in
  Alcotest.(check string) "rendering job-count invariant" a b;
  check_bool "self-diff empty" true (Snapshot.diff ~expected:a ~actual:b = None)

let test_snapshot_perturbation_diff_readable () =
  let entries = Snapshot.fingerprint ~jobs:1 ctx Snapshot.canonical_specs in
  let expected = Snapshot.render entries in
  let perturbed =
    List.mapi
      (fun i (e : Snapshot.entry) ->
        if i = 0 then { e with Snapshot.crit_ps = e.Snapshot.crit_ps +. 7.0 }
        else e)
      entries
  in
  match Snapshot.diff ~expected ~actual:(Snapshot.render perturbed) with
  | None -> Alcotest.fail "perturbed LUT fingerprint must fail the diff"
  | Some report ->
      check_bool "names the damage" true
        (contains report "1 of 4 fingerprints shifted");
      check_bool "shows recorded line" true (contains report "- recorded:");
      check_bool "shows measured line" true (contains report "+ measured:")

let test_snapshot_roundtrip_and_missing () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "syndcim-snap-test"
  in
  let path = Filename.concat dir Snapshot.file in
  if Sys.file_exists path then Sys.remove path;
  (match Snapshot.check ~jobs:2 ~dir ctx with
  | Error msg ->
      check_bool "missing snapshot names the update command" true
        (contains msg "--update-snapshots")
  | Ok _ -> Alcotest.fail "missing snapshot must be an error");
  let written = Snapshot.update ~jobs:2 ~dir ctx in
  Alcotest.(check string) "path" path written;
  (match Snapshot.check ~jobs:2 ~dir ctx with
  | Ok n -> check_int "fingerprints" (List.length Snapshot.canonical_specs) n
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

let () =
  Alcotest.run "verify"
    [
      ( "equiv",
        [
          Alcotest.test_case "broken retime caught" `Quick
            test_broken_retime_caught;
          Alcotest.test_case "clean pair passes" `Quick
            test_equiv_clean_pair_still_passes;
        ] );
      ( "specgen",
        [
          Alcotest.test_case "deterministic" `Quick test_fuzzer_deterministic;
          Alcotest.test_case "legal + stratified" `Quick
            test_fuzzer_legal_and_stratified;
          Alcotest.test_case "specs compile" `Quick test_fuzzer_specs_compile;
          Alcotest.test_case "shrink strictly simpler" `Quick
            test_shrink_strictly_simpler;
          Alcotest.test_case "shrink to minimal" `Quick
            test_shrink_reaches_minimal_reproducer;
        ] );
      ( "diffcheck",
        [
          Alcotest.test_case "clean specs" `Quick test_diffcheck_clean;
          Alcotest.test_case "retime bug caught" `Quick
            test_diffcheck_catches_retime_bug;
          Alcotest.test_case "sign bug precision-dependent" `Quick
            test_diffcheck_sign_bug_is_precision_dependent;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "jobs-invariant" `Quick
            test_campaign_jobs_invariant;
          Alcotest.test_case "clean pass" `Quick test_campaign_clean_pass;
          Alcotest.test_case "injected bug reported" `Quick
            test_campaign_injected_bug_reported;
        ] );
      ( "metamorph",
        [
          Alcotest.test_case "moves preserve function" `Quick
            test_metamorphic_moves_preserve_function;
          Alcotest.test_case "LUT monotonicity" `Quick test_lut_monotonicity;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "stable across jobs" `Quick
            test_snapshot_stable_across_jobs;
          Alcotest.test_case "perturbation diff" `Quick
            test_snapshot_perturbation_diff_readable;
          Alcotest.test_case "roundtrip + missing" `Quick
            test_snapshot_roundtrip_and_missing;
        ] );
    ]
