(* Tests for the multi-spec-oriented searcher (Algorithm 1): spec
   plumbing, design-point evaluation, timing-closure behaviour, latency
   recovery, preference fine-tuning and the Pareto sweep. Small arrays
   keep these fast while exercising every step. *)

let lib = Library.n40 ()
let scl = Scl.create lib

let check_bool = Alcotest.(check bool)

(* a small spec that the default config misses and techniques fix *)
let spec ?(rows = 16) ?(cols = 16) ?(freq = 900e6) ?(pref = Spec.Balanced) ()
    =
  {
    Spec.rows;
    cols;
    mcr = 1;
    input_prec = Precision.int8;
    weight_prec = Precision.int8;
    mac_freq_hz = freq;
    weight_update_freq_hz = freq;
    vdd = 0.9;
    preference = pref;
  }

let test_spec_budget () =
  let s = spec () in
  let b = Spec.nominal_budget_ps s lib.Library.node in
  let sb = Spec.search_budget_ps s lib.Library.node in
  check_bool "budget below period" true (b < 1e12 /. s.Spec.mac_freq_hz);
  check_bool "search budget is derated" true
    (Float.abs (sb -. (b *. (1.0 -. Spec.wire_derate))) < 1e-6)

let test_initial_config_from_spec () =
  let s = spec ~rows:32 ~cols:16 () in
  let cfg = Spec.initial_config s in
  Alcotest.(check int) "rows" 32 cfg.Macro_rtl.rows;
  Alcotest.(check int) "cols" 16 cfg.Macro_rtl.cols;
  check_bool "default tree is compressor CSA" true
    (cfg.Macro_rtl.tree = Adder_tree.Csa { fa_ratio = 0.0; reorder = false })

let test_design_point_evaluation () =
  let s = spec ~freq:500e6 () in
  let p = Design_point.evaluate lib s (Spec.initial_config s) in
  check_bool "power positive" true (p.Design_point.power_w > 0.0);
  check_bool "area positive" true (p.Design_point.area_um2 > 0.0);
  check_bool "tops consistent" true
    (Float.abs
       (p.Design_point.tops
       -. (2.0 *. 16.0 *. 2.0 *. 500e6 /. 8.0 /. 1e12))
    < 1e-9);
  check_bool "meets at 500MHz" true p.Design_point.meets_mac

let test_critical_stage_classification () =
  (* with the OFU unpipelined and everything else registered, the OFU owns
     the critical path *)
  let s = spec ~freq:2000e6 () in
  let cfg = Spec.initial_config s in
  let p = Design_point.evaluate lib s cfg in
  check_bool "stage is a known one" true
    (match Design_point.critical_stage p with
    | Design_point.Mac_path | Design_point.Ofu_path | Design_point.Sa_path
    | Design_point.Align_path ->
        true)

let test_search_closes_easy () =
  let r = Searcher.search lib scl (spec ~freq:300e6 ()) in
  check_bool "closed" true r.Searcher.timing_closed;
  check_bool "final meets" true r.Searcher.final.Design_point.meets_mac

let test_search_applies_techniques_when_tight () =
  let r = Searcher.search lib scl (spec ~freq:1000e6 ()) in
  check_bool "closed at 1 GHz" true r.Searcher.timing_closed;
  check_bool "needed techniques" true (List.length r.Searcher.applied >= 1)

let test_search_gives_up_gracefully () =
  let r = Searcher.search lib scl (spec ~freq:5000e6 ()) in
  check_bool "not closed at 5 GHz" false r.Searcher.timing_closed;
  check_bool "still returns a best effort" true
    (r.Searcher.final.Design_point.crit_ps > 0.0)

let test_search_visits_recorded () =
  let r = Searcher.search lib scl (spec ~freq:1000e6 ()) in
  check_bool "visited includes final-like points" true
    (List.length r.Searcher.visited >= List.length r.Searcher.applied)

let test_latency_recovery_at_loose_spec () =
  (* at a very loose clock the fusion step should remove registers *)
  let r = Searcher.search lib scl (spec ~freq:200e6 ()) in
  let cfg = r.Searcher.final.Design_point.cfg in
  check_bool "some pipeline register removed" true
    ((not cfg.Macro_rtl.reg_after_tree)
    || not cfg.Macro_rtl.reg_sa_to_ofu)

let test_preferences_affect_outcome () =
  let power = Searcher.search lib scl (spec ~freq:700e6 ~pref:Spec.Prefer_power ()) in
  let area = Searcher.search lib scl (spec ~freq:700e6 ~pref:Spec.Prefer_area ()) in
  let pw (r : Searcher.result) = r.Searcher.final.Design_point.power_w in
  let ar (r : Searcher.result) = r.Searcher.final.Design_point.area_um2 in
  (* each preference should be at least as good on its own axis *)
  check_bool "power preference not worse on power" true
    (pw power <= pw area +. 1e-6 || ar area <= ar power +. 1e-6)

let test_technique_names () =
  (* every constructor prints something non-empty and distinct *)
  let names =
    List.map Searcher.technique_name
      [
        Searcher.Tt1_faster_adder Adder_tree.Rca_tree;
        Searcher.Tt1_faster_sa Shift_adder.Carry_save;
        Searcher.Tt1_faster_ofu_adder;
        Searcher.Tt2_retime_tree;
        Searcher.Tt3_split_column 2;
        Searcher.Tt4_retime_ofu;
        Searcher.Tt5_pipe_ofu;
        Searcher.Align_pipe 2;
        Searcher.Fuse_tree_sa;
        Searcher.Fuse_sa_ofu;
        Searcher.Ft_substitute "x";
      ]
  in
  check_bool "non-empty" true (List.for_all (fun s -> String.length s > 0) names);
  Alcotest.(check int) "distinct" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_final_design_verifies () =
  let r = Searcher.search lib scl (spec ~freq:900e6 ()) in
  Testbench.verify r.Searcher.final.Design_point.macro ~seed:3 ~batches:3

let test_pareto_sweep () =
  let front, cloud = Searcher.pareto_sweep lib scl (spec ~freq:800e6 ()) in
  check_bool "cloud non-empty" true (List.length cloud >= 3);
  check_bool "frontier non-empty" true (List.length front >= 1);
  check_bool "frontier subset of cloud" true
    (List.for_all (fun p -> List.memq p cloud) front);
  (* no frontier point dominated by a cloud point on all three axes *)
  let obj (p : Design_point.t) =
    [| p.Design_point.power_w; p.Design_point.area_um2; p.Design_point.crit_ps |]
  in
  check_bool "frontier sound" true
    (List.for_all
       (fun f ->
         not (List.exists (fun c -> Pareto.dominates (obj c) (obj f)) cloud))
       front)

let test_pareto_sweep_parallel_deterministic () =
  (* the parallel sweep must be bit-for-bit the sequential sweep:
     evaluations are pure and the pool preserves order *)
  let s = spec ~freq:800e6 () in
  let f1, c1 = Searcher.pareto_sweep ~jobs:1 lib scl s in
  let f4, c4 = Searcher.pareto_sweep ~jobs:4 lib scl s in
  Alcotest.(check int) "frontier size" (List.length f1) (List.length f4);
  Alcotest.(check int) "cloud size" (List.length c1) (List.length c4);
  let same (a : Design_point.t) (b : Design_point.t) =
    a.Design_point.cfg = b.Design_point.cfg
    && a.Design_point.power_w = b.Design_point.power_w
    && a.Design_point.area_um2 = b.Design_point.area_um2
    && a.Design_point.crit_ps = b.Design_point.crit_ps
  in
  List.iter2
    (fun a b -> check_bool "frontier point identical" true (same a b))
    f1 f4;
  List.iter2
    (fun a b -> check_bool "cloud point identical" true (same a b))
    c1 c4

(* ---------------- evaluation cache ---------------- *)

let test_cache_hit () =
  let cache = Eval_cache.create () in
  let s = spec ~freq:500e6 () in
  let cfg = Spec.initial_config s in
  let p1 = Eval_cache.evaluate cache lib s cfg in
  let p2 = Eval_cache.evaluate cache lib s cfg in
  check_bool "second evaluation is the stored point" true (p1 == p2);
  let st = Eval_cache.stats cache in
  Alcotest.(check int) "one miss" 1 st.Eval_cache.misses;
  Alcotest.(check int) "one hit" 1 st.Eval_cache.hits;
  Alcotest.(check int) "one entry" 1 (Eval_cache.size cache)

let test_cache_distinct_operating_points () =
  (* same config under different operating points must never alias *)
  let s = spec ~freq:500e6 () in
  let cfg = Spec.initial_config s in
  let s_faster = { s with Spec.mac_freq_hz = 900e6 } in
  let s_lower_vdd = { s with Spec.vdd = 0.7 } in
  check_bool "freq in key" true
    (Eval_cache.key s cfg <> Eval_cache.key s_faster cfg);
  check_bool "vdd in key" true
    (Eval_cache.key s cfg <> Eval_cache.key s_lower_vdd cfg);
  let cache = Eval_cache.create () in
  ignore (Eval_cache.evaluate cache lib s cfg);
  ignore (Eval_cache.evaluate cache lib s_faster cfg);
  ignore (Eval_cache.evaluate cache lib s_lower_vdd cfg);
  let st = Eval_cache.stats cache in
  Alcotest.(check int) "no spurious hits" 0 st.Eval_cache.hits;
  Alcotest.(check int) "three misses" 3 st.Eval_cache.misses

let test_cache_preference_shared () =
  (* the preference steers the walk but not an evaluation, so walks under
     different preferences share cache entries *)
  let s = spec ~freq:500e6 ~pref:Spec.Prefer_power () in
  let cfg = Spec.initial_config s in
  Alcotest.(check string)
    "preference not in key"
    (Eval_cache.key s cfg)
    (Eval_cache.key { s with Spec.preference = Spec.Prefer_area } cfg)

let test_cache_stats_arithmetic () =
  Alcotest.(check int) "zero hits" 0 Eval_cache.zero_stats.Eval_cache.hits;
  Alcotest.(check int) "zero misses" 0 Eval_cache.zero_stats.Eval_cache.misses;
  let c =
    Eval_cache.combine_stats
      { Eval_cache.hits = 3; misses = 5 }
      { Eval_cache.hits = 4; misses = 7 }
  in
  Alcotest.(check int) "combined hits" 7 c.Eval_cache.hits;
  Alcotest.(check int) "combined misses" 12 c.Eval_cache.misses;
  (* folding with the zero element is how batch rolls per-spec stats up *)
  let folded =
    List.fold_left Eval_cache.combine_stats Eval_cache.zero_stats
      [
        { Eval_cache.hits = 1; misses = 0 };
        { Eval_cache.hits = 0; misses = 2 };
        { Eval_cache.hits = 5; misses = 5 };
      ]
  in
  Alcotest.(check int) "folded hits" 6 folded.Eval_cache.hits;
  Alcotest.(check int) "folded misses" 7 folded.Eval_cache.misses

let test_cache_keys_distinct_over_lattice () =
  (* every lattice configuration must key differently: a collision would
     silently alias two candidates and corrupt the sweep *)
  let s = spec () in
  let keys = List.map (Eval_cache.key s) (Searcher.exploration_lattice s) in
  Alcotest.(check int)
    "no key collisions" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_cache_describe () =
  Alcotest.(check string)
    "hit-rate line"
    "eval cache: 3 hits / 1 misses (75 % hit rate)"
    (Eval_cache.describe { Eval_cache.hits = 3; misses = 1 });
  (* the empty cache must not divide by zero *)
  Alcotest.(check string)
    "zero-total line" "eval cache: 0 hits / 0 misses (0 % hit rate)"
    (Eval_cache.describe Eval_cache.zero_stats)

let test_cache_no_eviction () =
  (* the per-sweep cache is unbounded by design: every distinct config
     stays resident (spread across shards) and revisits always hit *)
  let s = spec ~freq:500e6 () in
  let cfgs = Searcher.exploration_lattice s in
  let cache = Eval_cache.create () in
  List.iter (fun cfg -> ignore (Eval_cache.evaluate cache lib s cfg)) cfgs;
  Alcotest.(check int)
    "every insert resident" (List.length cfgs) (Eval_cache.size cache);
  List.iter (fun cfg -> ignore (Eval_cache.evaluate cache lib s cfg)) cfgs;
  let st = Eval_cache.stats cache in
  Alcotest.(check int) "revisits all hit" (List.length cfgs) st.Eval_cache.hits;
  Alcotest.(check int)
    "size unchanged by revisits" (List.length cfgs) (Eval_cache.size cache)

let test_cache_concurrent_evaluate () =
  (* domains racing on one key: each call counts exactly one hit or miss,
     one entry survives, and every caller gets the stored point *)
  let cache = Eval_cache.create () in
  let s = spec ~freq:500e6 () in
  let cfg = Spec.initial_config s in
  let points =
    Pool.parallel_map ~jobs:4
      (fun _ -> Eval_cache.evaluate cache lib s cfg)
      (List.init 8 Fun.id)
  in
  let st = Eval_cache.stats cache in
  Alcotest.(check int)
    "every call accounted" 8
    (st.Eval_cache.hits + st.Eval_cache.misses);
  Alcotest.(check int) "single entry" 1 (Eval_cache.size cache);
  match points with
  | first :: rest ->
      List.iter
        (fun p -> check_bool "all callers share the stored point" true (p == first))
        rest
  | [] -> Alcotest.fail "pool returned nothing"

let test_lattice_legality () =
  let cfgs = Searcher.exploration_lattice (spec ()) in
  check_bool "non-trivial lattice" true (List.length cfgs >= 8);
  List.iter
    (fun (cfg : Macro_rtl.config) ->
      Mulmux.check_mcr cfg.Macro_rtl.mul_kind cfg.Macro_rtl.mcr)
    cfgs

let () =
  Alcotest.run "search"
    [
      ( "spec",
        [
          Alcotest.test_case "budget" `Quick test_spec_budget;
          Alcotest.test_case "initial config" `Quick
            test_initial_config_from_spec;
        ] );
      ( "design_point",
        [
          Alcotest.test_case "evaluation" `Quick test_design_point_evaluation;
          Alcotest.test_case "stage classification" `Quick
            test_critical_stage_classification;
        ] );
      ( "algorithm1",
        [
          Alcotest.test_case "closes easy spec" `Quick test_search_closes_easy;
          Alcotest.test_case "applies techniques" `Quick
            test_search_applies_techniques_when_tight;
          Alcotest.test_case "gives up gracefully" `Quick
            test_search_gives_up_gracefully;
          Alcotest.test_case "records visits" `Quick
            test_search_visits_recorded;
          Alcotest.test_case "latency recovery" `Quick
            test_latency_recovery_at_loose_spec;
          Alcotest.test_case "preferences" `Slow
            test_preferences_affect_outcome;
          Alcotest.test_case "technique names" `Quick test_technique_names;
          Alcotest.test_case "final verifies" `Quick
            test_final_design_verifies;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "sweep" `Slow test_pareto_sweep;
          Alcotest.test_case "parallel determinism" `Slow
            test_pareto_sweep_parallel_deterministic;
          Alcotest.test_case "lattice legality" `Quick test_lattice_legality;
        ] );
      ( "eval_cache",
        [
          Alcotest.test_case "hit returns stored point" `Quick test_cache_hit;
          Alcotest.test_case "operating points never alias" `Quick
            test_cache_distinct_operating_points;
          Alcotest.test_case "preference shares entries" `Quick
            test_cache_preference_shared;
          Alcotest.test_case "stats arithmetic" `Quick
            test_cache_stats_arithmetic;
          Alcotest.test_case "lattice keys distinct" `Quick
            test_cache_keys_distinct_over_lattice;
          Alcotest.test_case "describe" `Quick test_cache_describe;
          Alcotest.test_case "no eviction" `Quick test_cache_no_eviction;
          Alcotest.test_case "concurrent evaluate" `Quick
            test_cache_concurrent_evaluate;
        ] );
    ]
