(* Tests of the experiment harness: each reproduced table/figure at small
   scale, asserting the *shapes* the paper reports. *)

let lib = Library.n40 ()
let scl = Scl.create lib
let ctx = Ctx.of_parts lib scl
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- baselines ---------------- *)

let small_spec =
  {
    Spec.rows = 16;
    cols = 16;
    mcr = 2;
    input_prec = Precision.int8;
    weight_prec = Precision.int8;
    mac_freq_hz = 800e6;
    weight_update_freq_hz = 800e6;
    vdd = 0.9;
    preference = Spec.Balanced;
  }

let test_baselines_run_and_verify () =
  let all = Baselines.all ctx small_spec in
  check_int "three baselines" 3 (List.length all);
  List.iter
    (fun (_, (p : Design_point.t)) ->
      check_bool "unsized" true (p.Design_point.upsized = 0);
      Testbench.verify p.Design_point.macro ~seed:2 ~batches:2)
    all

let test_autodcim_uses_template_choices () =
  let p = Baselines.autodcim lib small_spec in
  check_bool "1T pass-gate mux" true
    (p.Design_point.cfg.Macro_rtl.mul_kind = Cell.Pass_1t);
  check_bool "RCA tree" true
    (p.Design_point.cfg.Macro_rtl.tree = Adder_tree.Rca_tree)

let test_compressor_baseline_lower_power_than_rca () =
  (* paper claim: compressor CSA trees are more power-efficient than the
     conventional RCA trees at the same spec (both unsized) *)
  let rca = Baselines.rca_conventional lib small_spec in
  let comp = Baselines.pure_compressor lib small_spec in
  check_bool "compressor saves power" true
    (comp.Design_point.power_w < rca.Design_point.power_w);
  check_bool "compressor saves area" true
    (comp.Design_point.area_um2 < rca.Design_point.area_um2)

(* ---------------- Table I ---------------- *)

let test_table1 () =
  let e = Table1.demonstrate ctx in
  check_bool "end-to-end demonstrated" true e.Table1.end_to_end_signoff;
  check_bool "FP demonstrated" true e.Table1.fp_compile_verified;
  check_bool "every subcircuit selectable" true
    (List.for_all (fun (_, n) -> n >= 2) e.Table1.selectable_variants);
  check_bool "spec-oriented demonstrated" true
    (e.Table1.techniques_applied >= 1);
  let t = Table1.table e in
  check_int "five compilers" 5 (List.length t.Table.rows)

(* ---------------- Fig 7 (small) ---------------- *)

let test_fig7_shape () =
  let points = Fig7.run ~dims:[ 16; 32 ] ctx in
  check_int "grid size" 8 (List.length points);
  (* efficiency grows with array size for each precision *)
  List.iter
    (fun prec ->
      let eff dim =
        match
          List.find_opt
            (fun (p : Fig7.point) ->
              p.Fig7.dim = dim && p.Fig7.precision = prec)
            points
        with
        | Some p -> p.Fig7.tops_w_1b
        | None -> Alcotest.fail "missing point"
      in
      check_bool
        (prec ^ " efficiency grows with size")
        true
        (eff 32 > eff 16))
    [ "INT4"; "INT8"; "FP8"; "BF16" ];
  (* FP overhead ordering: BF16 costs more than FP8, both more than INT8 *)
  match Fig7.fp_overheads points ~dim:32 with
  | Some (fp8, bf16) ->
      (* FP8 rides the same 8-bit datapath as INT8, so its overhead is the
         aligner alone: near parity (independently searched configs add a
         few percent of noise either way) *)
      check_bool "FP8 near parity with INT8" true (fp8 > -8.0 && fp8 < 25.0);
      check_bool "BF16 over FP8" true (bf16 > fp8);
      check_bool "overheads moderate (<60%)" true (bf16 < 60.0)
  | None -> Alcotest.fail "missing overhead row"

(* ---------------- Fig 9 ---------------- *)

let test_fig9_shmoo_shape () =
  let t = Fig9.shmoo lib.Library.node ~crit_ps:950.0 in
  (* pass region is down-left closed: if (v, f) passes then (v+, f-) pass *)
  let nv = Array.length t.Fig9.vdds and nf = Array.length t.Fig9.freqs_mhz in
  for vi = 0 to nv - 1 do
    for fi = 0 to nf - 1 do
      if t.Fig9.pass.(vi).(fi) then begin
        if vi + 1 < nv then
          check_bool "higher V passes" true t.Fig9.pass.(vi + 1).(fi);
        if fi > 0 then
          check_bool "lower f passes" true t.Fig9.pass.(vi).(fi - 1)
      end
    done
  done;
  (* fmax extraction *)
  (match Fig9.fmax_mhz t ~vdd:1.2 with
  | Some f -> check_bool "1.2V GHz-class" true (f >= 900.0)
  | None -> Alcotest.fail "no pass at 1.2V");
  match Fig9.fmax_mhz t ~vdd:0.7 with
  | Some f -> check_bool "0.7V in the hundreds" true (f >= 200.0 && f <= 700.0)
  | None -> Alcotest.fail "no pass at 0.7V"

(* ---------------- Table II scaling ---------------- *)

let test_table2_rows_shape () =
  (* rows render for the published designs plus a synthetic this-design *)
  let a = Compiler.compile ctx small_spec in
  let d =
    {
      Table2.artifact = a;
      array_kb = 4.0;
      area_mm2 = 0.1;
      peak_ghz = 1.0;
      tops_1b = 8.0;
      tops_mm2_1b = 80.0;
      tops_w_1b = 1500.0;
    }
  in
  let rows = Table2.rows d in
  check_int "five rows" 5 (List.length rows);
  check_bool "last row is this design" true
    (match List.rev rows with
    | last :: _ -> List.hd last = "This Design (measured)"
    | [] -> false)

(* ---------------- ablations (small) ---------------- *)

let test_ablation_adder_trees () =
  let pts = Ablation.adder_trees ~heights:[ 16; 32 ] ctx in
  check_bool "rows present" true (List.length pts >= 10);
  (* at each height the RCA baseline is the slowest topology *)
  List.iter
    (fun h ->
      let at = List.filter (fun (p : Ablation.tree_point) -> p.Ablation.rows = h) pts in
      let rca =
        List.find (fun (p : Ablation.tree_point) -> p.Ablation.topology = "rca") at
      in
      (* the conventional tree is never on the frontier: some CSA beats it
         on delay, area and energy simultaneously *)
      check_bool "rca dominated" true
        (List.exists
           (fun (p : Ablation.tree_point) ->
             p.Ablation.topology <> "rca"
             && p.Ablation.delay_ps < rca.Ablation.delay_ps
             && p.Ablation.area_um2 < rca.Ablation.area_um2
             && p.Ablation.energy_fj < rca.Ablation.energy_fj)
           at))
    [ 16; 32 ]

let test_ablation_placements () =
  let pts = Ablation.placements ~dims:[ 16 ] ctx in
  check_int "two styles" 2 (List.length pts);
  let get style =
    List.find (fun (p : Ablation.placement_point) -> p.Ablation.style = style) pts
  in
  check_bool "sdp wins wirelength" true
    ((get "sdp").Ablation.wirelength_mm < (get "scattered").Ablation.wirelength_mm)

let test_ablation_search_ladder () =
  let pts =
    Ablation.search_ladder ~freqs_mhz:[ 300.; 900. ] ctx
      { small_spec with Spec.rows = 16; cols = 16 }
  in
  check_int "two rungs" 2 (List.length pts);
  let p300 = List.nth pts 0 and p900 = List.nth pts 1 in
  check_bool "both closed" true (p300.Ablation.closed && p900.Ablation.closed);
  check_bool "tighter clock needs at least as many techniques" true
    (List.length p900.Ablation.techniques
    >= List.length p300.Ablation.techniques)

let test_ablation_mcr () =
  let pts = Ablation.mcr_sweep ~dim:16 ctx in
  let tg mcr =
    List.find
      (fun (p : Ablation.mcr_point) ->
        p.Ablation.mcr = mcr && p.Ablation.mul_variant = "MUL_TGNOR")
      pts
  in
  (* raising MCR raises on-macro memory density (the paper's motivation) *)
  check_bool "density grows with MCR" true
    ((tg 2).Ablation.density_kb_per_mm2 > (tg 1).Ablation.density_kb_per_mm2
    && (tg 4).Ablation.density_kb_per_mm2
       > (tg 2).Ablation.density_kb_per_mm2);
  (* at much less than proportional area cost *)
  check_bool "area grows sub-linearly" true
    ((tg 4).Ablation.area_um2 < 2.5 *. (tg 1).Ablation.area_um2);
  (* the fused OAI22 variant exists only for MCR <= 2 *)
  check_bool "fused variant bounded" true
    (not
       (List.exists
          (fun (p : Ablation.mcr_point) ->
            p.Ablation.mcr = 4 && p.Ablation.mul_variant = "MUL_OAI22F")
          pts))

(* ---------------- Fig 8 (small spec) ---------------- *)

let test_fig8_machinery () =
  let front, cloud = Searcher.pareto_sweep lib scl small_spec in
  check_bool "cloud" true (List.length cloud >= 3);
  check_bool "front" true (List.length front >= 1);
  (* every baseline is either dominated on (power, area) or violates the
     spec the searched designs meet *)
  List.iter
    (fun (_, (b : Design_point.t)) ->
      let beaten =
        (not b.Design_point.meets_mac)
        || List.exists
             (fun (f : Design_point.t) ->
               f.Design_point.power_w <= b.Design_point.power_w
               && f.Design_point.area_um2 <= b.Design_point.area_um2)
             front
      in
      check_bool "searcher at least matches baseline" true beaten)
    (Baselines.all ctx small_spec)

let () =
  Alcotest.run "eval"
    [
      ( "baselines",
        [
          Alcotest.test_case "run and verify" `Quick
            test_baselines_run_and_verify;
          Alcotest.test_case "autodcim template" `Quick
            test_autodcim_uses_template_choices;
          Alcotest.test_case "compressor beats RCA on power" `Quick
            test_compressor_baseline_lower_power_than_rca;
        ] );
      ("table1", [ Alcotest.test_case "feature matrix" `Slow test_table1 ]);
      ("fig7", [ Alcotest.test_case "shape" `Slow test_fig7_shape ]);
      ("fig9", [ Alcotest.test_case "shmoo shape" `Quick test_fig9_shmoo_shape ]);
      ("table2", [ Alcotest.test_case "rows" `Slow test_table2_rows_shape ]);
      ( "ablations",
        [
          Alcotest.test_case "adder trees" `Slow test_ablation_adder_trees;
          Alcotest.test_case "placements" `Quick test_ablation_placements;
          Alcotest.test_case "search ladder" `Slow
            test_ablation_search_ladder;
          Alcotest.test_case "MCR sweep" `Quick test_ablation_mcr;
        ] );
      ("fig8", [ Alcotest.test_case "machinery" `Slow test_fig8_machinery ]);
    ]
