(* Tests for the extension features: runtime bit-width flexibility,
   random-vector equivalence checking, and subcircuit-library
   persistence. *)

let lib = Library.n40 ()
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- runtime bit-width flexibility ---------------- *)

let narrow_check ~sa_kind ~db ~active =
  let cfg =
    {
      (Macro_rtl.default ~rows:8 ~cols:8 ~mcr:1 ~input_prec:(Precision.Int db)
         ~weight_prec:Precision.int8)
      with
      Macro_rtl.sa_kind;
    }
  in
  let m = Macro_rtl.build lib cfg in
  let sim = Sim.create m.Macro_rtl.design in
  let rng = Rng.create (db + active) in
  let weights = Testbench.random_weights rng m ~density:1.0 in
  Testbench.load_weights m sim ~copy:0 weights;
  for _ = 1 to 8 do
    let inputs =
      Array.init 8 (fun _ ->
          if active = 1 then Rng.int rng 2 else Rng.signed rng ~width:active)
    in
    let r = Testbench.run_mac ~active_bits:active m sim ~inputs in
    Array.iteri
      (fun g got ->
        let expected = Golden.dot ~weights:weights.(g) ~inputs in
        check_int
          (Printf.sprintf "%s db=%d active=%d word=%d"
             (Shift_adder.kind_name sa_kind) db active g)
          expected got)
      r
  done

let test_narrow_precisions () =
  List.iter
    (fun sa_kind ->
      List.iter
        (fun active -> narrow_check ~sa_kind ~db:8 ~active)
        [ 8; 4; 2; 1 ])
    [ Shift_adder.Lsb_right; Shift_adder.Ripple; Shift_adder.Carry_save ]

let test_narrow_throughput_model () =
  (* an INT8 macro in INT4 mode takes half the serial cycles *)
  let cfg =
    Macro_rtl.default ~rows:8 ~cols:8 ~mcr:1 ~input_prec:Precision.int8
      ~weight_prec:Precision.int8
  in
  let m = Macro_rtl.build lib cfg in
  check_int "full cycles" 8 (Macro_rtl.serial_cycles m);
  (* run_mac with active_bits:4 executes 4 accumulation cycles — checked
     implicitly by correctness above; here we check the documented ratio *)
  check_bool "narrow mode halves serial work" true
    (Macro_rtl.serial_cycles m / 2 = 4)

(* ---------------- equivalence checking ---------------- *)

let macro_with cfg = (Macro_rtl.build lib cfg).Macro_rtl.design

let base_cfg =
  Macro_rtl.default ~rows:8 ~cols:8 ~mcr:1 ~input_prec:Precision.int4
    ~weight_prec:Precision.int4

let test_equiv_same_design () =
  let a = macro_with base_cfg and b = macro_with base_cfg in
  match Equiv.check a b with
  | Equiv.Equivalent n -> check_bool "vectors" true (n > 0)
  | Equiv.Mismatch _ -> Alcotest.fail "identical designs must match"

let test_equiv_across_tree_topologies () =
  (* different adder-tree structure, same function and same latency *)
  let a = macro_with base_cfg in
  let b =
    macro_with
      { base_cfg with
        Macro_rtl.tree = Adder_tree.Csa { fa_ratio = 1.0; reorder = true } }
  in
  match Equiv.check ~settle:12 a b with
  | Equiv.Equivalent _ -> ()
  | Equiv.Mismatch { bus; _ } ->
      Alcotest.fail (Printf.sprintf "tree topologies differ on %s" bus)

let test_equiv_detects_difference () =
  (* an OFU with different signedness is a genuinely different function *)
  let ir_of signed =
    let ir = Ir.create () in
    let c = Builder.ctx_plain ir in
    let a = Ir.new_bus ir 4 and b = Ir.new_bus ir 4 in
    Ir.add_input ir "a" a;
    Ir.add_input ir "b" b;
    let out =
      if signed then Builder.add_signed c a b ~width:5
      else fst (Builder.rca_add c a b Ir.const0)
    in
    Ir.add_output ir "o" (Builder.zero_extend out 5);
    Ir.freeze ir
  in
  match Equiv.check (ir_of true) (ir_of false) with
  | Equiv.Mismatch _ -> ()
  | Equiv.Equivalent _ ->
      Alcotest.fail "signed vs unsigned adders must differ"

let test_equiv_interface_guard () =
  let a = macro_with base_cfg in
  let b =
    macro_with { base_cfg with Macro_rtl.input_prec = Precision.int8 }
  in
  check_bool "guarded" true
    (try
       ignore (Equiv.check a b);
       false
     with Invalid_argument _ -> true)

(* ---------------- SCL persistence ---------------- *)

let test_persist_roundtrip () =
  let scl = Scl.create lib in
  (* populate a few entries *)
  ignore
    (Scl.adder_tree scl
       ~topology:(Adder_tree.Csa { fa_ratio = 0.0; reorder = false })
       ~rows:16);
  ignore (Scl.mulmux scl ~variant:Cell.Tg_nor ~mcr:2);
  ignore (Scl.shift_adder scl ~kind:Shift_adder.Lsb_right ~rows:16 ~serial_bits:4);
  let n = Persist.entries scl in
  check_bool "entries cached" true (n >= 3);
  let path = Filename.temp_file "scl" ".csv" in
  Persist.save scl path;
  let scl2 = Scl.create lib in
  let loaded = Persist.load scl2 path in
  check_int "all entries loaded" n loaded;
  check_int "table sizes match" n (Persist.entries scl2);
  (* loaded entries short-circuit characterization with identical values *)
  let a =
    Scl.adder_tree scl
      ~topology:(Adder_tree.Csa { fa_ratio = 0.0; reorder = false })
      ~rows:16
  in
  let b =
    Scl.adder_tree scl2
      ~topology:(Adder_tree.Csa { fa_ratio = 0.0; reorder = false })
      ~rows:16
  in
  check_bool "identical PPA" true
    (Float.abs (a.Ppa.delay_ps -. b.Ppa.delay_ps) < 1e-3
    && Float.abs (a.Ppa.area_um2 -. b.Ppa.area_um2) < 1e-3);
  Sys.remove path

let test_persist_bad_format () =
  let path = Filename.temp_file "scl" ".csv" in
  let oc = open_out path in
  output_string oc "key,delay_ps,area_um2,energy_fj,leakage_nw\nnot,a,valid,row\n";
  close_out oc;
  let scl = Scl.create lib in
  check_bool "rejects garbage" true
    (try
       ignore (Persist.load scl path);
       false
     with Persist.Bad_format _ -> true);
  Sys.remove path

(* ---------------- controller waveform ---------------- *)

let test_controller_waveform () =
  (* build the sequencer standalone and decode its full waveform *)
  let schedule =
    {
      Controller.align_lat = 1;
      tree_lat = 1;
      serial_bits = 4;
      post_lat = 2;
      neg_on_last = true;
    }
  in
  let ir = Ir.create () in
  let c = Builder.ctx_plain ir in
  let start = Ir.new_net ir in
  Ir.add_input ir "start" [| start |];
  let fsm = Controller.build c ~schedule ~start in
  Ir.add_output ir "load" [| fsm.Controller.load |];
  Ir.add_output ir "sa_en" [| fsm.Controller.sa_en |];
  Ir.add_output ir "sa_clr" [| fsm.Controller.sa_clr |];
  Ir.add_output ir "sa_neg" [| fsm.Controller.sa_neg |];
  Ir.add_output ir "align_en" [| fsm.Controller.align_en |];
  Ir.add_output ir "done" [| fsm.Controller.done_ |];
  let sim = Sim.create (Ir.freeze ir) in
  Sim.set_bus sim "start" 1;
  Sim.step sim;
  Sim.set_bus sim "start" 0;
  (* expected waveform indexed by k (cycles after the start edge):
     align_en at k=0; load at k=1; sa window k=3..6 with clr at 3 and neg
     at 6; done at k=9 = align(1) + load(1) + serial(4) + tree(1) + post(2) *)
  let total = Controller.total schedule in
  check_int "total" 9 total;
  for k = 0 to total + 2 do
    Sim.eval sim;
    let rd name = Sim.read_bus sim name in
    check_int (Printf.sprintf "align_en@%d" k)
      (if k = 0 then 1 else 0) (rd "align_en");
    check_int (Printf.sprintf "load@%d" k) (if k = 1 then 1 else 0) (rd "load");
    check_int (Printf.sprintf "sa_en@%d" k)
      (if k >= 3 && k <= 6 then 1 else 0)
      (rd "sa_en");
    check_int (Printf.sprintf "sa_clr@%d" k) (if k = 3 then 1 else 0) (rd "sa_clr");
    check_int (Printf.sprintf "sa_neg@%d" k) (if k = 6 then 1 else 0) (rd "sa_neg");
    check_int (Printf.sprintf "done@%d" k) (if k = total then 1 else 0) (rd "done");
    Sim.clock sim
  done

let test_controller_restartable () =
  (* a second start after done runs a second identical transaction *)
  let lib2 = lib in
  let cfg =
    { (Macro_rtl.default ~rows:4 ~cols:4 ~mcr:1 ~input_prec:Precision.int4
         ~weight_prec:Precision.int4)
      with Macro_rtl.with_controller = true }
  in
  let m = Macro_rtl.build lib2 cfg in
  let sim = Sim.create m.Macro_rtl.design in
  let weights = [| [| 1; -2; 3; -4 |] |] in
  Testbench.load_weights m sim ~copy:0 weights;
  let r1 = Testbench.run_mac_auto m sim ~inputs:[| 1; 2; 3; 4 |] in
  let r2 = Testbench.run_mac_auto m sim ~inputs:[| -1; -2; -3; -4 |] in
  check_int "first" (1 - 4 + 9 - 16) r1.(0);
  check_int "second" (-1 + 4 - 9 + 16) r2.(0)

(* ---------------- determinism + compile retry ---------------- *)

let test_compile_deterministic () =
  let scl1 = Scl.create lib and scl2 = Scl.create lib in
  let spec =
    { Spec.fig8 with Spec.rows = 16; cols = 16; mac_freq_hz = 600e6 }
  in
  let a = Compiler.compile (Ctx.of_parts lib scl1) spec in
  let b = Compiler.compile (Ctx.of_parts lib scl2) spec in
  check_bool "same power" true
    (Float.abs (a.Compiler.metrics.Compiler.power_w
                -. b.Compiler.metrics.Compiler.power_w)
    < 1e-12);
  check_bool "same crit" true
    (Float.abs (a.Compiler.metrics.Compiler.crit_ps
                -. b.Compiler.metrics.Compiler.crit_ps)
    < 1e-9);
  check_bool "same area" true
    (Float.abs (a.Compiler.metrics.Compiler.area_mm2
                -. b.Compiler.metrics.Compiler.area_mm2)
    < 1e-12)

let test_compile_no_retry_flag () =
  let scl = Scl.create lib in
  let spec =
    { Spec.fig8 with Spec.rows = 16; cols = 16; mac_freq_hz = 600e6 }
  in
  (* with retry disabled the call still completes and reports honestly *)
  let a = Compiler.compile ~retry:false (Ctx.of_parts lib scl) spec in
  check_bool "report exists" true
    (a.Compiler.metrics.Compiler.crit_ps > 0.0)

let () =
  Alcotest.run "extensions"
    [
      ( "bit-width flexibility",
        [
          Alcotest.test_case "narrow precisions on wide macro" `Quick
            test_narrow_precisions;
          Alcotest.test_case "throughput model" `Quick
            test_narrow_throughput_model;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "same design" `Quick test_equiv_same_design;
          Alcotest.test_case "across tree topologies" `Quick
            test_equiv_across_tree_topologies;
          Alcotest.test_case "detects difference" `Quick
            test_equiv_detects_difference;
          Alcotest.test_case "interface guard" `Quick
            test_equiv_interface_guard;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "roundtrip" `Quick test_persist_roundtrip;
          Alcotest.test_case "bad format" `Quick test_persist_bad_format;
        ] );
      ( "controller",
        [
          Alcotest.test_case "waveform" `Quick test_controller_waveform;
          Alcotest.test_case "restartable" `Quick
            test_controller_restartable;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "deterministic" `Quick
            test_compile_deterministic;
          Alcotest.test_case "no-retry flag" `Quick
            test_compile_no_retry_flag;
        ] );
    ]
