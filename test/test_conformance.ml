(* Cross-engine conformance: the one battery from Conformance.Make
   instantiated per engine pair. The scalar engine is the semantic
   ground truth; the packed engine is the long-standing production
   default; the multi-word engines (126 and 252 lanes) are admitted
   only because they pass the identical battery at every width CI
   cares about — 63, 126 and 252 lanes.

   Fuzz budgets shrink as the ensembles widen: every QCheck iteration
   of a wide pair pays one scalar replica per lane, so the 252-lane
   pair runs fewer (but still multi-seed) iterations. *)

module Scalar_vs_packed = Conformance.Make (struct
  let reference = `Scalar
  let candidate = `Packed
  let fuzz_count = 8
end)

module Scalar_vs_multiword126 = Conformance.Make (struct
  let reference = `Scalar
  let candidate = `Multiword 126
  let fuzz_count = 4
end)

module Scalar_vs_multiword252 = Conformance.Make (struct
  let reference = `Scalar
  let candidate = `Multiword 252
  let fuzz_count = 3
end)

module Packed_vs_multiword126 = Conformance.Make (struct
  let reference = `Packed
  let candidate = `Multiword 126
  let fuzz_count = 6
end)

let () =
  Alcotest.run "conformance"
    (Scalar_vs_packed.suite @ Scalar_vs_multiword126.suite
   @ Scalar_vs_multiword252.suite @ Packed_vs_multiword126.suite)
