(* Tests for the switching-activity power model. *)

let lib = Library.n40 ()
let check_bool = Alcotest.(check bool)

(* A bank of n toggling registers behind inverters. *)
let toggler_design n =
  let ir = Ir.create () in
  let c = Builder.ctx_plain ir in
  let a = Ir.new_net ir in
  Ir.add_input ir "a" [| a |];
  for _ = 1 to n do
    ignore (Builder.dff c (Builder.inv c a))
  done;
  Ir.freeze ir

let run_activity d ~cycles ~toggle =
  let sim = Sim.create d in
  for i = 0 to cycles - 1 do
    Sim.set_bus sim "a" (if toggle then i mod 2 else 0);
    Sim.step sim
  done;
  sim

let estimate d sim = Power.estimate d lib sim ~freq_hz:1e9 ~vdd:1.1 ()

let test_active_beats_idle () =
  let d = toggler_design 16 in
  let active = estimate d (run_activity d ~cycles:16 ~toggle:true) in
  let idle = estimate d (run_activity d ~cycles:16 ~toggle:false) in
  check_bool "dynamic grows with activity" true
    (active.Power.dynamic_w > (2.0 *. idle.Power.dynamic_w) +. 1e-9);
  check_bool "clock power present even when idle" true
    (idle.Power.clock_w > 0.0);
  check_bool "leakage independent" true
    (Float.abs (active.Power.leakage_w -. idle.Power.leakage_w) < 1e-12)

let test_power_scales_with_frequency () =
  let d = toggler_design 8 in
  let sim = run_activity d ~cycles:16 ~toggle:true in
  let p1 = Power.estimate d lib sim ~freq_hz:1e9 ~vdd:1.1 () in
  let p2 = Power.estimate d lib sim ~freq_hz:2e9 ~vdd:1.1 () in
  check_bool "2x frequency ~ 2x dynamic" true
    (Float.abs ((p2.Power.dynamic_w /. p1.Power.dynamic_w) -. 2.0) < 0.01)

let test_power_scales_with_voltage () =
  let d = toggler_design 8 in
  let sim = run_activity d ~cycles:16 ~toggle:true in
  let hi = Power.estimate d lib sim ~freq_hz:1e9 ~vdd:1.1 () in
  let lo = Power.estimate d lib sim ~freq_hz:1e9 ~vdd:0.7 () in
  check_bool "lower voltage, much lower power" true
    (lo.Power.total_w < 0.55 *. hi.Power.total_w)

let test_energy_per_cycle_stable () =
  (* energy per cycle should not depend on the reporting frequency *)
  let d = toggler_design 8 in
  let sim = run_activity d ~cycles:16 ~toggle:true in
  let p1 = Power.estimate d lib sim ~freq_hz:1e9 ~vdd:1.1 () in
  let p2 = Power.estimate d lib sim ~freq_hz:5e8 ~vdd:1.1 () in
  Alcotest.(check (float 1e-9))
    "energy invariant" p1.Power.energy_per_cycle_fj
    p2.Power.energy_per_cycle_fj

let test_clock_gating_accounting () =
  (* an enabled register bank clocked at 25% duty must burn ~25% of the
     always-on clock energy *)
  let build gated =
    let ir = Ir.create () in
    let c = Builder.ctx_plain ir in
    let a = Ir.new_net ir and en = Ir.new_net ir in
    Ir.add_input ir "a" [| a |];
    Ir.add_input ir "en" [| en |];
    for _ = 1 to 32 do
      if gated then ignore (Builder.dff_en c ~en a)
      else ignore (Builder.dff c a)
    done;
    Ir.freeze ir
  in
  let run d duty =
    let sim = Sim.create d in
    for i = 0 to 31 do
      Sim.set_bus sim "a" 0;
      Sim.set_bus sim "en" (if i mod 4 < duty then 1 else 0);
      Sim.step sim
    done;
    estimate d sim
  in
  let gated = run (build true) 1 in
  let free = run (build false) 4 in
  check_bool "gated clock cheaper" true
    (gated.Power.clock_w < 0.5 *. free.Power.clock_w)

let test_weight_update_energy () =
  let ir = Ir.create () in
  let out = Ir.new_net ir in
  ignore
    (Ir.add
       ~tag:(Ir.Weight_bit { row = 0; col = 0; copy = 0 })
       ir (Cell.Sram Cell.S6t) ~ins:[||] ~outs:[| out |]);
  Ir.add_output ir "w" [| out |];
  let d = Ir.freeze ir in
  let sim = Sim.create d in
  for i = 0 to 9 do
    Sim.set_weight sim ~row:0 ~col:0 ~copy:0 (i mod 2 = 0);
    Sim.step sim
  done;
  let p = estimate d sim in
  check_bool "write energy charged" true (p.Power.weight_update_w > 0.0)

let test_breakdown_sums () =
  let m =
    Macro_rtl.build lib
      (Macro_rtl.default ~rows:8 ~cols:8 ~mcr:1 ~input_prec:Precision.int4
         ~weight_prec:Precision.int4)
  in
  let p =
    Design_point.measure_power lib m ~freq_hz:5e8 ~vdd:0.9
      ~input_density:0.5 ~weight_density:0.5 ~macs:4
  in
  let sub = List.fold_left (fun a (_, w) -> a +. w) 0.0 p.Power.by_subcircuit in
  (* the per-subcircuit split covers exactly the switching component *)
  check_bool "breakdown equals dynamic" true
    (Float.abs (sub -. p.Power.dynamic_w) /. p.Power.dynamic_w < 1e-6);
  check_bool "total is the sum of parts" true
    (Float.abs
       (p.Power.total_w
       -. (p.Power.dynamic_w +. p.Power.clock_w +. p.Power.leakage_w
          +. p.Power.weight_update_w))
    < 1e-12)

let test_sparsity_lowers_power () =
  let m =
    Macro_rtl.build lib
      (Macro_rtl.default ~rows:16 ~cols:16 ~mcr:1 ~input_prec:Precision.int8
         ~weight_prec:Precision.int8)
  in
  let at density =
    (Design_point.measure_power lib m ~freq_hz:5e8 ~vdd:0.9
       ~input_density:density ~weight_density:0.5 ~macs:6)
      .Power.total_w
  in
  check_bool "sparser inputs, less power" true (at 0.125 < at 0.9)

let () =
  Alcotest.run "power"
    [
      ( "model",
        [
          Alcotest.test_case "activity" `Quick test_active_beats_idle;
          Alcotest.test_case "frequency scaling" `Quick
            test_power_scales_with_frequency;
          Alcotest.test_case "voltage scaling" `Quick
            test_power_scales_with_voltage;
          Alcotest.test_case "energy per cycle" `Quick
            test_energy_per_cycle_stable;
          Alcotest.test_case "clock gating" `Quick
            test_clock_gating_accounting;
          Alcotest.test_case "weight update energy" `Quick
            test_weight_update_energy;
        ] );
      ( "macro",
        [
          Alcotest.test_case "breakdown sums" `Quick test_breakdown_sums;
          Alcotest.test_case "sparsity" `Quick test_sparsity_lowers_power;
        ] );
    ]
