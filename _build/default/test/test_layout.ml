(* Tests for the back-end: SDP and scattered placement, routing estimate,
   DRC, LVS, the post-layout flow and the DEF writer. *)

let lib = Library.n40 ()
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let macro ?(rows = 16) ?(cols = 16) ?(mcr = 2) () =
  Macro_rtl.build lib
    (Macro_rtl.default ~rows ~cols ~mcr ~input_prec:Precision.int8
       ~weight_prec:Precision.int8)

let test_sdp_drc_clean () =
  let m = macro () in
  let p = Floorplan.sdp lib m in
  Alcotest.(check (list Alcotest.reject)) "no violations" []
    (List.map (fun _ -> Alcotest.fail "violation") (Drc.check lib p))

let test_sdp_drc_clean_after_sizing () =
  let m = macro () in
  ignore (Sizing.speed_up m.Macro_rtl.design lib ~target_ps:1.0);
  let p = Floorplan.sdp lib m in
  check_int "no violations on X4 cells" 0 (List.length (Drc.check lib p))

let test_scattered_drc_clean () =
  let m = macro () in
  let p = Floorplan.scattered lib m ~seed:3 in
  check_int "no violations" 0 (List.length (Drc.check lib p))

let test_bitcell_grid_positions () =
  let m = macro ~rows:8 ~cols:8 ~mcr:1 () in
  let p = Floorplan.sdp lib m in
  let d = m.Macro_rtl.design in
  (* within one column, bit cells of consecutive rows are one row pitch
     apart; all bit cells of a column share x *)
  let pos = Hashtbl.create 64 in
  Array.iteri
    (fun i (inst : Ir.inst) ->
      match inst.Ir.tag with
      | Ir.Weight_bit { row; col; copy = 0 } ->
          Hashtbl.replace pos (row, col) (p.Floorplan.x.(i), p.Floorplan.y.(i))
      | _ -> ())
    d.Ir.insts;
  for col = 0 to 7 do
    for row = 0 to 6 do
      let x0, y0 = Hashtbl.find pos (row, col) in
      let x1, y1 = Hashtbl.find pos (row + 1, col) in
      check_bool "same column x" true (Float.abs (x0 -. x1) < 1e-6);
      Alcotest.(check (float 1e-6)) "row pitch" p.Floorplan.row_height (y1 -. y0)
    done
  done

let test_lvs_clean () =
  let m = macro () in
  let p = Floorplan.sdp lib m in
  let r = Lvs.check p in
  check_bool "clean" true r.Lvs.clean;
  check_int "all instances" (Ir.n_insts m.Macro_rtl.design)
    r.Lvs.instances_checked;
  check_bool "nets checked" true (r.Lvs.nets_checked > 100)

let test_route_hpwl () =
  let m = macro () in
  let p = Floorplan.sdp lib m in
  let r = Route.build p in
  check_bool "total positive" true (r.Route.total_wirelength_um > 0.0);
  (* constants don't route *)
  Alcotest.(check (float 1e-9)) "const0 unrouted" 0.0 r.Route.hpwl_um.(0);
  (* every HPWL fits in the die half-perimeter *)
  check_bool "bounded by die" true
    (Array.for_all
       (fun h -> h <= p.Floorplan.die_w +. p.Floorplan.die_h +. 1e-6)
       r.Route.hpwl_um);
  (* wire cap proportional to HPWL *)
  let net = m.Macro_rtl.design.Ir.n_nets - 1 in
  Alcotest.(check (float 1e-9))
    "cap conversion"
    (r.Route.hpwl_um.(net) *. lib.Library.node.Node.wire_cap_ff_per_um)
    (Route.wire_cap r lib.Library.node net)

let test_sdp_beats_scattered () =
  let m = macro ~rows:16 ~cols:16 () in
  let sdp = Post_layout.run lib m ~style:Floorplan.Sdp in
  let sc = Post_layout.run lib m ~style:Floorplan.Scattered in
  check_bool "SDP shorter wires" true
    (sdp.Post_layout.total_wirelength_mm
    < sc.Post_layout.total_wirelength_mm);
  check_bool "SDP faster" true
    (sdp.Post_layout.sta.Sta.crit_ps < sc.Post_layout.sta.Sta.crit_ps)

let test_post_layout_flow () =
  let m = macro () in
  let s = Post_layout.run lib m ~style:Floorplan.Sdp in
  check_bool "area positive" true (s.Post_layout.area_mm2 > 0.0);
  check_bool "DRC empty" true (s.Post_layout.drc_violations = []);
  check_bool "LVS clean" true s.Post_layout.lvs.Lvs.clean;
  (* post-layout timing is never faster than pre-layout *)
  let pre = Sta.analyze m.Macro_rtl.design lib in
  check_bool "wires only slow down" true
    (s.Post_layout.sta.Sta.crit_ps >= pre.Sta.crit_ps -. 1e-6)

let test_post_layout_power () =
  let m = macro () in
  let s = Post_layout.run lib m ~style:Floorplan.Sdp in
  let p =
    Post_layout.power lib m s ~freq_hz:5e8 ~vdd:0.9 ~input_density:0.5
      ~weight_density:0.5 ~macs:4
  in
  let pre =
    Design_point.measure_power lib m ~freq_hz:5e8 ~vdd:0.9
      ~input_density:0.5 ~weight_density:0.5 ~macs:4
  in
  check_bool "wire power adds" true (p.Power.total_w > pre.Power.total_w)

let test_die_aspect_reasonable () =
  (* the stripe folding must keep the die from degenerating *)
  List.iter
    (fun (rows, cols) ->
      let m = macro ~rows ~cols ~mcr:1 () in
      let p = Floorplan.sdp lib m in
      let aspect = p.Floorplan.die_w /. p.Floorplan.die_h in
      check_bool
        (Printf.sprintf "%dx%d aspect %.2f" rows cols aspect)
        true
        (aspect > 0.2 && aspect < 5.0))
    [ (8, 8); (16, 32); (32, 16); (32, 32) ]

let test_area_scales_with_array () =
  let small = Post_layout.run lib (macro ~rows:8 ~cols:8 ()) ~style:Floorplan.Sdp in
  let big = Post_layout.run lib (macro ~rows:32 ~cols:32 ()) ~style:Floorplan.Sdp in
  check_bool "bigger array bigger die" true
    (big.Post_layout.area_mm2 > 4.0 *. small.Post_layout.area_mm2)

let test_def_writer () =
  let m = macro ~rows:8 ~cols:8 ~mcr:1 () in
  let p = Floorplan.sdp lib m in
  let s = Def_writer.to_string lib p in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "die area" true (contains "DIEAREA");
  check_bool "components" true (contains "COMPONENTS");
  check_bool "nets" true (contains "NETS");
  check_bool "placed cells" true (contains "PLACED");
  check_bool "end" true (contains "END DESIGN")

let test_drc_detects_overlap () =
  (* corrupt a placement on purpose: DRC must notice *)
  let m = macro ~rows:4 ~cols:8 ~mcr:1 () in
  let p = Floorplan.sdp lib m in
  p.Floorplan.x.(1) <- p.Floorplan.x.(0);
  p.Floorplan.y.(1) <- p.Floorplan.y.(0);
  check_bool "overlap found" true (Drc.check lib p <> [])

let test_lvs_detects_corruption () =
  let m = macro ~rows:4 ~cols:8 ~mcr:1 () in
  let p = Floorplan.sdp lib m in
  p.Floorplan.x.(0) <- Float.nan;
  let r = Lvs.check p in
  check_bool "corruption found" false r.Lvs.clean

let () =
  Alcotest.run "layout"
    [
      ( "placement",
        [
          Alcotest.test_case "SDP DRC clean" `Quick test_sdp_drc_clean;
          Alcotest.test_case "DRC clean after sizing" `Quick
            test_sdp_drc_clean_after_sizing;
          Alcotest.test_case "scattered DRC clean" `Quick
            test_scattered_drc_clean;
          Alcotest.test_case "bitcell grid" `Quick
            test_bitcell_grid_positions;
          Alcotest.test_case "die aspect" `Quick test_die_aspect_reasonable;
          Alcotest.test_case "area scaling" `Quick
            test_area_scales_with_array;
        ] );
      ( "signoff",
        [
          Alcotest.test_case "LVS clean" `Quick test_lvs_clean;
          Alcotest.test_case "route HPWL" `Quick test_route_hpwl;
          Alcotest.test_case "SDP beats scattered" `Quick
            test_sdp_beats_scattered;
          Alcotest.test_case "post-layout flow" `Quick test_post_layout_flow;
          Alcotest.test_case "post-layout power" `Quick
            test_post_layout_power;
          Alcotest.test_case "DEF writer" `Quick test_def_writer;
          Alcotest.test_case "DRC detects overlap" `Quick
            test_drc_detects_overlap;
          Alcotest.test_case "LVS detects corruption" `Quick
            test_lvs_detects_corruption;
        ] );
    ]
