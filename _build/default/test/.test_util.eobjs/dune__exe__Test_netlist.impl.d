test/test_netlist.ml: Alcotest Array Builder Cell Float Intmath Ir Library List Macro_rtl Precision Printf QCheck QCheck_alcotest Rng Sim Stats String Testbench Verilog
