test/test_layout.ml: Alcotest Array Def_writer Design_point Drc Float Floorplan Hashtbl Ir Library List Lvs Macro_rtl Node Post_layout Power Precision Printf Route Sizing Sta String
