test/test_core.ml: Alcotest Array Compiler Float Floorplan Library List Lvs Macro_rtl Post_layout Power Precision Report Rng Scl Sim Spec String Testbench Voltage
