test/test_sta.ml: Alcotest Array Builder Cell Float Ir Library List Macro_rtl Precision Sizing Sta
