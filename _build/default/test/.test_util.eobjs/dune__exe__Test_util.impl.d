test/test_util.ml: Alcotest Array Intmath List Pareto QCheck QCheck_alcotest Rng String Table Vec
