test/test_eval.ml: Ablation Adder_tree Alcotest Array Baselines Cell Compiler Design_point Fig7 Fig9 Library List Macro_rtl Precision Scl Searcher Spec Table Table1 Table2 Testbench
