test/test_tech.ml: Alcotest Float List Node Printf Scaling Voltage
