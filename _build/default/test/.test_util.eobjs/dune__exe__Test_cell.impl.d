test/test_cell.ml: Alcotest Array Cell Characterize Liberty Library List String
