test/test_scl.ml: Adder_tree Alcotest Cell Fpfmt Library List Macro_rtl Ppa Precision Printf Scl Shift_adder Stats Unix
