test/test_power.ml: Alcotest Builder Cell Design_point Float Ir Library List Macro_rtl Power Precision Sim
