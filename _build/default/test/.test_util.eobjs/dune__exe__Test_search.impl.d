test/test_search.ml: Adder_tree Alcotest Design_point Float Library List Macro_rtl Mulmux Pareto Precision Scl Searcher Shift_adder Spec String Testbench
