test/test_scl.mli:
