test/test_arith.ml: Alcotest Align Array Float Fpfmt Golden Intmath List Precision QCheck QCheck_alcotest Rng
