(* Tests for static timing analysis and the sizing pass. *)

let lib = Library.n40 ()

let check_bool = Alcotest.(check bool)

(* An inverter chain of length n between an input and a register. *)
let chain_design n =
  let ir = Ir.create () in
  let c = Builder.ctx_plain ir in
  let a = Ir.new_net ir in
  Ir.add_input ir "a" [| a |];
  let rec go net k = if k = 0 then net else go (Builder.inv c net) (k - 1) in
  let last = go a n in
  ignore (Builder.dff c last);
  Ir.freeze ir

let test_chain_delay () =
  let d4 = Sta.analyze (chain_design 4) lib in
  let d8 = Sta.analyze (chain_design 8) lib in
  check_bool "longer chain slower" true (d8.Sta.crit_ps > d4.Sta.crit_ps);
  (* path steps = inverters + endpoint accounting *)
  Alcotest.(check int) "path length" 4 (List.length d4.Sta.path)

let test_chain_analytic () =
  (* chain of 1: inv intrinsic + res*dff_cap + dff setup *)
  let d = Sta.analyze (chain_design 1) lib in
  let inv = Library.params lib Cell.Inv Cell.X1 in
  let dff = Library.params lib Cell.Dff Cell.X1 in
  let expect =
    inv.Library.intrinsic_ps.(0)
    +. (inv.Library.drive_res_ps_per_ff *. dff.Library.input_cap_ff)
    +. dff.Library.setup_ps
  in
  Alcotest.(check (float 0.01)) "analytic match" expect d.Sta.crit_ps

let test_launch_from_register () =
  (* reg -> inv -> reg path includes clk-to-q *)
  let ir = Ir.create () in
  let c = Builder.ctx_plain ir in
  let a = Ir.new_net ir in
  Ir.add_input ir "a" [| a |];
  let q1 = Builder.dff c a in
  let x = Builder.inv c q1 in
  let q2 = Builder.dff c x in
  Ir.add_output ir "q" [| q2 |];
  let d = Ir.freeze ir in
  let r = Sta.analyze d lib in
  let dff = Library.params lib Cell.Dff Cell.X1 in
  check_bool "includes clk_q" true (r.Sta.crit_ps > dff.Library.clk_q_ps);
  match r.Sta.endpoint with
  | Sta.Reg_d _ -> ()
  | Sta.Primary_out _ -> Alcotest.fail "endpoint should be a register"

let test_wire_cap_slows () =
  let d = chain_design 4 in
  let base = Sta.analyze d lib in
  let loaded = Sta.analyze ~wire_cap:(fun _ -> 10.0) d lib in
  check_bool "wire load slows" true
    (loaded.Sta.crit_ps > base.Sta.crit_ps +. 20.0)

let test_slack_signs () =
  let d = chain_design 6 in
  let r = Sta.analyze d lib in
  let loose = Sta.slacks r d lib ~target_ps:(r.Sta.crit_ps +. 100.0) () in
  let tight = Sta.slacks r d lib ~target_ps:(r.Sta.crit_ps -. 100.0) () in
  (* with a loose target no net is negative; with a tight one the path is *)
  check_bool "loose all non-negative" true
    (Array.for_all (fun s -> s >= -0.01 || Float.is_nan s) loose);
  let negatives = Array.to_list tight |> List.filter (fun s -> s < 0.0) in
  check_bool "tight has negative slack" true (List.length negatives >= 6)

let test_fmax_ghz () =
  let r = Sta.analyze (chain_design 10) lib in
  Alcotest.(check (float 1e-6))
    "fmax consistent" (1000.0 /. r.Sta.crit_ps) (Sta.fmax_ghz r)

(* ---------------- sizing ---------------- *)

let fanout_design () =
  (* one driver, a big capacitive fan-out, then a register: upsizing the
     driver is the only fix *)
  let ir = Ir.create () in
  let c = Builder.ctx_plain ir in
  let a = Ir.new_net ir in
  Ir.add_input ir "a" [| a |];
  let x = Builder.inv c a in
  for _ = 1 to 30 do
    ignore (Builder.dff c x)
  done;
  Ir.freeze ir

let test_sizing_speeds_up () =
  let d = fanout_design () in
  let before = (Sta.analyze d lib).Sta.crit_ps in
  let r = Sizing.speed_up d lib ~target_ps:(before /. 2.0) in
  check_bool "improved" true (r.Sizing.after_ps < before);
  check_bool "counted" true (r.Sizing.upsized >= 1)

let test_sizing_idempotent_when_met () =
  let d = chain_design 3 in
  let before = (Sta.analyze d lib).Sta.crit_ps in
  let r = Sizing.speed_up d lib ~target_ps:(before +. 1000.0) in
  Alcotest.(check int) "no bumps" 0 r.Sizing.upsized

let test_relax_and_snapshot () =
  let d = fanout_design () in
  ignore (Sizing.speed_up d lib ~target_ps:1.0);
  let snap = Sizing.snapshot d in
  Sizing.relax d;
  check_bool "all X1 after relax" true
    (Array.for_all (fun (i : Ir.inst) -> i.Ir.drive = Cell.X1) d.Ir.insts);
  Sizing.restore d snap;
  check_bool "restored" true
    (Array.exists (fun (i : Ir.inst) -> i.Ir.drive <> Cell.X1) d.Ir.insts)

let test_sizing_never_touches_storage () =
  let m =
    Macro_rtl.build lib
      (Macro_rtl.default ~rows:8 ~cols:8 ~mcr:1 ~input_prec:Precision.int4
         ~weight_prec:Precision.int4)
  in
  let d = m.Macro_rtl.design in
  ignore (Sizing.speed_up d lib ~target_ps:1.0);
  Array.iter
    (fun i ->
      let inst = d.Ir.insts.(i) in
      check_bool "storage stays X1" true (inst.Ir.drive = Cell.X1))
    d.Ir.storage

let test_voltage_scaled_timing () =
  let r = Sta.analyze (chain_design 8) lib in
  let at_07 = Sta.crit_ps_at r lib.Library.node ~vdd:0.7 in
  let at_12 = Sta.crit_ps_at r lib.Library.node ~vdd:1.2 in
  check_bool "0.7V slower than 1.2V" true (at_07 > at_12);
  check_bool "meets at slack freq" true
    (Sta.meets r lib.Library.node ~vdd:1.2 ~freq_hz:(0.5e12 /. at_12));
  check_bool "fails at 2x fmax" false
    (Sta.meets r lib.Library.node ~vdd:1.2 ~freq_hz:(2.0e12 /. at_12))

let () =
  Alcotest.run "sta"
    [
      ( "timing",
        [
          Alcotest.test_case "chain delay" `Quick test_chain_delay;
          Alcotest.test_case "analytic single stage" `Quick
            test_chain_analytic;
          Alcotest.test_case "register launch" `Quick
            test_launch_from_register;
          Alcotest.test_case "wire cap slows" `Quick test_wire_cap_slows;
          Alcotest.test_case "slack signs" `Quick test_slack_signs;
          Alcotest.test_case "fmax" `Quick test_fmax_ghz;
          Alcotest.test_case "voltage scaling" `Quick
            test_voltage_scaled_timing;
        ] );
      ( "sizing",
        [
          Alcotest.test_case "speeds up" `Quick test_sizing_speeds_up;
          Alcotest.test_case "idempotent when met" `Quick
            test_sizing_idempotent_when_met;
          Alcotest.test_case "relax/snapshot/restore" `Quick
            test_relax_and_snapshot;
          Alcotest.test_case "storage untouched" `Quick
            test_sizing_never_touches_storage;
        ] );
    ]
