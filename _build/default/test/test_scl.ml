(* Tests for the subcircuit library: characterization sanity, memoization,
   menus and the tt1 "faster adder" query. *)

let lib = Library.n40 ()
let scl = Scl.create lib

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let positive (p : Ppa.t) =
  p.Ppa.delay_ps >= 0.0 && p.Ppa.area_um2 > 0.0 && p.Ppa.energy_fj >= 0.0
  && p.Ppa.leakage_nw > 0.0

let test_entries_positive () =
  check_bool "tree" true
    (positive
       (Scl.adder_tree scl
          ~topology:(Adder_tree.Csa { fa_ratio = 0.0; reorder = false })
          ~rows:16));
  check_bool "mulmux" true
    (positive (Scl.mulmux scl ~variant:Cell.Tg_nor ~mcr:2));
  check_bool "cell" true (positive (Scl.memory_cell scl ~kind:Cell.S6t));
  check_bool "sa" true
    (positive
       (Scl.shift_adder scl ~kind:Shift_adder.Ripple ~rows:16 ~serial_bits:4));
  check_bool "ofu" true
    (positive
       (Scl.ofu scl ~wb:4 ~w_sa:9 ~result_width:14 ~pipe:false ~fast:false));
  check_bool "wl" true (positive (Scl.wl_driver scl ~cols:32));
  check_bool "align" true
    (positive (Scl.fp_align scl ~fmt:Fpfmt.fp8 ~pipeline:2 ~rows:8))

let test_memoization () =
  let t0 = Unix.gettimeofday () in
  let a =
    Scl.adder_tree scl
      ~topology:(Adder_tree.Csa { fa_ratio = 0.5; reorder = true })
      ~rows:64
  in
  let first = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let b =
    Scl.adder_tree scl
      ~topology:(Adder_tree.Csa { fa_ratio = 0.5; reorder = true })
      ~rows:64
  in
  let second = Unix.gettimeofday () -. t1 in
  check_bool "same entry" true (a = b);
  check_bool "cached lookup much faster" true
    (second < first /. 5.0 || second < 1e-4)

let test_menus () =
  check_int "tree menu" 5 (List.length Scl.tree_menu);
  check_int "mul menu" 3 (List.length Scl.mul_menu);
  check_int "cell menu" 3 (List.length Scl.cell_menu);
  check_int "sa menu" 3 (List.length Scl.sa_menu)

let test_faster_tree_query () =
  (* from the slowest menu entry there must be something faster at H=64;
     from the fastest there must not *)
  let slowest = Adder_tree.Csa { fa_ratio = 0.0; reorder = false } in
  (match Scl.faster_tree scl ~rows:64 ~than:slowest with
  | Some topo ->
      let d t = (Scl.adder_tree scl ~topology:t ~rows:64).Ppa.delay_ps in
      check_bool "strictly faster" true (d topo < d slowest)
  | None -> Alcotest.fail "expected a faster tree");
  let fastest =
    List.fold_left
      (fun best t ->
        let d x = (Scl.adder_tree scl ~topology:x ~rows:64).Ppa.delay_ps in
        if d t < d best then t else best)
      slowest Scl.tree_menu
  in
  check_bool "no faster than fastest" true
    (Scl.faster_tree scl ~rows:64 ~than:fastest = None)

let test_rca_baseline_is_dominated () =
  let get t = Scl.adder_tree scl ~topology:t ~rows:64 in
  let base = get Scl.tree_baseline in
  check_bool "every menu tree smaller and lower-energy than the baseline"
    true
    (List.for_all
       (fun t ->
         let p = get t in
         p.Ppa.area_um2 < base.Ppa.area_um2
         && p.Ppa.energy_fj < base.Ppa.energy_fj)
       Scl.tree_menu);
  check_bool "the fastest menu tree also beats the baseline delay" true
    (List.exists
       (fun t -> (get t).Ppa.delay_ps < base.Ppa.delay_ps)
       Scl.tree_menu)

let test_estimate_macro () =
  let cfg =
    Macro_rtl.default ~rows:16 ~cols:16 ~mcr:2 ~input_prec:Precision.int8
      ~weight_prec:Precision.int8
  in
  let est = Scl.estimate_macro scl cfg in
  check_bool "estimate positive" true (positive est);
  (* the analytic composition should land within 2x of the real netlist *)
  let m = Macro_rtl.build lib cfg in
  let real = (Stats.of_design m.Macro_rtl.design lib).Stats.area_um2 in
  let ratio = est.Ppa.area_um2 /. real in
  check_bool
    (Printf.sprintf "area estimate ratio %.2f in [0.5, 2.0]" ratio)
    true
    (ratio > 0.5 && ratio < 2.0)

let test_estimate_fp_macro () =
  let cfg =
    Macro_rtl.default ~rows:16 ~cols:16 ~mcr:1 ~input_prec:Precision.fp8
      ~weight_prec:Precision.int8
  in
  let est_fp = Scl.estimate_macro scl cfg in
  let est_int =
    Scl.estimate_macro scl
      { cfg with Macro_rtl.input_prec = Precision.int8 }
  in
  check_bool "FP estimate includes aligner" true
    (est_fp.Ppa.area_um2 > est_int.Ppa.area_um2)

let test_ppa_algebra () =
  let a = { Ppa.delay_ps = 10.0; area_um2 = 5.0; energy_fj = 2.0; leakage_nw = 1.0 } in
  let b = { Ppa.delay_ps = 20.0; area_um2 = 3.0; energy_fj = 1.0; leakage_nw = 0.5 } in
  let s = Ppa.(a + b) in
  Alcotest.(check (float 1e-9)) "delay is max" 20.0 s.Ppa.delay_ps;
  Alcotest.(check (float 1e-9)) "area adds" 8.0 s.Ppa.area_um2;
  let k = Ppa.scale 3 a in
  Alcotest.(check (float 1e-9)) "scale area" 15.0 k.Ppa.area_um2;
  Alcotest.(check (float 1e-9)) "scale keeps delay" 10.0 k.Ppa.delay_ps

let () =
  Alcotest.run "scl"
    [
      ( "library",
        [
          Alcotest.test_case "entries positive" `Quick test_entries_positive;
          Alcotest.test_case "memoization" `Quick test_memoization;
          Alcotest.test_case "menus" `Quick test_menus;
          Alcotest.test_case "faster-tree query" `Quick
            test_faster_tree_query;
          Alcotest.test_case "RCA baseline dominated" `Quick
            test_rca_baseline_is_dominated;
        ] );
      ( "estimates",
        [
          Alcotest.test_case "macro estimate" `Quick test_estimate_macro;
          Alcotest.test_case "FP estimate" `Quick test_estimate_fp_macro;
          Alcotest.test_case "ppa algebra" `Quick test_ppa_algebra;
        ] );
    ]
