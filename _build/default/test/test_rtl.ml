(* Tests for the RTL generators: every subcircuit standalone against its
   reference semantics, then whole macros across the configuration space
   verified gate-by-gate against the golden MAC. *)

let lib = Library.n40 ()
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- adder trees ---------------- *)

let popcount_harness topology rows =
  let ir = Ir.create () in
  let c = Builder.ctx_plain ir in
  let leaves = Ir.new_bus ir rows in
  Ir.add_input ir "in" leaves;
  let t =
    Adder_tree.build c lib ~topology ~split:1 ~reg_out:false
      ~retime_final_rca:false ~leaves
  in
  Ir.add_output ir "sum" t.Adder_tree.sum;
  let sim = Sim.create (Ir.freeze ir) in
  fun bits ->
    Sim.set_bus_bits sim "in" bits;
    Sim.eval sim;
    Sim.read_bus sim "sum"

let all_topologies =
  [
    Adder_tree.Rca_tree;
    Adder_tree.Csa { fa_ratio = 0.0; reorder = false };
    Adder_tree.Csa { fa_ratio = 0.0; reorder = true };
    Adder_tree.Csa { fa_ratio = 0.5; reorder = true };
    Adder_tree.Csa { fa_ratio = 1.0; reorder = false };
    Adder_tree.Csa { fa_ratio = 1.0; reorder = true };
  ]

let test_tree_popcount () =
  let rng = Rng.create 1 in
  List.iter
    (fun topology ->
      List.iter
        (fun rows ->
          let run = popcount_harness topology rows in
          (* corners *)
          check_int "all zero" 0 (run (Array.make rows false));
          check_int "all one" rows (run (Array.make rows true));
          check_int "single" 1
            (run (Array.init rows (fun i -> i = rows / 2)));
          (* random *)
          for _ = 1 to 10 do
            let bits = Array.init rows (fun _ -> Rng.bit rng ~p1:0.5 = 1) in
            let expect =
              Array.fold_left (fun a b -> if b then a + 1 else a) 0 bits
            in
            check_int "random popcount" expect (run bits)
          done)
        [ 3; 8; 16; 33; 64 ])
    all_topologies

let test_tree_width () =
  let run = popcount_harness (Adder_tree.Csa { fa_ratio = 0.0; reorder = false }) 20 in
  ignore (run (Array.make 20 true));
  check_int "popcount width holds max" 20 (run (Array.make 20 true))

let test_tree_claims () =
  (* structural claims from the paper, measured with real STA *)
  let scl = Scl.create lib in
  let rows = 64 in
  let get topo = Scl.adder_tree scl ~topology:topo ~rows in
  let d topo = (get topo).Ppa.delay_ps in
  let a topo = (get topo).Ppa.area_um2 in
  let e topo = (get topo).Ppa.energy_fj in
  let rca = Adder_tree.Rca_tree in
  let comp = Adder_tree.Csa { fa_ratio = 0.0; reorder = false } in
  let comp_reord = Adder_tree.Csa { fa_ratio = 0.0; reorder = true } in
  let fa = Adder_tree.Csa { fa_ratio = 1.0; reorder = true } in
  (* compressor CSAs vs the conventional signed-RCA tree *)
  check_bool "CSA much smaller than RCA tree" true (a comp < 0.5 *. a rca);
  check_bool "CSA lower energy than RCA tree" true (e comp < e rca);
  (* at small column heights the compressor tree also wins delay *)
  let d16 topo = (Scl.adder_tree scl ~topology:topo ~rows:16).Ppa.delay_ps in
  check_bool "CSA faster than RCA at h=16" true (d16 comp < d16 rca);
  (* FA substitution: faster at the cost of the compressor's efficiency *)
  check_bool "FA substitution shortens critical path" true (d fa < d comp);
  check_bool "FA-mixed CSA dominates RCA on every axis" true
    (d fa < d rca && a fa < a rca && e fa < e rca);
  check_bool "reordering helps" true (d comp_reord <= d comp)

let test_tree_pipeline_latency () =
  let build ~split ~reg_out ~retime =
    let ir = Ir.create () in
    let c = Builder.ctx_plain ir in
    let leaves = Ir.new_bus ir 16 in
    Ir.add_input ir "in" leaves;
    let t =
      Adder_tree.build c lib
        ~topology:(Adder_tree.Csa { fa_ratio = 0.0; reorder = false })
        ~split ~reg_out ~retime_final_rca:retime ~leaves
    in
    t.Adder_tree.latency
  in
  check_int "comb" 0 (build ~split:1 ~reg_out:false ~retime:false);
  check_int "registered" 1 (build ~split:1 ~reg_out:true ~retime:false);
  check_int "retimed" 1 (build ~split:1 ~reg_out:true ~retime:true);
  check_int "split" 1 (build ~split:2 ~reg_out:false ~retime:false);
  check_int "split+reg" 2 (build ~split:2 ~reg_out:true ~retime:false)

(* ---------------- mulmux ---------------- *)

let test_mulmux_function () =
  List.iter
    (fun (variant, mcr) ->
      let ir = Ir.create () in
      let c = Builder.ctx_plain ir in
      let x = Ir.new_net ir in
      Ir.add_input ir "x" [| x |];
      let ws = Ir.new_bus ir mcr in
      Ir.add_input ir "w" ws;
      let sel_bits = Intmath.ceil_log2 (max mcr 1) in
      let sel = Ir.new_bus ir (max 1 sel_bits) in
      if mcr > 1 then Ir.add_input ir "sel" sel;
      let o =
        Mulmux.build c ~variant ~x ~weights:ws
          ~sel:(if mcr > 1 then Array.sub sel 0 sel_bits else [||])
      in
      Ir.add_output ir "p" [| o |];
      let sim = Sim.create (Ir.freeze ir) in
      for xv = 0 to 1 do
        for wv = 0 to Intmath.pow2 mcr - 1 do
          for sv = 0 to mcr - 1 do
            Sim.set_bus sim "x" xv;
            Sim.set_bus sim "w" wv;
            if mcr > 1 then Sim.set_bus sim "sel" sv;
            Sim.eval sim;
            let expect = xv land ((wv lsr sv) land 1) in
            check_int "product" expect (Sim.read_bus sim "p")
          done
        done
      done)
    [
      (Cell.Tg_nor, 1); (Cell.Tg_nor, 2); (Cell.Tg_nor, 4);
      (Cell.Pass_1t, 2); (Cell.Oai22_fused, 1); (Cell.Oai22_fused, 2);
    ]

let test_mulmux_mcr_guard () =
  check_bool "fused rejects MCR 4" true
    (try
       Mulmux.check_mcr Cell.Oai22_fused 4;
       false
     with Mulmux.Unsupported_mcr _ -> true);
  check_bool "non-power-of-two rejected" true
    (try
       Mulmux.check_mcr Cell.Tg_nor 3;
       false
     with Invalid_argument _ -> true)

(* ---------------- shift adder ---------------- *)

let sa_harness kind ~rows ~serial_bits =
  let ir = Ir.create () in
  let c = Builder.ctx_plain ir in
  let ts = Intmath.ceil_log2 rows + 1 in
  let sum = Ir.new_bus ir ts in
  Ir.add_input ir "sum" sum;
  let neg = Ir.new_net ir and clr = Ir.new_net ir and en = Ir.new_net ir in
  Ir.add_input ir "neg" [| neg |];
  Ir.add_input ir "clr" [| clr |];
  Ir.add_input ir "en" [| en |];
  let sa = Shift_adder.build ~kind c ~rows ~serial_bits ~sum ~neg ~clr ~en in
  Ir.add_output ir "acc" sa.Shift_adder.acc;
  Sim.create (Ir.freeze ir)

let run_sa sim sums ~kind ~serial_bits =
  (* [sums] is LSB-indexed (golden order); MSB-first variants consume it
     reversed with the sign cycle first, the LSB-first variant in order
     with the sign cycle last *)
  let lsbf = Shift_adder.lsb_first kind in
  Array.iteri
    (fun k _ ->
      let t = if lsbf then k else serial_bits - 1 - k in
      let sign_cycle = t = serial_bits - 1 in
      Sim.set_bus sim "sum" sums.(t);
      Sim.set_bus sim "en" 1;
      Sim.set_bus sim "clr" (if k = 0 then 1 else 0);
      Sim.set_bus sim "neg"
        (if sign_cycle && serial_bits > 1 then 1 else 0);
      Sim.step sim)
    sums;
  Sim.set_bus sim "en" 0;
  Sim.step sim;
  Sim.eval sim;
  Sim.read_bus_signed sim "acc"

let all_sa_kinds =
  [ Shift_adder.Lsb_right; Shift_adder.Ripple; Shift_adder.Carry_save ]

let test_shift_adder_kinds () =
  let rng = Rng.create 17 in
  List.iter
    (fun kind ->
      let rows = 16 and serial_bits = 6 in
      let sim = sa_harness kind ~rows ~serial_bits in
      for _ = 1 to 30 do
        let sums = Array.init serial_bits (fun _ -> Rng.int rng (rows + 1)) in
        let got = run_sa sim sums ~kind ~serial_bits in
        let expect =
          Golden.shift_accumulate ~input_bits:serial_bits sums
        in
        check_int (Shift_adder.kind_name kind) expect got
      done)
    all_sa_kinds

let test_shift_adder_hold () =
  let sim = sa_harness Shift_adder.Ripple ~rows:8 ~serial_bits:4 in
  let v = run_sa sim [| 3; 1; 4; 1 |] ~kind:Shift_adder.Ripple ~serial_bits:4 in
  (* extra disabled cycles with garbage inputs must not move the result *)
  Sim.set_bus sim "sum" 7;
  Sim.set_bus sim "en" 0;
  Sim.step sim;
  Sim.step sim;
  Sim.eval sim;
  check_int "held" v (Sim.read_bus_signed sim "acc")

let test_carry_save_faster () =
  let scl = Scl.create lib in
  let get kind = Scl.shift_adder scl ~kind ~rows:64 ~serial_bits:8 in
  let rip = get Shift_adder.Ripple in
  let cs = get Shift_adder.Carry_save in
  let lr = get Shift_adder.Lsb_right in
  check_bool "carry-save shorter critical path than ripple" true
    (cs.Ppa.delay_ps < rip.Ppa.delay_ps);
  check_bool "carry-save bigger" true (cs.Ppa.area_um2 > rip.Ppa.area_um2);
  (* the conventional right-shift S&A: narrow adder, small and fast *)
  check_bool "lsb-right faster than ripple" true
    (lr.Ppa.delay_ps < rip.Ppa.delay_ps);
  check_bool "lsb-right smallest" true
    (lr.Ppa.area_um2 < rip.Ppa.area_um2 && lr.Ppa.area_um2 < cs.Ppa.area_um2)

(* ---------------- OFU ---------------- *)

let ofu_harness ~wb ~w_sa ~signed_weights ~pipe ~fast =
  let ir = Ir.create () in
  let c = Builder.ctx_plain ir in
  let columns =
    Array.init wb (fun j ->
        let b = Ir.new_bus ir w_sa in
        Ir.add_input ir (Printf.sprintf "a%d" j) b;
        b)
  in
  let result_width = w_sa + wb + 1 in
  let arch = if fast then Builder.Csel 4 else Builder.Rca in
  let b =
    Ofu.build ~arch c ~signed_weights ~result_width
      ~pipe_after_level:(if pipe then Some 1 else None)
      ~columns
  in
  Ir.add_output ir "r" b.Ofu.result;
  (Sim.create (Ir.freeze ir), b.Ofu.latency)

let test_ofu_fusion () =
  let rng = Rng.create 33 in
  List.iter
    (fun (wb, pipe, fast) ->
      let w_sa = 9 in
      let sim, latency = ofu_harness ~wb ~w_sa ~signed_weights:(wb > 1) ~pipe ~fast in
      for _ = 1 to 40 do
        let cols = Array.init wb (fun _ -> Rng.signed rng ~width:w_sa) in
        Array.iteri
          (fun j v -> Sim.set_bus sim (Printf.sprintf "a%d" j) v)
          cols;
        for _ = 1 to latency do
          Sim.step sim
        done;
        Sim.eval sim;
        check_int
          (Printf.sprintf "wb=%d pipe=%b fast=%b" wb pipe fast)
          (Golden.fuse_columns ~weight_bits:wb cols)
          (Sim.read_bus_signed sim "r")
      done)
    [
      (1, false, false); (2, false, false); (4, false, false);
      (8, false, false); (8, true, false); (8, false, true);
      (4, true, true);
    ]

(* ---------------- FP aligner ---------------- *)

let test_fp_align_gate_level () =
  List.iter
    (fun (fmt, rows, pipeline) ->
      let ir = Ir.create () in
      let c = Builder.ctx_plain ir in
      let en = Ir.new_net ir in
      Ir.add_input ir "en" [| en |];
      let packed =
        Array.init rows (fun r ->
            let b = Ir.new_bus ir (Fpfmt.storage_bits fmt) in
            Ir.add_input ir (Printf.sprintf "x%d" r) b;
            b)
      in
      let a = Fp_align.build c fmt ~pipeline ~en ~rows_packed:packed in
      Array.iteri
        (fun r bus -> Ir.add_output ir (Printf.sprintf "a%d" r) bus)
        a.Fp_align.aligned;
      Ir.add_output ir "gexp" a.Fp_align.group_exp;
      let sim = Sim.create (Ir.freeze ir) in
      let rng = Rng.create (rows + pipeline) in
      for _ = 1 to 25 do
        let xs = Array.init rows (fun _ -> Fpfmt.random rng fmt) in
        Array.iteri
          (fun r v -> Sim.set_bus sim (Printf.sprintf "x%d" r) v)
          xs;
        Sim.set_bus sim "en" 1;
        for _ = 1 to max a.Fp_align.latency 0 do
          Sim.step sim
        done;
        Sim.eval sim;
        let expect = Align.align fmt xs in
        check_int "group exponent" expect.Align.group_exp
          (Sim.read_bus sim "gexp");
        Array.iteri
          (fun r v ->
            check_int
              (Printf.sprintf "row %d" r)
              v
              (Sim.read_bus_signed sim (Printf.sprintf "a%d" r)))
          expect.Align.values
      done)
    [
      (Fpfmt.fp4, 4, 0); (Fpfmt.fp8, 8, 0); (Fpfmt.fp8, 8, 2);
      (Fpfmt.bf16, 8, 1); (Fpfmt.bf16, 16, 3); (Fpfmt.fp8, 5, 3);
    ]

(* ---------------- drivers ---------------- *)

let test_fanout_tree_limits () =
  List.iter
    (fun consumers ->
      let ir = Ir.create () in
      let c = Builder.ctx_plain ir in
      let a = Ir.new_net ir in
      Ir.add_input ir "a" [| a |];
      let leaves = Driver.fanout_tree c a ~consumers ~max_fanout:4 in
      check_int "leaf count" consumers (Array.length leaves);
      (* terminate each leaf and check functionality + fanout bound *)
      let outs = Array.map (fun l -> Builder.inv c l) leaves in
      Ir.add_output ir "o" outs;
      let d = Ir.freeze ir in
      Array.iteri
        (fun n consumers_list ->
          if n > 1 then
            check_bool "fanout bounded" true
              (List.length consumers_list <= 4))
        d.Ir.consumers;
      let sim = Sim.create d in
      Sim.set_bus sim "a" 1;
      Sim.eval sim;
      check_int "propagates" 0 (Sim.read_bus sim "o" land 1))
    [ 1; 4; 5; 16; 64; 100 ]

let test_weight_update_model () =
  let t64 = Driver.weight_update_ps lib ~rows:64 in
  let t256 = Driver.weight_update_ps lib ~rows:256 in
  check_bool "taller columns update slower" true (t256 > t64)

(* ---------------- whole macros ---------------- *)

let verify cfg = Testbench.verify (Macro_rtl.build lib cfg) ~seed:7 ~batches:4

let base rows cols mcr ip wp =
  Macro_rtl.default ~rows ~cols ~mcr ~input_prec:ip ~weight_prec:wp

let test_macro_precisions () =
  List.iter verify
    [
      base 8 8 1 Precision.int1 Precision.int1;
      base 8 8 1 Precision.int2 Precision.int2;
      base 8 8 1 (Precision.Int 4) (Precision.Int 8);
      base 8 8 1 (Precision.Int 8) (Precision.Int 4);
      base 8 16 1 Precision.fp4 Precision.int4;
      base 8 8 1 Precision.fp8 Precision.int8;
      base 8 8 1 Precision.bf16 Precision.int8;
    ]

let test_macro_dimensions () =
  List.iter verify
    [
      base 4 4 1 Precision.int4 Precision.int4;
      base 32 8 1 Precision.int4 Precision.int4;
      base 8 32 1 Precision.int4 Precision.int4;
      (* non-power-of-two height *)
      base 12 8 1 Precision.int4 Precision.int4;
    ]

let test_macro_mcr () =
  List.iter verify
    [
      base 8 8 2 Precision.int4 Precision.int4;
      base 8 8 4 Precision.int4 Precision.int4;
      { (base 8 8 2 Precision.int4 Precision.int4) with
        Macro_rtl.mul_kind = Cell.Oai22_fused };
      { (base 8 8 2 Precision.int4 Precision.int4) with
        Macro_rtl.mul_kind = Cell.Pass_1t };
    ]

let test_macro_pipeline_knobs () =
  let b = base 8 8 1 Precision.int8 Precision.int8 in
  List.iter verify
    [
      { b with Macro_rtl.reg_after_tree = false };
      { b with Macro_rtl.reg_sa_to_ofu = false };
      { b with Macro_rtl.reg_after_tree = false; reg_sa_to_ofu = false;
        reg_output = false };
      { b with Macro_rtl.retime_final_rca = true };
      { b with Macro_rtl.tree_split = 2 };
      { b with Macro_rtl.tree_split = 4; retime_final_rca = true };
      { b with Macro_rtl.ofu_retime = true };
      { b with Macro_rtl.ofu_extra_pipe = true };
      { b with Macro_rtl.ofu_retime = true; ofu_extra_pipe = true };
      { b with Macro_rtl.ofu_fast_adder = true };
      { b with Macro_rtl.sa_kind = Shift_adder.Carry_save };
      { b with Macro_rtl.sa_kind = Shift_adder.Carry_save;
        ofu_fast_adder = true; ofu_retime = true };
      { b with Macro_rtl.tree = Adder_tree.Rca_tree };
      { b with Macro_rtl.cell_kind = Cell.S8t };
      { b with Macro_rtl.cell_kind = Cell.S12t };
    ]

let test_macro_fp_knobs () =
  let b = base 8 16 1 Precision.fp8 Precision.int8 in
  List.iter verify
    [
      { b with Macro_rtl.align_pipeline = 0 };
      { b with Macro_rtl.align_pipeline = 1 };
      { b with Macro_rtl.align_pipeline = 3 };
      { b with Macro_rtl.ofu_retime = true; tree_split = 2 };
    ]

let test_macro_copies_independent () =
  (* weights in copy 0 and copy 1 are independent and selectable *)
  let cfg = base 4 4 2 Precision.int4 Precision.int4 in
  let m = Macro_rtl.build lib cfg in
  let sim = Sim.create m.Macro_rtl.design in
  let w0 = [| [| 1; 2; 3; 4 |] |] and w1 = [| [| -1; -2; -3; -4 |] |] in
  Testbench.load_weights m sim ~copy:0 w0;
  Testbench.load_weights m sim ~copy:1 w1;
  let inputs = [| 1; 1; 1; 1 |] in
  Sim.set_bus sim "copy_sel" 0;
  let r0 = Testbench.run_mac m sim ~inputs in
  Sim.set_bus sim "copy_sel" 1;
  let r1 = Testbench.run_mac m sim ~inputs in
  check_int "copy 0" 10 r0.(0);
  check_int "copy 1" (-10) r1.(0)

let test_macro_mac_write_concurrency () =
  (* the MCR=2 macro updates the idle copy mid-MAC without disturbing the
     computation — the Table II "MAC-Write" feature *)
  let cfg = base 8 8 2 Precision.int8 Precision.int8 in
  let m = Macro_rtl.build lib cfg in
  let sim = Sim.create m.Macro_rtl.design in
  let rng = Rng.create 3 in
  let weights = Testbench.random_weights rng m ~density:1.0 in
  Testbench.load_weights m sim ~copy:0 weights;
  Sim.set_bus sim "copy_sel" 0;
  Testbench.present_inputs m sim (Array.init 8 (fun i -> i - 4));
  Testbench.set_controls sim ~load:true ~sa_en:false ~sa_clr:false
    ~sa_neg:false;
  Sim.step sim;
  (* serial cycles, writing copy 1 in the middle *)
  let db = m.Macro_rtl.db and tl = m.Macro_rtl.tree_lat in
  let last = tl + db - 1 in
  for k = 0 to last do
    if k = 2 then
      Testbench.load_weights m sim ~copy:1
        (Testbench.random_weights rng m ~density:1.0);
    Testbench.set_controls sim ~load:false ~sa_en:(k >= tl)
      ~sa_clr:(k = tl)
      ~sa_neg:(if m.Macro_rtl.neg_on_last then k = last else k = tl);
    Sim.step sim
  done;
  Testbench.set_controls sim ~load:false ~sa_en:false ~sa_clr:false
    ~sa_neg:false;
  for _ = 1 to m.Macro_rtl.post_lat do
    Sim.step sim
  done;
  Sim.eval sim;
  let got = Sim.read_bus_signed sim "result0" in
  let expect =
    Golden.dot ~weights:weights.(0) ~inputs:(Array.init 8 (fun i -> i - 4))
  in
  check_int "MAC unaffected by concurrent write" expect got

let test_controller_macro () =
  let cfg =
    { (base 8 8 1 Precision.int8 Precision.int8) with
      Macro_rtl.with_controller = true }
  in
  let m = Macro_rtl.build lib cfg in
  let sim = Sim.create m.Macro_rtl.design in
  let rng = Rng.create 5 in
  let weights = Testbench.random_weights rng m ~density:1.0 in
  Testbench.load_weights m sim ~copy:0 weights;
  for _ = 1 to 5 do
    let inputs = Array.init 8 (fun _ -> Rng.signed rng ~width:8) in
    let r = Testbench.run_mac_auto m sim ~inputs in
    check_int "controller-sequenced MAC"
      (Golden.dot ~weights:weights.(0) ~inputs)
      r.(0)
  done

let test_macro_latency_metadata () =
  let m = Macro_rtl.build lib (base 8 8 1 Precision.int8 Precision.int8) in
  check_int "serial cycles" 8 (Macro_rtl.serial_cycles m);
  check_int "latency formula"
    (m.Macro_rtl.align_lat + 1 + 8 + m.Macro_rtl.tree_lat
   + m.Macro_rtl.post_lat)
    (Macro_rtl.mac_latency m)

let qtest_macro_random_configs =
  (* randomized configuration fuzzing: any legal config must verify *)
  let gen =
    QCheck.Gen.(
      let* rows = oneofl [ 4; 8; 16 ] in
      let* cols = oneofl [ 4; 8 ] in
      let* mcr = oneofl [ 1; 2 ] in
      let* ip = oneofl [ Precision.int2; Precision.int4; Precision.int8 ] in
      let* wp = oneofl [ Precision.int2; Precision.int4; Precision.int8 ] in
      let* fa_ratio = oneofl [ 0.0; 0.5; 1.0 ] in
      let* reorder = bool in
      let* sa =
        oneofl
          [ Shift_adder.Lsb_right; Shift_adder.Ripple; Shift_adder.Carry_save ]
      in
      let* rat = bool in
      let* rso = bool in
      let* ort = bool in
      let* oep = bool in
      let* ofa = bool in
      let* rfr = bool in
      return
        {
          (Macro_rtl.default ~rows ~cols ~mcr ~input_prec:ip ~weight_prec:wp)
          with
          Macro_rtl.tree = Adder_tree.Csa { fa_ratio; reorder };
          sa_kind = sa;
          reg_after_tree = rat;
          reg_sa_to_ofu = rso;
          ofu_retime = ort && rso;
          ofu_extra_pipe = oep;
          ofu_fast_adder = ofa;
          retime_final_rca = rfr;
        })
  in
  QCheck.Test.make ~name:"random macro configs verify" ~count:25
    (QCheck.make gen) (fun cfg ->
      if cfg.Macro_rtl.cols mod Precision.datapath_bits cfg.Macro_rtl.weight_prec <> 0
      then true
      else begin
        Testbench.verify (Macro_rtl.build lib cfg) ~seed:1 ~batches:2;
        true
      end)

let () =
  Alcotest.run "rtl"
    [
      ( "adder_tree",
        [
          Alcotest.test_case "popcount all topologies" `Quick
            test_tree_popcount;
          Alcotest.test_case "width" `Quick test_tree_width;
          Alcotest.test_case "paper claims" `Slow test_tree_claims;
          Alcotest.test_case "pipeline latency" `Quick
            test_tree_pipeline_latency;
        ] );
      ( "mulmux",
        [
          Alcotest.test_case "function" `Quick test_mulmux_function;
          Alcotest.test_case "MCR guard" `Quick test_mulmux_mcr_guard;
        ] );
      ( "shift_adder",
        [
          Alcotest.test_case "both kinds" `Quick test_shift_adder_kinds;
          Alcotest.test_case "hold" `Quick test_shift_adder_hold;
          Alcotest.test_case "carry-save faster" `Slow
            test_carry_save_faster;
        ] );
      ("ofu", [ Alcotest.test_case "fusion" `Quick test_ofu_fusion ]);
      ( "fp_align",
        [ Alcotest.test_case "gate level" `Quick test_fp_align_gate_level ]
      );
      ( "driver",
        [
          Alcotest.test_case "fanout tree" `Quick test_fanout_tree_limits;
          Alcotest.test_case "weight update" `Quick test_weight_update_model;
        ] );
      ( "macro",
        [
          Alcotest.test_case "precisions" `Quick test_macro_precisions;
          Alcotest.test_case "dimensions" `Quick test_macro_dimensions;
          Alcotest.test_case "MCR variants" `Quick test_macro_mcr;
          Alcotest.test_case "pipeline knobs" `Quick
            test_macro_pipeline_knobs;
          Alcotest.test_case "FP knobs" `Quick test_macro_fp_knobs;
          Alcotest.test_case "copies independent" `Quick
            test_macro_copies_independent;
          Alcotest.test_case "MAC-write concurrency" `Quick
            test_macro_mac_write_concurrency;
          Alcotest.test_case "controller" `Quick test_controller_macro;
          Alcotest.test_case "latency metadata" `Quick
            test_macro_latency_metadata;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qtest_macro_random_configs ] );
    ]
