(* Tests for the technology models: voltage scaling and the Table II
   node-scaling rules. *)

let node = Node.n40

let check_float = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)

let test_delay_scale_identity () =
  check_float "nominal voltage scales by 1" 1.0
    (Voltage.delay_scale node ~vdd:node.Node.vdd_nominal)

let test_delay_scale_monotone () =
  let vs = [ 0.6; 0.7; 0.8; 0.9; 1.0; 1.1; 1.2; 1.3 ] in
  let scales = List.map (fun vdd -> Voltage.delay_scale node ~vdd) vs in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  check_bool "delay decreases with voltage" true (decreasing scales)

let test_delay_scale_subthreshold () =
  check_bool "below Vth is infinitely slow" true
    (Float.is_integer (Voltage.delay_scale node ~vdd:0.2) = false
    || Voltage.delay_scale node ~vdd:0.2 = infinity);
  check_bool "at Vth infinite" true
    (Voltage.delay_scale node ~vdd:node.Node.vth = infinity)

let test_energy_scale () =
  check_float "quadratic" 1.0 (Voltage.energy_scale node ~vdd:1.1);
  let e07 = Voltage.energy_scale node ~vdd:0.7 in
  check_bool "0.7V saves energy" true (e07 < 0.45 && e07 > 0.35)

let test_fmax () =
  let f = Voltage.fmax node ~crit_path_ps:1000.0 ~vdd:1.1 in
  check_bool "1 ns path = 1 GHz at nominal" true
    (Float.abs (f -. 1e9) < 1e6);
  check_bool "higher voltage, higher fmax" true
    (Voltage.fmax node ~crit_path_ps:1000.0 ~vdd:1.2 > f)

let test_passes () =
  check_bool "easily passes" true
    (Voltage.passes node ~crit_path_ps:500.0 ~vdd:1.1 ~freq_hz:1e9);
  check_bool "fails at 3 GHz" false
    (Voltage.passes node ~crit_path_ps:500.0 ~vdd:1.1 ~freq_hz:3e9)

let test_shmoo_monotone_in_v () =
  (* if a frequency passes at some voltage it passes at any higher one *)
  let crit = 900.0 in
  List.iter
    (fun f ->
      let passing =
        List.filter
          (fun vdd -> Voltage.passes node ~crit_path_ps:crit ~vdd ~freq_hz:f)
          [ 0.6; 0.7; 0.8; 0.9; 1.0; 1.1; 1.2 ]
      in
      match passing with
      | [] -> ()
      | lowest :: _ ->
          List.iter
            (fun vdd ->
              if vdd >= lowest then
                check_bool "monotone" true
                  (Voltage.passes node ~crit_path_ps:crit ~vdd ~freq_hz:f))
            [ 0.6; 0.7; 0.8; 0.9; 1.0; 1.1; 1.2 ])
    [ 2e8; 5e8; 1e9 ]

(* ---------------- node roadmap ---------------- *)

let test_node_steps () =
  check_float "same node" 0.0 (Node.node_steps ~from_nm:40.0 ~to_nm:40.0);
  check_float "40 to 5nm is 6 steps" 6.0
    (Node.node_steps ~from_nm:40.0 ~to_nm:5.0);
  check_float "40 to 3nm is 8 steps" 8.0
    (Node.node_steps ~from_nm:40.0 ~to_nm:3.0);
  check_float "40 to 55nm is -1 step" (-1.0)
    (Node.node_steps ~from_nm:40.0 ~to_nm:55.0)

(* ---------------- Table II scaling rules ---------------- *)

let test_to_1b1b () =
  check_float "4x4 bits = x16" 16.0
    (Scaling.to_1b1b ~input_bits:4 ~weight_bits:4 1.0)

let test_published_roundtrip () =
  (* the stored raw figures must reproduce the paper's Table II numbers
     through the scaling rules *)
  let close label expected actual =
    Alcotest.(check bool)
      (Printf.sprintf "%s: %.1f vs %.1f" label expected actual)
      true
      (Float.abs (expected -. actual) /. expected < 0.02)
  in
  let p = Scaling.isscc22 in
  close "ISSCC22 TOPS" 2.9 (Scaling.tops_scaled p);
  close "ISSCC22 TOPS/mm2" 104.0 (Scaling.area_eff_scaled p);
  close "ISSCC22 TOPS/W" 842.0 (Scaling.energy_eff_scaled p);
  let p = Scaling.isscc24 in
  close "ISSCC24 TOPS" 8.2 (Scaling.tops_scaled p);
  close "ISSCC24 TOPS/mm2" 98.0 (Scaling.area_eff_scaled p);
  close "ISSCC24 TOPS/W" 1090.0 (Scaling.energy_eff_scaled p);
  let p = Scaling.tcas24 in
  close "TCAS TOPS" 0.8 (Scaling.tops_scaled p);
  close "TCAS TOPS/W" 2848.0 (Scaling.energy_eff_scaled p)

let test_published_complete () =
  Alcotest.(check int) "four published designs" 4
    (List.length Scaling.published)

let () =
  Alcotest.run "tech"
    [
      ( "voltage",
        [
          Alcotest.test_case "identity at nominal" `Quick
            test_delay_scale_identity;
          Alcotest.test_case "monotone" `Quick test_delay_scale_monotone;
          Alcotest.test_case "subthreshold" `Quick
            test_delay_scale_subthreshold;
          Alcotest.test_case "energy" `Quick test_energy_scale;
          Alcotest.test_case "fmax" `Quick test_fmax;
          Alcotest.test_case "passes" `Quick test_passes;
          Alcotest.test_case "shmoo monotone" `Quick
            test_shmoo_monotone_in_v;
        ] );
      ("roadmap", [ Alcotest.test_case "node steps" `Quick test_node_steps ]);
      ( "scaling",
        [
          Alcotest.test_case "1b1b" `Quick test_to_1b1b;
          Alcotest.test_case "Table II round-trip" `Quick
            test_published_roundtrip;
          Alcotest.test_case "published set" `Quick test_published_complete;
        ] );
    ]
