(* Tests for the netlist IR, builder combinators, simulator and the
   Verilog writer. Builder arithmetic is validated exhaustively or by
   randomized property against native integer arithmetic. *)

let lib = Library.n40 ()

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* helper: build a combinational design with one input bus per named
   operand, evaluate it on concrete values, read the output bus *)
let comb_harness ~inputs ~build =
  let ir = Ir.create () in
  let c = Builder.ctx_plain ir in
  let buses =
    List.map
      (fun (name, width) ->
        let b = Ir.new_bus ir width in
        Ir.add_input ir name b;
        (name, b))
      inputs
  in
  let out = build c (fun name -> List.assoc name buses) in
  Ir.add_output ir "out" out;
  let d = Ir.freeze ir in
  let sim = Sim.create d in
  fun values ->
    List.iter (fun (name, v) -> Sim.set_bus sim name v) values;
    Sim.eval sim;
    Sim.read_bus sim "out"

(* ---------------- IR validation ---------------- *)

let test_multiple_drivers_rejected () =
  let ir = Ir.create () in
  let c = Builder.ctx_plain ir in
  let a = Ir.new_net ir in
  Ir.add_input ir "a" [| a |];
  let o = Builder.inv c a in
  (* second driver onto o *)
  ignore (Ir.add ir Cell.Buf ~ins:[| a |] ~outs:[| o |]);
  check_bool "raises" true
    (try
       ignore (Ir.freeze ir);
       false
     with Ir.Multiple_drivers _ -> true)

let test_comb_cycle_rejected () =
  let ir = Ir.create () in
  let a = Ir.new_net ir and b = Ir.new_net ir in
  ignore (Ir.add ir Cell.Inv ~ins:[| a |] ~outs:[| b |]);
  ignore (Ir.add ir Cell.Inv ~ins:[| b |] ~outs:[| a |]);
  check_bool "raises" true
    (try
       ignore (Ir.freeze ir);
       false
     with Ir.Combinational_cycle _ -> true)

let test_register_feedback_allowed () =
  (* a register in the loop makes it legal *)
  let ir = Ir.create () in
  let c = Builder.ctx_plain ir in
  let q = Ir.new_net ir in
  let d = Builder.inv c q in
  Builder.dff_into c ~d ~q;
  Ir.add_output ir "q" [| q |];
  let dsg = Ir.freeze ir in
  let sim = Sim.create dsg in
  (* toggles every cycle *)
  Sim.step sim;
  let v1 = Sim.read_bus sim "q" in
  Sim.step sim;
  let v2 = Sim.read_bus sim "q" in
  check_bool "oscillates" true (v1 <> v2)

let test_arity_checked () =
  let ir = Ir.create () in
  check_bool "bad arity" true
    (try
       ignore (Ir.add ir Cell.Nand2 ~ins:[| 0 |] ~outs:[| Ir.new_net ir |]);
       false
     with Assert_failure _ -> true)

let test_fanout_load () =
  let ir = Ir.create () in
  let c = Builder.ctx_plain ir in
  let a = Ir.new_net ir in
  Ir.add_input ir "a" [| a |];
  for _ = 1 to 5 do
    ignore (Builder.inv c a)
  done;
  let d = Ir.freeze ir in
  let inv_cap = (Library.params lib Cell.Inv Cell.X1).Library.input_cap_ff in
  Alcotest.(check (float 1e-6)) "5 inverter loads" (5.0 *. inv_cap)
    (Ir.fanout_load d lib a)

(* ---------------- arithmetic builders ---------------- *)

let test_rca_add_exhaustive () =
  let run =
    comb_harness ~inputs:[ ("a", 4); ("b", 4) ] ~build:(fun c bus ->
        let sum, co = Builder.rca_add c (bus "a") (bus "b") Ir.const0 in
        Array.append sum [| co |])
  in
  for a = 0 to 15 do
    for b = 0 to 15 do
      check_int
        (Printf.sprintf "%d+%d" a b)
        (a + b)
        (run [ ("a", a); ("b", b) ])
    done
  done

let test_carry_select_exhaustive () =
  let run =
    comb_harness ~inputs:[ ("a", 6); ("b", 6) ] ~build:(fun c bus ->
        let sum, co =
          Builder.carry_select_add c (bus "a") (bus "b") Ir.const0 ~block:2
        in
        Array.append sum [| co |])
  in
  for a = 0 to 63 do
    for b = 0 to 63 do
      check_int "csel" (a + b) (run [ ("a", a); ("b", b) ])
    done
  done

let test_carry_select_with_cin () =
  let run =
    comb_harness ~inputs:[ ("a", 5); ("b", 5) ] ~build:(fun c bus ->
        let sum, co =
          Builder.carry_select_add c (bus "a") (bus "b") Ir.const1 ~block:3
        in
        Array.append sum [| co |])
  in
  for a = 0 to 31 do
    check_int "cin" (a + 17 + 1) (run [ ("a", a); ("b", 17) ])
  done

let signed_read v ~width = Intmath.sign_extend ~width v

let test_addsub_signed () =
  let width = 6 in
  let run =
    comb_harness ~inputs:[ ("a", 6); ("b", 6); ("s", 1) ]
      ~build:(fun c bus ->
        Builder.addsub_signed c ~sub:(bus "s").(0) (bus "a") (bus "b") ~width)
  in
  for a = -8 to 7 do
    for b = -8 to 7 do
      check_int "add" (a + b)
        (signed_read ~width (run [ ("a", a); ("b", b); ("s", 0) ]));
      check_int "sub" (a - b)
        (signed_read ~width (run [ ("a", a); ("b", b); ("s", 1) ]))
    done
  done

let test_sub_and_neg () =
  let width = 7 in
  let sub =
    comb_harness ~inputs:[ ("a", 7); ("b", 7) ] ~build:(fun c bus ->
        Builder.sub_signed c (bus "a") (bus "b") ~width)
  in
  let neg =
    comb_harness ~inputs:[ ("a", 7) ] ~build:(fun c bus ->
        Builder.neg_signed c (bus "a") ~width)
  in
  for a = -20 to 20 do
    check_int "neg" (-a) (signed_read ~width (neg [ ("a", a) ]));
    check_int "sub" (a - 13)
      (signed_read ~width (sub [ ("a", a); ("b", 13) ]))
  done

let test_barrel_shifter () =
  let run =
    comb_harness ~inputs:[ ("a", 8); ("s", 3) ] ~build:(fun c bus ->
        Builder.barrel_shift_right c (bus "a") (bus "s"))
  in
  for s = 0 to 7 do
    check_int "shift" (0xB5 lsr s) (run [ ("a", 0xB5); ("s", s) ])
  done

let test_greater_than () =
  let run =
    comb_harness ~inputs:[ ("a", 5); ("b", 5) ] ~build:(fun c bus ->
        [| Builder.greater_than c (bus "a") (bus "b") |])
  in
  for a = 0 to 31 do
    for b = 0 to 31 do
      check_int "gt" (if a > b then 1 else 0) (run [ ("a", a); ("b", b) ])
    done
  done

let test_equal_const_and_reduce () =
  let run =
    comb_harness ~inputs:[ ("a", 4) ] ~build:(fun c bus ->
        [| Builder.equal_const c (bus "a") 9; Builder.or_reduce c (bus "a") |])
  in
  for a = 0 to 15 do
    let v = run [ ("a", a) ] in
    check_int "eq9" (if a = 9 then 1 else 0) (v land 1);
    check_int "or" (if a <> 0 then 1 else 0) (v lsr 1)
  done

let test_mux_and_shift_wiring () =
  let run =
    comb_harness ~inputs:[ ("a", 4); ("b", 4); ("s", 1) ]
      ~build:(fun c bus ->
        let m = Builder.mux_bus c ~sel:(bus "s").(0) (bus "a") (bus "b") in
        Builder.shift_left m 2 ~width:6)
  in
  check_int "mux0 shift" (5 lsl 2) (run [ ("a", 5); ("b", 9); ("s", 0) ]);
  check_int "mux1 shift" (9 lsl 2) (run [ ("a", 5); ("b", 9); ("s", 1) ])

(* ---------------- simulator semantics ---------------- *)

let test_dff_en_hold () =
  let ir = Ir.create () in
  let c = Builder.ctx_plain ir in
  let d = Ir.new_net ir and en = Ir.new_net ir in
  Ir.add_input ir "d" [| d |];
  Ir.add_input ir "en" [| en |];
  let q = Builder.dff_en c ~en d in
  Ir.add_output ir "q" [| q |];
  let dsg = Ir.freeze ir in
  let sim = Sim.create dsg in
  Sim.set_bus sim "d" 1;
  Sim.set_bus sim "en" 1;
  Sim.step sim;
  check_int "captured" 1 (Sim.read_bus sim "q");
  Sim.set_bus sim "d" 0;
  Sim.set_bus sim "en" 0;
  Sim.step sim;
  check_int "held" 1 (Sim.read_bus sim "q");
  Sim.set_bus sim "en" 1;
  Sim.step sim;
  check_int "released" 0 (Sim.read_bus sim "q")

let test_en_cycles_counted () =
  let ir = Ir.create () in
  let c = Builder.ctx_plain ir in
  let d = Ir.new_net ir and en = Ir.new_net ir in
  Ir.add_input ir "d" [| d |];
  Ir.add_input ir "en" [| en |];
  ignore (Builder.dff_en c ~en d);
  let dsg = Ir.freeze ir in
  let sim = Sim.create dsg in
  Sim.set_bus sim "en" 1;
  Sim.step sim;
  Sim.step sim;
  Sim.set_bus sim "en" 0;
  Sim.step sim;
  let i = dsg.Ir.seq.(0) in
  check_int "2 of 3 enabled" 2 sim.Sim.en_cycles.(i)

let test_toggle_counting () =
  let ir = Ir.create () in
  let c = Builder.ctx_plain ir in
  let a = Ir.new_net ir in
  Ir.add_input ir "a" [| a |];
  let o = Builder.inv c a in
  Ir.add_output ir "o" [| o |];
  let dsg = Ir.freeze ir in
  let sim = Sim.create dsg in
  for i = 0 to 9 do
    Sim.set_bus sim "a" (i mod 2);
    Sim.step sim
  done;
  (* a toggled 9 times after the first set; output follows *)
  check_bool "output toggles counted" true (sim.Sim.toggles.(o) >= 9)

let test_weight_storage () =
  let ir = Ir.create () in
  let out = Ir.new_net ir in
  ignore
    (Ir.add
       ~tag:(Ir.Weight_bit { row = 3; col = 5; copy = 1 })
       ir (Cell.Sram Cell.S6t) ~ins:[||] ~outs:[| out |]);
  Ir.add_output ir "w" [| out |];
  let dsg = Ir.freeze ir in
  let sim = Sim.create dsg in
  Sim.set_weight sim ~row:3 ~col:5 ~copy:1 true;
  Sim.eval sim;
  check_int "stored" 1 (Sim.read_bus sim "w");
  check_int "one flip" 1 sim.Sim.weight_flips;
  Sim.set_weight sim ~row:3 ~col:5 ~copy:1 true;
  check_int "no flip on same value" 1 sim.Sim.weight_flips;
  check_bool "bad address" true
    (try
       Sim.set_weight sim ~row:0 ~col:0 ~copy:0 true;
       false
     with Invalid_argument _ -> true)

(* ---------------- stats + verilog ---------------- *)

let small_macro () =
  Macro_rtl.build lib
    (Macro_rtl.default ~rows:4 ~cols:4 ~mcr:1 ~input_prec:Precision.int4
       ~weight_prec:Precision.int4)

let test_stats () =
  let m = small_macro () in
  let st = Stats.of_design m.Macro_rtl.design lib in
  check_bool "area positive" true (st.Stats.area_um2 > 0.0);
  check_int "insts match" (Ir.n_insts m.Macro_rtl.design) st.Stats.n_insts;
  let total = List.fold_left (fun a (_, n) -> a + n) 0 st.Stats.by_kind in
  check_int "kind counts sum" st.Stats.n_insts total;
  let sub = Stats.area_by_subcircuit m.Macro_rtl.design lib in
  let sum = List.fold_left (fun a (_, x) -> a +. x) 0.0 sub in
  check_bool "subcircuit areas sum to total" true
    (Float.abs (sum -. st.Stats.area_um2) < 1e-6)

let test_verilog_writer () =
  let m = small_macro () in
  let v = Verilog.to_string m.Macro_rtl.design in
  let contains needle =
    let n = String.length needle and h = String.length v in
    let rec go i = i + n <= h && (String.sub v i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "module header" true (contains "module dcim_macro");
  check_bool "endmodule" true (contains "endmodule");
  check_bool "instantiates srams" true (contains "SRAM6T_X1");
  check_bool "clock port" true (contains ".CK(clk)");
  check_bool "result port" true (contains "result0")

let test_sim_determinism () =
  (* two simulators over the same design and stimulus agree exactly,
     including statistics *)
  let mk () =
    let m = small_macro () in
    let sim = Sim.create m.Macro_rtl.design in
    let rng = Rng.create 77 in
    let w = Testbench.random_weights rng m ~density:0.5 in
    Testbench.load_weights m sim ~copy:0 w;
    Testbench.run_stream m sim ~rng ~macs:3 ~input_density:0.5;
    (Array.fold_left ( + ) 0 sim.Sim.toggles, sim.Sim.cycles)
  in
  let t1, c1 = mk () and t2, c2 = mk () in
  check_int "same toggles" t1 t2;
  check_int "same cycles" c1 c2

let test_reset_stats () =
  let m = small_macro () in
  let sim = Sim.create m.Macro_rtl.design in
  let rng = Rng.create 3 in
  Testbench.load_weights m sim ~copy:0
    (Testbench.random_weights rng m ~density:0.5);
  Testbench.run_stream m sim ~rng ~macs:2 ~input_density:0.5;
  check_bool "activity happened" true
    (Array.exists (fun t -> t > 0) sim.Sim.toggles);
  Sim.reset_stats sim;
  check_int "cycles cleared" 0 sim.Sim.cycles;
  check_bool "toggles cleared" true
    (Array.for_all (fun t -> t = 0) sim.Sim.toggles);
  check_int "writes cleared" 0 sim.Sim.weight_flips

let test_missing_bus () =
  let m = small_macro () in
  let sim = Sim.create m.Macro_rtl.design in
  check_bool "unknown bus rejected" true
    (try
       Sim.set_bus sim "no_such_bus" 1;
       false
     with Invalid_argument _ -> true)

let qtest_rca_random =
  QCheck.Test.make ~name:"rca 12-bit random" ~count:200
    QCheck.(pair (int_range 0 4095) (int_range 0 4095))
    (fun (a, b) ->
      let run =
        comb_harness ~inputs:[ ("a", 12); ("b", 12) ] ~build:(fun c bus ->
            let sum, co = Builder.rca_add c (bus "a") (bus "b") Ir.const0 in
            Array.append sum [| co |])
      in
      run [ ("a", a); ("b", b) ] = a + b)

let () =
  Alcotest.run "netlist"
    [
      ( "ir",
        [
          Alcotest.test_case "multiple drivers" `Quick
            test_multiple_drivers_rejected;
          Alcotest.test_case "comb cycle" `Quick test_comb_cycle_rejected;
          Alcotest.test_case "register feedback" `Quick
            test_register_feedback_allowed;
          Alcotest.test_case "arity check" `Quick test_arity_checked;
          Alcotest.test_case "fanout load" `Quick test_fanout_load;
        ] );
      ( "builder",
        [
          Alcotest.test_case "rca exhaustive" `Quick test_rca_add_exhaustive;
          Alcotest.test_case "carry-select exhaustive" `Quick
            test_carry_select_exhaustive;
          Alcotest.test_case "carry-select cin" `Quick
            test_carry_select_with_cin;
          Alcotest.test_case "addsub signed" `Quick test_addsub_signed;
          Alcotest.test_case "sub/neg" `Quick test_sub_and_neg;
          Alcotest.test_case "barrel shifter" `Quick test_barrel_shifter;
          Alcotest.test_case "greater_than" `Quick test_greater_than;
          Alcotest.test_case "equal/or-reduce" `Quick
            test_equal_const_and_reduce;
          Alcotest.test_case "mux + shift wiring" `Quick
            test_mux_and_shift_wiring;
        ] );
      ( "sim",
        [
          Alcotest.test_case "dff_en hold" `Quick test_dff_en_hold;
          Alcotest.test_case "enable cycles" `Quick test_en_cycles_counted;
          Alcotest.test_case "toggle counting" `Quick test_toggle_counting;
          Alcotest.test_case "weight storage" `Quick test_weight_storage;
        ] );
      ( "views",
        [
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "verilog writer" `Quick test_verilog_writer;
          Alcotest.test_case "sim determinism" `Quick test_sim_determinism;
          Alcotest.test_case "reset stats" `Quick test_reset_stats;
          Alcotest.test_case "missing bus" `Quick test_missing_bus;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qtest_rca_random ]);
    ]
