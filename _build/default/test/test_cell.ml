(* Tests for the cell library: logic functions, PPA model coherence,
   characterization tables and the Liberty/LEF writers. *)

let lib = Library.n40 ()

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- logic functions ---------------- *)

let eval1 k ins = (Cell.eval k ins).(0)

let test_basic_gates () =
  let t = true and f = false in
  check_bool "inv" t (eval1 Cell.Inv [| f |]);
  check_bool "buf" t (eval1 Cell.Buf [| t |]);
  check_bool "nand" f (eval1 Cell.Nand2 [| t; t |]);
  check_bool "nor" t (eval1 Cell.Nor2 [| f; f |]);
  check_bool "and" t (eval1 Cell.And2 [| t; t |]);
  check_bool "or" t (eval1 Cell.Or2 [| f; t |]);
  check_bool "xor" t (eval1 Cell.Xor2 [| f; t |]);
  check_bool "xnor" t (eval1 Cell.Xnor2 [| t; t |])

let test_mux_gates () =
  List.iter
    (fun k ->
      check_bool "sel=0 -> a" true (eval1 k [| true; false; false |]);
      check_bool "sel=1 -> b" true (eval1 k [| false; true; true |]))
    [ Cell.Mux2; Cell.Tgmux2; Cell.Ptmux2 ]

let test_aoi_oai () =
  check_bool "aoi22" false (eval1 Cell.Aoi22 [| true; true; false; false |]);
  check_bool "oai22" false (eval1 Cell.Oai22 [| true; false; false; true |]);
  check_bool "oai22 zero" true
    (eval1 Cell.Oai22 [| false; false; true; true |])

(* exhaustive arithmetic truth tables *)
let bits_of n width = Array.init width (fun i -> (n lsr i) land 1 = 1)
let int_of_bool b = if b then 1 else 0

let test_ha_exhaustive () =
  for n = 0 to 3 do
    let ins = bits_of n 2 in
    let o = Cell.eval Cell.Ha ins in
    let expect = int_of_bool ins.(0) + int_of_bool ins.(1) in
    check_int "ha sum" expect
      (int_of_bool o.(0) + (2 * int_of_bool o.(1)))
  done

let test_fa_exhaustive () =
  for n = 0 to 7 do
    let ins = bits_of n 3 in
    let o = Cell.eval Cell.Fa ins in
    let expect = Array.fold_left (fun a b -> a + int_of_bool b) 0 ins in
    check_int "fa sum" expect
      (int_of_bool o.(0) + (2 * int_of_bool o.(1)))
  done

let test_comp42_exhaustive () =
  (* sum + 2*(carry + cout) must equal the number of set inputs *)
  for n = 0 to 31 do
    let ins = bits_of n 5 in
    let o = Cell.eval Cell.Comp42 ins in
    let expect = Array.fold_left (fun a b -> a + int_of_bool b) 0 ins in
    check_int "comp42 value" expect
      (int_of_bool o.(0) + (2 * (int_of_bool o.(1) + int_of_bool o.(2))))
  done

let test_mul_cells () =
  check_bool "tgnor mul" true (eval1 (Cell.Mul Cell.Tg_nor) [| true; true |]);
  check_bool "pass1t mul" false
    (eval1 (Cell.Mul Cell.Pass_1t) [| true; false |]);
  (* fused: x & (sel ? w1 : w0) *)
  check_bool "oai22f sel0" true
    (eval1 (Cell.Mul Cell.Oai22_fused) [| true; true; false; false |]);
  check_bool "oai22f sel1" false
    (eval1 (Cell.Mul Cell.Oai22_fused) [| true; true; false; true |])

let test_eval_rejects_sequential () =
  Alcotest.check_raises "dff eval"
    (Invalid_argument "Cell.eval: sequential/storage cell") (fun () ->
      ignore (Cell.eval Cell.Dff [| true |]))

let test_arity_tables () =
  List.iter
    (fun k ->
      check_bool "inputs >= 0" true (Cell.n_inputs k >= 0);
      check_bool "outputs >= 1" true (Cell.n_outputs k >= 1))
    Cell.all_kinds;
  check_int "comp42 inputs" 5 (Cell.n_inputs Cell.Comp42);
  check_int "comp42 outputs" 3 (Cell.n_outputs Cell.Comp42);
  check_int "sram inputs" 0 (Cell.n_inputs (Cell.Sram Cell.S6t))

(* ---------------- PPA model coherence ---------------- *)

let p k = Library.params lib k Cell.X1

let test_fo4_calibration () =
  (* X1 inverter FO4 = intrinsic + res * 4 * own input cap = 20 ps *)
  let inv = p Cell.Inv in
  let fo4 =
    inv.Library.intrinsic_ps.(0)
    +. (inv.Library.drive_res_ps_per_ff *. 4.0 *. inv.Library.input_cap_ff)
  in
  Alcotest.(check (float 0.5)) "FO4 = 20ps" 20.0 fo4

let test_paper_cell_claims () =
  (* compressor: cheaper than two FAs in area/energy, slower sum *)
  let fa = p Cell.Fa and c42 = p Cell.Comp42 in
  check_bool "comp42 smaller than 2 FA" true
    (c42.Library.area_um2 < 2.0 *. fa.Library.area_um2);
  check_bool "comp42 lower energy than 2 FA" true
    (c42.Library.energy_fj < 2.0 *. fa.Library.energy_fj);
  check_bool "comp42 sum slower than FA sum" true
    (c42.Library.intrinsic_ps.(0) > fa.Library.intrinsic_ps.(0));
  (* carry outputs faster than sums (the reordering opportunity) *)
  check_bool "fa carry faster" true
    (fa.Library.intrinsic_ps.(1) < fa.Library.intrinsic_ps.(0));
  check_bool "comp42 carries faster" true
    (c42.Library.intrinsic_ps.(1) < c42.Library.intrinsic_ps.(0)
    && c42.Library.intrinsic_ps.(2) < c42.Library.intrinsic_ps.(0));
  (* 1T pass mux: smallest but slow and leaky (AutoDCIM's tradeoff) *)
  let tg = p (Cell.Mul Cell.Tg_nor) and pt = p (Cell.Mul Cell.Pass_1t) in
  check_bool "pass1t smaller" true (pt.Library.area_um2 < tg.Library.area_um2);
  check_bool "pass1t slower" true
    (pt.Library.intrinsic_ps.(0) > tg.Library.intrinsic_ps.(0));
  check_bool "pass1t leakier" true
    (pt.Library.leakage_nw > tg.Library.leakage_nw);
  (* memory cells: 6T < 8T < 12T in area *)
  let a k = (p (Cell.Sram k)).Library.area_um2 in
  check_bool "cell areas ordered" true
    (a Cell.S6t < a Cell.S8t && a Cell.S8t < a Cell.S12t)

let test_drive_scaling () =
  List.iter
    (fun k ->
      let x1 = Library.params lib k Cell.X1 in
      let x2 = Library.params lib k Cell.X2 in
      let x4 = Library.params lib k Cell.X4 in
      check_bool "res decreases" true
        (x4.Library.drive_res_ps_per_ff < x2.Library.drive_res_ps_per_ff
        && x2.Library.drive_res_ps_per_ff < x1.Library.drive_res_ps_per_ff);
      check_bool "area increases" true
        (x4.Library.area_um2 > x2.Library.area_um2
        && x2.Library.area_um2 > x1.Library.area_um2))
    [ Cell.Inv; Cell.Fa; Cell.Dff; Cell.Comp42 ]

let test_delay_load_dependence () =
  let d load = Library.delay_ps lib ~kind:Cell.Nand2 ~drive:Cell.X1 ~out:0 ~load_ff:load in
  check_bool "monotone in load" true (d 10.0 > d 1.0)

(* ---------------- characterization + exporters ---------------- *)

let test_characterize_view () =
  let v = Characterize.view lib Cell.Fa Cell.X1 in
  check_int "delay tables per output" 2 (Array.length v.Characterize.delay);
  (* table lookup interpolates between the analytic model points *)
  let tab = v.Characterize.delay.(0) in
  let mid = Characterize.lookup tab ~slew:30.0 ~load:3.0 in
  let lo = Characterize.lookup tab ~slew:10.0 ~load:0.5 in
  let hi = Characterize.lookup tab ~slew:160.0 ~load:32.0 in
  check_bool "lookup ordered" true (lo < mid && mid < hi)

let test_lookup_clamps () =
  let v = Characterize.view lib Cell.Inv Cell.X1 in
  let tab = v.Characterize.delay.(0) in
  let below = Characterize.lookup tab ~slew:0.0 ~load:0.0 in
  let corner = Characterize.lookup tab ~slew:10.0 ~load:0.5 in
  Alcotest.(check (float 1e-9)) "clamped to corner" corner below

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_liberty_text () =
  let s = Liberty.lib_text lib in
  check_bool "has library block" true
    (String.length s > 1000 && String.sub s 0 7 = "library");
  (* every interesting custom kind appears *)
  List.iter
    (fun k ->
      let name = Cell.kind_to_string k in
      check_bool (name ^ " present") true (contains s name))
    [ Cell.Comp42; Cell.Sram Cell.S6t; Cell.Mul Cell.Oai22_fused ]

let test_lef_text () =
  let s = Liberty.lef_text lib in
  check_bool "lef nonempty" true (String.length s > 100);
  check_bool "ends library" true
    (String.length s > 12
    && String.sub s (String.length s - 12) 11 = "END LIBRARY")

let () =
  Alcotest.run "cell"
    [
      ( "logic",
        [
          Alcotest.test_case "basic gates" `Quick test_basic_gates;
          Alcotest.test_case "muxes" `Quick test_mux_gates;
          Alcotest.test_case "aoi/oai" `Quick test_aoi_oai;
          Alcotest.test_case "HA exhaustive" `Quick test_ha_exhaustive;
          Alcotest.test_case "FA exhaustive" `Quick test_fa_exhaustive;
          Alcotest.test_case "COMP42 exhaustive" `Quick
            test_comp42_exhaustive;
          Alcotest.test_case "multiplier cells" `Quick test_mul_cells;
          Alcotest.test_case "sequential rejected" `Quick
            test_eval_rejects_sequential;
          Alcotest.test_case "arity tables" `Quick test_arity_tables;
        ] );
      ( "ppa",
        [
          Alcotest.test_case "FO4 calibration" `Quick test_fo4_calibration;
          Alcotest.test_case "paper claims encoded" `Quick
            test_paper_cell_claims;
          Alcotest.test_case "drive scaling" `Quick test_drive_scaling;
          Alcotest.test_case "load dependence" `Quick
            test_delay_load_dependence;
        ] );
      ( "views",
        [
          Alcotest.test_case "characterize" `Quick test_characterize_view;
          Alcotest.test_case "lookup clamps" `Quick test_lookup_clamps;
          Alcotest.test_case "liberty writer" `Quick test_liberty_text;
          Alcotest.test_case "lef writer" `Quick test_lef_text;
        ] );
    ]
