examples/quickstart.ml: Array Compiler Golden Library Macro_rtl Precision Printf Report Scl Sim Spec Testbench
