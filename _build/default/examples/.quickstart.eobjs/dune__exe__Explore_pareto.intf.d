examples/explore_pareto.mli:
