examples/edge_tinyml.mli:
