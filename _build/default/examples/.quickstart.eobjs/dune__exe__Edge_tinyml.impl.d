examples/edge_tinyml.ml: Compiler Library List Macro_rtl Post_layout Power Precision Printf Report Scl Spec
