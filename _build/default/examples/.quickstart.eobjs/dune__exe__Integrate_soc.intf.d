examples/integrate_soc.mli:
