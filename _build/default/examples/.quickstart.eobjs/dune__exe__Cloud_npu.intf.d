examples/cloud_npu.mli:
