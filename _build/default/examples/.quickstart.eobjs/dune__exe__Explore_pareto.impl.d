examples/explore_pareto.ml: Array Baselines Design_point Float Library List Printf Scl Searcher Spec String
