examples/quickstart.mli:
