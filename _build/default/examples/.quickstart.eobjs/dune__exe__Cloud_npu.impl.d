examples/cloud_npu.ml: Array Compiler Fpfmt Library List Macro_rtl Precision Printf Report Rng Scl Searcher Sim Spec Testbench
