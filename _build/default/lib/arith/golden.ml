(** Golden (bit-accurate behavioural) models of the DCIM macro datapath.

    These are the reference every generated netlist is checked against:
    the same bit-serial schedule, the same partial-sum algebra, computed
    with native integers. *)

(** [dot ~weights ~inputs] is the plain signed dot product. *)
let dot ~weights ~inputs =
  assert (Array.length weights = Array.length inputs);
  let acc = ref 0 in
  Array.iteri (fun i w -> acc := !acc + (w * inputs.(i))) weights;
  !acc

(** [column_popcount ~weight_bits ~input_bits_t] is one column's adder-tree
    output in one bit-serial cycle: the number of rows whose weight bit and
    current input bit are both one. *)
let column_popcount ~weight_bits ~input_bits_t =
  let n = Array.length weight_bits in
  assert (Array.length input_bits_t = n);
  let c = ref 0 in
  for r = 0 to n - 1 do
    if weight_bits.(r) && input_bits_t.(r) then incr c
  done;
  !c

(** [input_bit x t] is bit [t] of the two's complement representation of
    [x] (valid for any [t] below the input width). *)
let input_bit x t = (x asr t) land 1 = 1

(** [shift_accumulate ~input_bits sums] folds the per-cycle column sums the
    way the S&A does: partial sums weighted by 2^t, the final (sign) bit
    subtracted — yielding Sum_r x_r * wbit_r for signed x. One-bit inputs
    are unsigned (binary networks), so no cycle subtracts. *)
let shift_accumulate ~input_bits sums =
  assert (Array.length sums = input_bits);
  let acc = ref 0 in
  for t = 0 to input_bits - 1 do
    let signed =
      if input_bits > 1 && t = input_bits - 1 then -sums.(t) else sums.(t)
    in
    acc := !acc + (signed lsl t)
  done;
  !acc

(** [fuse_columns ~weight_bits per_column] folds per-column accumulations
    the way the OFU does: column j carries weight 2^j, the MSB column
    (two's complement sign position) is subtracted. One-bit weights are
    unsigned, so a single column passes through unnegated. *)
let fuse_columns ~weight_bits per_column =
  assert (Array.length per_column = weight_bits);
  let acc = ref 0 in
  for j = 0 to weight_bits - 1 do
    let signed =
      if weight_bits > 1 && j = weight_bits - 1 then -per_column.(j)
      else per_column.(j)
    in
    acc := !acc + (signed lsl j)
  done;
  !acc

(** [bit_serial_mac ~input_bits ~weight_bits ~weights ~inputs] replays the
    whole macro schedule — per-cycle popcounts, shift-accumulate, column
    fusion — and must equal {!dot}. Exposed (rather than just [dot]) so
    tests can validate the schedule algebra itself. *)
let bit_serial_mac ~input_bits ~weight_bits ~weights ~inputs =
  let n = Array.length weights in
  assert (Array.length inputs = n);
  let per_column =
    Array.init weight_bits (fun j ->
        let wbits = Array.map (fun w -> (w asr j) land 1 = 1) weights in
        let sums =
          Array.init input_bits (fun t ->
              let xbits = Array.map (fun x -> input_bit x t) inputs in
              column_popcount ~weight_bits:wbits ~input_bits_t:xbits)
        in
        shift_accumulate ~input_bits sums)
  in
  fuse_columns ~weight_bits per_column

(** [fp_mac fmt ~weight_bits ~weights ~fp_inputs] aligns the FP inputs and
    runs the signed INT datapath on the aligned values; returns the integer
    result and the group exponent (the pair the hardware outputs). *)
let fp_mac fmt ~weight_bits ~weights ~fp_inputs =
  ignore weight_bits;
  let a = Align.align fmt fp_inputs in
  (dot ~weights ~inputs:a.values, a.group_exp)

(** Width (bits) needed for the fused result of an H-row macro at the given
    precisions, with one spare bit of margin. *)
let result_width ~rows ~input_bits ~weight_bits =
  Intmath.ceil_log2 rows + input_bits + weight_bits + 1
