(** Behavioural model of the FP&INT alignment unit (paper §II-B).

    For a group of FP inputs the unit finds the maximum effective exponent
    through a comparator tree, right-shifts each mantissa by its exponent
    deficit (keeping [guard] fraction bits, truncating toward zero), and
    applies the sign — producing integers that the plain INT MAC datapath
    can consume. The group result then carries the shared exponent. *)

type aligned = {
  values : int array;  (** signed fixed-point inputs for the INT datapath *)
  group_exp : int;  (** shared effective exponent of the group *)
}

(** [max_exponent f xs] is the comparator-tree result: the largest effective
    exponent over the packed values [xs]; the exponent of an all-zero group
    is the subnormal exponent 1. *)
let max_exponent f xs =
  Array.fold_left
    (fun acc bits -> max acc (Fpfmt.decode f bits).eff_exp)
    1 xs

(** [align_one f ~group_exp bits] shifts one decoded value into the group's
    fixed-point grid. Truncation is toward zero (shift the magnitude, then
    negate), matching the generated hardware bit-for-bit. *)
let align_one f ~group_exp bits =
  let d = Fpfmt.decode f bits in
  let shift = group_exp - d.eff_exp in
  assert (shift >= 0);
  let mag_bits = Fpfmt.aligned_mag_bits f in
  let ext = d.mant lsl f.guard in
  let mag = if shift >= mag_bits then 0 else ext lsr shift in
  if d.sign then -mag else mag

(** [align f xs] runs the full unit on a group of packed values. *)
let align f xs =
  let group_exp = max_exponent f xs in
  { values = Array.map (align_one f ~group_exp) xs; group_exp }

(** [real_of_aligned f a i] reconstructs the numeric value of element [i]
    after alignment, used to bound the alignment error in tests. *)
let real_of_aligned f (a : aligned) i =
  let scale =
    2.0
    ** float_of_int (a.group_exp - Fpfmt.bias f - f.man_bits - f.guard)
  in
  float_of_int a.values.(i) *. scale

(** [max_alignment_error f] bounds |aligned - exact| relative to the
    group's ulp: truncating [guard] bits after a shift loses strictly less
    than one aligned-grid step. *)
let max_alignment_error f (a : aligned) xs =
  let err = ref 0.0 in
  Array.iteri
    (fun i bits ->
      let exact = Fpfmt.to_real f bits in
      let approx = real_of_aligned f a i in
      err := Float.max !err (Float.abs (exact -. approx)))
    xs;
  let ulp =
    2.0 ** float_of_int (a.group_exp - Fpfmt.bias f - f.man_bits - f.guard)
  in
  (!err, ulp)
