(** Floating-point mini-formats supported by the macro: FP4 (E2M1),
    FP8 (E4M3) and BF16 (E8M7), plus the fixed-point alignment geometry the
    FP&INT alignment unit implements.

    A value is stored as a bit-field triple (sign, exponent, mantissa).
    [guard] extra fraction bits are kept through alignment before
    truncation toward zero — with [guard = 3], FP8 aligns into a signed
    8-bit integer, which is exactly the paper's "converts FP data into INT
    format" behaviour. *)

type t = {
  name : string;
  exp_bits : int;
  man_bits : int;
  guard : int;  (** fraction bits preserved by the aligner *)
}

let fp4 = { name = "FP4"; exp_bits = 2; man_bits = 1; guard = 3 }
let fp8 = { name = "FP8"; exp_bits = 4; man_bits = 3; guard = 3 }

(** BF16 keeps no guard bits: its 8-bit significand (implicit bit
    included) already fills the alignment grid, so the aligner truncates
    into a 9-bit signed integer — the narrow-INT conversion real
    multi-precision DCIM datapaths use. *)
let bf16 = { name = "BF16"; exp_bits = 8; man_bits = 7; guard = 0 }

(** [storage_bits f] is the width of the packed representation. *)
let storage_bits f = 1 + f.exp_bits + f.man_bits

(** [bias f] is the IEEE-style exponent bias. *)
let bias f = Intmath.pow2 (f.exp_bits - 1) - 1

(** Width of the aligned magnitude: implicit bit + mantissa + guard. *)
let aligned_mag_bits f = f.man_bits + 1 + f.guard

(** Width of the signed integer the aligner produces. *)
let aligned_bits f = aligned_mag_bits f + 1

(** A decoded value: [mant] already includes the implicit leading one for
    normals; [eff_exp] is the effective (unbiased-comparison) exponent
    field with subnormals mapped to 1. *)
type decoded = { sign : bool; eff_exp : int; mant : int }

(** [pack f ~sign ~exp ~man] builds the bit-field representation. *)
let pack f ~sign ~exp ~man =
  assert (exp >= 0 && exp < Intmath.pow2 f.exp_bits);
  assert (man >= 0 && man < Intmath.pow2 f.man_bits);
  ((if sign then 1 else 0) lsl (f.exp_bits + f.man_bits))
  lor (exp lsl f.man_bits) lor man

(** [decode f bits] splits the packed representation, resolving the
    implicit bit and the subnormal exponent. *)
let decode f bits =
  let man = bits land (Intmath.pow2 f.man_bits - 1) in
  let exp = (bits lsr f.man_bits) land (Intmath.pow2 f.exp_bits - 1) in
  let sign = (bits lsr (f.exp_bits + f.man_bits)) land 1 = 1 in
  if exp = 0 then { sign; eff_exp = 1; mant = man }
  else { sign; eff_exp = exp; mant = Intmath.pow2 f.man_bits lor man }

(** [to_real f bits] is the numeric value, for documentation and tests. *)
let to_real f bits =
  let d = decode f bits in
  let m = float_of_int d.mant /. float_of_int (Intmath.pow2 f.man_bits) in
  let e = float_of_int (d.eff_exp - bias f) in
  (if d.sign then -1.0 else 1.0) *. m *. (2.0 ** e)

(** [random rng f] draws a uniformly random bit pattern of the format. *)
let random rng f = Rng.int rng (Intmath.pow2 (storage_bits f))
