(** Operand precisions a macro can be configured for. *)

type t =
  | Int of int  (** signed integer of the given bit width (1/2/4/8) *)
  | Fp of Fpfmt.t  (** floating-point, aligned on-line into integers *)

let int1 = Int 1
let int2 = Int 2
let int4 = Int 4
let int8 = Int 8
let fp4 = Fp Fpfmt.fp4
let fp8 = Fp Fpfmt.fp8
let bf16 = Fp Fpfmt.bf16

let name = function
  | Int w -> Printf.sprintf "INT%d" w
  | Fp f -> f.Fpfmt.name

(** [datapath_bits p] is the width of the integers entering the bit-serial
    datapath: the storage width for INT, the aligner's output width for
    FP. *)
let datapath_bits = function
  | Int w -> w
  | Fp f -> Fpfmt.aligned_bits f

(** [storage_bits p] is the width of the raw operand as presented at the
    macro boundary. *)
let storage_bits = function Int w -> w | Fp f -> Fpfmt.storage_bits f

(** [is_fp p] — whether the FP&INT alignment unit is on the input path. *)
let is_fp = function Fp _ -> true | Int _ -> false

(** [ops_per_mac p_in p_w] counts 1b x 1b equivalent operations of one MAC
    at this precision pair, the unit used for TOPS normalization. *)
let ops_per_mac p_in p_w = datapath_bits p_in * datapath_bits p_w
