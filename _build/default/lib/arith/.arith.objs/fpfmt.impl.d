lib/arith/fpfmt.ml: Intmath Rng
