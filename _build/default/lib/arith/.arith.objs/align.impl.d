lib/arith/align.ml: Array Float Fpfmt
