lib/arith/golden.ml: Align Array Intmath
