lib/arith/precision.ml: Fpfmt Printf
