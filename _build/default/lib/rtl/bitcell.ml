(** SRAM bit-cell array.

    Each (row, column, copy) address instantiates one storage cell of the
    configured kind, tagged {!Ir.Weight_bit} so the BL-driver write path
    (modelled by {!Sim.set_weight}) can address it. *)

(** [build ir ~kind ~rows ~cols ~mcr] returns
    [cells.(row).(col).(copy) : Ir.net], the read-port nets. *)
let build (ir : Ir.t) ~(kind : Cell.sram_kind) ~rows ~cols ~mcr =
  Array.init rows (fun row ->
      Array.init cols (fun col ->
          Array.init mcr (fun copy ->
              let out = Ir.new_net ir in
              ignore
                (Ir.add
                   ~tag:(Ir.Weight_bit { row; col; copy })
                   ir (Cell.Sram kind) ~ins:[||] ~outs:[| out |]);
              out)))
