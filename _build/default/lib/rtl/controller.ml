(** MAC sequencer: a small gate-level FSM that turns a [start] pulse into
    the macro's internal control waveform (aligner enable, serializer
    load, S&A enable/clear/negate) and a [done] pulse when the result is
    registered. With it the macro is a two-wire peripheral; without it an
    enclosing accelerator (or the test bench) drives the control pins
    directly. The schedule encoded here is exactly the one
    {!Testbench.run_mac} implements in software. *)

type built = {
  load : Ir.net;
  sa_en : Ir.net;
  sa_clr : Ir.net;
  sa_neg : Ir.net;
  align_en : Ir.net;
  done_ : Ir.net;
}

type schedule = {
  align_lat : int;
  tree_lat : int;
  serial_bits : int;
  post_lat : int;
  neg_on_last : bool;  (** sign cycle at the end (LSB-first) or the start *)
}

(** Total cycles from the start pulse to the done pulse. *)
let total (s : schedule) =
  s.align_lat + 1 + s.serial_bits + s.tree_lat + s.post_lat

(* one-hot decode of counter value v *)
let at c cnt v = Builder.equal_const c cnt v

let any c nets =
  match nets with
  | [] -> Ir.const0
  | first :: rest -> List.fold_left (Builder.or2 c) first rest

(** [build c ~schedule ~start] emits the sequencer. [start] must be a
    single-cycle pulse; a new MAC may be started the cycle after [done]
    (the FSM is single-outstanding by construction). *)
let build c ~(schedule : schedule) ~start : built =
  let s = schedule in
  let last = total s in
  let w = Intmath.ceil_log2 (last + 2) in
  (* running flag and cycle counter since start *)
  let running = Builder.fresh c in
  let cnt = Builder.fresh_bus c w in
  let is_last = Builder.equal_const c cnt last in
  let running_next =
    Builder.or2 c start (Builder.and2 c running (Builder.inv c is_last))
  in
  Builder.dff_into c ~d:running_next ~q:running;
  let inc, _ = Builder.rca_add c cnt (Builder.const_bus ~width:w 1) Ir.const0 in
  let keep_counting = Builder.and2 c running (Builder.inv c is_last) in
  let cnt_next =
    Array.init w (fun i ->
        (* start resets to 0; otherwise advance while running *)
        let advanced = Builder.mux2 c ~sel:keep_counting cnt.(i) inc.(i) in
        Builder.and2 c advanced (Builder.inv c start))
  in
  Array.iteri (fun i d -> Builder.dff_into c ~d ~q:cnt.(i)) cnt_next;
  let gate net = Builder.and2 c running net in
  let align_en =
    if s.align_lat = 0 then Ir.const0
    else
      gate (any c (List.init s.align_lat (fun k -> at c cnt k)))
  in
  let load = gate (at c cnt s.align_lat) in
  let first_acc = s.align_lat + 1 + s.tree_lat in
  let sa_en =
    gate
      (any c (List.init s.serial_bits (fun k -> at c cnt (first_acc + k))))
  in
  let sa_clr = gate (at c cnt first_acc) in
  let sa_neg =
    if s.serial_bits <= 1 then Ir.const0
    else if s.neg_on_last then gate (at c cnt (first_acc + s.serial_bits - 1))
    else sa_clr
  in
  let done_ = gate is_last in
  { load; sa_en; sa_clr; sa_neg; align_en; done_ }
