lib/rtl/fp_align.ml: Array Builder Driver Fpfmt Intmath Ir List
