lib/rtl/adder_tree.ml: Array Builder Cell Float Intmath Ir Library List Printf
