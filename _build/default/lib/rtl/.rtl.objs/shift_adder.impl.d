lib/rtl/shift_adder.ml: Array Builder Intmath Ir
