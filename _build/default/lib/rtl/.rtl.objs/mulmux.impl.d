lib/rtl/mulmux.ml: Array Builder Cell Intmath Ir
