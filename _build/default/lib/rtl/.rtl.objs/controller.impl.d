lib/rtl/controller.ml: Array Builder Intmath Ir List
