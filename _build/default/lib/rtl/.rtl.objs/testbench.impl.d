lib/rtl/testbench.ml: Align Array Fpfmt Golden Intmath Macro_rtl Precision Printf Rng Sim
