lib/rtl/macro_rtl.ml: Adder_tree Array Bitcell Builder Cell Controller Driver Fp_align Golden Intmath Ir Library List Mulmux Ofu Precision Printf Shift_adder
