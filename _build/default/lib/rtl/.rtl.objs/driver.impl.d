lib/rtl/driver.ml: Array Builder Cell Intmath Ir Library
