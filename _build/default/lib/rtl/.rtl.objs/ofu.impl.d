lib/rtl/ofu.ml: Array Builder Intmath Ir List
