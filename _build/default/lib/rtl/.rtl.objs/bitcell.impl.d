lib/rtl/bitcell.ml: Array Cell Ir
