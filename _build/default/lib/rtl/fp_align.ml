(** FP&INT alignment unit (paper §II-B): gate-level comparator tree plus
    barrel shifters that turn a group of packed FP inputs into the signed
    integers the bit-serial INT datapath consumes.

    Pipeline depth is a search knob: 0 is fully combinational, 1 registers
    the aligned outputs, 2 also registers the comparator-tree result in
    front of the shifters, 3 additionally splits the comparator tree
    itself — what tall arrays need. All pipeline registers are
    enable-gated ([en]): alignment only works during the load window of
    each MAC, so an integrated clock gate keeps its registers off the
    clock for the serial cycles.

    The behavioural reference is {!Align}; the generated logic matches it
    bit-for-bit, including truncation toward zero. *)

type built = {
  aligned : Ir.net array array;  (** per row, signed [aligned_bits] wide *)
  group_exp : Ir.net array;  (** shared effective exponent *)
  latency : int;
}

(* Decode one packed input: effective exponent (subnormal -> 1) and
   mantissa with the implicit bit resolved. *)
let decode c (fmt : Fpfmt.t) (packed : Ir.net array) =
  assert (Array.length packed = Fpfmt.storage_bits fmt);
  let man = Array.sub packed 0 fmt.man_bits in
  let exp = Array.sub packed fmt.man_bits fmt.exp_bits in
  let sign = packed.(fmt.man_bits + fmt.exp_bits) in
  let exp_nonzero = Builder.or_reduce c exp in
  let eff_exp =
    Array.mapi
      (fun i b ->
        if i = 0 then Builder.or2 c b (Builder.inv c exp_nonzero) else b)
      exp
  in
  let mant = Array.append man [| exp_nonzero |] in
  (sign, eff_exp, mant)

(* Max of two exponents: a > b ? a : b. *)
let max2 c a b =
  let gt = Builder.greater_than c a b in
  Builder.mux_bus c ~sel:gt b a

(** [build c fmt ~pipeline ~en ~rows_packed] emits the unit for one group
    of inputs (one packed bus per row). [en] gates every internal pipeline
    register. *)
let build c (fmt : Fpfmt.t) ~pipeline ~en
    ~(rows_packed : Ir.net array array) : built =
  let rows = Array.length rows_packed in
  assert (rows >= 1);
  (* buffer the enable across the unit: one leaf per row plus a rotating
     pick for the shared tree registers *)
  let en_leaves = Driver.fanout_tree c en ~consumers:rows ~max_fanout:16 in
  let rot = ref 0 in
  let next_en () =
    rot := (!rot + 1) mod rows;
    en_leaves.(!rot)
  in
  let reg_gated ?row tag bus =
    let en =
      match row with Some r -> en_leaves.(r) | None -> next_en ()
    in
    Builder.reg_bus_en ~tag:(Ir.Pipeline_reg tag) c ~en bus
  in
  let reg_gated1 ?row tag bit = (reg_gated ?row tag [| bit |]).(0) in
  let decoded = ref (Array.map (decode c fmt) rows_packed) in
  (* comparator tree for the maximum effective exponent, with an optional
     mid-tree pipeline cut when pipeline >= 3 *)
  let levels = if rows <= 1 then 0 else Intmath.ceil_log2 rows in
  let cut_after = if pipeline >= 3 && levels >= 2 then levels / 2 else -1 in
  let lat_tree = ref 0 in
  let rec tree level exps =
    match exps with
    | [] -> Builder.const_bus ~width:fmt.exp_bits 1
    | [ e ] -> e
    | es ->
        let rec pair = function
          | [] -> []
          | [ e ] -> [ e ]
          | e1 :: e2 :: rest -> max2 c e1 e2 :: pair rest
        in
        let next = pair es in
        let next =
          if level = cut_after then begin
            incr lat_tree;
            (* rows' decoded values ride along in the same stage *)
            decoded :=
              Array.mapi
                (fun r (s, e, m) ->
                  ( reg_gated1 ~row:r "align_tree" s,
                    reg_gated ~row:r "align_tree" e,
                    reg_gated ~row:r "align_tree" m ))
                !decoded;
            List.map (reg_gated "align_tree") next
          end
          else next
        in
        tree (level + 1) next
  in
  let group_exp =
    tree 1 (Array.to_list (Array.map (fun (_, e, _) -> e) !decoded))
  in
  let stage2_in, group_exp_out, lat2 =
    if pipeline >= 2 then
      ( Array.mapi
          (fun r (s, e, m) ->
            ( reg_gated1 ~row:r "align_exp" s,
              reg_gated ~row:r "align_exp" e,
              reg_gated ~row:r "align_exp" m ))
          !decoded,
        reg_gated "align_exp" group_exp,
        1 )
    else (!decoded, group_exp, 0)
  in
  (* broadcast the group exponent to every row through a buffer tree *)
  let exp_leaves =
    Array.map
      (fun bit -> Driver.fanout_tree c bit ~consumers:rows ~max_fanout:16)
      group_exp_out
  in
  let mag_bits = Fpfmt.aligned_mag_bits fmt in
  let out_bits = Fpfmt.aligned_bits fmt in
  let align_row r (sign, eff_exp, mant) =
    let gexp = Array.map (fun leaves -> leaves.(r)) exp_leaves in
    (* shift = group_exp - eff_exp, always >= 0 *)
    let inv_e = Builder.inv_bus c eff_exp in
    let shift, _ = Builder.rca_add c gexp inv_e Ir.const1 in
    let ext = Builder.shift_left mant fmt.guard ~width:mag_bits in
    (* the shifter only needs ceil_log2(mag_bits+1) stages: any larger
       shift flushes the mantissa to zero, detected from the high shift
       bits — saves half the mux stages for wide-exponent formats *)
    let sb = min (Array.length shift) (Intmath.ceil_log2 (mag_bits + 1)) in
    let low = Array.sub shift 0 sb in
    let high = Array.sub shift sb (Array.length shift - sb) in
    let shifted = Builder.barrel_shift_right c ext low in
    let shifted =
      if Array.length high = 0 then shifted
      else begin
        let keep = Builder.inv c (Builder.or_reduce c high) in
        Array.map (fun b -> Builder.and2 c b keep) shifted
      end
    in
    (* conditional two's complement: (shifted ^ sign) + sign *)
    let zext = Builder.zero_extend shifted out_bits in
    let xored = Array.map (fun b -> Builder.xor2 c b sign) zext in
    let value, _ =
      Builder.rca_add c xored (Builder.const_bus ~width:out_bits 0) sign
    in
    value
  in
  let aligned = Array.mapi align_row stage2_in in
  let aligned, group_exp_final, lat1 =
    if pipeline >= 1 then
      ( Array.mapi (fun r bus -> reg_gated ~row:r "align_out" bus) aligned,
        reg_gated "align_out" group_exp_out,
        1 )
    else (aligned, group_exp_out, 0)
  in
  {
    aligned;
    group_exp = group_exp_final;
    latency = !lat_tree + lat2 + lat1;
  }
