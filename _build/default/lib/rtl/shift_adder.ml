(** Shift-and-adder (S&A): the bit-serial accumulator behind each column
    tree (paper §II-B).

    Input bits are streamed MSB-first, so the accumulator runs the Horner
    recurrence [acc' = 2*acc ± S] — the shift-by-one is pure wiring, and
    the sign cycle (the input MSB, two's complement) subtracts instead of
    adding. Control:

    - [clr]  start a new accumulation (the shifted feedback is masked);
    - [neg]  subtract this cycle's column sum (asserted on the sign bit);
    - [en]   accumulate this cycle (deasserted while a result is drained).

    Three library variants:

    - [Lsb_right] (the conventional choice, and the default): input bits
      stream LSB-first and the accumulator shifts *right* while fresh
      partial sums are added only at the top [log2 rows + 2] bits; low
      result bits finalize one per cycle and stop toggling. Narrow adder,
      lowest switching energy. The sign cycle (the input MSB, two's
      complement) is the *last* serial cycle and subtracts.
    - [Ripple]: MSB-first Horner recurrence [acc' = 2*acc ± S] through a
      full-width ripple adder — structurally simplest, but the full carry
      chain bounds the clock and the left shift toggles every bit each
      cycle. Sign cycle first.
    - [Carry_save]: MSB-first Horner with the accumulator kept as a
      sum/carry register pair and one full-adder row of logic per cycle; a
      carry-select resolver after the registers produces the integer for
      the OFU stage. Fastest cycle, at the cost of a second register row
      plus the resolver.

    Width: [ceil_log2 rows + 1 + serial_bits] covers the exact result with
    one bit of margin. *)

type kind = Lsb_right | Ripple | Carry_save

let kind_name = function
  | Lsb_right -> "lsb_right"
  | Ripple -> "ripple"
  | Carry_save -> "carry_save"

(** Whether the variant consumes serial input bits LSB-first (sign cycle
    last) rather than MSB-first (sign cycle first). The serializer and the
    control schedule follow this. *)
let lsb_first = function Lsb_right -> true | Ripple | Carry_save -> false

type built = { acc : Ir.net array }

(** [width ~rows ~serial_bits] is the accumulator width. *)
let width ~rows ~serial_bits = Intmath.ceil_log2 rows + 1 + serial_bits

let build_ripple c ~w ~(sum : Ir.net array) ~neg ~clr ~en =
  let q = Builder.fresh_bus c w in
  let not_clr = Builder.inv c clr in
  let shifted = Builder.shift_left q 1 ~width:w in
  let base =
    Array.map
      (fun b -> if b = Ir.const0 then Ir.const0 else Builder.and2 c b not_clr)
      shifted
  in
  let s_ext = Builder.zero_extend sum w in
  let next = Builder.addsub_signed c ~sub:neg base s_ext ~width:w in
  Array.iteri (fun i d -> Builder.dff_en_into c ~en ~d ~q:q.(i)) next;
  { acc = q }

let build_carry_save c ~w ~(sum : Ir.net array) ~neg ~clr ~en =
  let qs = Builder.fresh_bus c w and qc = Builder.fresh_bus c w in
  let not_clr = Builder.inv c clr in
  let mask bus =
    Array.map
      (fun b -> if b = Ir.const0 then Ir.const0 else Builder.and2 c b not_clr)
      (Builder.shift_left bus 1 ~width:w)
  in
  let base_s = mask qs and base_c = mask qc in
  let s_ext = Builder.zero_extend sum w in
  (* conditional two's complement of the addend: invert via XOR with neg
     (zero-extension inverts to all-neg above the popcount) and inject the
     +1 into the free slot of the bit-0 adder (the shifted feedbacks are
     zero there) *)
  let s' = Array.map (fun b -> Builder.xor2 c b neg) s_ext in
  for i = 0 to w - 1 do
    let a, b, d =
      if i = 0 then (s'.(0), neg, Ir.const0)
      else (s'.(i), base_s.(i), base_c.(i))
    in
    let sum_bit, carry_bit = Builder.fa c a b d in
    Builder.dff_en_into c ~en ~d:sum_bit ~q:qs.(i);
    if i + 1 < w then Builder.dff_en_into c ~en ~d:carry_bit ~q:qc.(i + 1)
  done;
  (* qc bit 0 is never written: it is always zero by construction *)
  Builder.dff_en_into c ~en ~d:Ir.const0 ~q:qc.(0);
  (* resolve to an integer for the OFU stage; carry-select keeps the
     resolver off the critical path (this is the speed-oriented variant) *)
  let resolved, _ = Builder.carry_select_add c qs qc Ir.const0 ~block:4 in
  { acc = resolved }

let build_lsb_right c ~w ~serial_bits ~(sum : Ir.net array) ~neg ~clr ~en =
  let ts1 = w - serial_bits + 1 in
  (* the active top slice: popcount width + 1 *)
  let q = Builder.fresh_bus c w in
  let not_clr = Builder.inv c clr in
  (* right shift: bit i takes q.(i+1); the vacated top bit refills from
     the top-slice adder below *)
  let base =
    Array.init w (fun i ->
        if i + 1 < w then Builder.and2 c q.(i + 1) not_clr else Ir.const0)
  in
  let lo = serial_bits - 1 in
  let base_hi = Array.sub base lo ts1 in
  let s_ext = Builder.zero_extend sum ts1 in
  let next_hi = Builder.addsub_signed c ~sub:neg base_hi s_ext ~width:ts1 in
  for i = 0 to w - 1 do
    let d = if i < lo then base.(i) else next_hi.(i - lo) in
    Builder.dff_en_into c ~en ~d ~q:q.(i)
  done;
  { acc = q }

(** [build c ~kind ~rows ~serial_bits ~sum ~neg ~clr ~en] emits one
    column's S&A and returns its (resolved) accumulator bus, signed. [sum]
    is the unsigned column popcount from the adder tree. *)
let build ?(kind = Lsb_right) c ~rows ~serial_bits ~(sum : Ir.net array) ~neg
    ~clr ~en : built =
  let w = width ~rows ~serial_bits in
  (* local control buffering: each control wire fans out to the whole
     accumulator width, so re-buffer once per column *)
  let neg = Builder.buf c neg
  and clr = Builder.buf c clr
  and en = Builder.buf c en in
  match kind with
  | Lsb_right -> build_lsb_right c ~w ~serial_bits ~sum ~neg ~clr ~en
  | Ripple -> build_ripple c ~w ~sum ~neg ~clr ~en
  | Carry_save -> build_carry_save c ~w ~sum ~neg ~clr ~en
