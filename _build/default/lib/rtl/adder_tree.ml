(** Column adder trees: accumulate H one-bit products into a popcount.

    Three topologies, matching the paper's §II-B / §III-B analysis:

    - [Rca_tree]: the conventional baseline — a binary tree of ripple-carry
      adders of growing width. Logically simple, long critical path.
    - [Csa]: bit-wise carry-save reduction using 4-2 compressors, full
      adders and half adders, finished by one final RCA. Two knobs:
      [fa_ratio] replaces compressors with full adders in the *late*
      reduction stages (loose timing → more compressors for power/area;
      strict timing → more FAs for speed), and [reorder] sorts candidate
      bits by estimated arrival so fast carry outputs wait for slow sums —
      the paper's connection-reordering optimization.

    The generator also implements the searcher's structural throughput
    techniques: [split] (tt3: divide the H-input column into [split]
    sub-columns of H/split inputs, registered, merged by a pipelined adder)
    and [retime_final_rca] (tt2: move the output register in front of the
    final RCA stage so the RCA executes in the next pipeline stage). *)

type topology =
  | Rca_tree
  | Csa of { fa_ratio : float; reorder : bool }

let topology_name = function
  | Rca_tree -> "rca"
  | Csa { fa_ratio; reorder } ->
      Printf.sprintf "csa_fa%02.0f%s" (fa_ratio *. 100.0)
        (if reorder then "_reord" else "")

(** Result of building one column tree. [latency] counts pipeline registers
    inserted inside the tree (0, 1 or 2 cycles); [sum] is the popcount bus
    (unsigned, [ceil_log2 h + 1] bits). *)
type built = { sum : Ir.net array; latency : int }

(* A bit in flight during carry-save reduction: its net and an arrival
   estimate used by the reordering heuristic. *)
type flight = { net : Ir.net; at : float }

let est lib kind out =
  let p = Library.params lib kind Cell.X1 in
  p.intrinsic_ps.(out) +. (p.drive_res_ps_per_ff *. 4.0)

(* Pick [n] bits from a column: earliest-arriving first when reordering
   (so late bits wait less), FIFO otherwise. Returns (chosen, rest). *)
let pick ~reorder n bits =
  let bits =
    if reorder then List.sort (fun a b -> Float.compare a.at b.at) bits
    else bits
  in
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | b :: rest -> take (k - 1) (b :: acc) rest
  in
  take n [] bits

let worst_at chosen = List.fold_left (fun m b -> Float.max m b.at) 0.0 chosen

(** Carry-save reduction of [columns] (bit lists indexed by weight) down to
    at most two bits per weight; [use_fa stage] is the per-stage policy.
    Compressors are used in 4→2 mode (cin tied low), so carry and cout
    both move one weight up. Bits carried past the top weight are provably
    zero (the popcount fits in [out_w] bits) and are dropped. Returns the
    two final addend buses. *)
let reduce c lib ~reorder ~use_fa columns =
  let d_fa_s = est lib Cell.Fa 0
  and d_fa_c = est lib Cell.Fa 1
  and d_c42_s = est lib Cell.Comp42 0
  and d_c42_c = est lib Cell.Comp42 1
  and d_c42_co = est lib Cell.Comp42 2 in
  let n_weights = Array.length columns in
  let cols = Array.copy columns in
  let stage = ref 0 in
  while Array.exists (fun l -> List.length l > 2) cols do
    let next = Array.make n_weights [] in
    let fa_only = use_fa !stage in
    let emit w b = if w < n_weights then next.(w) <- b :: next.(w) in
    for w = 0 to n_weights - 1 do
      let rec consume bits =
        match bits with
        | [] -> ()
        | [ b ] -> emit w b
        | [ b1; b2 ] ->
            emit w b1;
            emit w b2
        | _ when (not fa_only) && List.length bits >= 4 -> (
            match pick ~reorder 4 bits with
            | [ b1; b2; b3; b4 ], rest ->
                let s, carry, cout =
                  Builder.comp42 c b1.net b2.net b3.net b4.net Ir.const0
                in
                let t0 = worst_at [ b1; b2; b3; b4 ] in
                emit w { net = s; at = t0 +. d_c42_s };
                emit (w + 1) { net = carry; at = t0 +. d_c42_c };
                emit (w + 1) { net = cout; at = t0 +. d_c42_co };
                consume rest
            | _ -> assert false)
        | _ -> (
            (* three or more bits under an FA-only policy: full adder *)
            match pick ~reorder 3 bits with
            | [ b1; b2; b3 ], rest ->
                let s, carry = Builder.fa c b1.net b2.net b3.net in
                let t0 = worst_at [ b1; b2; b3 ] in
                emit w { net = s; at = t0 +. d_fa_s };
                emit (w + 1) { net = carry; at = t0 +. d_fa_c };
                consume rest
            | _ -> assert false)
      in
      consume cols.(w)
    done;
    (* the 2-bit pass-through keeps this loop terminating because every
       column with more than two bits shrinks each stage; half adders enter
       the mix through the final ripple stage *)
    Array.blit next 0 cols 0 n_weights;
    incr stage
  done;
  let a = Array.make n_weights Ir.const0
  and b = Array.make n_weights Ir.const0 in
  Array.iteri
    (fun w bits ->
      match bits with
      | [] -> ()
      | [ x ] -> a.(w) <- x.net
      | [ x; y ] ->
          a.(w) <- x.net;
          b.(w) <- y.net
      | _ -> assert false)
    cols;
  (a, b)

(** Estimated number of compressor-first reduction stages for [h] leaves;
    places the FA-substitution boundary of the mixed topology. *)
let est_stages h =
  let rec go n acc = if n <= 2 then acc else go ((n + 1) / 2) (acc + 1) in
  go h 0

(* Carry-save pair of a CSA column over [leaves]. *)
let csa_pair c lib ~fa_ratio ~reorder ~leaves ~out_w =
  let h = Array.length leaves in
  let total = est_stages h in
  let comp_stages =
    int_of_float (Float.round ((1.0 -. fa_ratio) *. float_of_int total))
  in
  let use_fa stage = stage >= comp_stages in
  let columns = Array.make out_w [] in
  columns.(0) <-
    List.map (fun net -> { net; at = 0.0 }) (Array.to_list leaves);
  reduce c lib ~reorder ~use_fa columns

(** [build_flat c lib ~topology ~leaves] reduces the 1-bit [leaves] to a
    popcount bus without any pipelining. *)
let build_flat c lib ~topology ~(leaves : Ir.net array) =
  let h = Array.length leaves in
  assert (h >= 1);
  let out_w = Intmath.ceil_log2 h + 1 in
  match topology with
  | Rca_tree ->
      (* the conventional baseline: a binary tree of signed ripple-carry
         adder rows instantiated at the full result width every stage
         (sign-extended partial sums, no constant folding) — the
         "logically complex, throughput-reducing" structure of paper
         §II-B that CSA trees are measured against *)
      let rec level buses =
        match buses with
        | [] -> [| Ir.const0 |]
        | [ b ] -> b
        | _ ->
            let rec pair = function
              | [] -> []
              | [ b ] -> [ b ]
              | b1 :: b2 :: rest ->
                  let b1 = Builder.zero_extend b1 out_w
                  and b2 = Builder.zero_extend b2 out_w in
                  let s, _ = Builder.rca_add ~fold:false c b1 b2 Ir.const0 in
                  s :: pair rest
            in
            level (pair buses)
      in
      level (List.map (fun n -> [| n |]) (Array.to_list leaves))
  | Csa { fa_ratio; reorder } ->
      let a, b = csa_pair c lib ~fa_ratio ~reorder ~leaves ~out_w in
      let sum, _carry = Builder.rca_add c a b Ir.const0 in
      Builder.zero_extend sum out_w

(** [build c lib ~topology ~split ~reg_out ~retime_final_rca ~leaves]
    assembles the full column tree with the searcher's structural knobs:
    [split > 1] is tt3, [retime_final_rca] (with [reg_out]) is tt2, and
    [reg_out] is the tree/S&A pipeline register the latency-optimization
    step may remove. With [split > 1] the merge adder already sits behind
    the sub-tree registers, so tt2 is implied and the flag is ignored. *)
let build c lib ~topology ~split ~reg_out ~retime_final_rca
    ~(leaves : Ir.net array) : built =
  let h = Array.length leaves in
  assert (split >= 1 && h mod split = 0);
  let out_w = Intmath.ceil_log2 h + 1 in
  if split > 1 then begin
    let part = h / split in
    let partial =
      List.init split (fun i ->
          let sub = Array.sub leaves (i * part) part in
          let s = build_flat c lib ~topology ~leaves:sub in
          Builder.reg_bus ~tag:(Ir.Pipeline_reg "tree_split") c s)
    in
    let merged =
      List.fold_left
        (fun acc s ->
          let sum, co = Builder.rca_add c acc s Ir.const0 in
          Array.append sum [| co |])
        (List.hd partial) (List.tl partial)
    in
    let merged = Builder.zero_extend merged out_w in
    if reg_out then
      {
        sum = Builder.reg_bus ~tag:(Ir.Pipeline_reg "tree_out") c merged;
        latency = 2;
      }
    else { sum = merged; latency = 1 }
  end
  else
    match topology with
    | Csa { fa_ratio; reorder } when reg_out && retime_final_rca ->
        let a, b = csa_pair c lib ~fa_ratio ~reorder ~leaves ~out_w in
        let a = Builder.reg_bus ~tag:(Ir.Pipeline_reg "tree_cs_a") c a in
        let b = Builder.reg_bus ~tag:(Ir.Pipeline_reg "tree_cs_b") c b in
        let sum, _ = Builder.rca_add c a b Ir.const0 in
        { sum = Builder.zero_extend sum out_w; latency = 1 }
    | Rca_tree | Csa _ ->
        let s = build_flat c lib ~topology ~leaves in
        if reg_out then
          {
            sum = Builder.reg_bus ~tag:(Ir.Pipeline_reg "tree_out") c s;
            latency = 1;
          }
        else { sum = s; latency = 0 }
