(** Whole-macro composition: assembles the seven subcircuits into one
    gate-level DCIM macro following the paper's Fig. 1 architecture.

    Dataflow per MAC: parallel inputs (optionally FP-aligned) load into
    per-row serializers; bits stream MSB-first through the WL drivers into
    the multiplier/mux plane; each column's adder tree produces a popcount;
    the S&A Horner-accumulates over the serial cycles; the OFU fuses the
    [weight_bits] columns of each word into a signed result.

    Control is exposed as primary inputs so a test bench (or an enclosing
    accelerator) can schedule MACs: [load] (capture parallel inputs into
    the serializers), [sa_en]/[sa_clr]/[sa_neg] (accumulator enable, clear,
    sign cycle) and, when MCR > 1, [copy_sel]. The latency fields say when
    to assert what; {!Testbench} implements the schedule. *)

type config = {
  rows : int;  (** H: inputs accumulated per column *)
  cols : int;  (** W: physical bit-cell columns; [cols / wb] words *)
  mcr : int;  (** memory-compute ratio: stored copies per compute element *)
  input_prec : Precision.t;
  weight_prec : Precision.t;
  cell_kind : Cell.sram_kind;
  mul_kind : Cell.mul_kind;
  tree : Adder_tree.topology;
  sa_kind : Shift_adder.kind;  (** ripple or carry-save accumulator *)
  tree_split : int;  (** tt3: 1, 2 or 4 sub-columns *)
  reg_after_tree : bool;  (** pipeline register between tree and S&A *)
  retime_final_rca : bool;  (** tt2 *)
  reg_sa_to_ofu : bool;  (** pipeline register between S&A and OFU *)
  ofu_retime : bool;  (** tt4: first fusion level before that register *)
  ofu_extra_pipe : bool;  (** tt5 *)
  ofu_fast_adder : bool;  (** carry-select instead of ripple adders *)
  align_pipeline : int;  (** 0..3 stages inside the FP aligner *)
  reg_output : bool;
  with_controller : bool;
      (** embed the MAC sequencer FSM: control pins are replaced by a
          [start] input and a [done] output *)
}

(** The classic DCIM configuration the searcher starts from. *)
let default ~rows ~cols ~mcr ~input_prec ~weight_prec =
  {
    rows;
    cols;
    mcr;
    input_prec;
    weight_prec;
    cell_kind = Cell.S6t;
    mul_kind = Cell.Tg_nor;
    tree = Adder_tree.Csa { fa_ratio = 0.0; reorder = false };
    sa_kind = Shift_adder.Lsb_right;
    tree_split = 1;
    reg_after_tree = true;
    retime_final_rca = false;
    reg_sa_to_ofu = true;
    ofu_retime = false;
    ofu_extra_pipe = false;
    ofu_fast_adder = false;
    align_pipeline = 2;
    reg_output = true;
    with_controller = false;
  }

type t = {
  cfg : config;
  design : Ir.design;
  db : int;  (** serial datapath bits of one input *)
  wb : int;  (** stored bits of one weight *)
  words : int;
  w_sa : int;
  result_width : int;
  neg_on_last : bool;
      (** sign-cycle position: last serial cycle (LSB-first S&A) or first
          (MSB-first) — the control schedule follows this *)
  align_lat : int;  (** cycles from x presented to serializer input valid *)
  tree_lat : int;  (** cycles from serial bit to S&A input *)
  post_lat : int;  (** cycles from last accumulation to result registered *)
}

(** [serial_cycles m] — serializer cycles per MAC. *)
let serial_cycles m = m.db

(** [mac_latency m] — total cycles from presenting inputs to a readable
    result (the load cycle included). *)
let mac_latency m = m.align_lat + 1 + m.db + m.tree_lat + m.post_lat

let build (lib : Library.t) (cfg : config) : t =
  let db = Precision.datapath_bits cfg.input_prec in
  let wb = Precision.datapath_bits cfg.weight_prec in
  assert (cfg.cols mod wb = 0);
  let words = cfg.cols / wb in
  let w_sa = Shift_adder.width ~rows:cfg.rows ~serial_bits:db in
  let result_width =
    Golden.result_width ~rows:cfg.rows ~input_bits:db ~weight_bits:wb
  in
  let ir = Ir.create ~name:"dcim_macro" () in
  let load = Ir.new_net ir
  and sa_en = Ir.new_net ir
  and sa_clr = Ir.new_net ir
  and sa_neg = Ir.new_net ir in
  if not cfg.with_controller then begin
    Ir.add_input ir "load" [| load |];
    Ir.add_input ir "sa_en" [| sa_en |];
    Ir.add_input ir "sa_clr" [| sa_clr |];
    Ir.add_input ir "sa_neg" [| sa_neg |]
  end;
  let sel_bits = Intmath.ceil_log2 (max cfg.mcr 1) in
  let copy_sel = Ir.new_bus ir (max sel_bits 1) in
  if cfg.mcr > 1 then Ir.add_input ir "copy_sel" copy_sel;
  (* ---- input boundary + optional FP alignment ---- *)
  let align_en_net = ref None in
  let storage = Precision.storage_bits cfg.input_prec in
  let x_buses =
    Array.init cfg.rows (fun r ->
        let b = Ir.new_bus ir storage in
        Ir.add_input ir (Printf.sprintf "x%d" r) b;
        b)
  in
  let aligned, align_lat =
    match cfg.input_prec with
    | Precision.Int _ -> (x_buses, 0)
    | Precision.Fp fmt ->
        let cal = Builder.in_subcircuit ir "fp_align" in
        let align_en = Ir.new_net ir in
        if not cfg.with_controller then
          Ir.add_input ir "align_en" [| align_en |];
        align_en_net := Some align_en;
        let a =
          Fp_align.build cal fmt ~pipeline:cfg.align_pipeline ~en:align_en
            ~rows_packed:x_buses
        in
        Ir.add_output ir "group_exp" a.group_exp;
        (a.aligned, a.latency)
  in
  (* ---- WL drivers: serializers + row fanout ---- *)
  let cwl = Builder.in_subcircuit ir "wl_driver" in
  let load_leaves =
    Driver.fanout_tree cwl load ~consumers:(cfg.rows * db) ~max_fanout:16
  in
  let lsb_first = Shift_adder.lsb_first cfg.sa_kind in
  let x_bits =
    Array.mapi
      (fun r value ->
        assert (Array.length value = db);
        let q = Builder.fresh_bus cwl db in
        for i = 0 to db - 1 do
          (* MSB-first shifts left (serial bit at the top), LSB-first
             shifts right (serial bit at the bottom) *)
          let shifted =
            if lsb_first then if i = db - 1 then Ir.const0 else q.(i + 1)
            else if i = 0 then Ir.const0
            else q.(i - 1)
          in
          let d =
            Builder.mux2 cwl ~sel:load_leaves.((r * db) + i) shifted value.(i)
          in
          Builder.dff_into cwl ~d ~q:q.(i)
        done;
        if lsb_first then q.(0) else q.(db - 1))
      aligned
  in
  let row_leaves =
    Array.map
      (fun xb -> Driver.fanout_tree cwl xb ~consumers:cfg.cols ~max_fanout:16)
      x_bits
  in
  let sel_leaves =
    if cfg.mcr > 1 then
      Array.init sel_bits (fun b ->
          Driver.fanout_tree cwl copy_sel.(b)
            ~consumers:(cfg.rows * cfg.cols) ~max_fanout:16)
    else [||]
  in
  (* ---- BL drivers (write path: static area/leakage) ---- *)
  let cbl = Builder.in_subcircuit ir "bl_driver" in
  Driver.bl_drivers cbl ~cols:cfg.cols;
  (* ---- bit cells and multiplier/mux plane ---- *)
  let cells = Bitcell.build ir ~kind:cfg.cell_kind ~rows:cfg.rows
      ~cols:cfg.cols ~mcr:cfg.mcr
  in
  let cmm = Builder.in_subcircuit ir "mulmux" in
  let products =
    Array.init cfg.rows (fun r ->
        Array.init cfg.cols (fun col ->
            let sel =
              if cfg.mcr > 1 then
                Array.init sel_bits (fun b ->
                    sel_leaves.(b).((r * cfg.cols) + col))
              else [||]
            in
            Mulmux.build cmm ~variant:cfg.mul_kind ~x:row_leaves.(r).(col)
              ~weights:cells.(r).(col) ~sel))
  in
  (* ---- per-column adder tree + S&A ---- *)
  let ctree = Builder.in_subcircuit ir "adder_tree" in
  let csa = Builder.in_subcircuit ir "shift_adder" in
  let en_leaves =
    Driver.fanout_tree csa sa_en ~consumers:cfg.cols ~max_fanout:16
  and clr_leaves =
    Driver.fanout_tree csa sa_clr ~consumers:cfg.cols ~max_fanout:16
  and neg_leaves =
    Driver.fanout_tree csa sa_neg ~consumers:cfg.cols ~max_fanout:16
  in
  let tree_lat = ref 0 in
  let accs =
    Array.init cfg.cols (fun col ->
        let leaves = Array.init cfg.rows (fun r -> products.(r).(col)) in
        let tree =
          Adder_tree.build ctree lib ~topology:cfg.tree
            ~split:cfg.tree_split ~reg_out:cfg.reg_after_tree
            ~retime_final_rca:cfg.retime_final_rca ~leaves
        in
        tree_lat := tree.latency;
        let sa =
          Shift_adder.build ~kind:cfg.sa_kind csa ~rows:cfg.rows
            ~serial_bits:db ~sum:tree.sum ~neg:neg_leaves.(col)
            ~clr:clr_leaves.(col) ~en:en_leaves.(col)
        in
        sa.acc)
  in
  (* ---- OFU per word, with the retiming/pipeline knobs ---- *)
  let cofu = Builder.in_subcircuit ir "ofu" in
  let arch = if cfg.ofu_fast_adder then Builder.Csel 4 else Builder.Rca in
  let signed_weights = wb > 1 in
  let extra_pipe_level =
    if cfg.ofu_extra_pipe then Some (Ofu.n_levels wb / 2) else None
  in
  let post_lat = ref 0 in
  let build_word g =
    let columns = Array.init wb (fun j -> accs.((g * wb) + j)) in
    let result, lat =
      if cfg.reg_sa_to_ofu && cfg.ofu_retime then begin
        let parts = Ofu.prepare cofu ~signed_weights ~result_width columns in
        let parts = Ofu.fuse_level ~arch cofu ~result_width ~level:0 parts in
        let parts =
          List.map (Ofu.reg_part cofu ~tag:(Ir.Pipeline_reg "sa_ofu")) parts
        in
        let r, pl =
          Ofu.fuse ~arch cofu ~result_width ~from_level:1
            ~pipe_after_level:extra_pipe_level parts
        in
        (r, 1 + pl)
      end
      else if cfg.reg_sa_to_ofu then begin
        let columns =
          Array.map
            (Builder.reg_bus ~tag:(Ir.Pipeline_reg "sa_ofu") cofu)
            columns
        in
        let b =
          Ofu.build ~arch cofu ~signed_weights ~result_width
            ~pipe_after_level:extra_pipe_level ~columns
        in
        (b.result, 1 + b.latency)
      end
      else begin
        let b =
          Ofu.build ~arch cofu ~signed_weights ~result_width
            ~pipe_after_level:extra_pipe_level ~columns
        in
        (b.result, b.latency)
      end
    in
    (* tt5 fallback: if the word is too narrow for an internal level, the
       extra pipeline stage lands on the OFU output *)
    let result, lat =
      if cfg.ofu_extra_pipe && lat = (if cfg.reg_sa_to_ofu then 1 else 0)
      then
        ( Builder.reg_bus ~tag:(Ir.Pipeline_reg "ofu_pipe") cofu result,
          lat + 1 )
      else (result, lat)
    in
    let result, lat =
      if cfg.reg_output then
        ( Builder.reg_bus ~tag:(Ir.Pipeline_reg "macro_out") cofu result,
          lat + 1 )
      else (result, lat)
    in
    post_lat := lat;
    Ir.add_output ir (Printf.sprintf "result%d" g) result
  in
  for g = 0 to words - 1 do
    build_word g
  done;
  (* ---- optional embedded sequencer ---- *)
  if cfg.with_controller then begin
    let cctl = Builder.in_subcircuit ir "controller" in
    let start = Ir.new_net ir in
    Ir.add_input ir "start" [| start |];
    let schedule =
      {
        Controller.align_lat;
        tree_lat = !tree_lat;
        serial_bits = db;
        post_lat = !post_lat;
        neg_on_last = Shift_adder.lsb_first cfg.sa_kind;
      }
    in
    let fsm = Controller.build cctl ~schedule ~start in
    Builder.buf_into cctl ~src:fsm.Controller.load ~dst:load;
    Builder.buf_into cctl ~src:fsm.Controller.sa_en ~dst:sa_en;
    Builder.buf_into cctl ~src:fsm.Controller.sa_clr ~dst:sa_clr;
    Builder.buf_into cctl ~src:fsm.Controller.sa_neg ~dst:sa_neg;
    (match !align_en_net with
    | Some net -> Builder.buf_into cctl ~src:fsm.Controller.align_en ~dst:net
    | None -> ());
    Ir.add_output ir "done" [| fsm.Controller.done_ |]
  end;
  {
    cfg;
    design = Ir.freeze ir;
    db;
    wb;
    words;
    w_sa;
    result_width;
    neg_on_last = Shift_adder.lsb_first cfg.sa_kind;
    align_lat;
    tree_lat = !tree_lat;
    post_lat = !post_lat;
  }
