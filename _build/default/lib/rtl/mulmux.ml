(** Bitwise multiplier and multiplexer (paper §II-B).

    One compute element selects one of the MCR stored weight copies and
    multiplies it with the serial input bit. Three silicon styles:

    - [Tg_nor]: 2T transmission-gate select + NOR multiply — the commonly
      adopted design point;
    - [Pass_1t]: 1T passing-gate mux — area-efficient but the threshold
      drop costs speed and leakage (AutoDCIM's choice);
    - [Oai22_fused]: OAI22 gate fusing multiplier and 2:1 mux — saves
      wiring but does not scale beyond MCR = 2. *)

exception Unsupported_mcr of { variant : Cell.mul_kind; mcr : int }

(** [check_mcr variant mcr] validates the variant/MCR pairing the search
    space enforces. *)
let check_mcr variant mcr =
  if mcr < 1 || not (Intmath.is_pow2 mcr) then
    invalid_arg "Mulmux: MCR must be a positive power of two";
  match variant with
  | Cell.Oai22_fused when mcr > 2 -> raise (Unsupported_mcr { variant; mcr })
  | Cell.Oai22_fused | Cell.Tg_nor | Cell.Pass_1t -> ()

(* Mux tree over the weight copies using the variant's selector cell. *)
let rec select_tree c ~mux_kind (weights : Ir.net array) (sel : Ir.net array) =
  match Array.length weights with
  | 1 -> weights.(0)
  | n ->
      assert (n mod 2 = 0 && Array.length sel >= 1);
      let half = n / 2 in
      let lo = Array.sub weights 0 half
      and hi = Array.sub weights half half in
      let sel_rest = Array.sub sel 0 (Array.length sel - 1) in
      let s = sel.(Array.length sel - 1) in
      let a = select_tree c ~mux_kind lo sel_rest
      and b = select_tree c ~mux_kind hi sel_rest in
      Builder.mux2 ~kind:mux_kind c ~sel:s a b

(** [build c ~variant ~x ~weights ~sel] emits one compute element:
    [weights] are the MCR stored-bit nets, [sel] the log2(MCR) copy-select
    nets, [x] the serial input bit. Returns the product bit. *)
let build c ~variant ~x ~(weights : Ir.net array) ~(sel : Ir.net array) =
  let mcr = Array.length weights in
  check_mcr variant mcr;
  assert (Array.length sel = Intmath.ceil_log2 (max mcr 1));
  match variant with
  | Cell.Oai22_fused ->
      let w0 = weights.(0) in
      let w1 = if mcr = 2 then weights.(1) else weights.(0) in
      let s = if mcr = 2 then sel.(0) else Ir.const0 in
      let o = Builder.fresh c in
      Builder.add c (Cell.Mul Cell.Oai22_fused) ~ins:[| x; w0; w1; s |]
        ~outs:[| o |];
      o
  | Cell.Tg_nor | Cell.Pass_1t ->
      let mux_kind =
        match variant with
        | Cell.Tg_nor -> Cell.Tgmux2
        | Cell.Pass_1t -> Cell.Ptmux2
        | Cell.Oai22_fused -> assert false
      in
      let w =
        if mcr = 1 then weights.(0)
        else select_tree c ~mux_kind weights sel
      in
      let o = Builder.fresh c in
      Builder.add c (Cell.Mul variant) ~ins:[| x; w |] ~outs:[| o |];
      o
