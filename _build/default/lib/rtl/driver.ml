(** WL/BL drivers (paper §II-B): buffering between the macro boundary and
    the array.

    The WL driver feeds input bits and read signals into the array rows;
    its cost scales with the array width because each row bit fans out to
    every column's multiplier. {!fanout_tree} builds a balanced buffer tree
    capping the fanout per buffer, which is what keeps GHz-class clocks
    reachable on wide arrays.

    The BL driver writes weights into the SRAM columns. Weight writes
    happen out-of-band in the simulator, so the BL drivers contribute
    static area/leakage plus per-write energy (charged by the power engine
    per flipped bit); {!bl_drivers} instantiates the column buffers so
    area and leakage are accounted. *)

(** [fanout_tree c net ~consumers ~max_fanout] returns [consumers] leaf
    nets, each buffered so that no single cell drives more than
    [max_fanout] loads. Consumer [i] should connect to [(result).(i)]. *)
let fanout_tree c net ~consumers ~max_fanout =
  assert (consumers >= 1 && max_fanout >= 2);
  let rec expand srcs needed =
    let n = Array.length srcs in
    if n >= needed then Array.init needed (fun i -> srcs.(i * n / needed))
    else
      let grow = min max_fanout (Intmath.ceil_div needed n) in
      let next =
        Array.init (n * grow) (fun i -> Builder.buf c srcs.(i / grow))
      in
      expand next needed
  in
  if consumers <= max_fanout then Array.make consumers net
  else expand [| net |] (Intmath.ceil_div consumers max_fanout)
  |> fun groups ->
  Array.init consumers (fun i ->
      groups.(i * Array.length groups / consumers))

(** [wl_input c ~bits] registers a row's parallel input at the macro
    boundary (the WL driver's input latch). *)
let wl_input c ~bits = Builder.reg_bus ~tag:(Ir.Pipeline_reg "wl_in") c bits

(** [bl_drivers c ~cols] instantiates one write buffer per column; they
    hold low during MAC (area/leakage only) — write energy is charged per
    flipped SRAM bit by the power engine. *)
let bl_drivers c ~cols =
  for _ = 1 to cols do
    ignore (Builder.buf c Ir.const0)
  done

(** Analytic weight-update timing: the BL driver must charge a column of
    [rows] cell write ports within one weight-update clock. Used by the
    searcher to check the weight-update frequency constraint. *)
let weight_update_ps (lib : Library.t) ~rows =
  let buf = Library.params lib Cell.Buf Cell.X4 in
  let cell_write_cap_ff = 1.1 in
  let load = float_of_int rows *. cell_write_cap_ff in
  let sram_write_ps = 120.0 in
  buf.intrinsic_ps.(0) +. (buf.drive_res_ps_per_ff *. load /. 8.0)
  +. sram_write_ps
