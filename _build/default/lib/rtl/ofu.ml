(** Output fusion unit (OFU): combines the per-column S&A accumulations of
    one weight word "stage by stage, from lower bit-width to higher
    bit-width" (paper §II-B).

    Column j of a word carries weight 2^j; for signed weights (width >= 2)
    the MSB column has negative weight (two's complement). Rather than
    negating that column up front (a full extra ripple chain on the
    critical path), the aggregate carries a [negative] flag and the fusion
    level that consumes it subtracts — one inverter row folded into the
    adder. Fusion is a binary tree: level k combines aggregates of 2^k
    columns, shifting the upper half left by 2^k. All arithmetic is
    sign-extended to the final result width up front.

    The stages are exposed separately ({!prepare}, {!fuse}) so the macro
    composer can implement the searcher's OFU retiming (tt4: move the
    first fusion level in front of the S&A/OFU pipeline register) and the
    extra pipeline stage (tt5: [pipe_after_level]). *)

(** A partial aggregate: its bus and whether it still carries a pending
    negative sign. *)
type part = { bus : Ir.net array; negative : bool }

(** [prepare c ~signed_weights ~result_width columns] wraps every column
    aggregate as a part at its natural width and flags the MSB column of a
    signed word as negative. *)
let prepare c ~signed_weights ~result_width (columns : Ir.net array array) =
  ignore c;
  ignore result_width;
  let wb = Array.length columns in
  assert (wb >= 1);
  Array.to_list
    (Array.mapi
       (fun j b ->
         { bus = b; negative = signed_weights && wb > 1 && j = wb - 1 })
       columns)

(** [fuse_level c ~result_width ~level parts] runs one fusion level:
    adjacent aggregates are combined, the upper one shifted by 2^level and
    subtracted when its sign flag is pending. Adder widths grow with the
    level ("from lower bit-width to higher bit-width") and are capped at
    the result width, so early levels stay narrow and fast. *)
let fuse_level ?(arch = Builder.Rca) c ~result_width ~level parts =
  let shift = Intmath.pow2 level in
  let rec pair = function
    | [] -> []
    | [ p ] -> [ p ]
    | lo :: hi :: rest ->
        let hi_w = Array.length hi.bus + shift in
        let hi_sh = Builder.shift_left hi.bus shift ~width:hi_w in
        let w_out =
          min result_width (1 + max (Array.length lo.bus) hi_w)
        in
        assert (not lo.negative);
        let bus =
          if hi.negative then
            Builder.sub_signed ~arch c lo.bus hi_sh ~width:w_out
          else Builder.add_signed ~arch c lo.bus hi_sh ~width:w_out
        in
        { bus; negative = false } :: pair rest
  in
  pair parts

(** [reg_part c ~tag p] registers an aggregate, keeping its sign flag. *)
let reg_part c ~tag p = { p with bus = Builder.reg_bus ~tag c p.bus }

(** [fuse c ~result_width ~from_level ~pipe_after_level parts] runs the
    remaining fusion levels starting at [from_level]; returns the result
    bus and the number of pipeline registers inserted. *)
let fuse ?(arch = Builder.Rca) c ~result_width ~from_level ~pipe_after_level
    parts =
  let latency = ref 0 in
  let rec levels k parts =
    match parts with
    | [] -> Builder.const_bus ~width:result_width 0
    | [ p ] ->
        if p.negative then Builder.neg_signed c p.bus ~width:result_width
        else Builder.sign_extend p.bus result_width
    | _ ->
        let combined = fuse_level ~arch c ~result_width ~level:k parts in
        let combined =
          if pipe_after_level = Some k then begin
            incr latency;
            List.map (reg_part c ~tag:(Ir.Pipeline_reg "ofu_pipe")) combined
          end
          else combined
        in
        levels (k + 1) combined
  in
  let result = levels from_level parts in
  (result, !latency)

type built = { result : Ir.net array; latency : int }

(** [build c ~signed_weights ~result_width ~pipe_after_level ~columns] is
    the whole unit: prepare then fuse from level 0. *)
let build ?(arch = Builder.Rca) c ~signed_weights ~result_width
    ~pipe_after_level ~(columns : Ir.net array array) : built =
  let parts = prepare c ~signed_weights ~result_width columns in
  let result, latency =
    fuse ~arch c ~result_width ~from_level:0 ~pipe_after_level parts
  in
  { result; latency }

(** Number of fusion levels for a [wb]-column word. *)
let n_levels wb = if wb <= 1 then 0 else Intmath.ceil_log2 wb
