(** Random-vector combinational/sequential equivalence checking between
    two designs with the same I/O interface.

    The searcher's retiming and fusion moves must never change what a
    macro computes; this checker drives both designs with the same random
    input sequences and compares every output bus after every cycle window
    — the light-weight formal-equivalence stand-in the test suite uses to
    cross-check structurally different configurations of the same spec. *)

type verdict =
  | Equivalent of int  (** number of vectors checked *)
  | Mismatch of { vector : int; bus : string; a : int; b : int }

let bus_names d = List.map fst d.Ir.src.Ir.outputs

let interfaces_match (a : Ir.design) (b : Ir.design) =
  let sig_of d =
    ( List.map (fun (n, bus) -> (n, Array.length bus)) d.Ir.src.Ir.inputs,
      List.map (fun (n, bus) -> (n, Array.length bus)) d.Ir.src.Ir.outputs )
  in
  sig_of a = sig_of b

(** [check ~seed ~vectors ~settle a b] drives both designs with identical
    random inputs for [vectors] rounds of [settle] cycles each and
    compares all outputs at the end of every round. Designs must have
    identical input/output bus signatures. [settle] covers pipeline-depth
    differences up to that many cycles — outputs are compared only after
    both pipelines have drained on stable inputs. *)
let check ?(seed = 0xE9) ?(vectors = 24) ?(settle = 8) (a : Ir.design)
    (b : Ir.design) : verdict =
  if not (interfaces_match a b) then
    invalid_arg "Equiv.check: interface mismatch";
  let rng = Rng.create seed in
  let sa = Sim.create a and sb = Sim.create b in
  let drive sim values =
    List.iter (fun (name, v) -> Sim.set_bus sim name v) values
  in
  let rec rounds k =
    if k >= vectors then Equivalent vectors
    else begin
      let values =
        List.map
          (fun (name, bus) ->
            (name, Rng.int rng (Intmath.pow2 (min (Array.length bus) 30))))
          a.Ir.src.Ir.inputs
      in
      drive sa values;
      drive sb values;
      for _ = 1 to settle do
        Sim.step sa;
        Sim.step sb
      done;
      Sim.eval sa;
      Sim.eval sb;
      let bad =
        List.find_opt
          (fun name -> Sim.read_bus sa name <> Sim.read_bus sb name)
          (bus_names a)
      in
      match bad with
      | Some bus ->
          Mismatch
            { vector = k; bus; a = Sim.read_bus sa bus; b = Sim.read_bus sb bus }
      | None -> rounds (k + 1)
    end
  in
  rounds 0
