lib/netlist/builder.ml: Array Cell Ir List
