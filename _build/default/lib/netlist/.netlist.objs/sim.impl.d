lib/netlist/sim.ml: Array Cell Hashtbl Intmath Ir List Printf
