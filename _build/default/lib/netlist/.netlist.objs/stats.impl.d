lib/netlist/stats.ml: Array Cell Format Hashtbl Ir Library List
