lib/netlist/ir.ml: Array Cell Hashtbl Library List Printf Queue Vec
