lib/netlist/verilog.ml: Array Buffer Cell Ir List Printf String
