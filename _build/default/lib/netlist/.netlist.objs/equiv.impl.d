lib/netlist/equiv.ml: Array Intmath Ir List Rng Sim
