(** Bus-level construction combinators over the netlist IR.

    A {!ctx} couples the netlist under construction with the subcircuit tag
    that every emitted instance is labelled with, so PPA can later be broken
    down per paper subcircuit. Buses are [net array]s, LSB first; signed
    buses are two's complement. *)

type ctx = { ir : Ir.t; tag : Ir.tag }

(** [in_subcircuit ir name] opens a labelled construction context. *)
let in_subcircuit ir name = { ir; tag = Ir.Subcircuit name }

let ctx_plain ir = { ir; tag = Ir.Plain }

let add c kind ~ins ~outs = ignore (Ir.add ~tag:c.tag c.ir kind ~ins ~outs)

let fresh c = Ir.new_net c.ir
let fresh_bus c width = Ir.new_bus c.ir width

(* ------------------------------------------------------------------ *)
(* Single-bit gates                                                    *)
(* ------------------------------------------------------------------ *)

let gate1 c kind a =
  let o = fresh c in
  add c kind ~ins:[| a |] ~outs:[| o |];
  o

let gate2 c kind a b =
  let o = fresh c in
  add c kind ~ins:[| a; b |] ~outs:[| o |];
  o

let inv c a = gate1 c Cell.Inv a
let buf c a = gate1 c Cell.Buf a
let and2 c a b = gate2 c Cell.And2 a b
let or2 c a b = gate2 c Cell.Or2 a b
let nand2 c a b = gate2 c Cell.Nand2 a b
let nor2 c a b = gate2 c Cell.Nor2 a b
let xor2 c a b = gate2 c Cell.Xor2 a b
let xnor2 c a b = gate2 c Cell.Xnor2 a b

(** [mux2 c ~sel a b] is [sel ? b : a]. *)
let mux2 ?(kind = Cell.Mux2) c ~sel a b =
  let o = fresh c in
  add c kind ~ins:[| a; b; sel |] ~outs:[| o |];
  o

(** [ha c a b] returns [(sum, carry)]. *)
let ha c a b =
  let s = fresh c and co = fresh c in
  add c Cell.Ha ~ins:[| a; b |] ~outs:[| s; co |];
  (s, co)

(** [fa c a b cin] returns [(sum, carry)]. *)
let fa c a b cin =
  let s = fresh c and co = fresh c in
  add c Cell.Fa ~ins:[| a; b; cin |] ~outs:[| s; co |];
  (s, co)

(** [comp42 c a b d e cin] returns [(sum, carry, cout)]: a 4-2 compressor
    used as the paper's 5-3 carry-save adder. [sum] has weight 1, [carry]
    and [cout] weight 2. *)
let comp42 c a b d e cin =
  let s = fresh c and carry = fresh c and cout = fresh c in
  add c Cell.Comp42 ~ins:[| a; b; d; e; cin |] ~outs:[| s; carry; cout |];
  (s, carry, cout)

(** [dff c d] registers one bit. *)
let dff ?tag c d =
  let q = fresh c in
  let tag = match tag with Some t -> t | None -> c.tag in
  ignore (Ir.add ~tag c.ir Cell.Dff ~ins:[| d |] ~outs:[| q |]);
  q

(** [dff_en c ~en d] registers one bit, holding when [en] is low. *)
let dff_en ?tag c ~en d =
  let q = fresh c in
  let tag = match tag with Some t -> t | None -> c.tag in
  ignore (Ir.add ~tag c.ir Cell.Dff_en ~ins:[| d; en |] ~outs:[| q |]);
  q

(** [dff_en_into c ~en ~d ~q] registers into a pre-allocated output net —
    the way to close a feedback loop (allocate [q] first, derive [d] from
    it, then bind). *)
let dff_en_into ?tag c ~en ~d ~q =
  let tag = match tag with Some t -> t | None -> c.tag in
  ignore (Ir.add ~tag c.ir Cell.Dff_en ~ins:[| d; en |] ~outs:[| q |])

(** [buf_into c ~src ~dst] drives a pre-allocated net from another net
    through a buffer — used to connect late-built logic (e.g. the
    controller) to nets that earlier construction already consumed. *)
let buf_into c ~src ~dst =
  ignore (Ir.add ~tag:c.tag c.ir Cell.Buf ~ins:[| src |] ~outs:[| dst |])

(** [dff_into c ~d ~q] is {!dff_en_into} without an enable. *)
let dff_into ?tag c ~d ~q =
  let tag = match tag with Some t -> t | None -> c.tag in
  ignore (Ir.add ~tag c.ir Cell.Dff ~ins:[| d |] ~outs:[| q |])

(* ------------------------------------------------------------------ *)
(* Buses                                                               *)
(* ------------------------------------------------------------------ *)

(** [const_bus ~width v] encodes the non-negative constant [v] as constant
    nets. *)
let const_bus ~width v =
  Array.init width (fun i ->
      if (v lsr i) land 1 = 1 then Ir.const1 else Ir.const0)

(** [zero_extend bus width] pads with constant 0 up to [width]. *)
let zero_extend bus width =
  Array.init width (fun i -> if i < Array.length bus then bus.(i) else Ir.const0)

(** [sign_extend bus width] replicates the MSB up to [width]. *)
let sign_extend bus width =
  let n = Array.length bus in
  assert (n >= 1);
  Array.init width (fun i -> if i < n then bus.(i) else bus.(n - 1))

(** [shift_left bus k ~width] is a static shift: pure wiring, no cells. *)
let shift_left bus k ~width =
  Array.init width (fun i ->
      if i < k then Ir.const0
      else if i - k < Array.length bus then bus.(i - k)
      else Ir.const0)

let map_bus f bus = Array.map f bus

let inv_bus c bus = map_bus (inv c) bus

(** [and_bit c bus b] gates every wire of [bus] with bit [b]. *)
let and_bit c bus b = map_bus (fun a -> and2 c a b) bus

(** [mux_bus c ~sel a b] selects [b] when [sel] else [a]; widths must
    match. *)
let mux_bus ?kind c ~sel a b =
  assert (Array.length a = Array.length b);
  Array.init (Array.length a) (fun i -> mux2 ?kind c ~sel a.(i) b.(i))

(** [reg_bus c bus] registers a whole bus. *)
let reg_bus ?tag c bus = map_bus (dff ?tag c) bus

(** [reg_bus_en c ~en bus] registers a bus with a shared enable. *)
let reg_bus_en ?tag c ~en bus = map_bus (dff_en ?tag c ~en) bus

(** [rca_add c a b cin] is a ripple-carry adder; returns the [max wa wb]-bit
    sum and the final carry. Operands are zero-extended to a common width —
    callers wanting signed semantics must sign-extend first. With [fold]
    (the default) constant-zero operand bits degrade full adders into half
    adders or wires, the way synthesis constant-propagates; [~fold:false]
    instantiates one full adder per bit unconditionally, modelling the
    conventional manually-instantiated signed adder rows the paper's RCA
    baseline uses. *)
let rca_add ?(fold = true) c a b cin =
  let w = max (Array.length a) (Array.length b) in
  let a = zero_extend a w and b = zero_extend b w in
  let sum = Array.make w Ir.const0 in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let s, co =
      if not fold then fa c a.(i) b.(i) !carry
      else if a.(i) = Ir.const0 && !carry = Ir.const0 then (b.(i), Ir.const0)
      else if b.(i) = Ir.const0 && !carry = Ir.const0 then (a.(i), Ir.const0)
      else if a.(i) = Ir.const0 then ha c b.(i) !carry
      else if b.(i) = Ir.const0 then ha c a.(i) !carry
      else if !carry = Ir.const0 then ha c a.(i) b.(i)
      else fa c a.(i) b.(i) !carry
    in
    sum.(i) <- s;
    carry := co
  done;
  (sum, !carry)

(** [carry_select_add c a b cin ~block] — carry-select adder: [block]-bit
    ripple groups computed for both carry-in values, the real carry
    selecting between them. Delay is one block ripple plus a mux chain
    instead of a full-width ripple; cost is roughly double the adder
    area. Operands are zero-extended to a common width. *)
let carry_select_add c a b cin ~block =
  assert (block >= 2);
  let w = max (Array.length a) (Array.length b) in
  let a = zero_extend a w and b = zero_extend b w in
  let sum = Array.make w Ir.const0 in
  let carry = ref cin in
  let pos = ref 0 in
  while !pos < w do
    let n = min block (w - !pos) in
    let ab = Array.sub a !pos n and bb = Array.sub b !pos n in
    if !pos = 0 then begin
      (* first block sees the true carry directly *)
      let s, co = rca_add c ab bb !carry in
      Array.blit s 0 sum !pos n;
      carry := co
    end
    else begin
      let s0, c0 = rca_add c ab bb Ir.const0 in
      let s1, c1 = rca_add c ab bb Ir.const1 in
      let s = mux_bus c ~sel:!carry s0 s1 in
      Array.blit s 0 sum !pos n;
      carry := mux2 c ~sel:!carry c0 c1
    end;
    pos := !pos + n
  done;
  (sum, !carry)

(** Adder architecture selector for the wide bus adders. *)
type adder_arch = Rca | Csel of int  (** carry-select with block size *)

let arch_add c arch a b cin =
  match arch with
  | Rca -> rca_add c a b cin
  | Csel block -> carry_select_add c a b cin ~block

(** [add_signed c a b ~width] adds two signed buses at [width] bits,
    discarding overflow beyond [width]. *)
let add_signed ?(arch = Rca) c a b ~width =
  let a = sign_extend a width and b = sign_extend b width in
  let sum, _ = arch_add c arch a b Ir.const0 in
  sum

(** [addsub_signed c ~sub a b ~width] computes [a + b] when [sub] is low and
    [a - b] when high, via conditional invert + carry-in. *)
let addsub_signed c ~sub a b ~width =
  let a = sign_extend a width and b = sign_extend b width in
  let b' = Array.map (fun bit -> xor2 c bit sub) b in
  let sum, _ = rca_add c a b' sub in
  sum

(** [sub_signed c a b ~width] computes [a - b] with an inverter row and a
    carry-in — cheaper than negating [b] first (one ripple chain instead
    of two). *)
let sub_signed ?(arch = Rca) c a b ~width =
  let a = sign_extend a width and b = sign_extend b width in
  let b' = inv_bus c b in
  let sum, _ = arch_add c arch a b' Ir.const1 in
  sum

(** [neg_signed c a ~width] is two's-complement negation. *)
let neg_signed c a ~width =
  let a = sign_extend a width in
  let inv_a = inv_bus c a in
  let sum, _ = rca_add c inv_a (const_bus ~width 0) Ir.const1 in
  sum

(** [barrel_shift_right c bus amount] shifts [bus] right by the unsigned
    bus [amount] (log-depth mux stages), filling with zeros. *)
let barrel_shift_right ?kind c bus amount =
  let w = Array.length bus in
  let stage data k sel =
    Array.init w (fun i ->
        let shifted = if i + k < w then data.(i + k) else Ir.const0 in
        mux2 ?kind c ~sel data.(i) shifted)
  in
  let data = ref bus in
  Array.iteri (fun j sel -> data := stage !data (1 lsl j) sel) amount;
  !data

(** [greater_than c a b] compares unsigned buses of equal width, returning
    a net that is high iff [a > b]. Tree-structured (divide and conquer on
    [gt]/[eq] pairs), so the depth is logarithmic in the width — this
    comparator sits on the FP aligner's exponent-max tree where a ripple
    version would dominate the clock. *)
let greater_than c a b =
  assert (Array.length a = Array.length b);
  let rec compare lo hi =
    (* compares bits [lo..hi] (inclusive), returns (gt, eq) *)
    if lo = hi then
      (and2 c a.(lo) (inv c b.(lo)), xnor2 c a.(lo) b.(lo))
    else begin
      let mid = (lo + hi + 1) / 2 in
      let gt_hi, eq_hi = compare mid hi in
      let gt_lo, eq_lo = compare lo (mid - 1) in
      (or2 c gt_hi (and2 c eq_hi gt_lo), and2 c eq_hi eq_lo)
    end
  in
  let gt, _eq = compare 0 (Array.length a - 1) in
  gt

(** [equal_const c bus v] is high iff [bus] equals the constant [v]. *)
let equal_const c bus v =
  let bits =
    Array.to_list
      (Array.mapi
         (fun i b -> if (v lsr i) land 1 = 1 then b else inv c b)
         bus)
  in
  match bits with
  | [] -> Ir.const1
  | first :: rest -> List.fold_left (and2 c) first rest

(** [or_reduce c bus] is the OR of all wires. *)
let or_reduce c bus =
  match Array.to_list bus with
  | [] -> Ir.const0
  | first :: rest -> List.fold_left (or2 c) first rest
