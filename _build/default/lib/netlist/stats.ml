(** Netlist inventory: cell counts, area, leakage, per-subcircuit splits. *)

type t = {
  n_insts : int;
  n_nets : int;
  by_kind : (Cell.kind * int) list;
  area_um2 : float;
  leakage_nw : float;
}

let of_design (d : Ir.design) (lib : Library.t) =
  let tbl = Hashtbl.create 32 in
  let area = ref 0.0 and leak = ref 0.0 in
  Array.iter
    (fun (inst : Ir.inst) ->
      let n = try Hashtbl.find tbl inst.kind with Not_found -> 0 in
      Hashtbl.replace tbl inst.kind (n + 1);
      let p = Library.params lib inst.kind inst.drive in
      area := !area +. p.area_um2;
      leak := !leak +. p.leakage_nw)
    d.insts;
  let by_kind =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  {
    n_insts = Ir.n_insts d;
    n_nets = d.n_nets;
    by_kind;
    area_um2 = !area;
    leakage_nw = !leak;
  }

(** [area_by_subcircuit d lib] splits standard-cell area across the
    subcircuit tags the builders attached — the per-subcircuit area
    breakdown the paper's SCL tracks. *)
let area_by_subcircuit (d : Ir.design) (lib : Library.t) =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun (inst : Ir.inst) ->
      let key =
        match inst.tag with
        | Ir.Subcircuit s -> s
        | Ir.Weight_bit _ -> "memory_cell"
        | Ir.Pipeline_reg _ -> "pipeline"
        | Ir.Plain -> "other"
      in
      let p = Library.params lib inst.kind inst.drive in
      let cur = try Hashtbl.find tbl key with Not_found -> 0.0 in
      Hashtbl.replace tbl key (cur +. p.area_um2))
    d.insts;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp_kind_counts fmt t =
  List.iter
    (fun (k, n) -> Format.fprintf fmt "%-12s %6d@." (Cell.kind_to_string k) n)
    t.by_kind
