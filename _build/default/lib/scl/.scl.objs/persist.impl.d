lib/scl/persist.ml: Hashtbl List Ppa Printf Scl String
