lib/scl/ppa.ml: Float Format
