lib/scl/scl.ml: Adder_tree Cell Fpfmt Golden Hashtbl Library List Macro_rtl Ppa Precision Printf Shift_adder Standalone
