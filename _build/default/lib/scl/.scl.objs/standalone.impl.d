lib/scl/standalone.ml: Adder_tree Array Builder Cell Driver Fp_align Fpfmt Intmath Ir Library List Mulmux Ofu Power Ppa Printf Rng Shift_adder Sim Sta Stats
