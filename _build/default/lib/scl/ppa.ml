(** The PPA triple stored in every subcircuit-library look-up table entry,
    characterized at the library's nominal voltage. *)

type t = {
  delay_ps : float;  (** worst input-to-output combinational delay *)
  area_um2 : float;
  energy_fj : float;  (** average switching energy per active cycle *)
  leakage_nw : float;
}

let zero = { delay_ps = 0.0; area_um2 = 0.0; energy_fj = 0.0; leakage_nw = 0.0 }

(** Componentwise sum, used when composing a macro estimate out of
    subcircuit entries. *)
let ( + ) a b =
  {
    delay_ps = Float.max a.delay_ps b.delay_ps;
    area_um2 = a.area_um2 +. b.area_um2;
    energy_fj = a.energy_fj +. b.energy_fj;
    leakage_nw = a.leakage_nw +. b.leakage_nw;
  }

(** [scale n t] replicates an entry [n] times (area/energy/leakage add,
    delay unchanged). *)
let scale n t =
  let f = float_of_int n in
  {
    delay_ps = t.delay_ps;
    area_um2 = t.area_um2 *. f;
    energy_fj = t.energy_fj *. f;
    leakage_nw = t.leakage_nw *. f;
  }

let pp fmt t =
  Format.fprintf fmt "%.1f ps / %.1f um2 / %.1f fJ / %.1f nW" t.delay_ps
    t.area_um2 t.energy_fj t.leakage_nw
