(** Standalone characterization of individual subcircuits.

    Each function wraps one paper subcircuit into a tiny netlist with
    primary I/O, then measures: delay from static timing, area/leakage
    from the inventory, and switching energy from a randomized toggle
    simulation — the same flow the paper uses to fill its subcircuit
    library LUTs ("typical configurations are implemented into layouts and
    simulated for PPA data"). *)

let sim_cycles = 32

(* Run [drive] each cycle to randomize the named input buses, return
   average switching energy per cycle (fJ, nominal VDD). *)
let measure_energy (d : Ir.design) lib ~drive =
  let sim = Sim.create d in
  let rng = Rng.create 0xC1AC in
  (* warm up one cycle so initial X-settling is not charged *)
  drive rng sim;
  Sim.step sim;
  Sim.reset_stats sim;
  for _ = 1 to sim_cycles do
    drive rng sim;
    Sim.step sim
  done;
  let p =
    Power.estimate d lib sim ~freq_hz:1e9 ~vdd:lib.Library.node.vdd_nominal ()
  in
  p.Power.energy_per_cycle_fj

let finish lib ir ~drive =
  let d = Ir.freeze ir in
  let st = Stats.of_design d lib in
  let sta = Sta.analyze d lib in
  {
    Ppa.delay_ps = sta.crit_ps;
    area_um2 = st.area_um2;
    energy_fj = measure_energy d lib ~drive;
    leakage_nw = st.leakage_nw;
  }

let drive_buses buses rng sim =
  List.iter
    (fun (name, width) ->
      Sim.set_bus sim name (Rng.int rng (Intmath.pow2 (min width 30))))
    buses

(** Adder tree over [rows] one-bit inputs. *)
let adder_tree lib ~topology ~rows =
  let ir = Ir.create ~name:"scl_tree" () in
  let c = Builder.in_subcircuit ir "adder_tree" in
  let leaves = Ir.new_bus ir rows in
  Ir.add_input ir "in" leaves;
  let t =
    Adder_tree.build c lib ~topology ~split:1 ~reg_out:false
      ~retime_final_rca:false ~leaves
  in
  Ir.add_output ir "sum" t.sum;
  finish lib ir ~drive:(fun rng sim ->
      (* half-dense products, the array's typical activity *)
      let bits = Array.init rows (fun _ -> Rng.bit rng ~p1:0.5 = 1) in
      Sim.set_bus_bits sim "in" bits)

(** One multiplier/mux compute element at the given MCR. *)
let mulmux lib ~variant ~mcr =
  let ir = Ir.create ~name:"scl_mulmux" () in
  let c = Builder.in_subcircuit ir "mulmux" in
  let x = Ir.new_net ir in
  Ir.add_input ir "x" [| x |];
  let sel_bits = Intmath.ceil_log2 (max mcr 1) in
  let sel = Ir.new_bus ir (max sel_bits 1) in
  if mcr > 1 then Ir.add_input ir "sel" sel;
  let weights = Ir.new_bus ir mcr in
  Ir.add_input ir "w" weights;
  let o =
    Mulmux.build c ~variant ~x ~weights
      ~sel:(if mcr > 1 then Array.sub sel 0 sel_bits else [||])
  in
  Ir.add_output ir "p" [| o |];
  let buses = [ ("x", 1); ("w", mcr) ] in
  let buses = if mcr > 1 then ("sel", sel_bits) :: buses else buses in
  finish lib ir ~drive:(drive_buses buses)

(** One storage bit (area/leakage dominated; read delay from the cell). *)
let memory_cell lib ~kind =
  let p = Library.params lib (Cell.Sram kind) Cell.X1 in
  {
    Ppa.delay_ps = p.intrinsic_ps.(0);
    area_um2 = p.area_um2;
    energy_fj = p.energy_fj;
    leakage_nw = p.leakage_nw;
  }

(** FP&INT alignment unit for [rows] inputs. *)
let fp_align lib ~fmt ~pipeline ~rows =
  let ir = Ir.create ~name:"scl_align" () in
  let c = Builder.in_subcircuit ir "fp_align" in
  let packed =
    Array.init rows (fun r ->
        let b = Ir.new_bus ir (Fpfmt.storage_bits fmt) in
        Ir.add_input ir (Printf.sprintf "x%d" r) b;
        b)
  in
  let en = Ir.new_net ir in
  Ir.add_input ir "en" [| en |];
  let a = Fp_align.build c fmt ~pipeline ~en ~rows_packed:packed in
  Array.iteri
    (fun r bus -> Ir.add_output ir (Printf.sprintf "a%d" r) bus)
    a.aligned;
  Ir.add_output ir "gexp" a.group_exp;
  let buses =
    ("en", 1)
    :: List.init rows (fun r ->
           (Printf.sprintf "x%d" r, Fpfmt.storage_bits fmt))
  in
  finish lib ir ~drive:(fun rng sim ->
      Sim.set_bus sim "en" 1;
      drive_buses (List.tl buses) rng sim)

(** Shift-and-adder column. *)
let shift_adder lib ~kind ~rows ~serial_bits =
  let ir = Ir.create ~name:"scl_sa" () in
  let c = Builder.in_subcircuit ir "shift_adder" in
  let ts = Intmath.ceil_log2 rows + 1 in
  let sum = Ir.new_bus ir ts in
  Ir.add_input ir "sum" sum;
  let neg = Ir.new_net ir and clr = Ir.new_net ir and en = Ir.new_net ir in
  Ir.add_input ir "neg" [| neg |];
  Ir.add_input ir "clr" [| clr |];
  Ir.add_input ir "en" [| en |];
  let sa = Shift_adder.build ~kind c ~rows ~serial_bits ~sum ~neg ~clr ~en in
  Ir.add_output ir "acc" sa.acc;
  finish lib ir ~drive:(fun rng sim ->
      Sim.set_bus sim "sum" (Rng.int rng rows);
      Sim.set_bus sim "en" 1;
      Sim.set_bus sim "clr" (Rng.bit rng ~p1:0.12);
      Sim.set_bus sim "neg" (Rng.bit rng ~p1:0.12))

(** Output fusion unit for a [wb]-column word of [w_sa]-bit aggregates. *)
let ofu lib ~wb ~w_sa ~result_width ~pipe ~fast =
  let ir = Ir.create ~name:"scl_ofu" () in
  let c = Builder.in_subcircuit ir "ofu" in
  let columns =
    Array.init wb (fun j ->
        let b = Ir.new_bus ir w_sa in
        Ir.add_input ir (Printf.sprintf "a%d" j) b;
        b)
  in
  let pipe_after_level = if pipe then Some (Ofu.n_levels wb / 2) else None in
  let arch = if fast then Builder.Csel 4 else Builder.Rca in
  let b =
    Ofu.build ~arch c ~signed_weights:(wb > 1) ~result_width
      ~pipe_after_level ~columns
  in
  Ir.add_output ir "r" b.result;
  let buses = List.init wb (fun j -> (Printf.sprintf "a%d" j, w_sa)) in
  finish lib ir ~drive:(drive_buses buses)

(** WL driver slice: input register + row fanout buffering for [cols]
    consumers. *)
let wl_driver lib ~cols =
  let ir = Ir.create ~name:"scl_wl" () in
  let c = Builder.in_subcircuit ir "wl_driver" in
  let x = Ir.new_net ir in
  Ir.add_input ir "x" [| x |];
  let q = Builder.dff c x in
  let leaves = Driver.fanout_tree c q ~consumers:cols ~max_fanout:16 in
  (* terminate each leaf in a typical multiplier load *)
  let outs = Array.map (fun l -> Builder.buf c l) leaves in
  Ir.add_output ir "o" outs;
  finish lib ir ~drive:(drive_buses [ ("x", 1) ])
