(** User-facing macro specification (the compiler's input, paper Fig. 2):
    architectural parameters (dimensions, precisions, MCR) plus performance
    constraints (MAC frequency, weight-update frequency, operating voltage)
    and a PPA preference. *)

type preference =
  | Prefer_power  (** energy-efficiency first (wearables, edge) *)
  | Prefer_area  (** silicon cost first *)
  | Prefer_performance  (** throughput first (cloud) *)
  | Balanced

let preference_name = function
  | Prefer_power -> "power"
  | Prefer_area -> "area"
  | Prefer_performance -> "performance"
  | Balanced -> "balanced"

type t = {
  rows : int;  (** H *)
  cols : int;  (** W *)
  mcr : int;
  input_prec : Precision.t;  (** widest input format the macro serves *)
  weight_prec : Precision.t;
  mac_freq_hz : float;  (** target MAC clock at [vdd] *)
  weight_update_freq_hz : float;
  vdd : float;  (** operating supply for the constraints *)
  preference : preference;
}

(** The paper's Fig. 8 specification: H = W = 64, MCR = 2, INT4/8 + FP4/8,
    MAC and weight update at 800 MHz @ 0.9 V. The widest served formats
    are INT8 inputs and 8-bit weights (FP8 aligns into the same width). *)
let fig8 =
  {
    rows = 64;
    cols = 64;
    mcr = 2;
    input_prec = Precision.int8;
    weight_prec = Precision.int8;
    mac_freq_hz = 800e6;
    weight_update_freq_hz = 800e6;
    vdd = 0.9;
    preference = Balanced;
  }

(** [initial_config spec] is Algorithm 1's step 1: every subcircuit set to
    its SPEC-defined configuration where the spec pins one down
    (dimensions, precisions, MCR) and to the library default otherwise. *)
let initial_config (s : t) : Macro_rtl.config =
  Macro_rtl.default ~rows:s.rows ~cols:s.cols ~mcr:s.mcr
    ~input_prec:s.input_prec ~weight_prec:s.weight_prec

(** Nominal-voltage critical-path budget (ps) implied by the spec: the
    period at [mac_freq_hz] divided by the voltage derating at [vdd]. *)
let nominal_budget_ps (s : t) (node : Node.t) =
  let period_ps = 1e12 /. s.mac_freq_hz in
  period_ps /. Voltage.delay_scale node ~vdd:s.vdd

(** Fraction of the cycle reserved for routed-wire delay during the
    pre-layout search, so the post-layout netlist still closes once
    extraction adds wire load — the synthesis wire-load margin every
    physical flow carries. *)
let wire_derate = 0.22

(** Pre-layout timing target used by the searcher. *)
let search_budget_ps (s : t) (node : Node.t) =
  nominal_budget_ps s node *. (1.0 -. wire_derate)

let describe (s : t) =
  Printf.sprintf
    "%dx%d MCR=%d %s x %s @ %.0f MHz (%.2f V, wupd %.0f MHz, prefer %s)"
    s.rows s.cols s.mcr
    (Precision.name s.input_prec)
    (Precision.name s.weight_prec)
    (s.mac_freq_hz /. 1e6) s.vdd
    (s.weight_update_freq_hz /. 1e6)
    (preference_name s.preference)
