lib/search/design_point.ml: Adder_tree Array Cell Driver Hashtbl Ir Library List Macro_rtl Power Printf Rng Sim Sizing Spec Sta Stats Testbench Voltage
