lib/search/spec.ml: Macro_rtl Node Precision Printf Voltage
