lib/search/searcher.ml: Adder_tree Cell Design_point List Macro_rtl Pareto Printf Scl Shift_adder Spec
