(** Routing estimate: half-perimeter wirelength (HPWL) per net over the
    placed pin locations, converted into per-net wire capacitance that the
    post-layout timing and power runs consume. Primary I/O pins sit at the
    left die edge. *)

type t = {
  placement : Floorplan.t;
  hpwl_um : float array;  (** per net *)
  total_wirelength_um : float;
}

let build (p : Floorplan.t) : t =
  let d = p.design in
  let minx = Array.make d.n_nets infinity
  and maxx = Array.make d.n_nets neg_infinity
  and miny = Array.make d.n_nets infinity
  and maxy = Array.make d.n_nets neg_infinity in
  let touch net x y =
    if x < minx.(net) then minx.(net) <- x;
    if x > maxx.(net) then maxx.(net) <- x;
    if y < miny.(net) then miny.(net) <- y;
    if y > maxy.(net) then maxy.(net) <- y
  in
  Array.iteri
    (fun i (inst : Ir.inst) ->
      Array.iter (fun net -> touch net p.x.(i) p.y.(i)) inst.ins;
      Array.iter (fun net -> touch net p.x.(i) p.y.(i)) inst.outs)
    d.insts;
  (* primary I/O at the left edge, vertically centered *)
  let edge net = touch net 0.0 (p.die_h /. 2.0) in
  List.iter (fun (_, bus) -> Array.iter edge bus) d.src.inputs;
  List.iter (fun (_, bus) -> Array.iter edge bus) d.src.outputs;
  let hpwl = Array.make d.n_nets 0.0 in
  let total = ref 0.0 in
  for net = 2 to d.n_nets - 1 do
    (* constants don't route *)
    if Float.is_finite minx.(net) && maxx.(net) >= minx.(net) then begin
      hpwl.(net) <- maxx.(net) -. minx.(net) +. (maxy.(net) -. miny.(net));
      total := !total +. hpwl.(net)
    end
  done;
  { placement = p; hpwl_um = hpwl; total_wirelength_um = !total }

(** [wire_cap t node net] — routed capacitance of [net] in fF. *)
let wire_cap (t : t) (node : Node.t) net =
  t.hpwl_um.(net) *. node.Node.wire_cap_ff_per_um

(** [wire_cap_fn t node] packages {!wire_cap} for the STA/power APIs. *)
let wire_cap_fn (t : t) (node : Node.t) : Ir.net -> float =
 fun net -> wire_cap t node net
