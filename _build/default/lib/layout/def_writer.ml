(** DEF-style export of a placement: die area, placed components, and the
    net list — the hand-off format between placement and routing tools. *)

let to_string lib (p : Floorplan.t) =
  let d = p.design in
  let b = Buffer.create (Ir.n_insts d * 48) in
  let dbu = 1000.0 in
  Buffer.add_string b "VERSION 5.8 ;\nDESIGN dcim_macro ;\nUNITS DISTANCE MICRONS 1000 ;\n";
  Buffer.add_string b
    (Printf.sprintf "DIEAREA ( 0 0 ) ( %.0f %.0f ) ;\n" (p.die_w *. dbu)
       (p.die_h *. dbu));
  Buffer.add_string b
    (Printf.sprintf "COMPONENTS %d ;\n" (Ir.n_insts d));
  Array.iteri
    (fun i (inst : Ir.inst) ->
      let w = Floorplan.inst_width lib inst in
      Buffer.add_string b
        (Printf.sprintf "  - u%d %s_%s + PLACED ( %.0f %.0f ) N ;\n" i
           (Cell.kind_to_string inst.kind)
           (Cell.drive_to_string inst.drive)
           ((p.x.(i) -. (w /. 2.0)) *. dbu)
           ((p.y.(i) -. (p.row_height /. 2.0)) *. dbu)))
    d.insts;
  Buffer.add_string b "END COMPONENTS\n";
  (* nets, driver first *)
  let live =
    Array.to_list (Array.init d.n_nets Fun.id)
    |> List.filter (fun n -> n > 1 && d.consumers.(n) <> [])
  in
  Buffer.add_string b (Printf.sprintf "NETS %d ;\n" (List.length live));
  List.iter
    (fun n ->
      Buffer.add_string b (Printf.sprintf "  - n%d" n);
      (match d.driver.(n) with
      | Some (i, o) -> Buffer.add_string b (Printf.sprintf " ( u%d O%d )" i o)
      | None -> ());
      List.iter
        (fun (i, pin) ->
          Buffer.add_string b (Printf.sprintf " ( u%d I%d )" i pin))
        d.consumers.(n);
      Buffer.add_string b " ;\n")
    live;
  Buffer.add_string b "END NETS\nEND DESIGN\n";
  Buffer.contents b

let write_file lib path p =
  let oc = open_out path in
  output_string oc (to_string lib p);
  close_out oc
