(** Design-rule checks on a placement: every cell inside the die, and no
    two cells overlapping within a row — the geometric subset of a DRC
    deck that a coarse row-based placement can violate. *)

type violation =
  | Out_of_bounds of int
  | Overlap of int * int

let violation_to_string = function
  | Out_of_bounds i -> Printf.sprintf "instance %d outside die" i
  | Overlap (a, b) -> Printf.sprintf "instances %d and %d overlap" a b

(** [check lib p] returns all violations (empty means DRC-clean). *)
let check lib (p : Floorplan.t) : violation list =
  let d = p.design in
  let n = Ir.n_insts d in
  let violations = ref [] in
  (* group by row index *)
  let rows = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    let w = Floorplan.inst_width lib d.insts.(i) in
    let x0 = p.x.(i) -. (w /. 2.0) and x1 = p.x.(i) +. (w /. 2.0) in
    if x0 < -1e-3 || x1 > p.die_w +. 1e-3 || p.y.(i) < 0.0
       || p.y.(i) > p.die_h
    then violations := Out_of_bounds i :: !violations;
    let row = int_of_float (p.y.(i) /. p.row_height) in
    let cur = try Hashtbl.find rows row with Not_found -> [] in
    Hashtbl.replace rows row ((i, x0, x1) :: cur)
  done;
  Hashtbl.iter
    (fun _ cells ->
      let sorted =
        List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b) cells
      in
      let rec scan = function
        | (a, _, a1) :: ((b, b0, _) :: _ as rest) ->
            if b0 < a1 -. 1e-3 then violations := Overlap (a, b) :: !violations;
            scan rest
        | [ _ ] | [] -> ()
      in
      scan sorted)
    rows;
  !violations
