lib/layout/drc.ml: Array Float Floorplan Hashtbl Ir List Printf
