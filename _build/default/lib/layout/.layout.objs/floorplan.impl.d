lib/layout/floorplan.ml: Array Cell Float Fun Intmath Ir Library List Macro_rtl Rng
