lib/layout/def_writer.ml: Array Buffer Cell Floorplan Fun Ir List Printf
