lib/layout/post_layout.ml: Drc Floorplan Library List Lvs Macro_rtl Power Printf Rng Route Sim Sta Testbench
