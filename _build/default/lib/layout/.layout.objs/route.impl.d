lib/layout/route.ml: Array Float Floorplan Ir List Node
