lib/layout/lvs.ml: Array Cell Float Floorplan Ir List Printf
