(** Post-layout sign-off: place, route, DRC, LVS, then re-run static
    timing and power with the extracted wire capacitances — the
    repository's PrimeTime-after-Innovus step (paper Fig. 6). *)

type t = {
  placement : Floorplan.t;
  routing : Route.t;
  drc_violations : Drc.violation list;
  lvs : Lvs.report;
  sta : Sta.report;  (** with wire loads *)
  area_mm2 : float;
  total_wirelength_mm : float;
}

exception Signoff_failed of string

(** [run lib macro ~style] executes the back-end flow on a built macro.
    Raises {!Signoff_failed} when DRC or LVS fails — the compiler refuses
    to hand out a macro that does not sign off. *)
let run ?(seed = 0x5D9) (lib : Library.t) (m : Macro_rtl.t)
    ~(style : Floorplan.style) : t =
  let placement =
    match style with
    | Floorplan.Sdp -> Floorplan.sdp lib m
    | Floorplan.Scattered -> Floorplan.scattered lib m ~seed
  in
  let routing = Route.build placement in
  let drc_violations = Drc.check lib placement in
  if drc_violations <> [] then
    raise
      (Signoff_failed
         (Printf.sprintf "DRC: %d violations, first: %s"
            (List.length drc_violations)
            (Drc.violation_to_string (List.hd drc_violations))));
  let lvs = Lvs.check placement in
  if not lvs.Lvs.clean then
    raise
      (Signoff_failed
         (Printf.sprintf "LVS: %s"
            (match lvs.Lvs.errors with e :: _ -> e | [] -> "unknown")));
  let wire_cap = Route.wire_cap_fn routing lib.Library.node in
  let sta = Sta.analyze ~wire_cap m.Macro_rtl.design lib in
  {
    placement;
    routing;
    drc_violations;
    lvs;
    sta;
    area_mm2 = Floorplan.area_mm2 placement;
    total_wirelength_mm = routing.Route.total_wirelength_um /. 1e3;
  }

(** [power lib m t ~freq_hz ~vdd ~input_density ~weight_density ~macs] —
    post-layout power: the same streaming workload as the pre-layout
    estimate, with routed wire capacitance charged on every toggle. *)
let power ?(seed = 0xD1C) lib (m : Macro_rtl.t) (t : t) ~freq_hz ~vdd
    ~input_density ~weight_density ~macs =
  let rng = Rng.create seed in
  let sim = Sim.create m.Macro_rtl.design in
  if m.Macro_rtl.cfg.mcr > 1 then Sim.set_bus sim "copy_sel" 0;
  Testbench.load_weights m sim ~copy:0
    (Testbench.random_weights rng m ~density:weight_density);
  Sim.reset_stats sim;
  Testbench.run_stream m sim ~rng ~macs ~input_density;
  let wire_cap = Route.wire_cap_fn t.routing lib.Library.node in
  Power.estimate m.Macro_rtl.design lib sim ~freq_hz ~vdd ~wire_cap ()
