(** Placement: the SDP (structured data path) flow of paper §III-D, and a
    scattered baseline for the ablation.

    SDP placement mirrors the paper's Innovus SDP script: SRAM bit cells
    are tiled on an exact (row, column, copy) grid, each column's
    multiplier/mux and adder/S&A cells fill a strip immediately next to
    that column ("we fill the gaps between SRAM columns with adder
    cells"), and the peripheral logic (WL drivers and FP aligner on the
    left, OFU/output/BL drivers in a band below) is placed around the
    array. The scattered baseline shuffles every cell row-major across the
    same die, which is what an unconstrained APR run degenerates to.

    Column association for datapath cells uses creation order: the macro
    composer instantiates tree and S&A cells strictly column-major and
    multiplier elements row-major with a constant instance count per
    element, so chunking each tag group by instance id recovers exact
    column membership. *)

type style = Sdp | Scattered

let style_name = function Sdp -> "sdp" | Scattered -> "scattered"

type t = {
  design : Ir.design;
  style : style;
  x : float array;  (** per instance, cell center, um *)
  y : float array;
  die_w : float;
  die_h : float;
  row_height : float;
}

let row_height = 1.4

let inst_width lib (inst : Ir.inst) =
  (Library.params lib inst.kind inst.drive).Library.area_um2 /. row_height

let tag_of (d : Ir.design) i = d.insts.(i).tag

(* Partition instance ids into the placement regions. *)
type regions = {
  bitcells : (int * int * int * int) list;  (** (inst, row, col, copy) *)
  mulmux : int list;  (** row-major creation order *)
  column_strip : int list;  (** trees + S&A, column-major creation order *)
  left_band : int list;  (** WL drivers, FP aligner *)
  word_band : int list;  (** OFU + its pipeline/output regs, word-major *)
  misc_band : int list;  (** BL drivers and everything else *)
}

let classify (d : Ir.design) : regions =
  let bitcells = ref []
  and mulmux = ref []
  and strip = ref []
  and left = ref []
  and word = ref []
  and misc = ref [] in
  Array.iteri
    (fun i (inst : Ir.inst) ->
      match inst.tag with
      | Ir.Weight_bit { row; col; copy } ->
          bitcells := (i, row, col, copy) :: !bitcells
      | Ir.Subcircuit "mulmux" -> mulmux := i :: !mulmux
      | Ir.Subcircuit ("adder_tree" | "shift_adder") -> strip := i :: !strip
      | Ir.Pipeline_reg ("tree_split" | "tree_out" | "tree_cs_a" | "tree_cs_b")
        ->
          strip := i :: !strip
      | Ir.Subcircuit ("wl_driver" | "fp_align") -> left := i :: !left
      | Ir.Subcircuit "ofu"
      | Ir.Pipeline_reg ("sa_ofu" | "ofu_pipe" | "macro_out") ->
          word := i :: !word
      | Ir.Subcircuit _ | Ir.Pipeline_reg _ | Ir.Plain ->
          misc := i :: !misc)
    d.insts;
  {
    bitcells = List.rev !bitcells;
    mulmux = List.rev !mulmux;
    column_strip = List.rev !strip;
    left_band = List.rev !left;
    word_band = List.rev !word;
    misc_band = List.rev !misc;
  }

(* Fill a rectangular region row-major with the given instances; returns
   the actually used height. *)
let fill_region lib d ~x ~y ~x0 ~y0 ~width ids =
  let cx = ref x0 and cy = ref y0 in
  List.iter
    (fun i ->
      let w = inst_width lib d.Ir.insts.(i) in
      if !cx +. w > x0 +. width +. 1e-6 then begin
        cx := x0;
        cy := !cy +. row_height
      end;
      x.(i) <- !cx +. (w /. 2.0);
      y.(i) <- !cy +. (row_height /. 2.0);
      cx := !cx +. w)
    ids;
  !cy +. row_height -. y0

let region_area lib d ids =
  List.fold_left
    (fun a i ->
      a
      +. (Library.params lib d.Ir.insts.(i).kind d.Ir.insts.(i).drive)
           .Library.area_um2)
    0.0 ids

let widest_cell lib d ids =
  List.fold_left (fun w i -> Float.max w (inst_width lib d.Ir.insts.(i))) 0.0 ids

(** [sdp lib macro] — structured placement of a built macro. *)
let sdp lib (m : Macro_rtl.t) : t =
  let d = m.Macro_rtl.design in
  let cfg = m.Macro_rtl.cfg in
  let n = Ir.n_insts d in
  let x = Array.make n 0.0 and y = Array.make n 0.0 in
  let r = classify d in
  let cell_w =
    (Library.params lib (Cell.Sram cfg.cell_kind) Cell.X1).Library.area_um2
    /. row_height
  in
  (* chunk the column strip ids (column-major creation order) per column *)
  let strip_ids = Array.of_list r.column_strip in
  let n_strip = Array.length strip_ids in
  let per_col_strip =
    Array.init cfg.cols (fun c ->
        let lo = c * n_strip / cfg.cols and hi = (c + 1) * n_strip / cfg.cols in
        Array.to_list (Array.sub strip_ids lo (hi - lo)))
  in
  (* chunk mulmux ids (row-major, constant count per element) *)
  let mm_ids = Array.of_list r.mulmux in
  let n_elems = cfg.rows * cfg.cols in
  let per_elem =
    if n_elems = 0 then 0 else Array.length mm_ids / max n_elems 1
  in
  (* the multiplier slot must fit the widest element (drives may differ) *)
  let mul_w =
    if Array.length mm_ids = 0 || per_elem = 0 then 0.0
    else begin
      let widest = ref 0.0 in
      for e = 0 to n_elems - 1 do
        let w = ref 0.0 in
        for s = 0 to per_elem - 1 do
          w := !w +. inst_width lib d.Ir.insts.(mm_ids.((e * per_elem) + s))
        done;
        if !w > !widest then widest := !w
      done;
      !widest
    end
  in
  (* per-column strip width from its own area, with packing margin *)
  let array_h = float_of_int cfg.rows *. row_height in
  let strip_w c =
    let a = region_area lib d per_col_strip.(c) in
    Float.max
      (widest_cell lib d per_col_strip.(c))
      (Float.max cell_w (1.12 *. a /. array_h))
  in
  (* left band for WL drivers and the aligner *)
  let left_area = region_area lib d r.left_band in
  (* column pitch *)
  let pitch c =
    (float_of_int cfg.mcr *. cell_w) +. mul_w +. strip_w c +. 0.2
  in
  (* fold the columns into stripes so the die aspect stays near square:
     a flat 1 x cols arrangement would make every cross-array net as long
     as the whole die *)
  let total_flat_w = ref 0.0 in
  for c = 0 to cfg.cols - 1 do
    total_flat_w := !total_flat_w +. pitch c
  done;
  let n_stripes =
    Intmath.clamp ~lo:1 ~hi:8
      (int_of_float (Float.round (sqrt (!total_flat_w /. array_h))))
  in
  let cols_per_stripe = Intmath.ceil_div cfg.cols n_stripes in
  let left_w =
    Float.max
      (widest_cell lib d r.left_band)
      (Float.max 2.0
         (1.15 *. left_area /. (array_h *. float_of_int n_stripes)))
  in
  (* x offset of each column within its stripe *)
  let col_x = Array.make cfg.cols left_w in
  let die_w = ref 0.0 in
  for c = 0 to cfg.cols - 1 do
    col_x.(c) <-
      (if c mod cols_per_stripe = 0 then left_w
       else col_x.(c - 1) +. pitch (c - 1));
    if col_x.(c) +. pitch c > !die_w then die_w := col_x.(c) +. pitch c
  done;
  let die_w = !die_w in
  (* place stripes bottom-up, tracking each stripe's real height *)
  let stripe_base = Array.make (n_stripes + 1) 0.0 in
  for s = 0 to n_stripes - 1 do
    let base = stripe_base.(s) in
    let c_lo = s * cols_per_stripe
    and c_hi = min cfg.cols ((s + 1) * cols_per_stripe) - 1 in
    let stripe_used = ref array_h in
    (* 1. bit cells on the exact grid *)
    List.iter
      (fun (i, row, col, copy) ->
        if col >= c_lo && col <= c_hi then begin
          x.(i) <- col_x.(col) +. ((float_of_int copy +. 0.5) *. cell_w);
          y.(i) <- base +. ((float_of_int row +. 0.5) *. row_height)
        end)
      r.bitcells;
    (* 2. multiplier/mux elements beside their cells *)
    let elem_cursor = Array.make (max n_elems 1) 0.0 in
    Array.iteri
      (fun idx i ->
        let elem = if per_elem = 0 then 0 else idx / per_elem in
        let row = elem / cfg.cols and col = elem mod cfg.cols in
        if col >= c_lo && col <= c_hi then begin
          let w = inst_width lib d.Ir.insts.(i) in
          x.(i) <-
            col_x.(col)
            +. (float_of_int cfg.mcr *. cell_w)
            +. elem_cursor.(elem) +. (w /. 2.0);
          elem_cursor.(elem) <- elem_cursor.(elem) +. w;
          y.(i) <- base +. ((float_of_int row +. 0.5) *. row_height)
        end)
      mm_ids;
    (* 3. adder/S&A strips fill the gap next to each column *)
    for c = c_lo to c_hi do
      let x0 = col_x.(c) +. (float_of_int cfg.mcr *. cell_w) +. mul_w in
      let h =
        fill_region lib d ~x ~y ~x0 ~y0:base ~width:(strip_w c)
          per_col_strip.(c)
      in
      if h > !stripe_used then stripe_used := h
    done;
    (* 4. left band slice for this stripe's share of WL/align cells *)
    let n_left = List.length r.left_band in
    let slice =
      List.filteri
        (fun k _ ->
          k >= s * n_left / n_stripes && k < (s + 1) * n_left / n_stripes)
        r.left_band
    in
    let lh = fill_region lib d ~x ~y ~x0:0.0 ~y0:base ~width:left_w slice in
    if lh > !stripe_used then stripe_used := lh;
    (* 5. this stripe's word band: each word's OFU block directly below
       its own columns ("peripheral logic around the array"), so the
       S&A-to-OFU nets never cross stripes *)
    let wb = m.Macro_rtl.wb in
    let words = m.Macro_rtl.words in
    let word_ids = Array.of_list r.word_band in
    let n_word_ids = Array.length word_ids in
    if words > 0 && n_word_ids > 0 then begin
      let band_y = base +. !stripe_used in
      let band_h = ref 0.0 in
      for g = 0 to words - 1 do
        let c_first = g * wb in
        if c_first >= c_lo && c_first <= c_hi then begin
          let c_last = min c_hi (c_first + wb - 1) in
          let x0 = col_x.(c_first) in
          let width =
            Float.max 6.0 (col_x.(c_last) +. pitch c_last -. x0)
          in
          let lo = g * n_word_ids / words
          and hi = (g + 1) * n_word_ids / words in
          let ids = Array.to_list (Array.sub word_ids lo (hi - lo)) in
          let h = fill_region lib d ~x ~y ~x0 ~y0:band_y ~width ids in
          if h > !band_h then band_h := h
        end
      done;
      stripe_used := !stripe_used +. !band_h
    end;
    stripe_base.(s + 1) <- base +. !stripe_used +. row_height
  done;
  (* 6. misc band (BL drivers etc.) across the full die at the bottom *)
  let band_y = stripe_base.(n_stripes) in
  let bot_h =
    fill_region lib d ~x ~y ~x0:0.0 ~y0:band_y ~width:die_w r.misc_band
  in
  let die_h = band_y +. bot_h in
  { design = d; style = Sdp; x; y; die_w; die_h; row_height }

(** [scattered lib macro ~seed] — the unstructured baseline: every cell
    shuffled row-major over a die of the same aspect and total area. *)
let scattered lib (m : Macro_rtl.t) ~seed : t =
  let d = m.Macro_rtl.design in
  let n = Ir.n_insts d in
  let x = Array.make n 0.0 and y = Array.make n 0.0 in
  let total_area =
    Array.fold_left
      (fun a (inst : Ir.inst) ->
        a +. (Library.params lib inst.kind inst.drive).Library.area_um2)
      0.0 d.insts
  in
  (* same utilization as SDP roughly: 15 % whitespace *)
  let die_w = sqrt (total_area /. 0.85) in
  let ids = Array.init n Fun.id in
  let rng = Rng.create seed in
  for i = n - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = ids.(i) in
    ids.(i) <- ids.(j);
    ids.(j) <- t
  done;
  let die_h =
    fill_region lib d ~x ~y ~x0:0.0 ~y0:0.0 ~width:die_w (Array.to_list ids)
  in
  { design = d; style = Scattered; x; y; die_w; die_h; row_height }

let area_mm2 (t : t) = t.die_w *. t.die_h /. 1e6
