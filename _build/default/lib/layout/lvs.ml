(** Layout-versus-schematic: confirms the placement database still
    describes exactly the frozen netlist — every instance placed exactly
    once, kinds preserved, and every net's placed pin count matching its
    netlist pin count. The placement flow never rewires, so a failure here
    means the placement data structure was corrupted. *)

type report = {
  instances_checked : int;
  nets_checked : int;
  clean : bool;
  errors : string list;
}

let check (p : Floorplan.t) : report =
  let d = p.design in
  let n = Ir.n_insts d in
  let errors = ref [] in
  if Array.length p.x <> n || Array.length p.y <> n then
    errors := "placement array size mismatch" :: !errors;
  Array.iteri
    (fun i (inst : Ir.inst) ->
      if Float.is_nan p.x.(i) || Float.is_nan p.y.(i) then
        errors :=
          Printf.sprintf "instance %d (%s) has no location" i
            (Cell.kind_to_string inst.kind)
          :: !errors)
    d.insts;
  (* pin-count audit per net: netlist connectivity vs placement-derived *)
  let pin_count = Array.make d.n_nets 0 in
  Array.iter
    (fun (inst : Ir.inst) ->
      Array.iter (fun net -> pin_count.(net) <- pin_count.(net) + 1) inst.ins;
      Array.iter (fun net -> pin_count.(net) <- pin_count.(net) + 1) inst.outs)
    d.insts;
  let nets_checked = ref 0 in
  Array.iteri
    (fun net c ->
      if net > 1 && c > 0 then begin
        incr nets_checked;
        let expected =
          List.length d.consumers.(net)
          + match d.driver.(net) with Some _ -> 1 | None -> 0
        in
        if expected <> c then
          errors := Printf.sprintf "net %d pin mismatch" net :: !errors
      end)
    pin_count;
  {
    instances_checked = n;
    nets_checked = !nets_checked;
    clean = !errors = [];
    errors = !errors;
  }
