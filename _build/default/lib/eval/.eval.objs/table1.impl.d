lib/eval/table1.ml: Compiler List Lvs Post_layout Precision Printf Scl Searcher Spec String Table
