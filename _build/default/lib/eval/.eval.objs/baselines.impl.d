lib/eval/baselines.ml: Adder_tree Cell Design_point Driver Library Macro_rtl Power Spec Sta Stats Voltage
