lib/eval/ablation.ml: Adder_tree Cell Design_point Floorplan List Macro_rtl Post_layout Power Ppa Precision Printf Scl Searcher Spec Sta Stats Table
