lib/eval/fig7.ml: Compiler List Precision Printf Spec Table
