lib/eval/table2.ml: Compiler Design_point Library List Macro_rtl Post_layout Power Precision Printf Scaling Spec Table Voltage
