lib/eval/fig9.ml: Array Compiler Float Library Printf Voltage
