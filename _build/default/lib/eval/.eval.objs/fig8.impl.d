lib/eval/fig8.ml: Adder_tree Baselines Compiler Design_point List Macro_rtl Printf Searcher Shift_adder Spec Table
