(** SynDCIM's end-to-end compilation pipeline (paper Fig. 2): from a user
    specification to a signed-off macro with measured PPA.

    Stages:
    1. the multi-spec-oriented searcher picks the subcircuit configuration
       and pipeline structure (Algorithm 1);
    2. functional sign-off: the generated netlist is simulated against the
       golden MAC over randomized batches — the compiler refuses to emit a
       macro that miscomputes;
    3. back-end: SDP placement, routing estimate, wire-aware timing
       re-closure (an ECO sizing pass), re-placement, DRC and LVS;
    4. post-layout power at the spec's operating point.

    The result carries every intermediate artifact so reports, experiments
    and the CLI can drill in. *)

type metrics = {
  crit_ps : float;  (** post-layout, nominal voltage *)
  fmax_ghz : float;  (** at the spec's operating voltage *)
  power_w : float;  (** post-layout, at the spec operating point *)
  area_mm2 : float;
  tops : float;  (** native precision, at the spec frequency *)
  tops_per_w : float;
  tops_per_mm2 : float;
  ops_norm : float;  (** 1b x 1b ops per native MAC, for normalization *)
}

type artifact = {
  spec : Spec.t;
  search : Searcher.result;
  macro : Macro_rtl.t;
  signoff : Post_layout.t;
  power : Power.report;
  metrics : metrics;
  timing_closed : bool;  (** post-layout, at the spec's operating point *)
}

exception Verification_failed of string

(** Workload assumptions for the reported power: the paper's measurement
    conditions (12.5 % input sparsity, 50 % weight sparsity). *)
let report_input_density = 0.125

let report_weight_density = 0.5
let report_macs = 8

let verify_batches = 2

let compute_metrics (spec : Spec.t) (m : Macro_rtl.t)
    (signoff : Post_layout.t) (power : Power.report) node =
  let crit_ps = signoff.Post_layout.sta.Sta.crit_ps in
  let fmax_hz =
    Voltage.fmax node ~crit_path_ps:crit_ps ~vdd:spec.Spec.vdd
  in
  let tops =
    Design_point.throughput_tops m ~freq_hz:spec.Spec.mac_freq_hz
  in
  let area_mm2 = signoff.Post_layout.area_mm2 in
  let ops_norm =
    float_of_int (m.Macro_rtl.db * m.Macro_rtl.wb)
  in
  {
    crit_ps;
    fmax_ghz = fmax_hz /. 1e9;
    power_w = power.Power.total_w;
    area_mm2;
    tops;
    tops_per_w = tops /. power.Power.total_w;
    tops_per_mm2 = tops /. area_mm2;
    ops_norm;
  }

(** [compile lib scl spec] runs the whole flow. Raises
    {!Verification_failed} if the generated netlist ever disagrees with
    the golden model. With [retry] (default), a post-layout miss re-runs
    the search against a tightened internal clock (up to ~1.2x). *)
let rec compile ?(style = Floorplan.Sdp) ?(verify = true) ?(retry = true)
    (lib : Library.t) scl (spec : Spec.t) : artifact =
  compile_attempt ~style ~verify ~retry ~boost:1.0 lib scl spec

(* One search + back-end pass; [boost] tightens the frequency the searcher
   aims for without changing the spec the result is reported against —
   the retry path when routed wires eat more than the standard derate. *)
and compile_attempt ~style ~verify ~retry ~boost lib scl (spec : Spec.t) :
    artifact =
  let search_spec =
    { spec with Spec.mac_freq_hz = spec.Spec.mac_freq_hz *. boost }
  in
  let search = Searcher.search lib scl search_spec in
  let macro = search.Searcher.final.Design_point.macro in
  if verify then begin
    try Testbench.verify macro ~seed:0xACC ~batches:verify_batches
    with Testbench.Mismatch { word; expected; got; detail } ->
      raise
        (Verification_failed
           (Printf.sprintf "word %d %s: expected %d, got %d" word detail
              expected got))
  end;
  (* back-end: alternate placement/extraction with wire-aware ECO sizing
     until the post-route timing stops improving (sizing only ever
     upsizes, so the loop is monotone) *)
  let budget = Spec.nominal_budget_ps spec lib.Library.node in
  let design = macro.Macro_rtl.design in
  let rec eco_loop iter pass =
    let crit = pass.Post_layout.sta.Sta.crit_ps in
    if crit <= budget || iter >= 3 then pass
    else begin
      let snap = Sizing.snapshot design in
      let wire_cap =
        Route.wire_cap_fn pass.Post_layout.routing lib.Library.node
      in
      ignore (Sizing.speed_up ~wire_cap design lib ~target_ps:budget);
      let next = Post_layout.run lib macro ~style in
      if next.Post_layout.sta.Sta.crit_ps >= crit -. 1.0 then begin
        (* the resize did not help once re-placed: roll back *)
        Sizing.restore design snap;
        Post_layout.run lib macro ~style
      end
      else eco_loop (iter + 1) next
    end
  in
  let signoff = eco_loop 0 (Post_layout.run lib macro ~style) in
  let power =
    Post_layout.power lib macro signoff ~freq_hz:spec.Spec.mac_freq_hz
      ~vdd:spec.Spec.vdd ~input_density:report_input_density
      ~weight_density:report_weight_density ~macs:report_macs
  in
  let metrics = compute_metrics spec macro signoff power lib.Library.node in
  let timing_closed =
    metrics.fmax_ghz *. 1e9 >= spec.Spec.mac_freq_hz *. 0.999
  in
  if (not timing_closed) && retry && boost < 1.2
     && search.Searcher.timing_closed
  then
    (* the searcher met its pre-layout budget but routing ate the margin:
       search again against a tighter internal clock *)
    compile_attempt ~style ~verify ~retry ~boost:(boost *. 1.12) lib scl
      spec
  else { spec; search; macro; signoff; power; metrics; timing_closed }
