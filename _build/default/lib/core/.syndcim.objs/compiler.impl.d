lib/core/compiler.ml: Design_point Floorplan Library Macro_rtl Post_layout Power Printf Route Searcher Sizing Spec Sta Testbench Voltage
