lib/core/report.ml: Buffer Compiler Ir List Macro_rtl Post_layout Power Printf Searcher Spec Stats Table
