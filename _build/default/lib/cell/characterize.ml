(** Custom-cell characterization flow.

    The paper characterizes customized circuits (SRAM cells, multipliers,
    multiplexers) into standard-cell-compatible LIB/LEF views so the digital
    flow can consume them (paper §III-D, Fig. 6). This module reproduces
    that step: it expands the analytic cell model of {!Library} into
    NLDM-style two-dimensional look-up tables (delay and output slew versus
    input slew and output load) plus the scalar power/area attributes the
    Liberty writer serializes. *)

(** Load axis of the characterization tables, in fF. *)
let load_axis = [| 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 |]

(** Input-slew axis of the characterization tables, in ps. *)
let slew_axis = [| 10.0; 20.0; 40.0; 80.0; 160.0 |]

type table = {
  loads : float array;
  slews : float array;
  values : float array array;  (** [values.(slew_i).(load_i)] in ps *)
}

type view = {
  kind : Cell.kind;
  drive : Cell.drive;
  params : Library.params;
  delay : table array;  (** one table per output pin *)
  out_slew : table array;
}

(** Slew degrades delay mildly in the NLDM model: 12 % of the input slew is
    added to the intrinsic delay, a standard first-order fit. *)
let slew_sensitivity = 0.12

let characterize_output lib ~kind ~drive ~out =
  let mk f =
    {
      loads = load_axis;
      slews = slew_axis;
      values =
        Array.map
          (fun slew -> Array.map (fun load -> f ~slew ~load) load_axis)
          slew_axis;
    }
  in
  let delay ~slew ~load =
    Library.delay_ps lib ~kind ~drive ~out ~load_ff:load
    +. (slew_sensitivity *. slew)
  in
  let out_slew ~slew:_ ~load =
    (* output transition is dominated by RC at the output *)
    let p = Library.params lib kind drive in
    2.2 *. p.drive_res_ps_per_ff *. load
  in
  (mk delay, mk out_slew)

(** [view lib kind drive] characterizes one cell into its table view. *)
let view lib kind drive : view =
  let n_out = Cell.n_outputs kind in
  let tabs = List.init n_out (fun o -> characterize_output lib ~kind ~drive ~out:o) in
  {
    kind;
    drive;
    params = Library.params lib kind drive;
    delay = Array.of_list (List.map fst tabs);
    out_slew = Array.of_list (List.map snd tabs);
  }

(** [lookup tab ~slew ~load] bilinearly interpolates the table, clamping to
    the axis ranges — the same semantics as a Liberty NLDM lookup. *)
let lookup (tab : table) ~slew ~load =
  let locate axis x =
    let n = Array.length axis in
    if x <= axis.(0) then (0, 0, 0.0)
    else if x >= axis.(n - 1) then (n - 1, n - 1, 0.0)
    else
      let rec go i =
        if axis.(i + 1) >= x then
          (i, i + 1, (x -. axis.(i)) /. (axis.(i + 1) -. axis.(i)))
        else go (i + 1)
      in
      go 0
  in
  let s0, s1, sf = locate tab.slews slew in
  let l0, l1, lf = locate tab.loads load in
  let v s l = tab.values.(s).(l) in
  let a = v s0 l0 +. (lf *. (v s0 l1 -. v s0 l0)) in
  let b = v s1 l0 +. (lf *. (v s1 l1 -. v s1 l0)) in
  a +. (sf *. (b -. a))

(** [all lib] characterizes the full library at every drive strength. *)
let all lib =
  List.concat_map
    (fun k ->
      List.map (fun d -> view lib k d) [ Cell.X1; Cell.X2; Cell.X4 ])
    Cell.all_kinds
