(** Liberty (.lib) and LEF-style exporters.

    The paper's custom cells are made "compatible with standard cells,
    allowing integration into the standard digital flow" by emitting LEF
    (geometry) and LIB (timing/power/area) views. These writers produce the
    equivalent human-readable views of the synthetic library so a user can
    inspect — or diff — what the compiler believes about each cell. *)

let buf_table b name (tab : Characterize.table) =
  Buffer.add_string b (Printf.sprintf "        %s (delay_template) {\n" name);
  let axis label a =
    Buffer.add_string b
      (Printf.sprintf "          %s(\"%s\");\n" label
         (String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%.1f") a))))
  in
  axis "index_1" tab.slews;
  axis "index_2" tab.loads;
  Buffer.add_string b "          values(\n";
  Array.iteri
    (fun i row ->
      let line =
        String.concat ", "
          (Array.to_list (Array.map (Printf.sprintf "%.2f") row))
      in
      let sep = if i = Array.length tab.values - 1 then "\"" else "\",\n" in
      Buffer.add_string b (Printf.sprintf "            \"%s%s" line sep))
    tab.values;
  Buffer.add_string b ");\n        }\n"

let cell_block b (v : Characterize.view) =
  let p = v.params in
  let name =
    Printf.sprintf "%s_%s" (Cell.kind_to_string v.kind)
      (Cell.drive_to_string v.drive)
  in
  Buffer.add_string b (Printf.sprintf "  cell (%s) {\n" name);
  Buffer.add_string b (Printf.sprintf "    area : %.3f;\n" p.area_um2);
  Buffer.add_string b
    (Printf.sprintf "    cell_leakage_power : %.3f;\n" p.leakage_nw);
  for i = 0 to Cell.n_inputs v.kind - 1 do
    Buffer.add_string b
      (Printf.sprintf
         "    pin (I%d) { direction : input; capacitance : %.3f; }\n" i
         p.input_cap_ff)
  done;
  if Cell.is_sequential v.kind then
    Buffer.add_string b
      (Printf.sprintf
         "    pin (CK) { direction : input; clock : true; capacitance : \
          %.3f; }\n"
         p.clock_cap_ff);
  for o = 0 to Cell.n_outputs v.kind - 1 do
    Buffer.add_string b
      (Printf.sprintf "    pin (O%d) {\n      direction : output;\n" o);
    Buffer.add_string b "      timing () {\n";
    buf_table b "cell_rise" v.delay.(o);
    buf_table b "rise_transition" v.out_slew.(o);
    Buffer.add_string b "      }\n    }\n"
  done;
  Buffer.add_string b "  }\n"

(** [lib_text lib] renders the whole library as Liberty-style text. *)
let lib_text lib =
  let b = Buffer.create 65536 in
  Buffer.add_string b "library (syndcim_40nm) {\n";
  Buffer.add_string b "  time_unit : \"1ps\";\n";
  Buffer.add_string b "  capacitive_load_unit (1, ff);\n";
  Buffer.add_string b
    (Printf.sprintf "  nom_voltage : %.2f;\n" lib.Library.node.vdd_nominal);
  List.iter (cell_block b) (Characterize.all lib);
  Buffer.add_string b "}\n";
  Buffer.contents b

(** [lef_text lib] renders cell geometry (site-normalized footprints) as
    LEF-style text. Heights are one site row; widths follow area. *)
let lef_text lib =
  let b = Buffer.create 16384 in
  let row_height_um = 1.4 in
  Buffer.add_string b "VERSION 5.8 ;\nUNITS DATABASE MICRONS 1000 ; END UNITS\n";
  List.iter
    (fun k ->
      let p = Library.params lib k Cell.X1 in
      let w = p.area_um2 /. row_height_um in
      Buffer.add_string b
        (Printf.sprintf
           "MACRO %s\n  CLASS CORE ;\n  SIZE %.3f BY %.3f ;\nEND %s\n"
           (Cell.kind_to_string k) w row_height_um (Cell.kind_to_string k)))
    Cell.all_kinds;
  Buffer.add_string b "END LIBRARY\n";
  Buffer.contents b
