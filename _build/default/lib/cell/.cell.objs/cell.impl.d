lib/cell/cell.ml:
