lib/cell/liberty.ml: Array Buffer Cell Characterize Library List Printf String
