lib/cell/library.ml: Array Cell Hashtbl Node
