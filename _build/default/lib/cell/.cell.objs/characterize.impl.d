lib/cell/characterize.ml: Array Cell Library List
