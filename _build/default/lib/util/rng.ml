(** Deterministic random streams.

    Every stochastic step of the flow (vector generation for power
    estimation, randomized verification batches) draws from an explicit
    state seeded from a fixed constant, so compiles are reproducible. *)

type t = Random.State.t

(** [create seed] makes an independent deterministic stream. *)
let create seed : t = Random.State.make [| seed; 0x5D1C; seed lxor 0x9E37 |]

(** [bit t ~p1] draws a bit that is 1 with probability [p1]. *)
let bit t ~p1 = if Random.State.float t 1.0 < p1 then 1 else 0

(** [int t n] draws uniformly from [0 .. n-1]. *)
let int t n = Random.State.int t n

(** [signed t ~width] draws a uniform signed [width]-bit integer. *)
let signed t ~width =
  let m = Intmath.pow2 width in
  Random.State.int t m - (m / 2)

(** [float t x] draws uniformly from [\[0, x)]. *)
let float t x = Random.State.float t x

(** [sparse_signed t ~width ~density] draws 0 with probability
    [1 - density], otherwise a uniform non-zero signed value. Used to model
    the paper's measurement sparsity (12.5 % input / 50 % weight). *)
let sparse_signed t ~width ~density =
  if Random.State.float t 1.0 >= density then 0
  else
    let rec nz () =
      let v = signed t ~width in
      if v = 0 then nz () else v
    in
    nz ()
