(** Pareto-frontier extraction over multi-objective points.

    All objectives are minimized; negate a metric (e.g. throughput) to
    maximize it. *)

(** [dominates a b] holds when point [a] is no worse than [b] in every
    objective and strictly better in at least one. Both arrays must have the
    same length. *)
let dominates (a : float array) (b : float array) =
  assert (Array.length a = Array.length b);
  let no_worse = ref true and strictly = ref false in
  Array.iteri
    (fun i ai ->
      if ai > b.(i) then no_worse := false;
      if ai < b.(i) then strictly := true)
    a;
  !no_worse && !strictly

(** [frontier ~objectives points] keeps the non-dominated elements of
    [points], where [objectives p] projects a point onto its objective
    vector. Order of survivors follows the input order. *)
let frontier ~objectives points =
  let objs = List.map (fun p -> (p, objectives p)) points in
  List.filter_map
    (fun (p, o) ->
      let dominated =
        List.exists (fun (_, o') -> dominates o' o) objs
      in
      if dominated then None else Some p)
    objs

(** [sort_by_objective ~objectives i points] sorts points by ascending value
    of objective [i]. *)
let sort_by_objective ~objectives i points =
  List.sort
    (fun a b -> Float.compare (objectives a).(i) (objectives b).(i))
    points
