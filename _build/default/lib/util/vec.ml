(** Growable arrays, used by the netlist builder. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 64) dummy =
  { data = Array.make (max 1 capacity) dummy; len = 0; dummy }

let length t = t.len

let get t i =
  assert (i >= 0 && i < t.len);
  t.data.(i)

let set t i v =
  assert (i >= 0 && i < t.len);
  t.data.(i) <- v

let push t v =
  if t.len = Array.length t.data then begin
    let data = Array.make (2 * t.len) t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1;
  t.len - 1

(** [to_array t] copies the live prefix into a fresh array. *)
let to_array t = Array.sub t.data 0 t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done
