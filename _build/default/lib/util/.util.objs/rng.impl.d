lib/util/rng.ml: Intmath Random
