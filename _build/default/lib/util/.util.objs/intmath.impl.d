lib/util/intmath.ml: Fun List
