(** Plain-text table rendering for experiment reports.

    The benchmark harness prints every reproduced paper table and figure as
    an aligned ASCII table on stdout; this module does the alignment. *)

type t = { header : string list; rows : string list list }

let make ~header rows = { header; rows }

let widths t =
  let all = t.header :: t.rows in
  let cols = List.length t.header in
  let w = Array.make cols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < cols then w.(i) <- max w.(i) (String.length cell))
      row
  in
  List.iter measure all;
  w

let render_row w row =
  let cells =
    List.mapi
      (fun i cell ->
        let pad = w.(i) - String.length cell in
        cell ^ String.make (max 0 pad) ' ')
      row
  in
  "| " ^ String.concat " | " cells ^ " |"

let render t =
  let w = widths t in
  let sep =
    "|"
    ^ String.concat "|"
        (Array.to_list (Array.map (fun n -> String.make (n + 2) '-') w))
    ^ "|"
  in
  let body = List.map (render_row w) t.rows in
  String.concat "\n" (render_row w t.header :: sep :: body)

(** [print t] renders [t] followed by a newline on stdout. *)
let print t =
  print_endline (render t)

(** Format a float with [digits] decimals. *)
let f ?(digits = 2) x = Printf.sprintf "%.*f" digits x

(** Format a float in engineering style with a unit suffix. *)
let eng ?(digits = 2) x unit = Printf.sprintf "%.*f %s" digits x unit
