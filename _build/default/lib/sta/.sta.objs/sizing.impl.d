lib/sta/sizing.ml: Array Cell Ir Library Sta
