lib/sta/sta.ml: Array Ir Library List Voltage
