(** Process-node descriptors.

    The repository's synthetic cell library targets a 40 nm-class node; the
    other nodes listed here exist so the Table II comparison can apply the
    paper's technology-scaling rules to published designs. *)

type t = {
  name : string;  (** e.g. "40nm" *)
  feature_nm : float;  (** drawn feature size in nanometres *)
  vdd_nominal : float;  (** nominal supply voltage (V) *)
  vth : float;  (** effective threshold voltage (V) *)
  fo4_ps : float;  (** fanout-of-4 inverter delay at nominal VDD (ps) *)
  gate_cap_ff_per_um : float;  (** gate capacitance per micron of width *)
  wire_cap_ff_per_um : float;  (** routed-wire capacitance per micron *)
  wire_res_ohm_per_um : float;  (** routed-wire resistance per micron *)
}

(** The synthetic 40 nm node the compiler targets. FO4 and capacitance
    values follow public 40 nm-era literature; they set the absolute scale
    of every delay/power number in the repository. *)
let n40 =
  {
    name = "40nm";
    feature_nm = 40.0;
    vdd_nominal = 1.1;
    vth = 0.40;
    fo4_ps = 20.0;
    gate_cap_ff_per_um = 1.2;
    wire_cap_ff_per_um = 0.20;
    wire_res_ohm_per_um = 0.8;
  }

(** [node_index t] is the position of the node in the foundry roadmap used
    by the paper's Table II scaling footnotes (40 → 28 → 22 → 16 → 12 →
    7 → 5 → 4 → 3 nm). Fractional positions interpolate between listed
    nodes so 55 nm (TCAS-I'24) also scales. *)
let roadmap = [ 65.0; 55.0; 40.0; 28.0; 22.0; 16.0; 12.0; 7.0; 5.0; 4.0; 3.0 ]

let node_steps ~from_nm ~to_nm =
  let idx nm =
    let rec go i = function
      | [] -> float_of_int (List.length roadmap - 1)
      | x :: _ when Float.equal x nm -> float_of_int i
      | x :: y :: _ when nm < x && nm > y ->
          (* interpolate between adjacent roadmap entries *)
          float_of_int i +. ((x -. nm) /. (x -. y))
      | _ :: rest -> go (i + 1) rest
    in
    go 0 roadmap
  in
  idx to_nm -. idx from_nm
