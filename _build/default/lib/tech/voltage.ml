(** Supply-voltage models: alpha-power-law delay and quadratic energy.

    These close the "fabricated chip" gate: the shmoo experiment (paper
    Fig. 9) sweeps VDD and re-derives the macro's maximum frequency from the
    same critical path the STA measured at nominal voltage. *)

(** Velocity-saturation exponent of the alpha-power law. 1.3 is typical for
    a 40 nm bulk process. *)
let alpha = 1.3

(** [delay_scale node ~vdd] is the multiplicative factor applied to a delay
    characterized at [node.vdd_nominal] when operating at [vdd].

    Alpha-power law: t_d proportional to VDD / (VDD - Vth)^alpha. *)
let delay_scale (node : Node.t) ~vdd =
  if vdd <= node.vth +. 0.02 then infinity
  else
    let f v = v /. ((v -. node.vth) ** alpha) in
    f vdd /. f node.vdd_nominal

(** [energy_scale node ~vdd] scales switching energy: E proportional to
    VDD^2. *)
let energy_scale (node : Node.t) ~vdd = (vdd /. node.vdd_nominal) ** 2.0

(** [leakage_scale node ~vdd] scales leakage power; subthreshold leakage is
    roughly linear-to-quadratic in VDD, we use an exponent of 1.8. *)
let leakage_scale (node : Node.t) ~vdd = (vdd /. node.vdd_nominal) ** 1.8

(** [fmax node ~crit_path_ps ~vdd] is the maximum clock frequency (Hz) of a
    design whose nominal-voltage critical path is [crit_path_ps]. *)
let fmax (node : Node.t) ~crit_path_ps ~vdd =
  let scale = delay_scale node ~vdd in
  if Float.is_finite scale then 1e12 /. (crit_path_ps *. scale) else 0.0

(** [passes node ~crit_path_ps ~vdd ~freq_hz] is the shmoo pass/fail
    criterion: the scaled critical path must fit in one clock period. *)
let passes (node : Node.t) ~crit_path_ps ~vdd ~freq_hz =
  fmax node ~crit_path_ps ~vdd >= freq_hz
