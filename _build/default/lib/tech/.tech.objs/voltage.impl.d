lib/tech/voltage.ml: Float Node
