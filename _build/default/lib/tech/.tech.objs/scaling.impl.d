lib/tech/scaling.ml: Node
