lib/tech/node.ml: Float List
