(** Technology- and precision-scaling rules from the paper's Table II
    footnotes:

    1. TOPS is scaled to a 4 Kb array with 1 b inputs and 1 b weights.
    2. TOPS/mm2 is scaled to 40 nm assuming an 80 % area-efficiency
       improvement per technology node, 1 b input and 1 b weight.
    3. TOPS/W is scaled to 40 nm assuming a 30 % energy-efficiency
       improvement per technology node, 1 b input and 1 b weight. *)

(** Published (or this-work measured) figures for one macro, as they appear
    in a paper's comparison table. *)
type datapoint = {
  label : string;
  technology_nm : float;
  array_kb : float;  (** array size in kilobits *)
  memory_cell : string;
  macro_area_mm2 : float;
  voltage_range : string;
  mac_write : bool;  (** supports simultaneous MAC and weight update *)
  input_bits : int;  (** precision at which TOPS was reported *)
  weight_bits : int;
  tops_raw : float;  (** TOPS as reported, before any scaling *)
  tops_per_mm2_raw : float;
  tops_per_w_raw : float;
}

(** [to_1b1b ~input_bits ~weight_bits x] converts a throughput-like or
    efficiency-like figure reported at [input_bits x weight_bits] precision
    to the 1 b x 1 b equivalent: one n-bit x m-bit MAC is n*m 1-bit MACs. *)
let to_1b1b ~input_bits ~weight_bits x =
  x *. float_of_int (input_bits * weight_bits)

(** [tops_scaled d] — footnote 1: scale raw TOPS to a 4 Kb array at
    1 b x 1 b (throughput is proportional to array bits). *)
let tops_scaled d =
  to_1b1b ~input_bits:d.input_bits ~weight_bits:d.weight_bits d.tops_raw
  *. (4.0 /. d.array_kb)

(** [area_eff_scaled d] — footnote 2: scale TOPS/mm2 to 40 nm, 1 b x 1 b,
    assuming 80 % area-efficiency improvement per node. Designs in a more
    advanced node are *divided* by 1.8 per node when brought back to 40 nm. *)
let area_eff_scaled d =
  let steps = Node.node_steps ~from_nm:40.0 ~to_nm:d.technology_nm in
  let raw =
    to_1b1b ~input_bits:d.input_bits ~weight_bits:d.weight_bits
      d.tops_per_mm2_raw
  in
  raw /. (1.8 ** steps)

(** [energy_eff_scaled d] — footnote 3: scale TOPS/W to 40 nm, 1 b x 1 b,
    assuming 30 % energy-efficiency improvement per node. *)
let energy_eff_scaled d =
  let steps = Node.node_steps ~from_nm:40.0 ~to_nm:d.technology_nm in
  let raw =
    to_1b1b ~input_bits:d.input_bits ~weight_bits:d.weight_bits
      d.tops_per_w_raw
  in
  raw /. (1.3 ** steps)

(** Published comparison points used by the paper's Table II. Raw numbers
    are the papers' headline figures at the listed precisions; the scaling
    functions above reproduce the table's normalized rows. *)
let isscc22 =
  {
    label = "ISSCC'22";
    technology_nm = 5.0;
    array_kb = 64.0;
    memory_cell = "12T";
    macro_area_mm2 = 0.0133;
    voltage_range = "0.5~0.9V";
    mac_write = true;
    input_bits = 4;
    weight_bits = 4;
    tops_raw = 2.9 /. 16.0 *. (64.0 /. 4.0);
    (* Table II already lists the scaled value 2.9; recover a raw figure
       consistent with footnote 1 so scaling round-trips. *)
    tops_per_mm2_raw = 104.0 *. (1.8 ** 6.0) /. 16.0;
    tops_per_w_raw = 842.0 *. (1.3 ** 6.0) /. 16.0;
  }

let isscc23 =
  {
    label = "ISSCC'23";
    technology_nm = 4.0;
    array_kb = 54.0;
    memory_cell = "8T";
    macro_area_mm2 = 0.0172;
    voltage_range = "0.32~1.1V";
    mac_write = true;
    input_bits = 4;
    weight_bits = 4;
    tops_raw = 4.1 /. 16.0 *. (54.0 /. 4.0);
    tops_per_mm2_raw = 64.3 *. (1.8 ** 7.0) /. 16.0;
    tops_per_w_raw = 979.0 *. (1.3 ** 7.0) /. 16.0;
  }

let isscc24 =
  {
    label = "ISSCC'24";
    technology_nm = 3.0;
    array_kb = 60.75;
    memory_cell = "6T";
    macro_area_mm2 = 0.0157;
    voltage_range = "0.36~1.1V";
    mac_write = true;
    input_bits = 4;
    weight_bits = 4;
    tops_raw = 8.2 /. 16.0 *. (60.75 /. 4.0);
    tops_per_mm2_raw = 98.0 *. (1.8 ** 8.0) /. 16.0;
    tops_per_w_raw = 1090.0 *. (1.3 ** 8.0) /. 16.0;
  }

let tcas24 =
  {
    label = "TCAS-I'24";
    technology_nm = 55.0;
    array_kb = 4.0;
    memory_cell = "6T";
    macro_area_mm2 = 0.062;
    voltage_range = "0.7~1.2V";
    mac_write = false;
    input_bits = 4;
    weight_bits = 4;
    tops_raw = 0.8 /. 16.0;
    tops_per_mm2_raw = 22.67 *. (1.8 ** -1.0) /. 16.0;
    tops_per_w_raw = 2848.0 *. (1.3 ** -1.0) /. 16.0;
  }

let published = [ isscc22; isscc23; isscc24; tcas24 ]
